file(REMOVE_RECURSE
  "CMakeFiles/dbsvec_cli.dir/dbsvec_cli.cc.o"
  "CMakeFiles/dbsvec_cli.dir/dbsvec_cli.cc.o.d"
  "dbsvec_cli"
  "dbsvec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsvec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
