# Empty compiler generated dependencies file for dbsvec_cli.
# This may be replaced when dependencies are built.
