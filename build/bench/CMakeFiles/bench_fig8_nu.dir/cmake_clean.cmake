file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nu.dir/bench_fig8_nu.cc.o"
  "CMakeFiles/bench_fig8_nu.dir/bench_fig8_nu.cc.o.d"
  "bench_fig8_nu"
  "bench_fig8_nu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
