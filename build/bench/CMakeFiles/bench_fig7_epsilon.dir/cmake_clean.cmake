file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_epsilon.dir/bench_fig7_epsilon.cc.o"
  "CMakeFiles/bench_fig7_epsilon.dir/bench_fig7_epsilon.cc.o.d"
  "bench_fig7_epsilon"
  "bench_fig7_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
