# Empty dependencies file for bench_fig7_epsilon.
# This may be replaced when dependencies are built.
