# Empty compiler generated dependencies file for dbsvec_tests.
# This may be replaced when dependencies are built.
