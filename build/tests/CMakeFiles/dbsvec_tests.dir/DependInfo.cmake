
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/dbscan_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/dbscan_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/dbscan_test.cc.o.d"
  "/root/repo/tests/dbsvec_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/dbsvec_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/dbsvec_test.cc.o.d"
  "/root/repo/tests/dynamic_r_star_tree_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/dynamic_r_star_tree_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/dynamic_r_star_tree_test.cc.o.d"
  "/root/repo/tests/fuzz_invariants_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/fuzz_invariants_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/fuzz_invariants_test.cc.o.d"
  "/root/repo/tests/grid_index_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/grid_index_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/grid_index_test.cc.o.d"
  "/root/repo/tests/hdbscan_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/hdbscan_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/hdbscan_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kd_tree_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/kd_tree_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/kd_tree_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/lsh_dbscan_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/lsh_dbscan_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/lsh_dbscan_test.cc.o.d"
  "/root/repo/tests/lsh_index_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/lsh_index_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/lsh_index_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/nq_dbscan_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/nq_dbscan_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/nq_dbscan_test.cc.o.d"
  "/root/repo/tests/one_class_svm_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/one_class_svm_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/one_class_svm_test.cc.o.d"
  "/root/repo/tests/optics_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/optics_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/optics_test.cc.o.d"
  "/root/repo/tests/parameter_selection_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/parameter_selection_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/parameter_selection_test.cc.o.d"
  "/root/repo/tests/penalty_weights_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/penalty_weights_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/penalty_weights_test.cc.o.d"
  "/root/repo/tests/r_star_tree_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/r_star_tree_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/r_star_tree_test.cc.o.d"
  "/root/repo/tests/rho_approx_dbscan_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/rho_approx_dbscan_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/rho_approx_dbscan_test.cc.o.d"
  "/root/repo/tests/shapes_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/shapes_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/shapes_test.cc.o.d"
  "/root/repo/tests/smo_solver_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/smo_solver_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/smo_solver_test.cc.o.d"
  "/root/repo/tests/stats_consistency_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/stats_consistency_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/stats_consistency_test.cc.o.d"
  "/root/repo/tests/svdd_test.cc" "tests/CMakeFiles/dbsvec_tests.dir/svdd_test.cc.o" "gcc" "tests/CMakeFiles/dbsvec_tests.dir/svdd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsvec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
