# Empty compiler generated dependencies file for dbsvec.
# This may be replaced when dependencies are built.
