file(REMOVE_RECURSE
  "libdbsvec.a"
)
