
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli_options.cc" "src/CMakeFiles/dbsvec.dir/cli/cli_options.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cli/cli_options.cc.o.d"
  "/root/repo/src/cli/cli_runner.cc" "src/CMakeFiles/dbsvec.dir/cli/cli_runner.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cli/cli_runner.cc.o.d"
  "/root/repo/src/cluster/clustering.cc" "src/CMakeFiles/dbsvec.dir/cluster/clustering.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/clustering.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/dbsvec.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/hdbscan.cc" "src/CMakeFiles/dbsvec.dir/cluster/hdbscan.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/hdbscan.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/dbsvec.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/lsh_dbscan.cc" "src/CMakeFiles/dbsvec.dir/cluster/lsh_dbscan.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/lsh_dbscan.cc.o.d"
  "/root/repo/src/cluster/nq_dbscan.cc" "src/CMakeFiles/dbsvec.dir/cluster/nq_dbscan.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/nq_dbscan.cc.o.d"
  "/root/repo/src/cluster/optics.cc" "src/CMakeFiles/dbsvec.dir/cluster/optics.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/optics.cc.o.d"
  "/root/repo/src/cluster/rho_approx_dbscan.cc" "src/CMakeFiles/dbsvec.dir/cluster/rho_approx_dbscan.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/cluster/rho_approx_dbscan.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/dbsvec.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/common/csv.cc.o.d"
  "/root/repo/src/common/dataset.cc" "src/CMakeFiles/dbsvec.dir/common/dataset.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/common/dataset.cc.o.d"
  "/root/repo/src/common/normalize.cc" "src/CMakeFiles/dbsvec.dir/common/normalize.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/common/normalize.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dbsvec.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/common/status.cc.o.d"
  "/root/repo/src/core/dbsvec.cc" "src/CMakeFiles/dbsvec.dir/core/dbsvec.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/core/dbsvec.cc.o.d"
  "/root/repo/src/core/parameter_selection.cc" "src/CMakeFiles/dbsvec.dir/core/parameter_selection.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/core/parameter_selection.cc.o.d"
  "/root/repo/src/core/penalty_weights.cc" "src/CMakeFiles/dbsvec.dir/core/penalty_weights.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/core/penalty_weights.cc.o.d"
  "/root/repo/src/data/shapes.cc" "src/CMakeFiles/dbsvec.dir/data/shapes.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/data/shapes.cc.o.d"
  "/root/repo/src/data/surrogates.cc" "src/CMakeFiles/dbsvec.dir/data/surrogates.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/data/surrogates.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/dbsvec.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/data/synthetic.cc.o.d"
  "/root/repo/src/eval/external_metrics.cc" "src/CMakeFiles/dbsvec.dir/eval/external_metrics.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/eval/external_metrics.cc.o.d"
  "/root/repo/src/eval/internal_metrics.cc" "src/CMakeFiles/dbsvec.dir/eval/internal_metrics.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/eval/internal_metrics.cc.o.d"
  "/root/repo/src/eval/recall.cc" "src/CMakeFiles/dbsvec.dir/eval/recall.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/eval/recall.cc.o.d"
  "/root/repo/src/index/brute_force_index.cc" "src/CMakeFiles/dbsvec.dir/index/brute_force_index.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/brute_force_index.cc.o.d"
  "/root/repo/src/index/dynamic_r_star_tree.cc" "src/CMakeFiles/dbsvec.dir/index/dynamic_r_star_tree.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/dynamic_r_star_tree.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/dbsvec.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/kd_tree.cc" "src/CMakeFiles/dbsvec.dir/index/kd_tree.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/kd_tree.cc.o.d"
  "/root/repo/src/index/lsh_index.cc" "src/CMakeFiles/dbsvec.dir/index/lsh_index.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/lsh_index.cc.o.d"
  "/root/repo/src/index/neighbor_index.cc" "src/CMakeFiles/dbsvec.dir/index/neighbor_index.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/neighbor_index.cc.o.d"
  "/root/repo/src/index/r_star_tree.cc" "src/CMakeFiles/dbsvec.dir/index/r_star_tree.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/index/r_star_tree.cc.o.d"
  "/root/repo/src/svm/kernel.cc" "src/CMakeFiles/dbsvec.dir/svm/kernel.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/svm/kernel.cc.o.d"
  "/root/repo/src/svm/kernel_cache.cc" "src/CMakeFiles/dbsvec.dir/svm/kernel_cache.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/svm/kernel_cache.cc.o.d"
  "/root/repo/src/svm/one_class_svm.cc" "src/CMakeFiles/dbsvec.dir/svm/one_class_svm.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/svm/one_class_svm.cc.o.d"
  "/root/repo/src/svm/smo_solver.cc" "src/CMakeFiles/dbsvec.dir/svm/smo_solver.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/svm/smo_solver.cc.o.d"
  "/root/repo/src/svm/svdd.cc" "src/CMakeFiles/dbsvec.dir/svm/svdd.cc.o" "gcc" "src/CMakeFiles/dbsvec.dir/svm/svdd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
