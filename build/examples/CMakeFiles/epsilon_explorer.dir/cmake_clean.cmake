file(REMOVE_RECURSE
  "CMakeFiles/epsilon_explorer.dir/epsilon_explorer.cpp.o"
  "CMakeFiles/epsilon_explorer.dir/epsilon_explorer.cpp.o.d"
  "epsilon_explorer"
  "epsilon_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epsilon_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
