# Empty dependencies file for epsilon_explorer.
# This may be replaced when dependencies are built.
