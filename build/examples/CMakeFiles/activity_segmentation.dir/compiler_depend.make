# Empty compiler generated dependencies file for activity_segmentation.
# This may be replaced when dependencies are built.
