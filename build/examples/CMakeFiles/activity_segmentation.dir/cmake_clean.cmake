file(REMOVE_RECURSE
  "CMakeFiles/activity_segmentation.dir/activity_segmentation.cpp.o"
  "CMakeFiles/activity_segmentation.dir/activity_segmentation.cpp.o.d"
  "activity_segmentation"
  "activity_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
