file(REMOVE_RECURSE
  "CMakeFiles/image_grouping.dir/image_grouping.cpp.o"
  "CMakeFiles/image_grouping.dir/image_grouping.cpp.o.d"
  "image_grouping"
  "image_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
