# Empty dependencies file for image_grouping.
# This may be replaced when dependencies are built.
