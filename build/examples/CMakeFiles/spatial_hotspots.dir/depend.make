# Empty dependencies file for spatial_hotspots.
# This may be replaced when dependencies are built.
