file(REMOVE_RECURSE
  "CMakeFiles/spatial_hotspots.dir/spatial_hotspots.cpp.o"
  "CMakeFiles/spatial_hotspots.dir/spatial_hotspots.cpp.o.d"
  "spatial_hotspots"
  "spatial_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
