// Reproduces Fig. 9 of the paper: the effect of the three SVDD
// improvements.
//
//   Fig. 9a (--mode=recall): recall of DBSVEC\WF (no adaptive penalty
//   weights), DBSVEC\IL (no incremental learning) and full DBSVEC on the
//   Table III datasets. Paper: adaptive weights lift recall by 3-8 points;
//   incremental learning barely affects it.
//
//   Fig. 9b (--mode=efficiency): running time of DBSVEC, DBSVEC\IL and
//   DBSVEC\OK (random kernel width instead of sigma = r/sqrt(2)) on the
//   8-d synthetic dataset across an eps sweep. Paper: both incremental
//   learning and the kernel-width selection speed DBSVEC up.
//
// Flags: --mode=recall|efficiency|both --n=20000 --minpts=100
//        --eps_list=5000,15000,25000,35000 --csv=<path>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "data/synthetic.h"
#include "eval/recall.h"

namespace dbsvec {
namespace {

void RecallAblation(const bench::Args& args) {
  std::printf("Fig. 9a reproduction: recall of DBSVEC variants on the "
              "accuracy datasets\n\n");
  bench::Table table(
      {"dataset", "DBSVEC\\WF", "DBSVEC\\IL", "DBSVEC (full)"});
  for (const std::string& name : AccuracySurrogateNames()) {
    SurrogateDataset surrogate;
    if (!MakeSurrogate(name, &surrogate).ok()) {
      continue;
    }
    const Dataset& data = surrogate.data;
    DbscanParams dbscan_params;
    dbscan_params.epsilon = surrogate.epsilon;
    dbscan_params.min_pts = surrogate.min_pts;
    Clustering reference;
    if (!RunDbscan(data, dbscan_params, &reference).ok()) {
      continue;
    }
    auto run_variant = [&](bool weights, bool incremental) {
      DbsvecParams params;
      params.epsilon = surrogate.epsilon;
      params.min_pts = surrogate.min_pts;
      params.adaptive_weights = weights;
      params.incremental_learning = incremental;
      Clustering out;
      if (!RunDbsvec(data, params, &out).ok()) {
        return std::string("ERR");
      }
      return bench::FormatDouble(PairRecall(reference.labels, out.labels));
    };
    table.AddRow({name, run_variant(false, true), run_variant(true, false),
                  run_variant(true, true)});
  }
  table.Print();
  const std::string csv = args.GetString("csv", "");
  if (!csv.empty()) {
    table.WriteCsv(csv + ".recall.csv");
  }
  std::printf(
      "\nExpected shape (Fig. 9a): full DBSVEC >= DBSVEC\\WF on every\n"
      "dataset; DBSVEC\\IL tracks full DBSVEC closely.\n\n");
}

void EfficiencyAblation(const bench::Args& args) {
  // The incremental-learning gain is a large-sub-cluster effect: below
  // ~100k points, re-training on whole (small) sub-clusters is cheap and
  // \IL can even win. 100k is the smallest scale where the paper's
  // ordering (full < \IL < \OK) is stable on a laptop.
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 100000));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  std::vector<double> eps_list;
  std::stringstream ss(args.GetString("eps_list", "5000,15000,25000,35000"));
  std::string token;
  while (std::getline(ss, token, ',')) {
    eps_list.push_back(std::atof(token.c_str()));
  }

  RandomWalkParams gen;
  gen.n = n;
  gen.dim = 8;
  gen.num_clusters = 10;
  gen.seed = 41;
  const Dataset data = GenerateRandomWalk(gen);

  std::printf("Fig. 9b reproduction: running time (s) of DBSVEC variants "
              "(n=%d, d=8, MinPts=%d)\n\n",
              n, min_pts);
  std::vector<std::string> header = {"algorithm"};
  for (const double eps : eps_list) {
    header.push_back("eps=" + std::to_string(static_cast<int64_t>(eps)));
  }
  bench::Table table(header);

  struct Variant {
    const char* name;
    bool incremental;
    bool auto_sigma;
  };
  const Variant variants[] = {
      {"DBSVEC", true, true},
      {"DBSVEC\\IL", false, true},
      {"DBSVEC\\OK", true, false},
  };
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (const double eps : eps_list) {
      DbsvecParams params;
      params.epsilon = eps;
      params.min_pts = min_pts;
      params.incremental_learning = variant.incremental;
      params.auto_sigma = variant.auto_sigma;
      if (!variant.incremental) {
        // The paper's \IL variant trains on the *entire* sub-cluster each
        // round; the library's target-subsampling safety valve would mask
        // exactly the cost this ablation measures.
        params.max_svdd_target = 0;
      }
      Clustering out;
      if (RunDbsvec(data, params, &out).ok()) {
        row.push_back(bench::FormatSeconds(out.stats.elapsed_seconds));
      } else {
        row.push_back("ERR");
      }
    }
    table.AddRow(row);
  }
  table.Print();
  const std::string csv = args.GetString("csv", "");
  if (!csv.empty()) {
    table.WriteCsv(csv + ".efficiency.csv");
  }
  std::printf(
      "\nExpected shape (Fig. 9b): full DBSVEC is the fastest variant;\n"
      "dropping incremental learning or the kernel-width selection\n"
      "strategy costs time.\n");
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::string mode = args.GetString("mode", "both");
  if (mode == "recall" || mode == "both") {
    RecallAblation(args);
  }
  if (mode == "efficiency" || mode == "both") {
    EfficiencyAblation(args);
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
