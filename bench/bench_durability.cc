// Durability benchmark (docs/ROBUSTNESS.md): absorb throughput under the
// three journal fsync policies {off, interval, always}, then recovery
// latency from a journal replay versus from a folded checkpoint. Labels are
// checked bit-identical across every policy and every recovery path — the
// journal changes what survives a crash, never what the engine answers.
//
// Flags: --n --dim --clusters --eps --minpts --seed --traffic --batch
//        --interval-batches --out
// Writes BENCH_durability.json next to the text table.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "model/dbsvec_model.h"
#include "model/overlay_journal.h"
#include "serve/assignment_engine.h"
#include "server/durability.h"

namespace dbsvec {
namespace {

struct PolicyRun {
  std::string policy;
  double absorb_seconds = 0.0;
  uint64_t absorbed = 0;
  uint64_t fsyncs = 0;
  uint64_t journal_bytes = 0;
};

struct RecoveryRun {
  std::string mode;
  double seconds = 0.0;
  uint64_t records_replayed = 0;
  bool from_snapshot = false;
};

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  GaussianBlobsParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 20'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.num_clusters = static_cast<int>(args.GetInt("clusters", 6));
  data.noise_fraction = 0.05;
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 29));
  const double epsilon = args.GetDouble("eps", 9.0);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 30));
  const PointIndex num_traffic =
      static_cast<PointIndex>(args.GetInt("traffic", 20'000));
  const PointIndex batch = static_cast<PointIndex>(args.GetInt("batch", 256));
  // How many batches between Sync() calls under --fsync=interval; stands in
  // for the serving loop's --fsync-interval-ms timer.
  const PointIndex interval_batches =
      static_cast<PointIndex>(args.GetInt("interval-batches", 8));
  const std::string json_path = args.GetString("out", "BENCH_durability.json");

  std::printf("dataset: n=%d dim=%d clusters=%d eps=%.4g minpts=%d "
              "traffic=%d batch=%d\n",
              data.n, data.dim, data.num_clusters, epsilon, min_pts,
              num_traffic, batch);
  const Dataset train = GenerateGaussianBlobs(data);
  // Same seed → same blob centers: the traffic is drawn from the training
  // distribution, so a healthy fraction of it is genuinely core-adjacent.
  GaussianBlobsParams traffic_params = data;
  traffic_params.n = num_traffic;
  const Dataset traffic = GenerateGaussianBlobs(traffic_params);
  GaussianBlobsParams probe_params = data;
  probe_params.n = 2'000;
  const Dataset probes = GenerateGaussianBlobs(probe_params);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dbsvec_bench_durability_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string model_path = (dir / "model.dbsvm").string();

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering clustering;
  DbsvecModel model;
  Stopwatch fit_timer;
  if (const Status status = RunDbsvec(train, params, &clustering, &model);
      !status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  const double fit_seconds = fit_timer.ElapsedSeconds();
  if (const Status status = SaveModel(model, model_path); !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 1;
  }

  bool all_match = true;
  std::vector<int32_t> probe_reference;
  std::vector<PolicyRun> policy_runs;
  bench::Table policy_table(
      {"fsync", "absorb_s", "absorbed", "points/s", "fsyncs", "wal_bytes"});

  for (const FsyncPolicy policy :
       {FsyncPolicy::kOff, FsyncPolicy::kInterval, FsyncPolicy::kAlways}) {
    const std::string name = FsyncPolicyName(policy);
    server::DurabilityOptions durability;
    durability.enabled = true;
    durability.snapshot_path = (dir / (name + ".ckpt")).string();
    durability.journal_path = (dir / (name + ".wal")).string();
    durability.fsync = policy;

    std::unique_ptr<AssignmentEngine> engine;
    std::shared_ptr<OverlayJournal> journal;
    if (const Status status =
            server::RecoverEngine(model_path, durability, {},
                                  server::RetryOptions(), &engine, &journal,
                                  nullptr);
        !status.ok()) {
      std::fprintf(stderr, "recover(%s): %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }

    PolicyRun run;
    run.policy = name;
    Stopwatch absorb_timer;
    PointIndex batches = 0;
    for (PointIndex begin = 0; begin < traffic.size(); begin += batch) {
      const PointIndex count = std::min(batch, traffic.size() - begin);
      Dataset slice(traffic.dim());
      for (PointIndex i = 0; i < count; ++i) {
        slice.Append(traffic.point(begin + i));
      }
      std::vector<int32_t> labels;
      if (const Status status = engine->AssignBatch(slice, &labels);
          !status.ok()) {
        std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
        return 1;
      }
      uint64_t absorbed = 0;
      if (const Status status =
              engine->AbsorbCoreAdjacent(slice, labels, &absorbed);
          !status.ok()) {
        std::fprintf(stderr, "absorb: %s\n", status.ToString().c_str());
        return 1;
      }
      run.absorbed += absorbed;
      if (policy == FsyncPolicy::kInterval &&
          ++batches % interval_batches == 0) {
        (void)journal->Sync();
      }
    }
    (void)journal->Sync();
    run.absorb_seconds = absorb_timer.ElapsedSeconds();
    const OverlayJournalStats stats = journal->stats();
    run.fsyncs = stats.fsyncs;
    run.journal_bytes = stats.bytes;
    if (stats.records_dropped != 0 || journal->degraded()) {
      std::fprintf(stderr, "FAIL: journal degraded under policy %s\n",
                   name.c_str());
      return 1;
    }

    std::vector<int32_t> probe_labels;
    if (const Status status = engine->AssignBatch(probes, &probe_labels);
        !status.ok()) {
      std::fprintf(stderr, "probe: %s\n", status.ToString().c_str());
      return 1;
    }
    if (probe_reference.empty()) {
      probe_reference = probe_labels;
    }
    all_match = all_match && probe_labels == probe_reference;

    const double rate = run.absorb_seconds > 0.0
                            ? static_cast<double>(traffic.size()) /
                                  run.absorb_seconds
                            : 0.0;
    policy_table.AddRow({run.policy, bench::FormatSeconds(run.absorb_seconds),
                         std::to_string(run.absorbed),
                         bench::FormatDouble(rate, 0),
                         std::to_string(run.fsyncs),
                         std::to_string(run.journal_bytes)});
    policy_runs.push_back(run);
  }
  std::printf("fit: %s s\n", bench::FormatSeconds(fit_seconds).c_str());
  policy_table.Print();

  // Recovery latency. The "always" run left the longest-lived journal;
  // recover from it (full replay), then checkpoint and recover again (the
  // snapshot already holds the overlay, nothing to replay).
  server::DurabilityOptions durability;
  durability.enabled = true;
  durability.snapshot_path = (dir / "always.ckpt").string();
  durability.journal_path = (dir / "always.wal").string();
  durability.fsync = FsyncPolicy::kOff;

  std::vector<RecoveryRun> recovery_runs;
  bench::Table recovery_table(
      {"recovery", "seconds", "replayed", "from_snapshot"});
  for (const bool checkpoint_first : {false, true}) {
    std::unique_ptr<AssignmentEngine> engine;
    server::RecoveryReport report;
    Stopwatch recover_timer;
    if (const Status status =
            server::RecoverEngine(model_path, durability, {},
                                  server::RetryOptions(), &engine, nullptr,
                                  &report);
        !status.ok()) {
      std::fprintf(stderr, "recover: %s\n", status.ToString().c_str());
      return 1;
    }
    RecoveryRun run;
    run.mode = checkpoint_first ? "snapshot" : "journal_replay";
    run.seconds = recover_timer.ElapsedSeconds();
    run.records_replayed = report.records_replayed;
    run.from_snapshot = report.loaded_from_snapshot;

    std::vector<int32_t> probe_labels;
    if (const Status status = engine->AssignBatch(probes, &probe_labels);
        !status.ok()) {
      std::fprintf(stderr, "probe: %s\n", status.ToString().c_str());
      return 1;
    }
    all_match = all_match && probe_labels == probe_reference;

    recovery_table.AddRow({run.mode, bench::FormatSeconds(run.seconds),
                           std::to_string(run.records_replayed),
                           run.from_snapshot ? "yes" : "no"});
    recovery_runs.push_back(run);
    if (!checkpoint_first) {
      // Fold the journal for the second pass.
      if (const Status status =
              engine->Checkpoint(durability.snapshot_path, nullptr, nullptr);
          !status.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  recovery_table.Print();

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"n\": " << data.n << ", \"dim\": " << data.dim
       << ", \"clusters\": " << data.num_clusters << ", \"eps\": " << epsilon
       << ", \"minpts\": " << min_pts << ", \"seed\": " << data.seed
       << ", \"traffic\": " << num_traffic << ", \"batch\": " << batch
       << "},\n"
       << "  \"fit_seconds\": " << fit_seconds << ",\n"
       << "  \"deterministic\": " << (all_match ? "true" : "false") << ",\n"
       << "  \"policies\": [\n";
  for (size_t i = 0; i < policy_runs.size(); ++i) {
    const PolicyRun& run = policy_runs[i];
    json << "    {\"fsync\": \"" << run.policy
         << "\", \"absorb_seconds\": " << run.absorb_seconds
         << ", \"absorbed\": " << run.absorbed
         << ", \"fsyncs\": " << run.fsyncs
         << ", \"journal_bytes\": " << run.journal_bytes << "}"
         << (i + 1 < policy_runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"recovery\": [\n";
  for (size_t i = 0; i < recovery_runs.size(); ++i) {
    const RecoveryRun& run = recovery_runs[i];
    json << "    {\"mode\": \"" << run.mode
         << "\", \"seconds\": " << run.seconds
         << ", \"records_replayed\": " << run.records_replayed
         << ", \"from_snapshot\": " << (run.from_snapshot ? "true" : "false")
         << "}" << (i + 1 < recovery_runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: labels diverged across fsync policies or recovery\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
