// Bounded-cost SVDD benchmark (docs/PERFORMANCE.md): fit wall time and
// clustering agreement of the budgeted/sampled path against the exact
// solver on a dense-blob workload whose sub-clusters produce large SVDD
// targets. Each (B, S) cell reports speedup over exact, ARI/NMI against
// the exact labels, and the solver counters (merges, sampled solves,
// largest per-solve iteration count — the O(B·ñ) evidence).
//
// Flags: --n --dim --clusters --noise --minpts --eps --seed
//        --min-ari --min-speedup --smoke --out
// --smoke shrinks the workload for CI (seconds, not minutes) and drops
// the speedup requirement; --min-speedup > 0 makes the harness fail when
// no cell with ARI >= --min-ari reaches that speedup.
// Writes BENCH_budget.json next to the text table.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/clustering.h"
#include "common/stopwatch.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/external_metrics.h"

namespace dbsvec {
namespace {

struct CellResult {
  int sv_budget = 0;
  int sample_threshold = 0;
  double seconds = 0.0;
  double speedup = 1.0;  ///< Exact wall time / this cell's wall time.
  double ari = 1.0;      ///< Against the exact run's labels.
  double nmi = 1.0;
  int32_t num_clusters = 0;
  uint64_t merges = 0;
  uint64_t forgets = 0;
  uint64_t sampled_solves = 0;
  uint64_t fallbacks = 0;
  int64_t max_smo_iterations = 0;
};

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool smoke = args.GetBool("smoke");

  GaussianBlobsParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", smoke ? 3'000 : 400'000));
  data.dim = static_cast<int>(args.GetInt("dim", 2));
  data.num_clusters = static_cast<int>(args.GetInt("clusters", 3));
  data.stddev = 1.0;
  data.noise_fraction = args.GetDouble("noise", 0.05);
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 17));
  const int min_pts = static_cast<int>(args.GetInt("minpts", smoke ? 20 : 150));
  const double min_ari = args.GetDouble("min-ari", 0.95);
  const double min_speedup = args.GetDouble("min-speedup", 0.0);
  const std::string json_path = args.GetString("out", "BENCH_budget.json");

  const Dataset dataset = GenerateGaussianBlobs(data);
  DbsvecParams params;
  params.min_pts = min_pts;
  params.epsilon = args.GetDouble("eps", 0.0);
  if (params.epsilon <= 0.0) {
    params.epsilon = SuggestEpsilon(dataset, min_pts);
  }
  std::printf("dataset: n=%d dim=%d clusters=%d eps=%.4g minpts=%d\n",
              data.n, data.dim, data.num_clusters, params.epsilon, min_pts);

  // Exact baseline: sv_budget = 0, sample_threshold = 0 (the defaults).
  Clustering exact;
  Stopwatch exact_timer;
  if (const Status status = RunDbsvec(dataset, params, &exact);
      !status.ok()) {
    std::fprintf(stderr, "exact fit: %s\n", status.ToString().c_str());
    return 1;
  }
  const double exact_seconds = exact_timer.ElapsedSeconds();
  std::printf("exact: %.3fs clusters=%d smo_iter=%lld max_per_solve=%lld\n",
              exact_seconds, exact.num_clusters,
              static_cast<long long>(exact.stats.smo_iterations),
              static_cast<long long>(exact.stats.max_smo_iterations));

  // The (B, S) sweep. B = 0 rows isolate sampling; S = 0 rows isolate the
  // budget; combined rows are the intended production setting.
  struct Cell {
    int sv_budget;
    int sample_threshold;
  };
  const std::vector<Cell> cells = {
      {128, 0}, {32, 0},       {0, 1'024}, {0, 256},
      {0, 128}, {128, 1'024},  {32, 256},
  };

  std::vector<CellResult> results;
  bench::Table table({"B", "S", "fit_s", "speedup", "ari", "nmi",
                      "clusters", "merges", "sampled", "fallbacks",
                      "max_iter"});
  table.AddRow({"0", "0", bench::FormatSeconds(exact_seconds), "1.00",
                "1.0000", "1.0000", std::to_string(exact.num_clusters), "0",
                "0", std::to_string(exact.stats.num_svdd_fallbacks),
                std::to_string(exact.stats.max_smo_iterations)});

  for (const Cell& cell : cells) {
    DbsvecParams budgeted = params;
    budgeted.sv_budget = cell.sv_budget;
    budgeted.sample_threshold = cell.sample_threshold;
    Clustering run;
    Stopwatch timer;
    if (const Status status = RunDbsvec(dataset, budgeted, &run);
        !status.ok()) {
      std::fprintf(stderr, "fit B=%d S=%d: %s\n", cell.sv_budget,
                   cell.sample_threshold, status.ToString().c_str());
      return 1;
    }
    CellResult result;
    result.sv_budget = cell.sv_budget;
    result.sample_threshold = cell.sample_threshold;
    result.seconds = timer.ElapsedSeconds();
    result.speedup =
        result.seconds > 0.0 ? exact_seconds / result.seconds : 0.0;
    result.ari = AdjustedRandIndex(exact.labels, run.labels);
    result.nmi = NormalizedMutualInformation(exact.labels, run.labels);
    result.num_clusters = run.num_clusters;
    result.merges = run.stats.num_budget_merges;
    result.forgets = run.stats.num_budget_forgets;
    result.sampled_solves = run.stats.num_sampled_solves;
    result.fallbacks = run.stats.num_svdd_fallbacks;
    result.max_smo_iterations = run.stats.max_smo_iterations;
    results.push_back(result);
    table.AddRow({std::to_string(result.sv_budget),
                  std::to_string(result.sample_threshold),
                  bench::FormatSeconds(result.seconds),
                  bench::FormatDouble(result.speedup, 2),
                  bench::FormatDouble(result.ari, 4),
                  bench::FormatDouble(result.nmi, 4),
                  std::to_string(result.num_clusters),
                  std::to_string(result.merges),
                  std::to_string(result.sampled_solves),
                  std::to_string(result.fallbacks),
                  std::to_string(result.max_smo_iterations)});
  }
  table.Print();

  // Best speedup among cells that keep the required agreement.
  double best_speedup = 0.0;
  const CellResult* best = nullptr;
  for (const CellResult& result : results) {
    if (result.ari >= min_ari && result.speedup > best_speedup) {
      best_speedup = result.speedup;
      best = &result;
    }
  }
  if (best != nullptr) {
    std::printf("best: B=%d S=%d speedup=%.2fx ari=%.4f\n", best->sv_budget,
                best->sample_threshold, best_speedup, best->ari);
  } else {
    std::printf("best: no cell reached ari >= %.2f\n", min_ari);
  }

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"n\": " << data.n << ", \"dim\": " << data.dim
       << ", \"clusters\": " << data.num_clusters
       << ", \"eps\": " << params.epsilon << ", \"minpts\": " << min_pts
       << ", \"seed\": " << data.seed << "},\n"
       << "  \"exact_seconds\": " << exact_seconds << ",\n"
       << "  \"exact_max_smo_iterations\": " << exact.stats.max_smo_iterations
       << ",\n"
       << "  \"min_ari\": " << min_ari << ",\n"
       << "  \"best_speedup_at_min_ari\": " << best_speedup << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    json << "    {\"sv_budget\": " << r.sv_budget
         << ", \"sample_threshold\": " << r.sample_threshold
         << ", \"seconds\": " << r.seconds << ", \"speedup\": " << r.speedup
         << ", \"ari\": " << r.ari << ", \"nmi\": " << r.nmi
         << ", \"clusters\": " << r.num_clusters
         << ", \"merges\": " << r.merges << ", \"forgets\": " << r.forgets
         << ", \"sampled_solves\": " << r.sampled_solves
         << ", \"fallbacks\": " << r.fallbacks
         << ", \"max_smo_iterations\": " << r.max_smo_iterations << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: no cell with ari >= %.2f reached %.1fx "
                 "(best %.2fx)\n",
                 min_ari, min_speedup, best_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
