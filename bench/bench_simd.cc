// SIMD micro-kernel harness: throughput of the batched primitives
// (squared-distance and eps-count over SoA blocks) scalar vs the best
// vector backend (AVX-512 when available, else AVX2) at d ∈ {2, 8, 32},
// plus end-to-end DBSVEC wall time on the Fig. 6 random-walk workload with
// the SIMD dispatch forced off and on — unsharded and sharded. Labels must
// be bit-identical across backends — the harness fails otherwise. The JSON
// additionally reports the primitive-vs-e2e speedup ratio: how much of the
// micro-kernel gain survives to the full fit.
//
// Flags: --points --reps --n --dim --eps --minpts --seed --shards --out
// Writes BENCH_simd.json next to the text tables.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "simd/simd.h"
#include "simd/soa_block.h"

namespace dbsvec {
namespace {

struct PrimitiveRun {
  std::string primitive;
  int dim = 0;
  double scalar_mpts = 0.0;  // Million point-distances per second.
  double simd_mpts = 0.0;
  double speedup = 1.0;
};

Dataset RandomDataset(PointIndex n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(dim);
  dataset.Reserve(n);
  std::vector<double> p(dim);
  for (PointIndex i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      p[j] = rng.Uniform(0.0, 100.0);
    }
    dataset.Append(p);
  }
  return dataset;
}

/// Best-of-`reps` wall time of `body()` (which must consume its result via
/// the returned checksum so the work cannot be optimized away).
template <typename Body>
double BestSeconds(int reps, double* checksum, const Body& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    *checksum += body();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

double DistancePass(const simd::SoaBlockView& view,
                    std::span<const double> query, double* d2, int inner) {
  double sum = 0.0;
  for (int k = 0; k < inner; ++k) {
    view.SquaredDistances(query, 0, view.size(), d2);
    sum += d2[view.size() - 1];
  }
  return sum;
}

double CountPass(const simd::SoaBlockView& view, std::span<const double> query,
                 double eps_sq, int inner) {
  size_t total = 0;
  for (int k = 0; k < inner; ++k) {
    total += view.CountWithin(query, 0, view.size(), eps_sq);
  }
  return static_cast<double>(total);
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex points =
      static_cast<PointIndex>(args.GetInt("points", 4'096));
  const int reps = static_cast<int>(args.GetInt("reps", 7));
  const std::string json_path = args.GetString("out", "BENCH_simd.json");
  const int e2e_shards = static_cast<int>(args.GetInt("shards", 4));
  const bool have_avx2 = simd::Avx2Available();
  const bool have_avx512 = simd::Avx512Available();
  const simd::Backend best = have_avx512  ? simd::Backend::kAvx512
                             : have_avx2 ? simd::Backend::kAvx2
                                         : simd::Backend::kScalar;
  const bool have_simd = best != simd::Backend::kScalar;
  const char* best_name = simd::BackendName(best);

  std::printf("simd backends: scalar%s%s (best: %s)\n",
              have_avx2 ? ", avx2" : "", have_avx512 ? ", avx512" : "",
              best_name);

  // --- Primitive throughput, cache-resident blocks -----------------------
  std::vector<PrimitiveRun> primitives;
  bench::Table prim_table(
      {"primitive", "dim", "scalar Mpt/s", "simd Mpt/s", "speedup"});
  double checksum = 0.0;
  for (const int dim : {2, 8, 32}) {
    const Dataset dataset = RandomDataset(points, dim, 1000 + dim);
    const simd::SoaBlockView view(dataset);
    std::vector<double> query(dataset.point(0).begin(),
                              dataset.point(0).end());
    std::vector<double> d2(view.size());
    // Scale the inner loop so one timed pass does ~16M point-distances.
    const int inner = static_cast<int>(16'000'000 / points) + 1;
    const double total = static_cast<double>(points) * inner;

    // eps_sq near the median distance keeps the count branch honest.
    view.SquaredDistances(query, 0, view.size(), d2.data());
    std::vector<double> sorted = d2;
    std::sort(sorted.begin(), sorted.end());
    const double eps_sq = sorted[sorted.size() / 2];

    struct Timing {
      double scalar = 0.0;
      double simd = 0.0;
    };
    Timing dist, count;
    {
      simd::ForceBackend(simd::Backend::kScalar);
      dist.scalar = BestSeconds(reps, &checksum, [&] {
        return DistancePass(view, query, d2.data(), inner);
      });
      count.scalar = BestSeconds(reps, &checksum, [&] {
        return CountPass(view, query, eps_sq, inner);
      });
    }
    if (have_simd) {
      simd::ForceBackend(best);
      dist.simd = BestSeconds(reps, &checksum, [&] {
        return DistancePass(view, query, d2.data(), inner);
      });
      count.simd = BestSeconds(reps, &checksum, [&] {
        return CountPass(view, query, eps_sq, inner);
      });
    }

    const auto add = [&](const char* name, const Timing& t) {
      PrimitiveRun run;
      run.primitive = name;
      run.dim = dim;
      run.scalar_mpts = total / t.scalar / 1e6;
      run.simd_mpts = t.simd > 0.0 ? total / t.simd / 1e6 : 0.0;
      run.speedup = t.simd > 0.0 ? t.scalar / t.simd : 1.0;
      prim_table.AddRow({run.primitive, std::to_string(dim),
                         bench::FormatDouble(run.scalar_mpts, 1),
                         bench::FormatDouble(run.simd_mpts, 1),
                         bench::FormatDouble(run.speedup, 2)});
      primitives.push_back(run);
    };
    add("squared_distance", dist);
    add("count_within", count);
  }
  prim_table.Print();

  // --- End-to-end DBSVEC on the Fig. 6 workload --------------------------
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 100'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  DbsvecParams params;
  params.epsilon = args.GetDouble("eps", 5'000.0);
  params.min_pts = static_cast<int>(args.GetInt("minpts", 100));

  std::printf("generating random-walk workload: n=%d dim=%d seed=%llu\n",
              data.n, data.dim, static_cast<unsigned long long>(data.seed));
  const Dataset dataset = GenerateRandomWalk(data);

  struct E2eRun {
    std::string backend;
    int shards = 0;
    double seconds = 0.0;
    double speedup = 1.0;  // vs scalar at the same shard count.
    bool labels_match = true;
  };
  std::vector<E2eRun> e2e_runs;
  bool labels_match = true;
  double scalar_seconds = 0.0;  // Unsharded scalar reference.
  double simd_seconds = 0.0;    // Unsharded best-backend time.
  bench::Table e2e_table({"backend", "shards", "seconds", "speedup", "match"});
  for (const int shards : {0, e2e_shards}) {
    if (shards != 0 && shards == e2e_shards && e2e_shards <= 0) {
      break;
    }
    params.shards = shards;
    // The scalar run at this shard count is both the timing and the label
    // reference (label numbering is only comparable within a shard
    // setting: the sharded engine's merged neighbor order is sorted, the
    // unsharded engines' is traversal order).
    double shard_scalar_seconds = 0.0;
    std::vector<int32_t> shard_scalar_labels;
    {
      simd::ForceBackend(simd::Backend::kScalar);
      Clustering result;
      Stopwatch timer;
      const Status status = RunDbsvec(dataset, params, &result);
      shard_scalar_seconds = timer.ElapsedSeconds();
      if (!status.ok()) {
        std::fprintf(stderr, "dbsvec(scalar, shards=%d): %s\n", shards,
                     status.ToString().c_str());
        return 1;
      }
      shard_scalar_labels = std::move(result.labels);
      if (shards == 0) {
        scalar_seconds = shard_scalar_seconds;
      }
      e2e_runs.push_back({"scalar", shards, shard_scalar_seconds, 1.0, true});
      e2e_table.AddRow({"scalar", std::to_string(shards),
                        bench::FormatSeconds(shard_scalar_seconds), "1.00",
                        "yes"});
    }
    if (have_simd) {
      simd::ForceBackend(best);
      Clustering result;
      Stopwatch timer;
      const Status status = RunDbsvec(dataset, params, &result);
      const double elapsed = timer.ElapsedSeconds();
      if (!status.ok()) {
        std::fprintf(stderr, "dbsvec(%s, shards=%d): %s\n", best_name, shards,
                     status.ToString().c_str());
        return 1;
      }
      const bool match = result.labels == shard_scalar_labels;
      labels_match = labels_match && match;
      if (shards == 0) {
        simd_seconds = elapsed;
      }
      e2e_runs.push_back(
          {best_name, shards, elapsed, shard_scalar_seconds / elapsed, match});
      e2e_table.AddRow({best_name, std::to_string(shards),
                        bench::FormatSeconds(elapsed),
                        bench::FormatDouble(shard_scalar_seconds / elapsed, 2),
                        match ? "yes" : "NO"});
    }
  }
  e2e_table.Print();

  // Primitive-vs-e2e ratio: how much of the micro-kernel speedup (the
  // squared-distance primitive at the e2e workload's dimensionality, or
  // the geometric mean over measured dims when absent) survives to the
  // full unsharded fit. A ratio near 1 means the fit is distance-bound;
  // well below 1 means Amdahl overhead (SMO, expansion bookkeeping)
  // dominates.
  double primitive_speedup = 0.0;
  {
    double log_sum = 0.0;
    int matching = 0;
    for (const PrimitiveRun& run : primitives) {
      if (run.primitive == std::string("squared_distance") &&
          run.dim == data.dim) {
        primitive_speedup = run.speedup;
      }
    }
    if (primitive_speedup == 0.0) {
      for (const PrimitiveRun& run : primitives) {
        if (run.primitive == std::string("squared_distance") &&
            run.speedup > 0.0) {
          log_sum += std::log(run.speedup);
          ++matching;
        }
      }
      primitive_speedup = matching > 0
                              ? std::exp(log_sum / matching)
                              : 1.0;
    }
  }
  const double e2e_speedup =
      simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 1.0;
  const double primitive_vs_e2e_ratio =
      primitive_speedup > 0.0 ? e2e_speedup / primitive_speedup : 1.0;
  std::printf("primitive speedup %.2fx, e2e speedup %.2fx — ratio %.2f\n",
              primitive_speedup, e2e_speedup, primitive_vs_e2e_ratio);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"avx2_available\": " << (have_avx2 ? "true" : "false") << ",\n"
       << "  \"avx512_available\": " << (have_avx512 ? "true" : "false")
       << ",\n"
       << "  \"simd_backend\": \"" << best_name << "\",\n"
       << "  \"primitive_points\": " << points << ",\n"
       << "  \"primitives\": [\n";
  for (size_t i = 0; i < primitives.size(); ++i) {
    const PrimitiveRun& run = primitives[i];
    json << "    {\"primitive\": \"" << run.primitive
         << "\", \"dim\": " << run.dim << ", \"scalar_mpts\": "
         << run.scalar_mpts << ", \"simd_mpts\": " << run.simd_mpts
         << ", \"speedup\": " << run.speedup << "}"
         << (i + 1 < primitives.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"end_to_end\": {\"workload\": {\"generator\": \"random_walk\", "
       << "\"n\": " << data.n << ", \"dim\": " << data.dim
       << ", \"eps\": " << params.epsilon << ", \"minpts\": "
       << params.min_pts << ", \"seed\": " << data.seed << "},\n"
       << "    \"scalar_seconds\": " << scalar_seconds
       << ", \"simd_seconds\": " << simd_seconds << ", \"speedup\": "
       << e2e_speedup
       << ", \"labels_match\": " << (labels_match ? "true" : "false")
       << ",\n    \"runs\": [\n";
  for (size_t i = 0; i < e2e_runs.size(); ++i) {
    const E2eRun& run = e2e_runs[i];
    json << "      {\"backend\": \"" << run.backend << "\", \"shards\": "
         << run.shards << ", \"seconds\": " << run.seconds
         << ", \"speedup\": " << run.speedup << ", \"labels_match\": "
         << (run.labels_match ? "true" : "false") << "}"
         << (i + 1 < e2e_runs.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"primitive_vs_e2e\": {\"primitive_speedup\": "
       << primitive_speedup << ", \"e2e_speedup\": " << e2e_speedup
       << ", \"ratio\": " << primitive_vs_e2e_ratio << "}\n}\n";
  std::printf("[json written to %s] (checksum %.3g)\n", json_path.c_str(),
              checksum);

  if (!labels_match) {
    std::fprintf(stderr,
                 "FAIL: labels diverged between the scalar and %s backends "
                 "— the determinism contract is broken\n", best_name);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
