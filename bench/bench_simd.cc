// SIMD micro-kernel harness: throughput of the batched primitives
// (squared-distance and eps-count over SoA blocks) scalar vs AVX2 at
// d ∈ {2, 8, 32}, plus end-to-end DBSVEC wall time on the Fig. 6
// random-walk workload with the SIMD dispatch forced off and on. Labels
// must be bit-identical across backends — the harness fails otherwise.
//
// Flags: --points --reps --n --dim --eps --minpts --seed --out
// Writes BENCH_simd.json next to the text tables.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "simd/simd.h"
#include "simd/soa_block.h"

namespace dbsvec {
namespace {

struct PrimitiveRun {
  std::string primitive;
  int dim = 0;
  double scalar_mpts = 0.0;  // Million point-distances per second.
  double simd_mpts = 0.0;
  double speedup = 1.0;
};

Dataset RandomDataset(PointIndex n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(dim);
  dataset.Reserve(n);
  std::vector<double> p(dim);
  for (PointIndex i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      p[j] = rng.Uniform(0.0, 100.0);
    }
    dataset.Append(p);
  }
  return dataset;
}

/// Best-of-`reps` wall time of `body()` (which must consume its result via
/// the returned checksum so the work cannot be optimized away).
template <typename Body>
double BestSeconds(int reps, double* checksum, const Body& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    *checksum += body();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

double DistancePass(const simd::SoaBlockView& view,
                    std::span<const double> query, double* d2, int inner) {
  double sum = 0.0;
  for (int k = 0; k < inner; ++k) {
    view.SquaredDistances(query, 0, view.size(), d2);
    sum += d2[view.size() - 1];
  }
  return sum;
}

double CountPass(const simd::SoaBlockView& view, std::span<const double> query,
                 double eps_sq, int inner) {
  size_t total = 0;
  for (int k = 0; k < inner; ++k) {
    total += view.CountWithin(query, 0, view.size(), eps_sq);
  }
  return static_cast<double>(total);
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex points =
      static_cast<PointIndex>(args.GetInt("points", 4'096));
  const int reps = static_cast<int>(args.GetInt("reps", 7));
  const std::string json_path = args.GetString("out", "BENCH_simd.json");
  const bool have_avx2 = simd::Avx2Available();

  std::printf("simd backends: scalar%s\n", have_avx2 ? ", avx2" : "");

  // --- Primitive throughput, cache-resident blocks -----------------------
  std::vector<PrimitiveRun> primitives;
  bench::Table prim_table(
      {"primitive", "dim", "scalar Mpt/s", "simd Mpt/s", "speedup"});
  double checksum = 0.0;
  for (const int dim : {2, 8, 32}) {
    const Dataset dataset = RandomDataset(points, dim, 1000 + dim);
    const simd::SoaBlockView view(dataset);
    std::vector<double> query(dataset.point(0).begin(),
                              dataset.point(0).end());
    std::vector<double> d2(view.size());
    // Scale the inner loop so one timed pass does ~16M point-distances.
    const int inner = static_cast<int>(16'000'000 / points) + 1;
    const double total = static_cast<double>(points) * inner;

    // eps_sq near the median distance keeps the count branch honest.
    view.SquaredDistances(query, 0, view.size(), d2.data());
    std::vector<double> sorted = d2;
    std::sort(sorted.begin(), sorted.end());
    const double eps_sq = sorted[sorted.size() / 2];

    struct Timing {
      double scalar = 0.0;
      double simd = 0.0;
    };
    Timing dist, count;
    {
      simd::ForceBackend(simd::Backend::kScalar);
      dist.scalar = BestSeconds(reps, &checksum, [&] {
        return DistancePass(view, query, d2.data(), inner);
      });
      count.scalar = BestSeconds(reps, &checksum, [&] {
        return CountPass(view, query, eps_sq, inner);
      });
    }
    if (have_avx2) {
      simd::ForceBackend(simd::Backend::kAvx2);
      dist.simd = BestSeconds(reps, &checksum, [&] {
        return DistancePass(view, query, d2.data(), inner);
      });
      count.simd = BestSeconds(reps, &checksum, [&] {
        return CountPass(view, query, eps_sq, inner);
      });
    }

    const auto add = [&](const char* name, const Timing& t) {
      PrimitiveRun run;
      run.primitive = name;
      run.dim = dim;
      run.scalar_mpts = total / t.scalar / 1e6;
      run.simd_mpts = t.simd > 0.0 ? total / t.simd / 1e6 : 0.0;
      run.speedup = t.simd > 0.0 ? t.scalar / t.simd : 1.0;
      prim_table.AddRow({run.primitive, std::to_string(dim),
                         bench::FormatDouble(run.scalar_mpts, 1),
                         bench::FormatDouble(run.simd_mpts, 1),
                         bench::FormatDouble(run.speedup, 2)});
      primitives.push_back(run);
    };
    add("squared_distance", dist);
    add("count_within", count);
  }
  prim_table.Print();

  // --- End-to-end DBSVEC on the Fig. 6 workload --------------------------
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 100'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  DbsvecParams params;
  params.epsilon = args.GetDouble("eps", 5'000.0);
  params.min_pts = static_cast<int>(args.GetInt("minpts", 100));

  std::printf("generating random-walk workload: n=%d dim=%d seed=%llu\n",
              data.n, data.dim, static_cast<unsigned long long>(data.seed));
  const Dataset dataset = GenerateRandomWalk(data);

  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  bool labels_match = true;
  std::vector<int32_t> scalar_labels;
  bench::Table e2e_table({"backend", "seconds", "speedup", "match"});
  {
    simd::ForceBackend(simd::Backend::kScalar);
    Clustering result;
    Stopwatch timer;
    const Status status = RunDbsvec(dataset, params, &result);
    scalar_seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "dbsvec(scalar): %s\n", status.ToString().c_str());
      return 1;
    }
    scalar_labels = std::move(result.labels);
    e2e_table.AddRow({"scalar", bench::FormatSeconds(scalar_seconds), "1.00",
                      "yes"});
  }
  if (have_avx2) {
    simd::ForceBackend(simd::Backend::kAvx2);
    Clustering result;
    Stopwatch timer;
    const Status status = RunDbsvec(dataset, params, &result);
    simd_seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "dbsvec(avx2): %s\n", status.ToString().c_str());
      return 1;
    }
    labels_match = result.labels == scalar_labels;
    e2e_table.AddRow({"avx2", bench::FormatSeconds(simd_seconds),
                      bench::FormatDouble(scalar_seconds / simd_seconds, 2),
                      labels_match ? "yes" : "NO"});
  }
  e2e_table.Print();

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"avx2_available\": " << (have_avx2 ? "true" : "false") << ",\n"
       << "  \"primitive_points\": " << points << ",\n"
       << "  \"primitives\": [\n";
  for (size_t i = 0; i < primitives.size(); ++i) {
    const PrimitiveRun& run = primitives[i];
    json << "    {\"primitive\": \"" << run.primitive
         << "\", \"dim\": " << run.dim << ", \"scalar_mpts\": "
         << run.scalar_mpts << ", \"simd_mpts\": " << run.simd_mpts
         << ", \"speedup\": " << run.speedup << "}"
         << (i + 1 < primitives.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"end_to_end\": {\"workload\": {\"generator\": \"random_walk\", "
       << "\"n\": " << data.n << ", \"dim\": " << data.dim
       << ", \"eps\": " << params.epsilon << ", \"minpts\": "
       << params.min_pts << ", \"seed\": " << data.seed << "},\n"
       << "    \"scalar_seconds\": " << scalar_seconds
       << ", \"simd_seconds\": " << simd_seconds << ", \"speedup\": "
       << (simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 1.0)
       << ", \"labels_match\": " << (labels_match ? "true" : "false")
       << "}\n}\n";
  std::printf("[json written to %s] (checksum %.3g)\n", json_path.c_str(),
              checksum);

  if (!labels_match) {
    std::fprintf(stderr,
                 "FAIL: labels diverged between scalar and AVX2 backends — "
                 "the determinism contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
