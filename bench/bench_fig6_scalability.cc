// Reproduces Fig. 6 of the paper: running time vs dataset cardinality
// (Fig. 6a) and vs dimensionality (Fig. 6b) on random-walk synthetic data,
// for R-DBSCAN, kd-DBSCAN, DBSVEC, rho-approximate, DBSCAN-LSH, NQ-DBSCAN
// and k-MEANS.
//
// Paper setup: n up to 10M, d up to 24, MinPts=100, eps=5000 on
// [0,1e5]-normalized coordinates, 10-hour cutoff. This laptop-scale run
// sweeps smaller sizes (ratios preserved) with a per-cell time budget;
// exceeding it marks the competitor DNF for larger cells, mirroring the
// paper's cutoff. The reproduction target is the ordering and the growth
// shapes, not absolute seconds.
//
// Flags: --sweep=n|d|both  --sizes=10000,20000,50000,100000
//        --dims=2,4,8,16,24 --fixed_n=20000 --fixed_dim=8
//        --minpts=100 --eps=5000 --budget=20 --csv=<path>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/nq_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"

namespace dbsvec {
namespace {

std::vector<int64_t> ParseList(const std::string& spec) {
  std::vector<int64_t> values;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    values.push_back(std::atoll(token.c_str()));
  }
  return values;
}

/// Builds the paper's competitor set for one dataset.
std::vector<bench::Competitor> MakeCompetitors(const Dataset& data,
                                               double epsilon, int min_pts) {
  std::vector<bench::Competitor> competitors;
  competitors.push_back(
      {"R-DBSCAN", [&data, epsilon, min_pts](Clustering* out) {
         DbscanParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         params.index = IndexType::kRStarTree;
         return RunDbscan(data, params, out);
       }});
  competitors.push_back(
      {"kd-DBSCAN", [&data, epsilon, min_pts](Clustering* out) {
         DbscanParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         params.index = IndexType::kKdTree;
         return RunDbscan(data, params, out);
       }});
  competitors.push_back(
      {"DBSVEC", [&data, epsilon, min_pts](Clustering* out) {
         DbsvecParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         return RunDbsvec(data, params, out);
       }});
  competitors.push_back(
      {"rho-Appr", [&data, epsilon, min_pts](Clustering* out) {
         RhoApproxParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         return RunRhoApproxDbscan(data, params, out);
       }});
  competitors.push_back(
      {"DBSCAN-LSH", [&data, epsilon, min_pts](Clustering* out) {
         LshDbscanParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         return RunLshDbscan(data, params, out);
       }});
  competitors.push_back(
      {"NQ-DBSCAN", [&data, epsilon, min_pts](Clustering* out) {
         NqDbscanParams params;
         params.epsilon = epsilon;
         params.min_pts = min_pts;
         return RunNqDbscan(data, params, out);
       }});
  competitors.push_back({"k-MEANS", [&data](Clustering* out) {
                           KMeansParams params;
                           params.k = 10;
                           return RunKMeans(data, params, out);
                         }});
  return competitors;
}

void SweepCardinality(const bench::Args& args) {
  const auto sizes =
      ParseList(args.GetString("sizes", "10000,20000,50000,100000"));
  const int dim = static_cast<int>(args.GetInt("fixed_dim", 8));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const double epsilon = args.GetDouble("eps", 5000.0);
  const double budget = args.GetDouble("budget", 20.0);

  std::printf("Fig. 6a: running time (s) vs cardinality n "
              "(d=%d, MinPts=%d, eps=%.0f, budget=%.0fs/cell)\n\n",
              dim, min_pts, epsilon, budget);

  std::vector<std::string> header = {"algorithm"};
  for (const int64_t n : sizes) {
    header.push_back("n=" + std::to_string(n));
  }
  bench::Table table(header);

  // Competitor dead-flags persist across the sweep.
  std::vector<std::string> names = {"R-DBSCAN",  "kd-DBSCAN", "DBSVEC",
                                    "rho-Appr",  "DBSCAN-LSH", "NQ-DBSCAN",
                                    "k-MEANS"};
  std::vector<std::vector<std::string>> cells(names.size());
  std::vector<bool> dead(names.size(), false);

  for (const int64_t n : sizes) {
    RandomWalkParams gen;
    gen.n = static_cast<PointIndex>(n);
    gen.dim = dim;
    gen.num_clusters = 10;
    gen.seed = 23;
    const Dataset data = GenerateRandomWalk(gen);
    auto competitors = MakeCompetitors(data, epsilon, min_pts);
    for (size_t a = 0; a < competitors.size(); ++a) {
      competitors[a].dead = dead[a];
      Clustering out;
      cells[a].push_back(bench::RunCell(&competitors[a], budget, &out));
      dead[a] = competitors[a].dead;
    }
  }
  for (size_t a = 0; a < names.size(); ++a) {
    std::vector<std::string> row = {names[a]};
    row.insert(row.end(), cells[a].begin(), cells[a].end());
    table.AddRow(row);
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape (Fig. 6a): R-/kd-DBSCAN grow super-linearly and\n"
      "hit the budget first; DBSVEC grows ~linearly and beats the other\n"
      "approximations.\n\n");
}

void SweepDimensionality(const bench::Args& args) {
  const auto dims = ParseList(args.GetString("dims", "2,4,8,16,24"));
  const PointIndex n =
      static_cast<PointIndex>(args.GetInt("fixed_n", 20000));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const double epsilon = args.GetDouble("eps", 5000.0);
  const double budget = args.GetDouble("budget", 20.0);

  std::printf("Fig. 6b: running time (s) vs dimensionality d "
              "(n=%d, MinPts=%d, eps=%.0f, budget=%.0fs/cell)\n\n",
              n, min_pts, epsilon, budget);

  std::vector<std::string> header = {"algorithm"};
  for (const int64_t d : dims) {
    header.push_back("d=" + std::to_string(d));
  }
  bench::Table table(header);

  std::vector<std::string> names = {"R-DBSCAN",  "kd-DBSCAN", "DBSVEC",
                                    "rho-Appr",  "DBSCAN-LSH", "NQ-DBSCAN",
                                    "k-MEANS"};
  std::vector<std::vector<std::string>> cells(names.size());
  std::vector<bool> dead(names.size(), false);

  for (const int64_t d : dims) {
    RandomWalkParams gen;
    gen.n = n;
    gen.dim = static_cast<int>(d);
    gen.num_clusters = 10;
    gen.seed = 29;
    const Dataset data = GenerateRandomWalk(gen);
    auto competitors = MakeCompetitors(data, epsilon, min_pts);
    for (size_t a = 0; a < competitors.size(); ++a) {
      competitors[a].dead = dead[a];
      Clustering out;
      cells[a].push_back(bench::RunCell(&competitors[a], budget, &out));
      dead[a] = competitors[a].dead;
    }
  }
  for (size_t a = 0; a < names.size(); ++a) {
    std::vector<std::string> row = {names[a]};
    row.insert(row.end(), cells[a].begin(), cells[a].end());
    table.AddRow(row);
  }
  table.Print();
  const std::string csv = args.GetString("csv", "");
  table.WriteCsv(csv.empty() ? "" : csv + ".dims.csv");
  std::printf(
      "\nExpected shape (Fig. 6b): rho-Appr deteriorates rapidly with d\n"
      "(grid blow-up; the paper reports OOM at d=24); DBSVEC grows\n"
      "~linearly in d.\n");
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::string sweep = args.GetString("sweep", "both");
  if (sweep == "n" || sweep == "both") {
    SweepCardinality(args);
  }
  if (sweep == "d" || sweep == "both") {
    SweepDimensionality(args);
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
