// Serving-path harness: end-to-end latency and throughput of the epoll
// HTTP server on /v1/assign, swept over worker-thread count, concurrent
// client connections, and batch size, for both JSON and binary payloads.
// Everything runs in-process over loopback: the server under test is the
// production Server, the clients are the blocking keep-alive HttpClient.
//
// A second sweep measures multi-tenant isolation: one registry server
// hosting 1 / 4 / 16 named models takes mixed traffic (JSON, binary, and
// chunked streaming assign) round-robined across the tenants, and the
// harness reports per-tenant QPS and tail latency so a noisy-neighbour
// regression shows up as p99 skew between tenants of the same cell.
//
// Labels must be bit-identical to the offline engine for every cell — the
// harness fails otherwise, so a throughput number can never be quoted for
// a server that returns wrong answers.
//
// Flags: --n --dim --clusters --eps --minpts --seed --requests
//        --tenant-requests --out
// Writes BENCH_serve.json ("cells" + "tenant_cells") next to the text
// tables.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "common/dataset.h"
#include "common/stopwatch.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "model/dbsvec_model.h"
#include "registry/model_registry.h"
#include "serve/assignment_engine.h"
#include "server/http_client.h"
#include "server/server.h"

namespace dbsvec {
namespace {

struct Cell {
  int workers = 0;
  int clients = 0;
  int batch = 0;
  std::string encoding;
  double qps = 0.0;          // Requests per second across all clients.
  double points_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct TenantCell {
  int tenants = 0;
  std::string encoding;
  std::string tenant;
  double qps = 0.0;
  double points_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* sorted_us, double q) {
  if (sorted_us->empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us->size() - 1) + 0.5);
  return (*sorted_us)[std::min(idx, sorted_us->size() - 1)];
}

/// Builds the request body for points [offset, offset + batch) of `queries`
/// in the wire format documented in server/payload.h.
std::string MakeBody(const Dataset& queries, int offset, int batch,
                     bool binary) {
  const int dim = queries.dim();
  std::string body;
  if (binary) {
    const uint32_t count = static_cast<uint32_t>(batch);
    const uint32_t udim = static_cast<uint32_t>(dim);
    body.append(reinterpret_cast<const char*>(&count), 4);
    body.append(reinterpret_cast<const char*>(&udim), 4);
    for (int i = 0; i < batch; ++i) {
      const auto point = queries.point((offset + i) % queries.size());
      body.append(reinterpret_cast<const char*>(point.data()), dim * 8);
    }
    return body;
  }
  body = "{\"points\":[";
  char buffer[64];
  for (int i = 0; i < batch; ++i) {
    body += i > 0 ? ",[" : "[";
    const auto point = queries.point((offset + i) % queries.size());
    for (int d = 0; d < dim; ++d) {
      std::snprintf(buffer, sizeof(buffer), "%s%.17g", d > 0 ? "," : "",
                    point[d]);
      body += buffer;
    }
    body += "]";
  }
  body += "]}";
  return body;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  GaussianBlobsParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 20'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.num_clusters = static_cast<int>(args.GetInt("clusters", 6));
  data.noise_fraction = 0.05;
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 29));
  DbsvecParams params;
  params.epsilon = args.GetDouble("eps", 9.0);
  params.min_pts = static_cast<int>(args.GetInt("minpts", 30));
  const int requests_per_client =
      static_cast<int>(args.GetInt("requests", 400));
  const std::string json_path = args.GetString("out", "BENCH_serve.json");

  std::printf("fitting model: n=%d dim=%d clusters=%d eps=%g minpts=%d\n",
              data.n, data.dim, data.num_clusters, params.epsilon,
              params.min_pts);
  const Dataset train = GenerateGaussianBlobs(data);
  Clustering result;
  DbsvecModel model;
  Status status = RunDbsvec(train, params, &result, &model);
  if (!status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string model_path =
      (std::filesystem::temp_directory_path() /
       ("bench_serve_" + std::to_string(::getpid()) + ".dbsvm"))
          .string();
  status = SaveModel(model, model_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 1;
  }

  // Query stream drawn from the training distribution plus the reference
  // answer computed once against the offline engine.
  GaussianBlobsParams query_params = data;
  query_params.n = 4'096;
  const Dataset queries = GenerateGaussianBlobs(query_params);
  std::vector<int32_t> expected;
  {
    std::unique_ptr<AssignmentEngine> engine;
    status = AssignmentEngine::Load(model_path, {}, &engine);
    if (!status.ok()) {
      std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
      return 1;
    }
    status = engine->AssignBatch(queries, &expected);
    if (!status.ok()) {
      std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::vector<Cell> cells;
  bench::Table table({"workers", "clients", "batch", "encoding", "qps",
                      "Mpt/s", "p50 us", "p99 us", "max us"});
  bool all_match = true;
  for (const int workers : {1, 2, 4}) {
    server::ServerOptions options;
    options.num_workers = workers;
    options.max_inflight = 256;
    options.port = 0;
    std::unique_ptr<AssignmentEngine> engine;
    status = AssignmentEngine::Load(model_path, options.engine_options,
                                    &engine);
    if (!status.ok()) {
      std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
      return 1;
    }
    std::unique_ptr<server::Server> server;
    status = server::Server::Start(
        std::shared_ptr<AssignmentEngine>(std::move(engine)), options,
        &server);
    if (!status.ok()) {
      std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
      return 1;
    }

    for (const int clients : {1, 4, 8}) {
      for (const int batch : {1, 64, 512}) {
        for (const bool binary : {false, true}) {
          std::vector<std::vector<double>> latencies(clients);
          std::atomic<int> mismatches{0};
          std::atomic<int> failures{0};
          Stopwatch wall;
          std::vector<std::thread> threads;
          for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
              server::HttpClient client;
              if (!client.Connect("127.0.0.1", server->port()).ok()) {
                failures.fetch_add(1);
                return;
              }
              const char* content_type = binary
                                             ? "application/octet-stream"
                                             : "application/json";
              latencies[c].reserve(requests_per_client);
              for (int r = 0; r < requests_per_client; ++r) {
                const int offset = (c * requests_per_client + r) * batch;
                const std::string body =
                    MakeBody(queries, offset, batch, binary);
                server::HttpResponse response;
                Stopwatch timer;
                const Status rt = client.Roundtrip(
                    "POST", "/v1/assign", content_type, body, {}, &response);
                const double us = timer.ElapsedSeconds() * 1e6;
                if (!rt.ok() || response.status_code != 200) {
                  failures.fetch_add(1);
                  return;
                }
                latencies[c].push_back(us);
                // Verify the batch against the offline reference labels.
                if (binary) {
                  for (int i = 0; i < batch; ++i) {
                    int32_t label = 0;
                    std::memcpy(&label, response.body.data() + 4 + i * 4, 4);
                    const int32_t want =
                        expected[(offset + i) % queries.size()];
                    if (label != want) {
                      mismatches.fetch_add(1);
                      return;
                    }
                  }
                }
              }
            });
          }
          for (auto& thread : threads) {
            thread.join();
          }
          const double seconds = wall.ElapsedSeconds();
          if (failures.load() > 0 || mismatches.load() > 0) {
            std::fprintf(stderr,
                         "FAIL: workers=%d clients=%d batch=%d %s: "
                         "%d failures, %d label mismatches\n",
                         workers, clients, batch,
                         binary ? "binary" : "json", failures.load(),
                         mismatches.load());
            all_match = false;
            continue;
          }
          std::vector<double> merged;
          for (const auto& per_client : latencies) {
            merged.insert(merged.end(), per_client.begin(),
                          per_client.end());
          }
          std::sort(merged.begin(), merged.end());
          Cell cell;
          cell.workers = workers;
          cell.clients = clients;
          cell.batch = batch;
          cell.encoding = binary ? "binary" : "json";
          cell.qps = static_cast<double>(merged.size()) / seconds;
          cell.points_per_sec = cell.qps * batch;
          cell.p50_us = Percentile(&merged, 0.50);
          cell.p99_us = Percentile(&merged, 0.99);
          cell.max_us = merged.empty() ? 0.0 : merged.back();
          table.AddRow({std::to_string(cell.workers),
                        std::to_string(cell.clients),
                        std::to_string(cell.batch), cell.encoding,
                        bench::FormatDouble(cell.qps, 0),
                        bench::FormatDouble(cell.points_per_sec / 1e6, 3),
                        bench::FormatDouble(cell.p50_us, 0),
                        bench::FormatDouble(cell.p99_us, 0),
                        bench::FormatDouble(cell.max_us, 0)});
          cells.push_back(cell);
        }
      }
    }
    server->Shutdown();
  }
  table.Print();

  // -------------------------------------------------------------------
  // Multi-tenant sweep: one registry server hosting `tenants` copies of
  // the model, 4 clients round-robining mixed traffic across them. The
  // per-tenant rows of one cell share a wall-clock window, so skew
  // between them is contention, not load imbalance.
  const int tenant_requests =
      static_cast<int>(args.GetInt("tenant_requests", 200));
  constexpr int kTenantClients = 4;
  constexpr int kTenantBatch = 64;
  constexpr int kStreamFrames = 4;
  static_assert(kTenantBatch % kStreamFrames == 0,
                "streaming frames must tile the batch");
  std::vector<TenantCell> tenant_cells;
  bench::Table tenant_table({"tenants", "encoding", "tenant", "qps",
                             "Mpt/s", "p50 us", "p99 us"});
  const std::vector<std::string> encodings = {"json", "binary", "stream"};
  for (const int tenants : {1, 4, 16}) {
    const std::string data_dir =
        (std::filesystem::temp_directory_path() /
         ("bench_serve_registry_" + std::to_string(::getpid()) + "_" +
          std::to_string(tenants)))
            .string();
    server::ServerOptions options;
    options.num_workers = 4;
    options.max_inflight = 256;
    options.port = 0;
    options.data_dir = data_dir;
    options.max_models = tenants + 1;
    std::unique_ptr<server::Server> server;
    status = server::Server::Start(nullptr, options, &server);
    if (!status.ok()) {
      std::fprintf(stderr, "registry start: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::vector<std::string> names;
    for (int t = 0; t < tenants; ++t) {
      names.push_back("tenant_" + std::to_string(t));
      status = server->registry().CreateFromFile(names.back(), model_path);
      if (!status.ok()) {
        std::fprintf(stderr, "registry create %s: %s\n",
                     names.back().c_str(), status.ToString().c_str());
        return 1;
      }
    }
    for (const std::string& encoding : encodings) {
      // latencies[client][tenant]: lock-free during the run, merged after.
      std::vector<std::vector<std::vector<double>>> latencies(
          kTenantClients,
          std::vector<std::vector<double>>(tenants));
      std::atomic<int> mismatches{0};
      std::atomic<int> failures{0};
      Stopwatch wall;
      std::vector<std::thread> threads;
      for (int c = 0; c < kTenantClients; ++c) {
        threads.emplace_back([&, c] {
          server::HttpClient client;
          if (!client.Connect("127.0.0.1", server->port()).ok()) {
            failures.fetch_add(1);
            return;
          }
          for (int r = 0; r < tenant_requests; ++r) {
            const int tenant = (c + r) % tenants;
            const std::string target =
                "/v1/models/" + names[tenant] + "/assign";
            const int offset = (c * tenant_requests + r) * kTenantBatch;
            Stopwatch timer;
            std::vector<int32_t> labels;
            if (encoding == "stream") {
              std::vector<std::string> frames;
              const int per_frame = kTenantBatch / kStreamFrames;
              for (int f = 0; f < kStreamFrames; ++f) {
                frames.push_back(MakeBody(queries, offset + f * per_frame,
                                          per_frame, /*binary=*/true));
              }
              std::vector<std::string> chunks;
              server::HttpResponse response;
              const Status rt = client.StreamingRoundtrip(target, frames,
                                                          &chunks,
                                                          &response);
              if (!rt.ok() || response.status_code != 200 ||
                  chunks.size() != frames.size()) {
                failures.fetch_add(1);
                return;
              }
              for (const std::string& chunk : chunks) {
                uint32_t count = 0;
                if (chunk.size() < 4) {
                  failures.fetch_add(1);
                  return;
                }
                std::memcpy(&count, chunk.data(), 4);
                for (uint32_t i = 0; i < count; ++i) {
                  int32_t label = 0;
                  std::memcpy(&label, chunk.data() + 4 + i * 4, 4);
                  labels.push_back(label);
                }
              }
            } else {
              const bool binary = encoding == "binary";
              const std::string body =
                  MakeBody(queries, offset, kTenantBatch, binary);
              server::HttpResponse response;
              const Status rt = client.Roundtrip(
                  "POST", target,
                  binary ? "application/octet-stream" : "application/json",
                  body, {}, &response);
              if (!rt.ok() || response.status_code != 200) {
                failures.fetch_add(1);
                return;
              }
              if (binary) {
                for (int i = 0; i < kTenantBatch; ++i) {
                  int32_t label = 0;
                  std::memcpy(&label,
                              response.body.data() + 4 + i * 4, 4);
                  labels.push_back(label);
                }
              }
            }
            const double us = timer.ElapsedSeconds() * 1e6;
            // Every tenant serves the same artifact, so every tenant must
            // agree with the one offline reference.
            for (size_t i = 0; i < labels.size(); ++i) {
              const int32_t want =
                  expected[(offset + static_cast<int>(i)) %
                           queries.size()];
              if (labels[i] != want) {
                mismatches.fetch_add(1);
                return;
              }
            }
            latencies[c][tenant].push_back(us);
          }
        });
      }
      for (auto& thread : threads) {
        thread.join();
      }
      const double seconds = wall.ElapsedSeconds();
      if (failures.load() > 0 || mismatches.load() > 0) {
        std::fprintf(stderr,
                     "FAIL: tenants=%d encoding=%s: %d failures, "
                     "%d label mismatches\n",
                     tenants, encoding.c_str(), failures.load(),
                     mismatches.load());
        all_match = false;
        continue;
      }
      for (int t = 0; t < tenants; ++t) {
        std::vector<double> merged;
        for (int c = 0; c < kTenantClients; ++c) {
          merged.insert(merged.end(), latencies[c][t].begin(),
                        latencies[c][t].end());
        }
        std::sort(merged.begin(), merged.end());
        TenantCell cell;
        cell.tenants = tenants;
        cell.encoding = encoding;
        cell.tenant = names[t];
        cell.qps = static_cast<double>(merged.size()) / seconds;
        cell.points_per_sec = cell.qps * kTenantBatch;
        cell.p50_us = Percentile(&merged, 0.50);
        cell.p99_us = Percentile(&merged, 0.99);
        tenant_cells.push_back(cell);
        tenant_table.AddRow({std::to_string(cell.tenants), cell.encoding,
                             cell.tenant, bench::FormatDouble(cell.qps, 0),
                             bench::FormatDouble(cell.points_per_sec / 1e6,
                                                 3),
                             bench::FormatDouble(cell.p50_us, 0),
                             bench::FormatDouble(cell.p99_us, 0)});
      }
    }
    server->Shutdown();
    server.reset();
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  }
  tenant_table.Print();

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"generator\": \"gaussian_blobs\", \"n\": "
       << data.n << ", \"dim\": " << data.dim << ", \"clusters\": "
       << data.num_clusters << ", \"eps\": " << params.epsilon
       << ", \"minpts\": " << params.min_pts << ", \"seed\": " << data.seed
       << "},\n"
       << "  \"requests_per_client\": " << requests_per_client << ",\n"
       << "  \"all_labels_match\": " << (all_match ? "true" : "false")
       << ",\n"
       << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"workers\": " << cell.workers << ", \"clients\": "
         << cell.clients << ", \"batch\": " << cell.batch
         << ", \"encoding\": \"" << cell.encoding << "\", \"qps\": "
         << cell.qps << ", \"points_per_sec\": " << cell.points_per_sec
         << ", \"p50_us\": " << cell.p50_us << ", \"p99_us\": "
         << cell.p99_us << ", \"max_us\": " << cell.max_us << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"tenant_requests\": " << tenant_requests << ",\n"
       << "  \"tenant_cells\": [\n";
  for (size_t i = 0; i < tenant_cells.size(); ++i) {
    const TenantCell& cell = tenant_cells[i];
    json << "    {\"tenants\": " << cell.tenants << ", \"encoding\": \""
         << cell.encoding << "\", \"tenant\": \"" << cell.tenant
         << "\", \"qps\": " << cell.qps << ", \"points_per_sec\": "
         << cell.points_per_sec << ", \"p50_us\": " << cell.p50_us
         << ", \"p99_us\": " << cell.p99_us << "}"
         << (i + 1 < tenant_cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  std::error_code ec;
  std::filesystem::remove(model_path, ec);
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: at least one cell failed or returned labels that "
                 "diverge from the offline engine\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
