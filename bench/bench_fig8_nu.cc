// Reproduces Fig. 8 of the paper: effect of the penalty factor nu on
// DBSVEC's running time (synthetic 8-d data and real-data surrogates).
//
// Paper's result: running time increases with nu, because a larger nu
// admits more support vectors and hence more range queries; nu* sits at
// the accuracy/efficiency sweet spot. This harness also reports the recall
// vs exact DBSCAN and the support-vector counts at each nu, making the
// trade-off visible.
//
// Flags: --nu_list=0.01,0.02,0.05,0.1,0.2,0.4 --n=20000 --minpts=100
//        --eps=5000 --csv=<path>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/recall.h"

namespace dbsvec {
namespace {

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 20000));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const double epsilon = args.GetDouble("eps", 5000.0);

  std::vector<double> nu_list;
  std::stringstream ss(
      args.GetString("nu_list", "0.01,0.02,0.05,0.1,0.2,0.4"));
  std::string token;
  while (std::getline(ss, token, ',')) {
    nu_list.push_back(std::atof(token.c_str()));
  }

  RandomWalkParams gen;
  gen.n = n;
  gen.dim = 8;
  gen.num_clusters = 10;
  gen.seed = 37;
  const Dataset data = GenerateRandomWalk(gen);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  if (!RunDbscan(data, dbscan_params, &reference).ok()) {
    return 1;
  }

  std::printf("Fig. 8 reproduction: DBSVEC running time vs penalty factor "
              "nu (n=%d, d=8, MinPts=%d, eps=%.0f)\n\n",
              n, min_pts, epsilon);
  bench::Table table({"nu", "time_s", "recall_vs_dbscan", "support_vectors",
                      "range_queries", "svdd_trainings"});

  // The adaptive nu* policy first, as the reference row.
  {
    DbsvecParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    Clustering out;
    if (RunDbsvec(data, params, &out).ok()) {
      table.AddRow({"nu* (auto)",
                    bench::FormatSeconds(out.stats.elapsed_seconds),
                    bench::FormatDouble(
                        PairRecall(reference.labels, out.labels)),
                    std::to_string(out.stats.num_support_vectors),
                    std::to_string(out.stats.num_range_queries),
                    std::to_string(out.stats.num_svdd_trainings)});
    }
  }
  for (const double nu : nu_list) {
    DbsvecParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    params.nu_mode = NuMode::kFixed;
    params.fixed_nu = nu;
    Clustering out;
    if (!RunDbsvec(data, params, &out).ok()) {
      continue;
    }
    table.AddRow({bench::FormatDouble(nu, 3),
                  bench::FormatSeconds(out.stats.elapsed_seconds),
                  bench::FormatDouble(
                      PairRecall(reference.labels, out.labels)),
                  std::to_string(out.stats.num_support_vectors),
                  std::to_string(out.stats.num_range_queries),
                  std::to_string(out.stats.num_svdd_trainings)});
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape (Fig. 8): running time and support-vector count\n"
      "grow with nu; recall is high throughout and DBSVEC approaches\n"
      "DBSCAN behaviour as nu -> 1.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
