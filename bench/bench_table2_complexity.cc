// Validates Table II of the paper empirically: DBSCAN and NQ-DBSCAN scale
// as O(n^2) in distance computations while DBSVEC's range-query count
// stays O(theta*n) with theta << n.
//
// For each cardinality in the sweep the harness reports range queries,
// distance computations, and the DBSVEC theta = (range queries)/1 derived
// from Sec. III-D: theta = s + 1 + k + m + MinPts*l. The growth ratios
// across rows expose the quadratic-vs-linear gap.
//
// Flags: --sizes=2000,5000,10000,20000 --dim=4 --minpts=50 --csv=<path>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/nq_dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"

namespace dbsvec {
namespace {

std::vector<PointIndex> ParseSizes(const std::string& spec) {
  std::vector<PointIndex> sizes;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    sizes.push_back(static_cast<PointIndex>(std::atoll(token.c_str())));
  }
  return sizes;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const auto sizes =
      ParseSizes(args.GetString("sizes", "2000,5000,10000,20000"));
  const int dim = static_cast<int>(args.GetInt("dim", 4));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 50));
  const double epsilon = args.GetDouble("eps", 5000.0);

  std::printf("Table II validation: operation counts vs cardinality "
              "(d=%d, MinPts=%d, eps=%.0f)\n\n",
              dim, min_pts, epsilon);
  bench::Table table({"n", "algorithm", "range_queries", "distance_comps",
                      "time_s", "theta=rq/1"});

  for (const PointIndex n : sizes) {
    RandomWalkParams gen;
    gen.n = n;
    gen.dim = dim;
    gen.num_clusters = 10;
    gen.seed = 17;
    const Dataset data = GenerateRandomWalk(gen);

    {
      DbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = min_pts;
      params.index = IndexType::kBruteForce;  // Counts the textbook O(n^2).
      Clustering out;
      if (RunDbscan(data, params, &out).ok()) {
        table.AddRow({std::to_string(n), "DBSCAN",
                      std::to_string(out.stats.num_range_queries),
                      std::to_string(out.stats.num_distance_computations),
                      bench::FormatSeconds(out.stats.elapsed_seconds), "-"});
      }
    }
    {
      NqDbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = min_pts;
      Clustering out;
      if (RunNqDbscan(data, params, &out).ok()) {
        table.AddRow({std::to_string(n), "NQ-DBSCAN",
                      std::to_string(out.stats.num_range_queries),
                      std::to_string(out.stats.num_distance_computations),
                      bench::FormatSeconds(out.stats.elapsed_seconds), "-"});
      }
    }
    {
      DbsvecParams params;
      params.epsilon = epsilon;
      params.min_pts = min_pts;
      params.index = IndexType::kBruteForce;  // The paper's cost model.
      Clustering out;
      if (RunDbsvec(data, params, &out).ok()) {
        table.AddRow({std::to_string(n), "DBSVEC",
                      std::to_string(out.stats.num_range_queries),
                      std::to_string(out.stats.num_distance_computations),
                      bench::FormatSeconds(out.stats.elapsed_seconds),
                      std::to_string(out.stats.num_range_queries)});
      }
    }
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape (Table II): DBSCAN and NQ-DBSCAN distance\n"
      "computations grow ~quadratically in n; DBSVEC's range-query count\n"
      "theta stays a small, slowly-growing fraction of n.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
