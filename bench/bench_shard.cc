// Sharded-execution harness: runs the DBSVEC fit on the Fig. 6
// random-walk workload across a (shards x threads x engine) grid, reports
// wall-clock speedup over the unsharded sequential run of the same engine,
// and verifies labels are bit-identical to the shards=1/threads=1 baseline
// at every grid point (the sharded determinism contract: the merged
// range-query result depends only on the point set). The harness fails on
// any divergence.
//
// Flags: --n --dim --eps --minpts --seed --shards=1,2,4 --threads=1,2,4
//        --engines=brute,kd,rstar,grid --out
// Writes BENCH_shard.json next to the text table.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "exec/topology.h"
#include "index/neighbor_index.h"

namespace dbsvec {
namespace {

struct Run {
  std::string engine;
  int shards = 0;  // 0 = unsharded legacy path.
  int threads = 1;
  double seconds = 0.0;
  double speedup_vs_unsharded_seq = 1.0;
  bool labels_match_baseline = true;
};

std::vector<int> ParseIntList(const std::string& spec, int min_value) {
  std::vector<int> values;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const int value = std::atoi(spec.substr(start, comma - start).c_str());
    if (value >= min_value) {
      values.push_back(value);
    }
    start = comma + 1;
  }
  return values;
}

bool ParseEngines(const std::string& spec, std::vector<IndexType>* engines) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string name = spec.substr(start, comma - start);
    if (name == "brute") {
      engines->push_back(IndexType::kBruteForce);
    } else if (name == "kd") {
      engines->push_back(IndexType::kKdTree);
    } else if (name == "rstar") {
      engines->push_back(IndexType::kRStarTree);
    } else if (name == "grid") {
      engines->push_back(IndexType::kGrid);
    } else {
      std::fprintf(stderr, "unknown engine \"%s\" (brute|kd|rstar|grid)\n",
                   name.c_str());
      return false;
    }
    start = comma + 1;
  }
  return !engines->empty();
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 40'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  const double epsilon = args.GetDouble("eps", 5'000.0);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const std::string json_path = args.GetString("out", "BENCH_shard.json");
  const unsigned hardware = std::thread::hardware_concurrency();

  std::vector<int> shard_counts =
      ParseIntList(args.GetString("shards", "1,2,4"), 1);
  if (shard_counts.empty() || shard_counts.front() != 1) {
    shard_counts.insert(shard_counts.begin(), 1);  // Label baseline.
  }
  std::vector<int> thread_counts =
      ParseIntList(args.GetString("threads", "1,2,4"), 1);
  if (thread_counts.empty() || thread_counts.front() != 1) {
    thread_counts.insert(thread_counts.begin(), 1);
  }
  std::vector<IndexType> engines;
  if (!ParseEngines(args.GetString("engines", "brute,kd,rstar,grid"),
                    &engines)) {
    return 1;
  }

  const exec::Topology topology = exec::DetectTopology();
  std::printf("topology: %zu NUMA node(s), %d cpu(s)%s\n",
              topology.nodes.size(), topology.num_cpus(),
              topology.from_sysfs ? " (sysfs)" : " (fallback)");
  std::printf("generating random-walk workload: n=%d dim=%d seed=%llu\n",
              data.n, data.dim, static_cast<unsigned long long>(data.seed));
  const Dataset dataset = GenerateRandomWalk(data);

  std::vector<Run> runs;
  bench::Table table(
      {"engine", "shards", "threads", "seconds", "speedup", "match"});
  bool all_match = true;

  for (const IndexType engine : engines) {
    DbsvecParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    params.index = engine;

    // Unsharded sequential run: the timing baseline every grid point's
    // speedup is measured against.
    double unsharded_seconds = 0.0;
    {
      SetGlobalThreads(1);
      params.shards = 0;
      Clustering result;
      Stopwatch timer;
      const Status status = RunDbsvec(dataset, params, &result);
      unsharded_seconds = timer.ElapsedSeconds();
      if (!status.ok()) {
        std::fprintf(stderr, "dbsvec(%s, unsharded): %s\n",
                     IndexTypeName(engine), status.ToString().c_str());
        return 1;
      }
      Run run;
      run.engine = IndexTypeName(engine);
      run.shards = 0;
      run.threads = 1;
      run.seconds = unsharded_seconds;
      table.AddRow({run.engine, "0", "1",
                    bench::FormatSeconds(unsharded_seconds), "1.00", "yes"});
      runs.push_back(run);
    }

    // Label baseline: shards=1, threads=1. Every sharded grid point must
    // reproduce these labels bit for bit. (The unsharded path is not the
    // label reference: its per-query neighbor *order* is traversal order,
    // not sorted order, so cluster numbering may legitimately differ.)
    std::vector<int32_t> baseline_labels;

    for (const int shards : shard_counts) {
      for (const int threads : thread_counts) {
        SetGlobalThreads(threads);
        params.shards = shards;
        Clustering result;
        Stopwatch timer;
        const Status status = RunDbsvec(dataset, params, &result);
        const double elapsed = timer.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "dbsvec(%s, shards=%d, threads=%d): %s\n",
                       IndexTypeName(engine), shards, threads,
                       status.ToString().c_str());
          return 1;
        }
        if (baseline_labels.empty()) {
          baseline_labels = result.labels;
        }
        Run run;
        run.engine = IndexTypeName(engine);
        run.shards = shards;
        run.threads = threads;
        run.seconds = elapsed;
        run.speedup_vs_unsharded_seq = unsharded_seconds / elapsed;
        run.labels_match_baseline = result.labels == baseline_labels;
        all_match = all_match && run.labels_match_baseline;
        table.AddRow({run.engine, std::to_string(shards),
                      std::to_string(threads), bench::FormatSeconds(elapsed),
                      bench::FormatDouble(run.speedup_vs_unsharded_seq, 2),
                      run.labels_match_baseline ? "yes" : "NO"});
        runs.push_back(run);
      }
    }
  }
  SetGlobalThreads(0);

  table.Print();

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"generator\": \"random_walk\", \"n\": " << data.n
       << ", \"dim\": " << data.dim << ", \"eps\": " << epsilon
       << ", \"minpts\": " << min_pts << ", \"seed\": " << data.seed
       << "},\n"
       << "  \"hardware_threads\": " << hardware << ",\n"
       << "  \"numa_nodes\": " << topology.nodes.size() << ",\n"
       << "  \"topology_from_sysfs\": "
       << (topology.from_sysfs ? "true" : "false") << ",\n"
       << "  \"deterministic\": " << (all_match ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"engine\": \"" << run.engine << "\", \"shards\": "
         << run.shards << ", \"threads\": " << run.threads
         << ", \"seconds\": " << run.seconds
         << ", \"speedup_vs_unsharded_seq\": "
         << run.speedup_vs_unsharded_seq << ", \"labels_match_baseline\": "
         << (run.labels_match_baseline ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: labels diverged from the shards=1/threads=1 "
                 "baseline — the sharded determinism contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
