// Assignment-serving throughput: fits a DBSVEC model on the random-walk
// workload, then measures AssignBatch points/sec at batch sizes 1, 64, and
// 4096, each at 1 thread and at the full pool, plus the model file size.
// Labels are checked bit-identical across every batch size and thread
// count (the serving side inherits the determinism contract).
//
// Flags: --n --dim --eps --minpts --seed --queries --out
// Writes BENCH_assign.json next to the text table.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"

namespace dbsvec {
namespace {

struct Run {
  int batch = 1;
  int threads = 1;
  double seconds = 0.0;
  double points_per_sec = 0.0;
};

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 100'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  const double epsilon = args.GetDouble("eps", 5'000.0);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const PointIndex num_queries =
      static_cast<PointIndex>(args.GetInt("queries", 50'000));
  const std::string json_path = args.GetString("out", "BENCH_assign.json");
  const int hardware =
      static_cast<int>(std::thread::hardware_concurrency());
  const int full_threads = hardware > 1 ? hardware : 2;

  std::printf("fitting DBSVEC model: n=%d dim=%d eps=%.4g minpts=%d\n",
              data.n, data.dim, epsilon, min_pts);
  const Dataset dataset = GenerateRandomWalk(data);
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering clustering;
  DbsvecModel model;
  Stopwatch fit_timer;
  if (const Status status = RunDbsvec(dataset, params, &clustering, &model);
      !status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  const double fit_seconds = fit_timer.ElapsedSeconds();

  const std::string model_path =
      (std::filesystem::temp_directory_path() / "bench_assign.dbsvm")
          .string();
  if (const Status status = SaveModel(model, model_path); !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 1;
  }
  const uintmax_t model_bytes = std::filesystem::file_size(model_path);
  std::printf("model: core_points=%d spheres=%zu file=%ju bytes "
              "(fit %.2fs)\n",
              model.core_points.size(), model.spheres.size(), model_bytes,
              fit_seconds);

  std::unique_ptr<AssignmentEngine> engine;
  if (const Status status = AssignmentEngine::Load(model_path, {}, &engine);
      !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  std::filesystem::remove(model_path);

  // Queries: 90% recycled training points (land inside clusters and reach
  // the index) and 10% from a fresh generator seed, whose clusters fall
  // elsewhere and exercise the prefilter reject path.
  Dataset queries(dataset.dim());
  queries.Reserve(num_queries);
  const PointIndex num_inside = num_queries - num_queries / 10;
  for (PointIndex i = 0; i < num_inside; ++i) {
    queries.Append(dataset.point(i % dataset.size()));
  }
  RandomWalkParams outside_params = data;
  outside_params.n = num_queries - num_inside;
  outside_params.seed = data.seed + 1;
  const Dataset outside = GenerateRandomWalk(outside_params);
  for (PointIndex i = 0; i < outside.size(); ++i) {
    queries.Append(outside.point(i));
  }

  std::vector<Run> runs;
  bench::Table table({"batch", "threads", "seconds", "points/sec"});
  std::vector<int32_t> baseline;
  bool all_match = true;

  for (const int batch : {1, 64, 4096}) {
    for (const int threads : {1, full_threads}) {
      SetGlobalThreads(threads);
      std::vector<int32_t> labels;
      labels.reserve(queries.size());
      std::vector<int32_t> chunk_labels;
      Stopwatch timer;
      for (PointIndex begin = 0; begin < queries.size(); begin += batch) {
        const PointIndex end =
            std::min<PointIndex>(begin + batch, queries.size());
        Dataset chunk(queries.dim());
        chunk.Reserve(end - begin);
        for (PointIndex i = begin; i < end; ++i) {
          chunk.Append(queries.point(i));
        }
        if (const Status status = engine->AssignBatch(chunk, &chunk_labels);
            !status.ok()) {
          std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
          return 1;
        }
        labels.insert(labels.end(), chunk_labels.begin(),
                      chunk_labels.end());
      }
      const double elapsed = timer.ElapsedSeconds();
      if (baseline.empty()) {
        baseline = labels;
      }
      all_match = all_match && labels == baseline;

      Run run;
      run.batch = batch;
      run.threads = threads;
      run.seconds = elapsed;
      run.points_per_sec =
          elapsed > 0.0 ? queries.size() / elapsed : 0.0;
      table.AddRow({std::to_string(batch), std::to_string(threads),
                    bench::FormatSeconds(elapsed),
                    bench::FormatDouble(run.points_per_sec, 0)});
      runs.push_back(run);
    }
  }
  SetGlobalThreads(0);

  table.Print();
  const auto stats = engine->stats();
  std::printf("prefilter: %llu of %llu queries rejected without an index "
              "probe\n",
              static_cast<unsigned long long>(stats.sphere_rejections),
              static_cast<unsigned long long>(stats.points_assigned));

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"generator\": \"random_walk\", \"n\": "
       << data.n << ", \"dim\": " << data.dim << ", \"eps\": " << epsilon
       << ", \"minpts\": " << min_pts << ", \"seed\": " << data.seed
       << ", \"queries\": " << num_queries << "},\n"
       << "  \"fit_seconds\": " << fit_seconds << ",\n"
       << "  \"model\": {\"core_points\": " << model.core_points.size()
       << ", \"spheres\": " << model.spheres.size()
       << ", \"file_bytes\": " << model_bytes << "},\n"
       << "  \"hardware_threads\": " << hardware << ",\n"
       << "  \"deterministic\": " << (all_match ? "true" : "false")
       << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"batch\": " << run.batch
         << ", \"threads\": " << run.threads
         << ", \"seconds\": " << run.seconds
         << ", \"points_per_sec\": " << run.points_per_sec << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  if (!all_match) {
    std::fprintf(stderr, "FAIL: labels diverged across batch sizes or "
                         "thread counts\n");
    return 1;
  }
  // Acceptance floor: the big-batch parallel run must show real
  // throughput, not a degenerate zero.
  if (runs.back().points_per_sec <= 0.0) {
    std::fprintf(stderr, "FAIL: zero assignment throughput\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
