#ifndef DBSVEC_BENCH_BENCH_UTIL_H_
#define DBSVEC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/clustering.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace dbsvec::bench {

/// Minimal --key=value flag parser shared by all benchmark harnesses.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.emplace_back(arg.substr(2), "1");
      } else {
        flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::string GetString(std::string_view name,
                        std::string_view fallback) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) {
        return value;
      }
    }
    return std::string(fallback);
  }

  int64_t GetInt(std::string_view name, int64_t fallback) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) {
        return std::atoll(value.c_str());
      }
    }
    return fallback;
  }

  double GetDouble(std::string_view name, double fallback) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) {
        return std::atof(value.c_str());
      }
    }
    return fallback;
  }

  bool GetBool(std::string_view name, bool fallback = false) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) {
        return value != "0" && value != "false";
      }
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
};

/// Aligned text-table printer producing paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(header_, widths);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      rule += c + 1 < widths.size() ? "-+-" : "";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

  /// Writes the table as CSV to `path` (no-op for an empty path).
  void WriteCsv(const std::string& path) const {
    if (path.empty()) {
      return;
    }
    std::ofstream out(path);
    WriteCsvRow(out, header_);
    for (const auto& row : rows_) {
      WriteCsvRow(out, row);
    }
    std::printf("[csv written to %s]\n", path.c_str());
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      line += c + 1 < widths.size() ? " | " : "";
    }
    std::printf("%s\n", line.c_str());
  }

  static void WriteCsvRow(std::ofstream& out,
                          const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      out << row[c];
    }
    out << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with sensible precision.
inline std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3f", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f", seconds);
  }
  return buffer;
}

inline std::string FormatDouble(double value, int digits = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

/// One competitor in a sweep: a named clustering routine plus a "dead"
/// flag. Once a run exceeds the per-cell budget, all later (larger) cells
/// are reported DNF without running — mirroring the paper's 10-hour
/// cutoff policy.
struct Competitor {
  std::string name;
  std::function<Status(Clustering*)> run;
  bool dead = false;
};

/// Runs `competitor` unless it is already dead; returns the cell string
/// (elapsed seconds, "DNF", or "ERR: ..."). Marks the competitor dead when
/// the run exceeds `budget_seconds`.
inline std::string RunCell(Competitor* competitor, double budget_seconds,
                           Clustering* out) {
  if (competitor->dead) {
    return "DNF";
  }
  Stopwatch timer;
  const Status status = competitor->run(out);
  const double elapsed = timer.ElapsedSeconds();
  if (!status.ok()) {
    competitor->dead = true;
    return "ERR:" + status.ToString();
  }
  if (elapsed > budget_seconds) {
    competitor->dead = true;  // Too slow: skip larger workloads.
  }
  return FormatSeconds(elapsed);
}

}  // namespace dbsvec::bench

#endif  // DBSVEC_BENCH_BENCH_UTIL_H_
