// Reproduces Fig. 7 of the paper: running time vs radius eps on the 8-d
// synthetic dataset (panel a) and on the PAMAP2 / Sensors / Corel
// real-dataset surrogates (panels b-d), for the full competitor set.
//
// Paper setup: eps from 5,000 to 55,000 on [0,1e5]-normalized data,
// MinPts=100. Expected shape: DBSCAN variants get *slower* with eps
// (bigger range queries), DBSCAN-LSH degrades rapidly, rho-approximate is
// hurt on real data (huge grids), while DBSVEC gets *faster* (fewer SVDD
// rounds needed to swallow a cluster).
//
// Flags: --eps_list=5000,15000,25000,35000,45000,55000 --n=20000
//        --minpts=100 --budget=20 --panels=synthetic,PAMAP2,Sensors,Corel
//        --csv=<path>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/nq_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "common/normalize.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "data/synthetic.h"

namespace dbsvec {
namespace {

std::vector<double> ParseDoubles(const std::string& spec) {
  std::vector<double> values;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    values.push_back(std::atof(token.c_str()));
  }
  return values;
}

void RunPanel(const std::string& panel, const Dataset& data,
              const std::vector<double>& eps_list, int min_pts,
              double budget, const std::string& csv) {
  std::printf("Fig. 7 panel [%s]: running time (s) vs eps "
              "(n=%d, d=%d, MinPts=%d)\n\n",
              panel.c_str(), data.size(), data.dim(), min_pts);

  std::vector<std::string> header = {"algorithm"};
  for (const double eps : eps_list) {
    header.push_back("eps=" + std::to_string(static_cast<int64_t>(eps)));
  }
  bench::Table table(header);

  const std::vector<std::string> names = {"R-DBSCAN", "kd-DBSCAN", "DBSVEC",
                                          "rho-Appr", "DBSCAN-LSH",
                                          "NQ-DBSCAN"};
  std::vector<std::vector<std::string>> cells(names.size());
  std::vector<bool> dead(names.size(), false);

  for (const double eps : eps_list) {
    std::vector<bench::Competitor> competitors;
    competitors.push_back({"R-DBSCAN", [&data, eps, min_pts](Clustering* o) {
                             DbscanParams p;
                             p.epsilon = eps;
                             p.min_pts = min_pts;
                             p.index = IndexType::kRStarTree;
                             return RunDbscan(data, p, o);
                           }});
    competitors.push_back({"kd-DBSCAN", [&data, eps, min_pts](Clustering* o) {
                             DbscanParams p;
                             p.epsilon = eps;
                             p.min_pts = min_pts;
                             p.index = IndexType::kKdTree;
                             return RunDbscan(data, p, o);
                           }});
    competitors.push_back({"DBSVEC", [&data, eps, min_pts](Clustering* o) {
                             DbsvecParams p;
                             p.epsilon = eps;
                             p.min_pts = min_pts;
                             return RunDbsvec(data, p, o);
                           }});
    competitors.push_back({"rho-Appr", [&data, eps, min_pts](Clustering* o) {
                             RhoApproxParams p;
                             p.epsilon = eps;
                             p.min_pts = min_pts;
                             return RunRhoApproxDbscan(data, p, o);
                           }});
    competitors.push_back(
        {"DBSCAN-LSH", [&data, eps, min_pts](Clustering* o) {
           LshDbscanParams p;
           p.epsilon = eps;
           p.min_pts = min_pts;
           return RunLshDbscan(data, p, o);
         }});
    competitors.push_back({"NQ-DBSCAN", [&data, eps, min_pts](Clustering* o) {
                             NqDbscanParams p;
                             p.epsilon = eps;
                             p.min_pts = min_pts;
                             return RunNqDbscan(data, p, o);
                           }});
    for (size_t a = 0; a < competitors.size(); ++a) {
      competitors[a].dead = dead[a];
      Clustering out;
      cells[a].push_back(bench::RunCell(&competitors[a], budget, &out));
      dead[a] = competitors[a].dead;
    }
  }
  for (size_t a = 0; a < names.size(); ++a) {
    std::vector<std::string> row = {names[a]};
    row.insert(row.end(), cells[a].begin(), cells[a].end());
    table.AddRow(row);
  }
  table.Print();
  if (!csv.empty()) {
    table.WriteCsv(csv + "." + panel + ".csv");
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const auto eps_list = ParseDoubles(
      args.GetString("eps_list", "5000,15000,25000,35000,45000,55000"));
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 20000));
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const double budget = args.GetDouble("budget", 20.0);
  const std::string csv = args.GetString("csv", "");
  std::stringstream panels(
      args.GetString("panels", "synthetic,PAMAP2,Sensors,Corel"));
  std::string panel;
  while (std::getline(panels, panel, ',')) {
    if (panel == "synthetic") {
      RandomWalkParams gen;
      gen.n = n;
      gen.dim = 8;
      gen.num_clusters = 10;
      gen.seed = 31;
      const Dataset data = GenerateRandomWalk(gen);
      RunPanel(panel, data, eps_list, min_pts, budget, csv);
    } else {
      SurrogateDataset surrogate;
      if (const Status s = MakeSurrogate(panel, &surrogate, n); !s.ok()) {
        std::fprintf(stderr, "%s: %s\n", panel.c_str(),
                     s.ToString().c_str());
        continue;
      }
      // The paper normalizes real data to [0,1e5] per dimension so the
      // shared eps sweep is meaningful.
      NormalizeToPaperRange(&surrogate.data);
      RunPanel(panel, surrogate.data, eps_list, min_pts, budget, csv);
    }
  }
  std::printf(
      "Expected shape (Fig. 7): DBSCAN variants slow down as eps grows;\n"
      "DBSCAN-LSH degrades rapidly; DBSVEC speeds up with eps and wins\n"
      "throughout; rho-Appr struggles on the real-data panels.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
