// Google-benchmark micro-benchmarks for the library's substrates: range
// queries across index backends, SMO/SVDD training, penalty weights, and
// the pair-recall metric. These back the constant factors quoted in
// DESIGN.md and catch performance regressions in the building blocks that
// every paper experiment rests on.

#include <numeric>

#include "benchmark/benchmark.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "core/penalty_weights.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/kd_tree.h"
#include "index/lsh_index.h"
#include "index/r_star_tree.h"
#include "svm/svdd.h"

namespace dbsvec {
namespace {

Dataset MakeData(PointIndex n, int dim) {
  RandomWalkParams params;
  params.n = n;
  params.dim = dim;
  params.num_clusters = 10;
  params.seed = 99;
  return GenerateRandomWalk(params);
}

constexpr double kEps = 5000.0;

void BM_KdTreeBuild(benchmark::State& state) {
  const Dataset data = MakeData(static_cast<PointIndex>(state.range(0)), 8);
  for (auto _ : state) {
    KdTree tree(data);
    benchmark::DoNotOptimize(&tree);
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000);

void BM_KdTreeRangeQuery(benchmark::State& state) {
  const Dataset data = MakeData(50000, static_cast<int>(state.range(0)));
  const KdTree tree(data);
  std::vector<PointIndex> out;
  PointIndex q = 0;
  for (auto _ : state) {
    tree.RangeQuery(data.point(q), kEps, &out);
    benchmark::DoNotOptimize(out.data());
    q = (q + 17) % data.size();
  }
}
BENCHMARK(BM_KdTreeRangeQuery)->Arg(2)->Arg(8)->Arg(16);

void BM_RStarTreeRangeQuery(benchmark::State& state) {
  const Dataset data = MakeData(50000, static_cast<int>(state.range(0)));
  const RStarTree tree(data);
  std::vector<PointIndex> out;
  PointIndex q = 0;
  for (auto _ : state) {
    tree.RangeQuery(data.point(q), kEps, &out);
    benchmark::DoNotOptimize(out.data());
    q = (q + 17) % data.size();
  }
}
BENCHMARK(BM_RStarTreeRangeQuery)->Arg(2)->Arg(8);

void BM_BruteForceRangeQuery(benchmark::State& state) {
  const Dataset data = MakeData(50000, 8);
  const BruteForceIndex index(data);
  std::vector<PointIndex> out;
  PointIndex q = 0;
  for (auto _ : state) {
    index.RangeQuery(data.point(q), kEps, &out);
    benchmark::DoNotOptimize(out.data());
    q = (q + 17) % data.size();
  }
}
BENCHMARK(BM_BruteForceRangeQuery);

void BM_GridRangeQuery(benchmark::State& state) {
  const Dataset data = MakeData(50000, static_cast<int>(state.range(0)));
  const GridIndex index(data, kEps);
  std::vector<PointIndex> out;
  PointIndex q = 0;
  for (auto _ : state) {
    index.RangeQuery(data.point(q), kEps, &out);
    benchmark::DoNotOptimize(out.data());
    q = (q + 17) % data.size();
  }
}
BENCHMARK(BM_GridRangeQuery)->Arg(2)->Arg(4);

void BM_LshRangeQuery(benchmark::State& state) {
  const Dataset data = MakeData(50000, 8);
  const LshIndex index(data, kEps);
  std::vector<PointIndex> out;
  PointIndex q = 0;
  for (auto _ : state) {
    index.RangeQuery(data.point(q), kEps, &out);
    benchmark::DoNotOptimize(out.data());
    q = (q + 17) % data.size();
  }
}
BENCHMARK(BM_LshRangeQuery);

void BM_SvddTrain(benchmark::State& state) {
  const PointIndex n = static_cast<PointIndex>(state.range(0));
  const Dataset data = MakeData(n, 8);
  std::vector<PointIndex> target(n);
  std::iota(target.begin(), target.end(), 0);
  SvddParams params;
  params.nu = 0.05;
  for (auto _ : state) {
    SvddModel model;
    benchmark::DoNotOptimize(Svdd::Train(data, target, params, &model).ok());
  }
}
BENCHMARK(BM_SvddTrain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PenaltyWeights(benchmark::State& state) {
  const PointIndex n = static_cast<PointIndex>(state.range(0));
  const Dataset data = MakeData(n, 8);
  std::vector<PointIndex> target(n);
  std::iota(target.begin(), target.end(), 0);
  const std::vector<int32_t> counts(n, 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePenaltyWeights(
        data, target, counts, 1000.0, PenaltyWeightOptions(), &rng));
  }
}
BENCHMARK(BM_PenaltyWeights)->Arg(1024)->Arg(8192);

void BM_PairRecall(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<int32_t> a(n);
  std::vector<int32_t> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.NextBounded(50));
    b[i] = static_cast<int32_t>(rng.NextBounded(50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairRecall(a, b));
  }
}
BENCHMARK(BM_PairRecall)->Arg(100000)->Arg(1000000);

void BM_KMeansIteration(benchmark::State& state) {
  const Dataset data = MakeData(20000, 8);
  KMeansParams params;
  params.k = 10;
  params.max_iterations = 5;
  for (auto _ : state) {
    Clustering out;
    benchmark::DoNotOptimize(RunKMeans(data, params, &out).ok());
  }
}
BENCHMARK(BM_KMeansIteration);

}  // namespace
}  // namespace dbsvec

BENCHMARK_MAIN();
