// Reproduces Table IV of the paper: internal clustering validation of
// DBSVEC vs k-MEANS on Miss-America (d=16), Breast-Cancer (d=9) and Dim64
// (d=64) surrogates. "C" is compactness (mean silhouette, higher better);
// "S" is separation (Davies-Bouldin, lower better).
//
// Paper's result: DBSVEC matches or beats k-MEANS on every dataset.
//
// Flags: --csv=<path>

#include <cstdio>

#include "bench_util.h"
#include "cluster/kmeans.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/internal_metrics.h"

namespace dbsvec {
namespace {

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const char* names[] = {"Miss", "Breast", "Dim64"};

  std::printf("Table IV reproduction: compactness C (higher better) and "
              "separation S (lower better)\n\n");
  bench::Table table({"dataset", "d", "algorithm", "clusters", "C", "S"});

  for (const char* name : names) {
    SurrogateDataset surrogate;
    if (const Status s = MakeSurrogate(name, &surrogate); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, s.ToString().c_str());
      continue;
    }
    const Dataset& data = surrogate.data;

    DbsvecParams params;
    params.epsilon = surrogate.epsilon;
    params.min_pts = surrogate.min_pts;
    Clustering dbsvec_result;
    if (RunDbsvec(data, params, &dbsvec_result).ok()) {
      table.AddRow(
          {name, std::to_string(data.dim()), "DBSVEC",
           std::to_string(dbsvec_result.num_clusters),
           bench::FormatDouble(Compactness(data, dbsvec_result.labels)),
           bench::FormatDouble(Separation(data, dbsvec_result.labels))});
    }

    // k-MEANS gets the cluster count DBSVEC found (the paper gives k-means
    // the "right" k as well).
    KMeansParams kmeans_params;
    kmeans_params.k = std::max(2, dbsvec_result.num_clusters);
    Clustering kmeans_result;
    if (RunKMeans(data, kmeans_params, &kmeans_result).ok()) {
      table.AddRow(
          {name, std::to_string(data.dim()), "k-MEANS",
           std::to_string(kmeans_result.num_clusters),
           bench::FormatDouble(Compactness(data, kmeans_result.labels)),
           bench::FormatDouble(Separation(data, kmeans_result.labels))});
    }
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape (Table IV): DBSVEC's C >= k-MEANS's C and\n"
      "DBSVEC's S <= k-MEANS's S on each dataset.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
