// Cache-manager benchmark (docs/CACHING.md): fit and assign latency at
// cache budgets {off, tiny, huge}, per-cache hit rates from the manager's
// counters, and an RSS ceiling check for many concurrent solves sharing
// one small budget. Labels are checked bit-identical at every budget —
// the cache changes *when* work happens, never *what* comes out.
//
// Flags: --n --dim --eps --minpts --seed --queries --tiny-mb --huge-mb
//        --solvers --rss-ceiling-mb --out
// Writes BENCH_cache.json next to the text table.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cache/cache_manager.h"
#include "cache/shared_row_cache.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"

namespace dbsvec {
namespace {

/// Resident-set size from /proc/self/status, in KiB; 0 when unavailable
/// (non-Linux), which skips the ceiling check.
uint64_t RssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Cumulative per-cache counters, summed for delta reporting per phase.
CacheCounters TotalCounters() {
  CacheCounters total;
  for (const cache::CacheStats& stats :
       cache::CacheManager::Global().Stats()) {
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

struct BudgetRun {
  int64_t budget_mb = 0;
  double fit_seconds = 0.0;
  double refit_seconds = 0.0;        ///< Second fit: shared-row reuse.
  double assign_cold_seconds = 0.0;  ///< First pass: cache misses.
  double assign_warm_seconds = 0.0;  ///< Second pass: cell-cache hits.
  double hit_rate = 0.0;             ///< Across all caches, this phase.
  uint64_t evictions = 0;
};

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 20'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  const double epsilon = args.GetDouble("eps", 5'000.0);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const PointIndex num_queries =
      static_cast<PointIndex>(args.GetInt("queries", 20'000));
  const int64_t tiny_mb = args.GetInt("tiny-mb", 1);
  const int64_t huge_mb = args.GetInt("huge-mb", 256);
  const int num_solvers = static_cast<int>(args.GetInt("solvers", 4));
  const int64_t rss_ceiling_mb = args.GetInt("rss-ceiling-mb", 512);
  const std::string json_path = args.GetString("out", "BENCH_cache.json");

  std::printf("dataset: n=%d dim=%d eps=%.4g minpts=%d\n", data.n,
              data.dim, epsilon, min_pts);
  const Dataset dataset = GenerateRandomWalk(data);
  RandomWalkParams query_params = data;
  query_params.n = num_queries;
  query_params.seed = data.seed + 1;
  const Dataset queries = GenerateRandomWalk(query_params);

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;

  std::vector<int32_t> fit_reference;
  std::vector<int32_t> assign_reference;
  bool all_match = true;
  std::vector<BudgetRun> runs;
  bench::Table table({"budget_mb", "fit_s", "refit_s", "assign_cold_s",
                      "assign_warm_s", "hit_rate", "evictions"});

  for (const int64_t budget_mb : {int64_t{0}, tiny_mb, huge_mb}) {
    cache::SharedRowCache::Global().Clear();
    cache::CacheManager::SetGlobalLimitBytes(
        static_cast<size_t>(budget_mb) << 20);
    const CacheCounters before = TotalCounters();

    BudgetRun run;
    run.budget_mb = budget_mb;

    Clustering clustering;
    DbsvecModel model;
    Stopwatch fit_timer;
    if (const Status status =
            RunDbsvec(dataset, params, &clustering, &model);
        !status.ok()) {
      std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
      return 1;
    }
    run.fit_seconds = fit_timer.ElapsedSeconds();
    if (fit_reference.empty()) {
      fit_reference = clustering.labels;
    }
    all_match = all_match && clustering.labels == fit_reference;

    Clustering refit;
    Stopwatch refit_timer;
    if (const Status status = RunDbsvec(dataset, params, &refit);
        !status.ok()) {
      std::fprintf(stderr, "refit: %s\n", status.ToString().c_str());
      return 1;
    }
    run.refit_seconds = refit_timer.ElapsedSeconds();
    all_match = all_match && refit.labels == fit_reference;

    std::unique_ptr<AssignmentEngine> engine;
    if (const Status status =
            AssignmentEngine::Create(std::move(model), {}, &engine);
        !status.ok()) {
      std::fprintf(stderr, "engine: %s\n", status.ToString().c_str());
      return 1;
    }
    std::vector<int32_t> labels;
    Stopwatch cold_timer;
    if (const Status status = engine->AssignBatch(queries, &labels);
        !status.ok()) {
      std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
      return 1;
    }
    run.assign_cold_seconds = cold_timer.ElapsedSeconds();
    if (assign_reference.empty()) {
      assign_reference = labels;
    }
    all_match = all_match && labels == assign_reference;

    Stopwatch warm_timer;
    if (const Status status = engine->AssignBatch(queries, &labels);
        !status.ok()) {
      std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
      return 1;
    }
    run.assign_warm_seconds = warm_timer.ElapsedSeconds();
    all_match = all_match && labels == assign_reference;

    const CacheCounters after = TotalCounters();
    const uint64_t hits = after.hits - before.hits;
    const uint64_t misses = after.misses - before.misses;
    run.hit_rate = hits + misses > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(hits + misses)
                       : 0.0;
    run.evictions = after.evictions - before.evictions;
    table.AddRow({std::to_string(budget_mb),
                  bench::FormatSeconds(run.fit_seconds),
                  bench::FormatSeconds(run.refit_seconds),
                  bench::FormatSeconds(run.assign_cold_seconds),
                  bench::FormatSeconds(run.assign_warm_seconds),
                  bench::FormatDouble(run.hit_rate, 4),
                  std::to_string(run.evictions)});
    runs.push_back(run);
  }
  table.Print();

  // RSS ceiling: many concurrent solves sharing one small budget must not
  // multiply resident memory by the solver count — the shared budget (not
  // per-solve max_bytes) bounds cached rows.
  cache::SharedRowCache::Global().Clear();
  cache::CacheManager::SetGlobalLimitBytes(
      static_cast<size_t>(tiny_mb) << 20);
  const uint64_t rss_before_kb = RssKb();
  std::vector<std::thread> solvers;
  std::vector<int> failures(static_cast<size_t>(num_solvers), 0);
  for (int s = 0; s < num_solvers; ++s) {
    solvers.emplace_back([&, s] {
      Clustering solo;
      if (!RunDbsvec(dataset, params, &solo).ok() ||
          solo.labels != fit_reference) {
        failures[static_cast<size_t>(s)] = 1;
      }
    });
  }
  for (std::thread& solver : solvers) {
    solver.join();
  }
  const uint64_t rss_after_kb = RssKb();
  const int64_t rss_delta_mb =
      (static_cast<int64_t>(rss_after_kb) -
       static_cast<int64_t>(rss_before_kb)) /
      1024;
  for (const int failed : failures) {
    all_match = all_match && failed == 0;
  }
  const bool rss_ok =
      rss_before_kb == 0 || rss_delta_mb <= rss_ceiling_mb;
  std::printf("concurrent solves: %d solvers, rss delta %lld MB "
              "(ceiling %lld MB) %s\n",
              num_solvers, static_cast<long long>(rss_delta_mb),
              static_cast<long long>(rss_ceiling_mb),
              rss_ok ? "OK" : "FAIL");
  cache::SharedRowCache::Global().Clear();
  cache::CacheManager::SetGlobalLimitBytes(0);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"n\": " << data.n << ", \"dim\": " << data.dim
       << ", \"eps\": " << epsilon << ", \"minpts\": " << min_pts
       << ", \"seed\": " << data.seed << ", \"queries\": " << num_queries
       << "},\n"
       << "  \"deterministic\": " << (all_match ? "true" : "false")
       << ",\n"
       << "  \"concurrent_solvers\": " << num_solvers << ",\n"
       << "  \"rss_delta_mb\": " << rss_delta_mb << ",\n"
       << "  \"rss_ceiling_mb\": " << rss_ceiling_mb << ",\n"
       << "  \"rss_ok\": " << (rss_ok ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const BudgetRun& run = runs[i];
    json << "    {\"budget_mb\": " << run.budget_mb
         << ", \"fit_seconds\": " << run.fit_seconds
         << ", \"refit_seconds\": " << run.refit_seconds
         << ", \"assign_cold_seconds\": " << run.assign_cold_seconds
         << ", \"assign_warm_seconds\": " << run.assign_warm_seconds
         << ", \"hit_rate\": " << run.hit_rate
         << ", \"evictions\": " << run.evictions << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  if (!all_match) {
    std::fprintf(stderr, "FAIL: labels diverged across cache budgets\n");
    return 1;
  }
  if (!rss_ok) {
    std::fprintf(stderr, "FAIL: concurrent solves exceeded the RSS "
                         "ceiling\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
