// Reproduces Fig. 1 of the paper: clustering quality of DBSVEC vs DBSCAN
// on the t4.8k benchmark scene (surrogate), plus the reported speedup.
//
// The paper reports identical clusters on t4.8k (MinPts=20, eps=8.5) and a
// 7.7x speedup of DBSVEC over DBSCAN. This harness prints both algorithms'
// cluster/noise counts, the pair recall/precision between them, and the
// speedup; --dump=<dir> writes the labelled point sets as CSV so the two
// panels of Fig. 1 can be plotted.
//
// Flags: --n=8000 --eps=8.5 --minpts=20 --dump=<dir> --csv=<path>

#include <cstdio>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "common/csv.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/recall.h"

namespace dbsvec {
namespace {

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 8000));
  const double epsilon = args.GetDouble("eps", 8.5);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 20));

  SurrogateDataset surrogate;
  const Status status = MakeSurrogate("t4.8k", &surrogate, n);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const Dataset& data = surrogate.data;
  std::printf("Fig. 1 reproduction: t4.8k surrogate, n=%d, eps=%.2f, "
              "MinPts=%d\n\n",
              data.size(), epsilon, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  dbscan_params.index = IndexType::kRStarTree;  // R-DBSCAN, the paper's ref.
  Clustering reference;
  if (const Status s = RunDbscan(data, dbscan_params, &reference); !s.ok()) {
    std::fprintf(stderr, "DBSCAN: %s\n", s.ToString().c_str());
    return 1;
  }

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering approx;
  if (const Status s = RunDbsvec(data, params, &approx); !s.ok()) {
    std::fprintf(stderr, "DBSVEC: %s\n", s.ToString().c_str());
    return 1;
  }

  bench::Table table({"algorithm", "clusters", "noise", "time_s",
                      "range_queries", "recall_vs_dbscan",
                      "precision_vs_dbscan"});
  table.AddRow({"DBSCAN (R-tree)", std::to_string(reference.num_clusters),
                std::to_string(reference.CountNoise()),
                bench::FormatSeconds(reference.stats.elapsed_seconds),
                std::to_string(reference.stats.num_range_queries), "1.000",
                "1.000"});
  table.AddRow(
      {"DBSVEC", std::to_string(approx.num_clusters),
       std::to_string(approx.CountNoise()),
       bench::FormatSeconds(approx.stats.elapsed_seconds),
       std::to_string(approx.stats.num_range_queries),
       bench::FormatDouble(PairRecall(reference.labels, approx.labels)),
       bench::FormatDouble(PairPrecision(reference.labels, approx.labels))});
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));

  const double speedup = approx.stats.elapsed_seconds > 0.0
                             ? reference.stats.elapsed_seconds /
                                   approx.stats.elapsed_seconds
                             : 0.0;
  std::printf("\nDBSVEC speedup over DBSCAN: %.2fx (paper: 7.7x on t4.8k)\n",
              speedup);

  const std::string dump = args.GetString("dump", "");
  if (!dump.empty()) {
    (void)WriteCsv(data, reference.labels, dump + "/fig1_dbscan.csv");
    (void)WriteCsv(data, approx.labels, dump + "/fig1_dbsvec.csv");
    std::printf("labelled points written under %s\n", dump.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
