// Reproduces Table III of the paper: clustering accuracy (pair recall vs
// exact DBSCAN) of DBSVEC_min, DBSVEC, rho-approximate DBSCAN and
// DBSCAN-LSH over the 11 open datasets (surrogates).
//
// Paper's result: DBSVEC scores 1.000 everywhere with nu*, DBSVEC_min
// nearly everywhere; rho-approx and LSH fall below on several datasets.
//
// Flags: --csv=<path> --datasets=<comma list> (default: all 11)

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/recall.h"

namespace dbsvec {
namespace {

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  std::vector<std::string> names;
  const std::string spec = args.GetString("datasets", "");
  if (spec.empty()) {
    names = AccuracySurrogateNames();
  } else {
    std::stringstream ss(spec);
    std::string token;
    while (std::getline(ss, token, ',')) {
      names.push_back(token);
    }
  }

  std::printf("Table III reproduction: recall vs exact DBSCAN "
              "(self-calibrated eps/MinPts per dataset)\n\n");
  bench::Table table({"dataset", "n", "d", "eps", "MinPts", "DBSVEC_min",
                      "DBSVEC", "rho-Appr", "DBSCAN-LSH"});

  for (const std::string& name : names) {
    SurrogateDataset surrogate;
    if (const Status s = MakeSurrogate(name, &surrogate); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), s.ToString().c_str());
      continue;
    }
    const Dataset& data = surrogate.data;
    const double epsilon = surrogate.epsilon;
    const int min_pts = surrogate.min_pts;

    DbscanParams dbscan_params;
    dbscan_params.epsilon = epsilon;
    dbscan_params.min_pts = min_pts;
    dbscan_params.index = IndexType::kRStarTree;
    Clustering reference;
    if (!RunDbscan(data, dbscan_params, &reference).ok()) {
      continue;
    }

    auto recall_of = [&](const Clustering& c) {
      return bench::FormatDouble(PairRecall(reference.labels, c.labels));
    };

    DbsvecParams min_params;
    min_params.epsilon = epsilon;
    min_params.min_pts = min_pts;
    min_params.nu_mode = NuMode::kMinimum;
    Clustering dbsvec_min;
    const bool min_ok = RunDbsvec(data, min_params, &dbsvec_min).ok();

    DbsvecParams auto_params;
    auto_params.epsilon = epsilon;
    auto_params.min_pts = min_pts;
    Clustering dbsvec_auto;
    const bool auto_ok = RunDbsvec(data, auto_params, &dbsvec_auto).ok();

    RhoApproxParams rho_params;
    rho_params.epsilon = epsilon;
    rho_params.min_pts = min_pts;
    rho_params.rho = 0.001;
    Clustering rho;
    const bool rho_ok = RunRhoApproxDbscan(data, rho_params, &rho).ok();

    LshDbscanParams lsh_params;
    lsh_params.epsilon = epsilon;
    lsh_params.min_pts = min_pts;
    Clustering lsh;
    const bool lsh_ok = RunLshDbscan(data, lsh_params, &lsh).ok();

    table.AddRow({name, std::to_string(data.size()),
                  std::to_string(data.dim()),
                  bench::FormatDouble(epsilon, 2), std::to_string(min_pts),
                  min_ok ? recall_of(dbsvec_min) : "ERR",
                  auto_ok ? recall_of(dbsvec_auto) : "ERR",
                  rho_ok ? recall_of(rho) : "ERR",
                  lsh_ok ? recall_of(lsh) : "ERR"});
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape (Table III): DBSVEC ~1.000 on every dataset;\n"
      "DBSVEC_min >= rho-Appr and DBSCAN-LSH on almost all datasets;\n"
      "DBSCAN-LSH noticeably below 1 on several datasets.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
