// Thread-scaling harness: runs DBSVEC (and exact DBSCAN for reference) on
// the Fig. 6 random-walk workload at increasing thread counts — and, per
// thread count, across a list of shard counts (0 = the unsharded legacy
// path) — reports wall-clock speedup over the sequential unsharded run,
// and verifies the labels are identical at every thread count for a fixed
// shard count (the determinism contract of the parallel execution engine;
// across *shard* settings only 0-vs-sharded numbering may differ, see
// bench_shard.cc).
//
// Flags: --n --dim --eps --minpts --seed --threads=1,2,4,8 --shards=0,4
//        --out
// Writes BENCH_threads.json (machine-readable) next to the text table.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"

namespace dbsvec {
namespace {

struct Run {
  std::string algorithm;
  int shards = 0;  // 0 = unsharded legacy path.
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  bool labels_match_sequential = true;
};

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> threads;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const int value = std::atoi(spec.substr(start, comma - start).c_str());
    if (value >= 1) {
      threads.push_back(value);
    }
    start = comma + 1;
  }
  if (threads.empty() || threads.front() != 1) {
    threads.insert(threads.begin(), 1);  // Sequential baseline is required.
  }
  return threads;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  RandomWalkParams data;
  data.n = static_cast<PointIndex>(args.GetInt("n", 100'000));
  data.dim = static_cast<int>(args.GetInt("dim", 8));
  data.seed = static_cast<uint64_t>(args.GetInt("seed", 23));
  const double epsilon = args.GetDouble("eps", 5'000.0);
  const int min_pts = static_cast<int>(args.GetInt("minpts", 100));
  const std::vector<int> thread_counts =
      ParseThreadList(args.GetString("threads", "1,2,4,8"));
  std::vector<int> shard_counts;
  {
    const std::string spec = args.GetString("shards", "0,4");
    size_t start = 0;
    while (start < spec.size()) {
      size_t comma = spec.find(',', start);
      if (comma == std::string::npos) {
        comma = spec.size();
      }
      const int value = std::atoi(spec.substr(start, comma - start).c_str());
      if (value >= 0) {
        shard_counts.push_back(value);
      }
      start = comma + 1;
    }
    if (shard_counts.empty() || shard_counts.front() != 0) {
      shard_counts.insert(shard_counts.begin(), 0);  // Timing baseline.
    }
  }
  const std::string json_path = args.GetString("out", "BENCH_threads.json");
  const unsigned hardware = std::thread::hardware_concurrency();

  std::printf("generating random-walk workload: n=%d dim=%d seed=%llu\n",
              data.n, data.dim, static_cast<unsigned long long>(data.seed));
  const Dataset dataset = GenerateRandomWalk(data);

  std::vector<Run> runs;
  bench::Table table(
      {"algorithm", "shards", "threads", "seconds", "speedup", "match"});

  // Speedups are measured against the unsharded sequential run of the same
  // algorithm; label agreement against the threads=1 run at the same shard
  // count (labels are thread-count-invariant at every shard setting).
  const auto seconds_baseline = [&runs](const std::string& algorithm,
                                        double fallback) {
    for (const Run& r : runs) {
      if (r.algorithm == algorithm && r.shards == 0 && r.threads == 1) {
        return r.seconds;
      }
    }
    return fallback;
  };

  for (const int shards : shard_counts) {
    std::vector<int32_t> dbsvec_baseline;
    std::vector<int32_t> dbscan_baseline;
    for (const int threads : thread_counts) {
      SetGlobalThreads(threads);
      {
        DbsvecParams params;
        params.epsilon = epsilon;
        params.min_pts = min_pts;
        params.shards = shards;
        Clustering result;
        Stopwatch timer;
        const Status status = RunDbsvec(dataset, params, &result);
        const double elapsed = timer.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "dbsvec(shards=%d, threads=%d): %s\n", shards,
                       threads, status.ToString().c_str());
          return 1;
        }
        if (threads == 1) {
          dbsvec_baseline = result.labels;
        }
        Run run;
        run.algorithm = "dbsvec";
        run.shards = shards;
        run.threads = threads;
        run.seconds = elapsed;
        run.speedup = seconds_baseline("dbsvec", elapsed) / elapsed;
        run.labels_match_sequential = result.labels == dbsvec_baseline;
        table.AddRow({run.algorithm, std::to_string(shards),
                      std::to_string(threads), bench::FormatSeconds(elapsed),
                      bench::FormatDouble(run.speedup, 2),
                      run.labels_match_sequential ? "yes" : "NO"});
        runs.push_back(run);
      }
      {
        DbscanParams params;
        params.epsilon = epsilon;
        params.min_pts = min_pts;
        params.shards = shards;
        Clustering result;
        Stopwatch timer;
        const Status status = RunDbscan(dataset, params, &result);
        const double elapsed = timer.ElapsedSeconds();
        if (!status.ok()) {
          std::fprintf(stderr, "dbscan(shards=%d, threads=%d): %s\n", shards,
                       threads, status.ToString().c_str());
          return 1;
        }
        if (threads == 1) {
          dbscan_baseline = result.labels;
        }
        Run run;
        run.algorithm = "dbscan";
        run.shards = shards;
        run.threads = threads;
        run.seconds = elapsed;
        run.speedup = seconds_baseline("dbscan", elapsed) / elapsed;
        run.labels_match_sequential = result.labels == dbscan_baseline;
        table.AddRow({run.algorithm, std::to_string(shards),
                      std::to_string(threads), bench::FormatSeconds(elapsed),
                      bench::FormatDouble(run.speedup, 2),
                      run.labels_match_sequential ? "yes" : "NO"});
        runs.push_back(run);
      }
    }
  }
  SetGlobalThreads(0);

  table.Print();

  bool all_match = true;
  for (const Run& run : runs) {
    all_match = all_match && run.labels_match_sequential;
  }

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"workload\": {\"generator\": \"random_walk\", \"n\": " << data.n
       << ", \"dim\": " << data.dim << ", \"eps\": " << epsilon
       << ", \"minpts\": " << min_pts << ", \"seed\": " << data.seed
       << "},\n"
       << "  \"hardware_threads\": " << hardware << ",\n"
       << "  \"deterministic\": " << (all_match ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"algorithm\": \"" << run.algorithm
         << "\", \"shards\": " << run.shards
         << ", \"threads\": " << run.threads << ", \"seconds\": "
         << run.seconds << ", \"speedup\": " << run.speedup
         << ", \"labels_match_sequential\": "
         << (run.labels_match_sequential ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("[json written to %s]\n", json_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: labels diverged from the sequential run — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
