// Benchmark for the library extensions beyond the paper: OPTICS and
// HDBSCAN* vs exact DBSCAN and DBSVEC on a variable-density workload —
// the regime where a single global epsilon (DBSCAN/DBSVEC's model) breaks
// down and the hierarchical methods earn their keep.
//
// Workload: `k` Gaussian clusters whose standard deviations span a 10x
// range, plus uniform background noise. Reported per algorithm: time,
// clusters found, noise, and ARI against the generating components.
//
// Flags: --n=8000 --csv=<path>

#include <cstdio>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "cluster/hdbscan.h"
#include "cluster/optics.h"
#include "common/rng.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/external_metrics.h"

namespace dbsvec {
namespace {

Dataset VariableDensityScene(PointIndex n, std::vector<int32_t>* truth,
                             uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(2);
  dataset.Reserve(n);
  truth->clear();
  truth->reserve(n);
  const int clusters = 5;
  const double spreads[clusters] = {0.4, 0.8, 1.6, 3.0, 4.0};
  const PointIndex noise = n / 20;
  const PointIndex per_cluster = (n - noise) / clusters;
  for (int c = 0; c < clusters; ++c) {
    const double cx = 25.0 + 60.0 * (c % 3);
    const double cy = 25.0 + 75.0 * (c / 3);
    for (PointIndex i = 0; i < per_cluster; ++i) {
      const double p[2] = {cx + rng.Gaussian(0.0, spreads[c]),
                           cy + rng.Gaussian(0.0, spreads[c])};
      dataset.Append(p);
      truth->push_back(c);
    }
  }
  while (dataset.size() < n) {
    const double p[2] = {rng.Uniform(0.0, 170.0), rng.Uniform(0.0, 120.0)};
    dataset.Append(p);
    truth->push_back(-1);
  }
  return dataset;
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 8000));
  std::vector<int32_t> truth;
  const Dataset data = VariableDensityScene(n, &truth, 61);
  const int min_pts = 10;
  const double epsilon = SuggestEpsilon(data, min_pts);

  std::printf("Extensions benchmark: variable-density scene "
              "(n=%d, 5 clusters with 10x spread range, 5%% noise)\n"
              "single-eps methods use the self-calibrated eps=%.3f\n\n",
              data.size(), epsilon);
  bench::Table table(
      {"algorithm", "time_s", "clusters", "noise", "ARI_vs_truth"});

  {
    DbscanParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    Clustering out;
    if (RunDbscan(data, params, &out).ok()) {
      table.AddRow({"DBSCAN", bench::FormatSeconds(out.stats.elapsed_seconds),
                    std::to_string(out.num_clusters),
                    std::to_string(out.CountNoise()),
                    bench::FormatDouble(AdjustedRandIndex(truth, out.labels))});
    }
  }
  {
    DbsvecParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    Clustering out;
    if (RunDbsvec(data, params, &out).ok()) {
      table.AddRow({"DBSVEC", bench::FormatSeconds(out.stats.elapsed_seconds),
                    std::to_string(out.num_clusters),
                    std::to_string(out.CountNoise()),
                    bench::FormatDouble(AdjustedRandIndex(truth, out.labels))});
    }
  }
  {
    bench::Competitor optics_runner{
        "OPTICS+extract", [&](Clustering* out) {
          OpticsParams params;
          params.max_epsilon = epsilon * 4.0;
          params.min_pts = min_pts;
          OpticsResult optics;
          DBSVEC_RETURN_IF_ERROR(RunOptics(data, params, &optics));
          return ExtractDbscanClustering(data, optics, epsilon, min_pts,
                                         out);
        }};
    Clustering out;
    Stopwatch timer;
    if (optics_runner.run(&out).ok()) {
      table.AddRow({"OPTICS+extract",
                    bench::FormatSeconds(timer.ElapsedSeconds()),
                    std::to_string(out.num_clusters),
                    std::to_string(out.CountNoise()),
                    bench::FormatDouble(AdjustedRandIndex(truth, out.labels))});
    }
  }
  {
    HdbscanParams params;
    params.min_cluster_size = 30;
    Clustering out;
    if (RunHdbscan(data, params, &out).ok()) {
      table.AddRow({"HDBSCAN*",
                    bench::FormatSeconds(out.stats.elapsed_seconds),
                    std::to_string(out.num_clusters),
                    std::to_string(out.CountNoise()),
                    bench::FormatDouble(AdjustedRandIndex(truth, out.labels))});
    }
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));
  std::printf(
      "\nExpected shape: the single-eps methods compromise between the\n"
      "tight and diffuse clusters; HDBSCAN* adapts per cluster and scores\n"
      "the best ARI, at the cost of its O(n^2) MST.\n");
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
