// Ablation benches for the implementation-level design choices DESIGN.md
// calls out — knobs this library adds around the paper's algorithm:
//
//   1. Stall recovery (DESIGN.md §6): one full-member SVDD round when the
//      incremental target stops growing. Measures its recall benefit on
//      thin 2-D clusters and its time cost.
//   2. SVDD target cap (max_svdd_target): the subsampling safety valve.
//   3. Penalty-weight anchor count: the O(ñ·m) estimate of the kernel
//      distance (Eq. 5) vs larger anchor sets.
//   4. Learning threshold T: Sec. IV-B1 claims T in [2,4] balances time
//      and accuracy; this sweep validates that claim empirically.
//
// Flags: --n=50000 --csv=<path>

#include <cstdio>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "data/synthetic.h"
#include "eval/recall.h"

namespace dbsvec {
namespace {

struct Workload {
  std::string name;
  Dataset data{2};
  double epsilon = 0.0;
  int min_pts = 0;
  Clustering reference;
};

Workload MakeShapeWorkload() {
  Workload w;
  w.name = "t4.8k";
  SurrogateDataset surrogate;
  (void)MakeSurrogate("t4.8k", &surrogate);
  w.data = std::move(surrogate.data);
  w.epsilon = 8.5;
  w.min_pts = 20;
  DbscanParams params;
  params.epsilon = w.epsilon;
  params.min_pts = w.min_pts;
  (void)RunDbscan(w.data, params, &w.reference);
  return w;
}

Workload MakeWalkWorkload(PointIndex n) {
  Workload w;
  w.name = "walk-8d";
  RandomWalkParams gen;
  gen.n = n;
  gen.dim = 8;
  gen.num_clusters = 10;
  gen.seed = 43;
  w.data = GenerateRandomWalk(gen);
  w.epsilon = 5000.0;
  w.min_pts = 100;
  DbscanParams params;
  params.epsilon = w.epsilon;
  params.min_pts = w.min_pts;
  (void)RunDbscan(w.data, params, &w.reference);
  return w;
}

void AddRun(bench::Table* table, const Workload& w, const std::string& knob,
            const DbsvecParams& params) {
  Clustering out;
  if (!RunDbsvec(w.data, params, &out).ok()) {
    table->AddRow({w.name, knob, "ERR", "-", "-", "-"});
    return;
  }
  table->AddRow({w.name, knob,
                 bench::FormatSeconds(out.stats.elapsed_seconds),
                 bench::FormatDouble(
                     PairRecall(w.reference.labels, out.labels), 4),
                 std::to_string(out.stats.num_svdd_trainings),
                 std::to_string(out.stats.num_range_queries)});
}

int Main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const PointIndex n = static_cast<PointIndex>(args.GetInt("n", 50000));

  Workload shape = MakeShapeWorkload();
  Workload walk = MakeWalkWorkload(n);

  bench::Table table({"dataset", "knob", "time_s", "recall",
                      "svdd_trainings", "range_queries"});

  std::printf("Design ablation 1: stall recovery (library extension)\n\n");
  for (Workload* w : {&shape, &walk}) {
    for (const bool recovery : {true, false}) {
      DbsvecParams params;
      params.epsilon = w->epsilon;
      params.min_pts = w->min_pts;
      params.stall_recovery = recovery;
      AddRun(&table, *w,
             recovery ? "stall_recovery=on" : "stall_recovery=off", params);
    }
  }
  table.Print();
  table.WriteCsv(args.GetString("csv", ""));

  std::printf("\nDesign ablation 2: SVDD target cap (max_svdd_target)\n\n");
  bench::Table cap_table({"dataset", "knob", "time_s", "recall",
                          "svdd_trainings", "range_queries"});
  for (const int cap : {512, 2048, 4096, 0}) {
    DbsvecParams params;
    params.epsilon = walk.epsilon;
    params.min_pts = walk.min_pts;
    params.max_svdd_target = cap;
    AddRun(&cap_table, walk,
           cap == 0 ? "cap=unlimited" : "cap=" + std::to_string(cap),
           params);
  }
  cap_table.Print();

  std::printf("\nDesign ablation 3: penalty-weight anchor count "
              "(Eq. 5 estimate)\n\n");
  bench::Table anchor_table({"dataset", "knob", "time_s", "recall",
                             "svdd_trainings", "range_queries"});
  for (const int anchors : {32, 128, 256, 1024}) {
    DbsvecParams params;
    params.epsilon = walk.epsilon;
    params.min_pts = walk.min_pts;
    params.penalty_anchor_count = anchors;
    AddRun(&anchor_table, walk, "anchors=" + std::to_string(anchors),
           params);
  }
  anchor_table.Print();

  std::printf("\nDesign ablation 4: learning threshold T "
              "(paper: T in [2,4] is the sweet spot)\n\n");
  bench::Table t_table({"dataset", "knob", "time_s", "recall",
                        "svdd_trainings", "range_queries"});
  for (const int threshold : {0, 1, 2, 3, 4, 6}) {
    DbsvecParams params;
    params.epsilon = walk.epsilon;
    params.min_pts = walk.min_pts;
    params.learning_threshold = threshold;
    AddRun(&t_table, walk, "T=" + std::to_string(threshold), params);
  }
  t_table.Print();
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
