// Geometry checks for the 2-D shape builders behind the chameleon-style
// scenes: each primitive must put its points where its parameters say.

#include <algorithm>
#include <cmath>

#include "data/shapes.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(ShapesTest, RingPointsAtRequestedRadius) {
  Dataset dataset(2);
  const double cx = 10.0;
  const double cy = -5.0;
  const double radius = 7.0;
  AddRing(&dataset, 500, cx, cy, radius, 0.2, 11);
  double sum = 0.0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    sum += std::hypot(dataset.at(i, 0) - cx, dataset.at(i, 1) - cy);
  }
  EXPECT_NEAR(sum / dataset.size(), radius, 0.1);
}

TEST(ShapesTest, RingCoversAllAngles) {
  Dataset dataset(2);
  AddRing(&dataset, 800, 0.0, 0.0, 5.0, 0.1, 13);
  // Quadrant occupancy: every quadrant gets a reasonable share.
  int quadrant[4] = {0, 0, 0, 0};
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    const int q = (dataset.at(i, 0) >= 0.0 ? 0 : 1) +
                  (dataset.at(i, 1) >= 0.0 ? 0 : 2);
    ++quadrant[q];
  }
  for (const int count : quadrant) {
    EXPECT_GT(count, 100);
  }
}

TEST(ShapesTest, BlobCenteredCorrectly) {
  Dataset dataset(2);
  AddBlob(&dataset, 1000, 3.0, 4.0, 2.0, 17);
  double mx = 0.0;
  double my = 0.0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    mx += dataset.at(i, 0);
    my += dataset.at(i, 1);
  }
  EXPECT_NEAR(mx / dataset.size(), 3.0, 0.3);
  EXPECT_NEAR(my / dataset.size(), 4.0, 0.3);
}

TEST(ShapesTest, BarStaysNearItsSegment) {
  Dataset dataset(2);
  const double thickness = 0.5;
  AddBar(&dataset, 400, 0.0, 0.0, 10.0, 0.0, thickness, 19);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    // Horizontal bar: y is the perpendicular offset.
    EXPECT_LT(std::abs(dataset.at(i, 1)), 6.0 * thickness);
    EXPECT_GT(dataset.at(i, 0), -3.0);
    EXPECT_LT(dataset.at(i, 0), 13.0);
  }
}

TEST(ShapesTest, SineBandFollowsTheCurve) {
  Dataset dataset(2);
  const double x0 = 0.0;
  const double x1 = 100.0;
  const double y_base = 50.0;
  const double amplitude = 10.0;
  const double period = 40.0;
  const double thickness = 0.5;
  AddSineBand(&dataset, 600, x0, x1, y_base, amplitude, period, thickness,
              23);
  constexpr double kTwoPi = 6.28318530717958647692;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    const double x = dataset.at(i, 0);
    const double expected =
        y_base + amplitude * std::sin(kTwoPi * (x - x0) / period);
    EXPECT_LT(std::abs(dataset.at(i, 1) - expected), 6.0 * thickness)
        << "x=" << x;
  }
}

TEST(ShapesTest, UniformNoiseInBounds) {
  Dataset dataset(2);
  AddUniformNoise(&dataset, 300, -5.0, -2.0, 5.0, 2.0, 29);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    EXPECT_GE(dataset.at(i, 0), -5.0);
    EXPECT_LT(dataset.at(i, 0), 5.0);
    EXPECT_GE(dataset.at(i, 1), -2.0);
    EXPECT_LT(dataset.at(i, 1), 2.0);
  }
}

TEST(ShapesTest, ScenesAreDeterministicPerSeed) {
  const Dataset a = GenerateShapeScene(ShapeScene::kT7, 2000, 5);
  const Dataset b = GenerateShapeScene(ShapeScene::kT7, 2000, 5);
  EXPECT_EQ(a.data(), b.data());
  const Dataset c = GenerateShapeScene(ShapeScene::kT7, 2000, 6);
  EXPECT_NE(a.data(), c.data());
}

TEST(ShapesTest, SceneNoiseShareIsTenPercent) {
  // The scenes allocate n/10 uniform background points (the chameleon
  // benchmarks' signature); verify via the generator's own accounting by
  // regenerating the signal-only part.
  const PointIndex n = 5000;
  const Dataset scene = GenerateShapeScene(ShapeScene::kT4, n, 77);
  EXPECT_EQ(scene.size(), n);
  // All points inside the canvas.
  for (PointIndex i = 0; i < scene.size(); ++i) {
    EXPECT_GE(scene.at(i, 0), -60.0);
    EXPECT_LE(scene.at(i, 0), 760.0);
    EXPECT_GE(scene.at(i, 1), -60.0);
    EXPECT_LE(scene.at(i, 1), 380.0);
  }
}

}  // namespace
}  // namespace dbsvec
