#include <algorithm>
#include <numeric>

#include "core/penalty_weights.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(PenaltyWeightsTest, EmptyTargetReturnsEmpty) {
  Dataset dataset(2);
  Rng rng(1);
  const auto weights = ComputePenaltyWeights(dataset, {}, {}, 1.0,
                                             PenaltyWeightOptions(), &rng);
  EXPECT_TRUE(weights.empty());
}

TEST(PenaltyWeightsTest, AllWeightsPositive) {
  const Dataset dataset = testing::RandomDataset(100, 3, 10.0, 61);
  std::vector<PointIndex> target(dataset.size());
  std::iota(target.begin(), target.end(), 0);
  std::vector<int32_t> counts(dataset.size(), 0);
  Rng rng(2);
  const auto weights = ComputePenaltyWeights(dataset, target, counts, 2.0,
                                             PenaltyWeightOptions(), &rng);
  ASSERT_EQ(weights.size(), target.size());
  for (const double w : weights) {
    EXPECT_GT(w, 0.0);
  }
}

TEST(PenaltyWeightsTest, FarPointsGetSmallerWeights) {
  // Eq. 7: weight is inversely related to the kernel distance from the
  // target-set center, so boundary points must weigh less than central
  // ones.
  Rng gen(63);
  Dataset dataset(2);
  for (int i = 0; i < 200; ++i) {
    const double p[2] = {gen.Gaussian(0.0, 1.0), gen.Gaussian(0.0, 1.0)};
    dataset.Append(p);
  }
  const double far[2] = {6.0, 6.0};
  dataset.Append(far);
  const double center[2] = {0.0, 0.0};
  dataset.Append(center);
  std::vector<PointIndex> target(dataset.size());
  std::iota(target.begin(), target.end(), 0);
  std::vector<int32_t> counts(dataset.size(), 0);
  Rng rng(3);
  const auto weights = ComputePenaltyWeights(dataset, target, counts, 2.0,
                                             PenaltyWeightOptions(), &rng);
  const double far_weight = weights[dataset.size() - 2];
  const double center_weight = weights[dataset.size() - 1];
  EXPECT_LT(far_weight, center_weight);
}

TEST(PenaltyWeightsTest, OldPointsGetLargerWeights) {
  // lambda^{t_i}: a point that participated in more trainings gets an
  // exponentially larger penalty weight than an identical fresh point.
  Dataset dataset(2);
  Rng gen(65);
  for (int i = 0; i < 50; ++i) {
    const double p[2] = {gen.Gaussian(0.0, 1.0), gen.Gaussian(0.0, 1.0)};
    dataset.Append(p);
  }
  std::vector<PointIndex> target(dataset.size());
  std::iota(target.begin(), target.end(), 0);
  Rng rng(4);
  PenaltyWeightOptions options;
  options.memory_factor = 2.0;
  const auto fresh = ComputePenaltyWeights(
      dataset, target, std::vector<int32_t>(dataset.size(), 0), 2.0,
      options, &rng);
  // Age the point with the largest fresh weight (comfortably above the
  // floor, so the lambda^t factor is observable).
  const size_t pick = static_cast<size_t>(
      std::max_element(fresh.begin(), fresh.end()) - fresh.begin());
  std::vector<int32_t> counts(dataset.size(), 0);
  counts[pick] = 3;
  Rng rng2(4);
  const auto aged =
      ComputePenaltyWeights(dataset, target, counts, 2.0, options, &rng2);
  EXPECT_NEAR(aged[pick], fresh[pick] * 8.0, 1e-9);  // lambda^3 = 8.
}

TEST(PenaltyWeightsTest, AnchorEstimateTracksExactComputation) {
  const Dataset dataset = testing::RandomDataset(600, 2, 10.0, 67);
  std::vector<PointIndex> target(dataset.size());
  std::iota(target.begin(), target.end(), 0);
  std::vector<int32_t> counts(dataset.size(), 0);
  PenaltyWeightOptions exact;
  exact.anchor_count = 600;  // Full target: exact Eq. 5.
  PenaltyWeightOptions sampled;
  sampled.anchor_count = 128;
  Rng rng1(5);
  Rng rng2(5);
  const auto w_exact =
      ComputePenaltyWeights(dataset, target, counts, 3.0, exact, &rng1);
  const auto w_sampled =
      ComputePenaltyWeights(dataset, target, counts, 3.0, sampled, &rng2);
  double err = 0.0;
  for (size_t i = 0; i < w_exact.size(); ++i) {
    err += std::abs(w_exact[i] - w_sampled[i]);
  }
  err /= static_cast<double>(w_exact.size());
  EXPECT_LT(err, 0.1);
}

TEST(PenaltyWeightsTest, FloorPreventsZeroWeights) {
  // The farthest point has 1 − D/maxD = 0 in Eq. 7; the floor must keep it
  // strictly positive so it can still become a support vector.
  Dataset dataset(1, {0.0, 0.1, 0.2, 50.0});
  std::vector<PointIndex> target = {0, 1, 2, 3};
  std::vector<int32_t> counts(4, 0);
  Rng rng(6);
  const auto weights = ComputePenaltyWeights(dataset, target, counts, 5.0,
                                             PenaltyWeightOptions(), &rng);
  EXPECT_GT(weights[3], 0.0);
  EXPECT_LT(weights[3], weights[0]);
}

}  // namespace
}  // namespace dbsvec
