#include <algorithm>
#include <tuple>
#include <utility>

#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "index/kd_tree.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(KdTreeTest, EmptyDatasetReturnsNothing) {
  Dataset dataset(2);
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[2] = {0.0, 0.0};
  tree.RangeQuery(q, 10.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.RangeCount(q, 10.0), 0);
}

TEST(KdTreeTest, SinglePointHitAndMiss) {
  Dataset dataset(2, {1.0, 1.0});
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  const double near[2] = {1.5, 1.0};
  tree.RangeQuery(near, 0.6, &out);
  EXPECT_EQ(out.size(), 1u);
  const double far[2] = {3.0, 3.0};
  tree.RangeQuery(far, 0.5, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTreeTest, BoundaryDistanceIsInclusive) {
  Dataset dataset(1, {0.0, 3.0});
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[1] = {0.0};
  tree.RangeQuery(q, 3.0, &out);
  EXPECT_EQ(out.size(), 2u);  // Definition 1: dist <= epsilon.
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  Dataset dataset(2, {2.0, 2.0, 2.0, 2.0, 2.0, 2.0});
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[2] = {2.0, 2.0};
  tree.RangeQuery(q, 0.1, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(KdTreeTest, CountsMatchQueries) {
  const Dataset dataset = testing::RandomDataset(500, 3, 10.0, 21);
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  for (PointIndex i = 0; i < 20; ++i) {
    tree.RangeQuery(dataset.point(i), 1.5, &out);
    EXPECT_EQ(tree.RangeCount(dataset.point(i), 1.5),
              static_cast<PointIndex>(out.size()));
  }
}

TEST(KdTreeTest, InstrumentationCounters) {
  const Dataset dataset = testing::RandomDataset(100, 2, 10.0, 3);
  KdTree tree(dataset);
  std::vector<PointIndex> out;
  tree.RangeQuery(dataset.point(0), 1.0, &out);
  tree.RangeQuery(dataset.point(1), 1.0, &out);
  EXPECT_EQ(tree.num_range_queries(), 2u);
  EXPECT_GT(tree.num_distance_computations(), 0u);
  tree.ResetCounters();
  EXPECT_EQ(tree.num_range_queries(), 0u);
  EXPECT_EQ(tree.num_distance_computations(), 0u);
}

TEST(KdTreeKnnTest, EmptyAndDegenerateInputs) {
  Dataset empty(2);
  KdTree tree(empty);
  std::vector<std::pair<double, PointIndex>> out;
  const double q[2] = {0.0, 0.0};
  tree.KnnQuery(q, 3, &out);
  EXPECT_TRUE(out.empty());

  Dataset one(2, {1.0, 1.0});
  KdTree single(one);
  single.KnnQuery(q, 0, &out);
  EXPECT_TRUE(out.empty());
  single.KnnQuery(q, 5, &out);  // k larger than n.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 0);
}

TEST(KdTreeKnnTest, SelfIsNearestNeighbor) {
  const Dataset dataset = testing::RandomDataset(300, 3, 10.0, 23);
  KdTree tree(dataset);
  std::vector<std::pair<double, PointIndex>> out;
  for (PointIndex q = 0; q < 20; ++q) {
    tree.KnnQuery(dataset.point(q), 1, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second, q);
    EXPECT_DOUBLE_EQ(out[0].first, 0.0);
  }
}

TEST(KdTreeKnnTest, ResultsSortedAscending) {
  const Dataset dataset = testing::RandomDataset(500, 2, 10.0, 25);
  KdTree tree(dataset);
  std::vector<std::pair<double, PointIndex>> out;
  tree.KnnQuery(dataset.point(7), 20, &out);
  ASSERT_EQ(out.size(), 20u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].first, out[i].first);
  }
}

class KdTreeKnnSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KdTreeKnnSweepTest, MatchesBruteForceKnn) {
  const auto [n, dim, k] = GetParam();
  const Dataset dataset =
      testing::RandomDataset(n, dim, 10.0, 5000 + n * 3 + dim + k);
  KdTree tree(dataset);
  std::vector<std::pair<double, PointIndex>> actual;
  const int queries = std::min<PointIndex>(20, dataset.size());
  for (PointIndex q = 0; q < queries; ++q) {
    tree.KnnQuery(dataset.point(q), k, &actual);
    // Brute-force reference distances.
    std::vector<double> all;
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      all.push_back(dataset.Distance(q, i));
    }
    std::sort(all.begin(), all.end());
    const size_t expected_count =
        std::min<size_t>(static_cast<size_t>(k), all.size());
    ASSERT_EQ(actual.size(), expected_count);
    for (size_t i = 0; i < expected_count; ++i) {
      EXPECT_NEAR(actual[i].first, all[i], 1e-9) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeKnnSweepTest,
    ::testing::Combine(::testing::Values(5, 100, 1200),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(1, 5, 32)));

// Property sweep: kd-tree results must equal brute force on every
// (n, d, epsilon) combination.
using KdTreeSweepParam = std::tuple<int, int, double>;

class KdTreeSweepTest : public ::testing::TestWithParam<KdTreeSweepParam> {};

TEST_P(KdTreeSweepTest, MatchesBruteForce) {
  const auto [n, dim, epsilon] = GetParam();
  const Dataset dataset =
      testing::RandomDataset(n, dim, 10.0, 1000 + n + dim);
  const BruteForceIndex brute(dataset);
  const KdTree tree(dataset);
  std::vector<PointIndex> expected;
  std::vector<PointIndex> actual;
  const int queries = std::min<PointIndex>(50, dataset.size());
  for (PointIndex q = 0; q < queries; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &expected);
    tree.RangeQuery(dataset.point(q), epsilon, &actual);
    EXPECT_EQ(testing::Sorted(expected), testing::Sorted(actual))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeSweepTest,
    ::testing::Combine(::testing::Values(1, 10, 100, 1000),
                       ::testing::Values(1, 2, 5, 16),
                       ::testing::Values(0.1, 1.0, 4.0, 20.0)));

}  // namespace
}  // namespace dbsvec
