// Scalar-vs-SIMD agreement: the batched micro-kernels must produce
// *bit-identical* results on every backend — distances, kernel rows, SMO
// row products, and end-to-end clustering labels. Dimensions 1..19 sweep
// every remainder-lane shape of the 8-wide blocks (including d=8 and d=16
// exactly filling cache-line rows). This is the enforcement of the
// determinism contract documented in docs/PERFORMANCE.md.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "index/neighbor_index.h"
#include "simd/simd.h"
#include "simd/soa_block.h"
#include "svm/kernel.h"

namespace dbsvec {
namespace {

/// Restores the dispatch table on scope exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend)
      : previous_(simd::ActiveBackend()) {
    simd::ForceBackend(backend);
  }
  ~ScopedBackend() { simd::ForceBackend(previous_); }

 private:
  simd::Backend previous_;
};

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetGlobalThreads(threads); }
  ~ScopedThreads() { SetGlobalThreads(0); }
};

Dataset RandomDataset(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(dim);
  std::vector<double> point(dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      point[j] = rng.NextDouble() * 200.0 - 100.0;
    }
    dataset.Append(point);
  }
  return dataset;
}

bool HaveAvx2() { return simd::Avx2Available(); }
bool HaveAvx512() { return simd::Avx512Available(); }

TEST(SimdTest, BackendNamesResolve) {
  EXPECT_STREQ(simd::BackendName(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx512), "avx512");
  // Whatever the environment selected, the active table must be coherent.
  const simd::Backend active = simd::ActiveBackend();
  EXPECT_STREQ(simd::ActiveOps().name, simd::BackendName(active));
}

TEST(SimdTest, ForcedScalarBackendTakesEffect) {
  ScopedBackend scalar(simd::Backend::kScalar);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::ActiveOps().name, "scalar");
}

// --- Primitive agreement, dims 1..19 (remainder-lane sweep) -------------

TEST(SimdTest, SquaredDistancesExactlyMatchScalarAndDataset) {
  if (!HaveAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar is the only backend";
  }
  for (int dim = 1; dim <= 19; ++dim) {
    // 61 points: a prime count exercising a ragged trailing block.
    const Dataset dataset = RandomDataset(61, dim, 1000 + dim);
    const simd::SoaBlockView view(dataset);
    const auto query = dataset.point(17);

    const size_t n = static_cast<size_t>(dataset.size());
    std::vector<double> scalar_d2(n), avx2_d2(n);
    {
      ScopedBackend backend(simd::Backend::kScalar);
      view.SquaredDistances(query, 0, n, scalar_d2.data());
    }
    {
      ScopedBackend backend(simd::Backend::kAvx2);
      view.SquaredDistances(query, 0, n, avx2_d2.data());
    }
    for (size_t i = 0; i < n; ++i) {
      SCOPED_TRACE(testing::Message() << "dim=" << dim << " i=" << i);
      const double reference =
          dataset.SquaredDistanceTo(static_cast<PointIndex>(i), query);
      // Bit-exact, not approximate: same accumulation order everywhere.
      EXPECT_EQ(scalar_d2[i], reference);
      EXPECT_EQ(avx2_d2[i], reference);
    }
  }
}

TEST(SimdTest, SubrangeDistancesMatchFullRange) {
  // Leaf scans start mid-block; every (begin, end) alignment must agree.
  const int dim = 7;
  const Dataset dataset = RandomDataset(40, dim, 77);
  const simd::SoaBlockView view(dataset);
  const auto query = dataset.point(3);
  std::vector<double> full(40);
  view.SquaredDistances(query, 0, 40, full.data());
  for (size_t begin = 0; begin < 40; begin += 3) {
    for (size_t end = begin + 1; end <= 40; end += 5) {
      std::vector<double> sub(end - begin);
      view.SquaredDistances(query, begin, end, sub.data());
      for (size_t k = 0; k < sub.size(); ++k) {
        ASSERT_EQ(sub[k], full[begin + k]) << begin << ".." << end;
      }
    }
  }
}

TEST(SimdTest, CountWithinMatchesMaterializedScan) {
  for (int dim = 1; dim <= 19; ++dim) {
    const Dataset dataset = RandomDataset(53, dim, 300 + dim);
    const simd::SoaBlockView view(dataset);
    const auto query = dataset.point(5);
    const size_t n = static_cast<size_t>(dataset.size());
    std::vector<double> d2(n);
    view.SquaredDistances(query, 0, n, d2.data());
    // A threshold that lands strictly between observed distances plus the
    // exact value of one distance (inclusive boundary).
    for (const double eps_sq : {d2[11], d2[11] * 1.1, 50.0 * dim}) {
      size_t expected = 0;
      for (size_t i = 0; i < n; ++i) {
        expected += d2[i] <= eps_sq ? 1 : 0;
      }
      EXPECT_EQ(view.CountWithin(query, 0, n, eps_sq), expected)
          << "dim=" << dim << " eps_sq=" << eps_sq;
      if (HaveAvx2()) {
        ScopedBackend scalar(simd::Backend::kScalar);
        EXPECT_EQ(view.CountWithin(query, 0, n, eps_sq), expected);
      }
      // Sub-range with ragged ends.
      size_t partial = 0;
      for (size_t i = 9; i < 31; ++i) {
        partial += d2[i] <= eps_sq ? 1 : 0;
      }
      EXPECT_EQ(view.CountWithin(query, 9, 31, eps_sq), partial);
    }
  }
}

TEST(SimdTest, RbfRowMatchesGaussianKernel) {
  for (int dim : {1, 3, 8, 13}) {
    const Dataset dataset = RandomDataset(45, dim, 500 + dim);
    const simd::SoaBlockView view(dataset);
    const GaussianKernel kernel(7.5);
    const auto query = dataset.point(0);
    const size_t n = static_cast<size_t>(dataset.size());

    std::vector<float> scalar_row(n), simd_row(n);
    {
      ScopedBackend backend(simd::Backend::kScalar);
      view.RbfRow(query, kernel.inv_two_sigma_sq(), 0, n, scalar_row.data());
    }
    view.RbfRow(query, kernel.inv_two_sigma_sq(), 0, n, simd_row.data());
    for (size_t i = 0; i < n; ++i) {
      const float reference = static_cast<float>(kernel.FromSquaredDistance(
          dataset.SquaredDistanceTo(static_cast<PointIndex>(i), query)));
      ASSERT_EQ(scalar_row[i], reference) << "dim=" << dim << " i=" << i;
      ASSERT_EQ(simd_row[i], reference) << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(SimdTest, SmoRowProductsMatchScalar) {
  if (!HaveAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar is the only backend";
  }
  Rng rng(99);
  for (const size_t n : {1u, 4u, 7u, 64u, 1001u}) {
    std::vector<float> xi(n), xj(n);
    std::vector<double> y0(n);
    for (size_t k = 0; k < n; ++k) {
      xi[k] = static_cast<float>(rng.NextDouble());
      xj[k] = static_cast<float>(rng.NextDouble());
      y0[k] = rng.NextDouble() * 10.0 - 5.0;
    }
    const double a = 0.731;

    std::vector<double> y_scalar = y0, y_avx2 = y0;
    {
      ScopedBackend backend(simd::Backend::kScalar);
      simd::ActiveOps().axpy_float(a, xi.data(), y_scalar.data(), n);
      simd::ActiveOps().gradient_update(a, xi.data(), xj.data(),
                                        y_scalar.data(), n);
    }
    {
      ScopedBackend backend(simd::Backend::kAvx2);
      simd::ActiveOps().axpy_float(a, xi.data(), y_avx2.data(), n);
      simd::ActiveOps().gradient_update(a, xi.data(), xj.data(),
                                        y_avx2.data(), n);
    }
    EXPECT_EQ(y_scalar, y_avx2) << "n=" << n;
  }
}

// --- AVX-512 backend: bit-exact agreement with the scalar reference -----
//
// One SoA block row is exactly one 512-bit register, so the AVX-512
// kernels have no horizontal reductions at all; they must still match the
// scalar operation order bit for bit. Auto-skips on hosts without
// AVX-512F.

TEST(SimdTest, Avx512SquaredDistancesExactlyMatchScalarAndDataset) {
  if (!HaveAvx512()) {
    GTEST_SKIP() << "AVX-512F unavailable on this host";
  }
  for (int dim = 1; dim <= 19; ++dim) {
    const Dataset dataset = RandomDataset(61, dim, 2000 + dim);
    const simd::SoaBlockView view(dataset);
    const auto query = dataset.point(17);
    const size_t n = static_cast<size_t>(dataset.size());
    std::vector<double> avx512_d2(n);
    {
      ScopedBackend backend(simd::Backend::kAvx512);
      view.SquaredDistances(query, 0, n, avx512_d2.data());
    }
    for (size_t i = 0; i < n; ++i) {
      SCOPED_TRACE(testing::Message() << "dim=" << dim << " i=" << i);
      EXPECT_EQ(avx512_d2[i], dataset.SquaredDistanceTo(
                                  static_cast<PointIndex>(i), query));
    }
  }
}

TEST(SimdTest, Avx512CountWithinMatchesScalar) {
  if (!HaveAvx512()) {
    GTEST_SKIP() << "AVX-512F unavailable on this host";
  }
  for (int dim = 1; dim <= 19; ++dim) {
    const Dataset dataset = RandomDataset(53, dim, 4000 + dim);
    const simd::SoaBlockView view(dataset);
    const auto query = dataset.point(5);
    const size_t n = static_cast<size_t>(dataset.size());
    std::vector<double> d2(n);
    view.SquaredDistances(query, 0, n, d2.data());
    for (const double eps_sq : {d2[11], d2[11] * 1.1, 50.0 * dim}) {
      size_t full = 0, partial = 0;
      for (size_t i = 0; i < n; ++i) {
        full += d2[i] <= eps_sq ? 1 : 0;
        partial += i >= 9 && i < 31 && d2[i] <= eps_sq ? 1 : 0;
      }
      ScopedBackend backend(simd::Backend::kAvx512);
      EXPECT_EQ(view.CountWithin(query, 0, n, eps_sq), full)
          << "dim=" << dim << " eps_sq=" << eps_sq;
      EXPECT_EQ(view.CountWithin(query, 9, 31, eps_sq), partial)
          << "dim=" << dim << " eps_sq=" << eps_sq;
    }
  }
}

TEST(SimdTest, Avx512SmoRowProductsMatchScalar) {
  if (!HaveAvx512()) {
    GTEST_SKIP() << "AVX-512F unavailable on this host";
  }
  Rng rng(99);
  for (const size_t n : {1u, 4u, 7u, 8u, 64u, 1001u}) {
    std::vector<float> xi(n), xj(n);
    std::vector<double> y0(n);
    for (size_t k = 0; k < n; ++k) {
      xi[k] = static_cast<float>(rng.NextDouble());
      xj[k] = static_cast<float>(rng.NextDouble());
      y0[k] = rng.NextDouble() * 10.0 - 5.0;
    }
    const double a = 0.731;
    std::vector<double> y_scalar = y0, y_avx512 = y0;
    {
      ScopedBackend backend(simd::Backend::kScalar);
      simd::ActiveOps().axpy_float(a, xi.data(), y_scalar.data(), n);
      simd::ActiveOps().gradient_update(a, xi.data(), xj.data(),
                                        y_scalar.data(), n);
    }
    {
      ScopedBackend backend(simd::Backend::kAvx512);
      simd::ActiveOps().axpy_float(a, xi.data(), y_avx512.data(), n);
      simd::ActiveOps().gradient_update(a, xi.data(), xj.data(),
                                        y_avx512.data(), n);
    }
    EXPECT_EQ(y_scalar, y_avx512) << "n=" << n;
  }
}

// --- End-to-end label agreement on the tier-1 synthetic workloads -------

constexpr IndexType kEngines[] = {IndexType::kBruteForce, IndexType::kKdTree,
                                  IndexType::kRStarTree, IndexType::kGrid};

TEST(SimdTest, ClusteringLabelsBitIdenticalAcrossBackendsAndThreads) {
  if (!HaveAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar is the only backend";
  }
  RandomWalkParams params;
  params.n = 4'000;
  params.dim = 4;
  params.num_clusters = 5;
  params.seed = 23;
  const Dataset dataset = GenerateRandomWalk(params);

  for (const IndexType engine : kEngines) {
    DbsvecParams dbsvec_params;
    dbsvec_params.epsilon = 5'000.0;
    dbsvec_params.min_pts = 50;
    dbsvec_params.index = engine;
    dbsvec_params.classify_points = true;

    Clustering reference;  // scalar, sequential
    {
      ScopedBackend backend(simd::Backend::kScalar);
      ScopedThreads threads(1);
      ASSERT_TRUE(RunDbsvec(dataset, dbsvec_params, &reference).ok());
    }
    std::vector<simd::Backend> backends = {simd::Backend::kScalar,
                                           simd::Backend::kAvx2};
    if (HaveAvx512()) {
      backends.push_back(simd::Backend::kAvx512);
    }
    for (const simd::Backend backend_choice : backends) {
      for (const int threads_choice : {1, 8}) {
        ScopedBackend backend(backend_choice);
        ScopedThreads threads(threads_choice);
        Clustering run;
        ASSERT_TRUE(RunDbsvec(dataset, dbsvec_params, &run).ok());
        SCOPED_TRACE(testing::Message()
                     << "engine=" << IndexTypeName(engine) << " backend="
                     << simd::BackendName(backend_choice)
                     << " threads=" << threads_choice);
        EXPECT_EQ(run.labels, reference.labels);
        EXPECT_EQ(run.point_types, reference.point_types);
        EXPECT_EQ(run.num_clusters, reference.num_clusters);
        EXPECT_EQ(run.stats.num_range_queries,
                  reference.stats.num_range_queries);
        EXPECT_EQ(run.stats.num_distance_computations,
                  reference.stats.num_distance_computations);
        EXPECT_EQ(run.stats.smo_iterations, reference.stats.smo_iterations);
        EXPECT_EQ(run.stats.num_support_vectors,
                  reference.stats.num_support_vectors);
      }
    }
  }
}

TEST(SimdTest, ShapesWorkloadLabelsBitIdenticalAcrossBackends) {
  if (!HaveAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable; scalar is the only backend";
  }
  // Second tier-1 generator: Gaussian blobs at dim 2 (exercises the 2-d
  // remainder-lane path end to end).
  GaussianBlobsParams blob_params;
  blob_params.n = 1'500;
  blob_params.dim = 2;
  blob_params.num_clusters = 3;
  blob_params.seed = 7;
  const Dataset dataset = GenerateGaussianBlobs(blob_params);

  DbsvecParams params;
  params.epsilon = 3.0;
  params.min_pts = 10;

  Clustering reference;
  {
    ScopedBackend backend(simd::Backend::kScalar);
    ScopedThreads threads(1);
    ASSERT_TRUE(RunDbsvec(dataset, params, &reference).ok());
  }
  for (const int threads_choice : {1, 8}) {
    ScopedBackend backend(simd::Backend::kAvx2);
    ScopedThreads threads(threads_choice);
    Clustering run;
    ASSERT_TRUE(RunDbsvec(dataset, params, &run).ok());
    EXPECT_EQ(run.labels, reference.labels) << "threads=" << threads_choice;
  }
}

}  // namespace
}  // namespace dbsvec
