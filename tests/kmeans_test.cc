#include "cluster/kmeans.h"
#include "data/synthetic.h"
#include "eval/external_metrics.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(KMeansTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0, 1.0, 1.0});
  Clustering out;
  KMeansParams params;
  params.k = 0;
  EXPECT_FALSE(RunKMeans(dataset, params, &out).ok());
  params.k = 5;  // More clusters than points.
  EXPECT_FALSE(RunKMeans(dataset, params, &out).ok());
}

TEST(KMeansTest, AssignsEveryPoint) {
  const Dataset dataset = testing::RandomDataset(300, 3, 10.0, 91);
  Clustering out;
  KMeansParams params;
  params.k = 7;
  ASSERT_TRUE(RunKMeans(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 7);
  EXPECT_EQ(out.CountNoise(), 0);
  for (const int32_t label : out.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 7);
  }
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  GaussianBlobsParams gen;
  gen.n = 900;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 0.7;
  gen.min_center_separation = 20.0;
  gen.seed = 93;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  Clustering out;
  KMeansParams params;
  params.k = 3;
  ASSERT_TRUE(RunKMeans(dataset, params, &out).ok());
  EXPECT_GT(AdjustedRandIndex(truth, out.labels), 0.95);
}

TEST(KMeansTest, DeterministicForEqualSeeds) {
  const Dataset dataset = testing::RandomDataset(200, 2, 10.0, 95);
  KMeansParams params;
  params.k = 4;
  Clustering a;
  Clustering b;
  ASSERT_TRUE(RunKMeans(dataset, params, &a).ok());
  ASSERT_TRUE(RunKMeans(dataset, params, &b).ok());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(KMeansTest, CentroidsMatchAssignments) {
  const Dataset dataset = testing::RandomDataset(250, 2, 10.0, 97);
  KMeansParams params;
  params.k = 5;
  Clustering out;
  std::vector<double> centroids;
  ASSERT_TRUE(
      RunKMeansWithCentroids(dataset, params, &out, &centroids).ok());
  ASSERT_EQ(centroids.size(), 5u * 2u);
  // Every point must be nearest to its assigned centroid.
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    double best = 1e300;
    int best_c = -1;
    for (int c = 0; c < 5; ++c) {
      const std::span<const double> center{centroids.data() + 2 * c, 2};
      const double d = dataset.SquaredDistanceTo(i, center);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    EXPECT_EQ(out.labels[i], best_c);
  }
}

TEST(KMeansTest, KEqualsOneGroupsEverything) {
  const Dataset dataset = testing::RandomDataset(50, 2, 10.0, 99);
  Clustering out;
  KMeansParams params;
  params.k = 1;
  ASSERT_TRUE(RunKMeans(dataset, params, &out).ok());
  for (const int32_t label : out.labels) {
    EXPECT_EQ(label, 0);
  }
}

}  // namespace
}  // namespace dbsvec
