#ifndef DBSVEC_TESTS_TEST_UTIL_H_
#define DBSVEC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"

namespace dbsvec::testing {

/// True iff two labelings are the same partition up to cluster renaming,
/// with noise (-1) required to match exactly.
inline bool SamePartition(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  std::map<int32_t, int32_t> a_to_b;
  std::map<int32_t, int32_t> b_to_a;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] < 0) != (b[i] < 0)) {
      return false;
    }
    if (a[i] < 0) {
      continue;
    }
    const auto [it_ab, ins_ab] = a_to_b.emplace(a[i], b[i]);
    if (!ins_ab && it_ab->second != b[i]) {
      return false;
    }
    const auto [it_ba, ins_ba] = b_to_a.emplace(b[i], a[i]);
    if (!ins_ba && it_ba->second != a[i]) {
      return false;
    }
  }
  return true;
}

/// Uniform random dataset in [0, extent]^dim.
inline Dataset RandomDataset(PointIndex n, int dim, double extent,
                             uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(dim);
  dataset.Reserve(n);
  std::vector<double> p(dim);
  for (PointIndex i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      p[j] = rng.Uniform(0.0, extent);
    }
    dataset.Append(p);
  }
  return dataset;
}

/// Sorted copy, for set comparisons of range-query results.
inline std::vector<PointIndex> Sorted(std::vector<PointIndex> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace dbsvec::testing

#endif  // DBSVEC_TESTS_TEST_UTIL_H_
