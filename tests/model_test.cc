#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "model/serialize.h"
#include "test_util.h"

namespace dbsvec {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Small hand-built model exercising every field, including transform and
/// an empty-feature sphere.
DbsvecModel HandBuiltModel() {
  DbsvecModel model;
  model.epsilon = 0.75;
  model.min_pts = 3;
  model.dim = 2;
  model.train_size = 9;
  model.num_clusters = 2;
  model.train_min = {0.0, -1.0};
  model.train_max = {4.0, 3.0};
  model.transform.scale = {2.0, 0.0};
  model.transform.shift = {-1.0, 5.0};
  model.core_points = Dataset(2, {0.0, 0.0, 0.5, 0.5, 3.0, 3.0});
  model.core_labels = {0, 0, 1};
  model.core_is_sv = {0, 1, 1};
  SubClusterSphere a;
  a.cluster = 0;
  a.sigma = 0.3;
  a.radius_sq = 0.9;
  a.center = {0.25, 0.25};
  a.radius = 0.4;
  a.num_members = 5;
  a.num_support_vectors = 2;
  SubClusterSphere b;
  b.cluster = 1;
  b.center = {3.0, 3.0};
  b.num_members = 4;
  model.spheres = {a, b};
  return model;
}

/// Model fitted on real data, for round trips of a nontrivial artifact.
DbsvecModel FittedModel() {
  GaussianBlobsParams data_params;
  data_params.n = 600;
  data_params.dim = 3;
  data_params.num_clusters = 4;
  data_params.noise_fraction = 0.02;
  data_params.seed = 11;
  const Dataset dataset = GenerateGaussianBlobs(data_params);
  DbsvecParams params;
  params.epsilon = 6.0;
  params.min_pts = 10;
  Clustering out;
  DbsvecModel model;
  EXPECT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());
  EXPECT_GT(model.core_points.size(), 0);
  return model;
}

TEST(ModelFormatTest, Crc32KnownVector) {
  const std::string text = "123456789";
  const std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(text.data()), text.size());
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(ModelFormatTest, ByteReaderRejectsShortBuffer) {
  const std::vector<uint8_t> three = {1, 2, 3};
  ByteReader reader(three);
  uint32_t value = 0;
  EXPECT_FALSE(reader.ReadU32(&value).ok());
  double d = 0.0;
  EXPECT_FALSE(ByteReader(three).ReadF64(&d).ok());
  std::vector<double> doubles;
  EXPECT_FALSE(ByteReader(three).ReadF64Vector(1u << 30, &doubles).ok());
}

TEST(ModelFormatTest, WriterReaderRoundTripValues) {
  ByteWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteI64(-42);
  writer.WriteF64(-0.125);
  ByteReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  double f64 = 0.0;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, -0.125);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ModelFormatTest, SerializeDeserializeSerializeIsByteIdentical) {
  for (const DbsvecModel& model : {HandBuiltModel(), FittedModel()}) {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(SerializeModel(model, &bytes).ok());
    DbsvecModel parsed;
    ASSERT_TRUE(DeserializeModel(bytes, &parsed).ok());
    EXPECT_TRUE(parsed == model);
    std::vector<uint8_t> bytes_again;
    ASSERT_TRUE(SerializeModel(parsed, &bytes_again).ok());
    EXPECT_EQ(bytes, bytes_again);
  }
}

TEST(ModelFormatTest, SaveLoadFileRoundTrip) {
  const DbsvecModel model = FittedModel();
  const std::string path = TempPath("dbsvec_model_roundtrip.dbsvm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  DbsvecModel loaded;
  ASSERT_TRUE(LoadModel(path, &loaded).ok());
  EXPECT_TRUE(loaded == model);
  std::remove(path.c_str());
}

TEST(ModelFormatTest, LoadMissingFileFails) {
  DbsvecModel model;
  EXPECT_FALSE(LoadModel("/nonexistent/never.dbsvm", &model).ok());
}

TEST(ModelFormatTest, EveryTruncationFailsCleanly) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(HandBuiltModel(), &bytes).ok());
  ASSERT_GT(bytes.size(), 24u);
  // A fuzz loop over every prefix: no truncation may parse or crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    DbsvecModel parsed;
    const Status status = DeserializeModel(
        std::span<const uint8_t>(bytes.data(), len), &parsed);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(ModelFormatTest, ChecksumCatchesEveryFlippedPayloadByte) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(HandBuiltModel(), &bytes).ok());
  // Flip one byte at a time across the whole payload (after the 24-byte
  // header); CRC-32 must reject each single-byte corruption.
  for (size_t i = 24; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x5A;
    DbsvecModel parsed;
    EXPECT_FALSE(DeserializeModel(corrupt, &parsed).ok())
        << "flip at byte " << i << " parsed";
  }
}

TEST(ModelFormatTest, BadMagicFails) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(HandBuiltModel(), &bytes).ok());
  bytes[0] = 'X';
  DbsvecModel parsed;
  const Status status = DeserializeModel(bytes, &parsed);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

TEST(ModelFormatTest, FutureVersionIsFailedPrecondition) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(HandBuiltModel(), &bytes).ok());
  // The version lives in bytes 8..11, little-endian, after the magic.
  bytes[8] = static_cast<uint8_t>(DbsvecModel::kFormatVersion + 1);
  DbsvecModel parsed;
  const Status status = DeserializeModel(bytes, &parsed);
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
}

TEST(ModelFormatTest, TrailingBytesFail) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(HandBuiltModel(), &bytes).ok());
  bytes.push_back(0);
  DbsvecModel parsed;
  EXPECT_FALSE(DeserializeModel(bytes, &parsed).ok());
}

TEST(ModelFormatTest, GarbageBuffersFailCleanly) {
  DbsvecModel parsed;
  EXPECT_FALSE(DeserializeModel({}, &parsed).ok());
  const std::vector<uint8_t> zeros(64, 0);
  EXPECT_FALSE(DeserializeModel(zeros, &parsed).ok());
  std::vector<uint8_t> noise(256);
  Rng rng(3);
  for (auto& b : noise) {
    b = static_cast<uint8_t>(rng.Uniform(0.0, 256.0));
  }
  EXPECT_FALSE(DeserializeModel(noise, &parsed).ok());
}

TEST(ModelFormatTest, ValidateRejectsStructuralErrors) {
  EXPECT_TRUE(ValidateModel(HandBuiltModel()).ok());
  {
    DbsvecModel m = HandBuiltModel();
    m.epsilon = 0.0;
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    DbsvecModel m = HandBuiltModel();
    m.min_pts = 0;
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    DbsvecModel m = HandBuiltModel();
    m.core_labels[0] = m.num_clusters;  // Out of range.
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    DbsvecModel m = HandBuiltModel();
    m.core_labels.pop_back();  // Parallel arrays out of sync.
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    DbsvecModel m = HandBuiltModel();
    m.spheres[0].center.pop_back();  // Sphere dim mismatch.
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    DbsvecModel m = HandBuiltModel();
    m.transform.scale.pop_back();  // Transform dim mismatch.
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  // Serialization refuses to write an invalid model.
  DbsvecModel bad = HandBuiltModel();
  bad.epsilon = -1.0;
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(SerializeModel(bad, &bytes).ok());
}

TEST(ModelFormatTest, ModelEmissionDoesNotChangeClustering) {
  GaussianBlobsParams data_params;
  data_params.n = 500;
  data_params.dim = 2;
  data_params.num_clusters = 3;
  data_params.seed = 5;
  const Dataset dataset = GenerateGaussianBlobs(data_params);
  DbsvecParams params;
  params.epsilon = 5.0;
  params.min_pts = 8;
  Clustering without_model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &without_model).ok());
  Clustering with_model;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &with_model, &model).ok());
  EXPECT_EQ(without_model.labels, with_model.labels);
  EXPECT_EQ(without_model.num_clusters, with_model.num_clusters);
  EXPECT_EQ(without_model.stats.num_range_queries,
            with_model.stats.num_range_queries);
}

}  // namespace
}  // namespace dbsvec
