#include <filesystem>
#include <string>
#include <vector>

#include "cli/cli_options.h"
#include "cli/cli_runner.h"
#include "common/csv.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec::cli {
namespace {

TEST(CliOptionsTest, DefaultsWhenNoArgs) {
  CliOptions options;
  ASSERT_TRUE(ParseCliOptions({}, &options).ok());
  EXPECT_EQ(options.algorithm, Algorithm::kDbsvec);
  EXPECT_EQ(options.demo, DemoData::kWalk);
  EXPECT_FALSE(options.show_help);
}

TEST(CliOptionsTest, ParsesFullCommandLine) {
  CliOptions options;
  const std::vector<std::string> args = {
      "--algorithm=rho", "--eps=2.5",       "--minpts=30",
      "--rho=0.01",      "--index=rstar",   "--seed=99",
      "--demo=blobs",    "--demo-n=500",    "--demo-dim=3",
      "--output=/tmp/x.csv", "--compare-dbscan"};
  ASSERT_TRUE(ParseCliOptions(args, &options).ok());
  EXPECT_EQ(options.algorithm, Algorithm::kRhoApprox);
  EXPECT_DOUBLE_EQ(options.epsilon, 2.5);
  EXPECT_EQ(options.min_pts, 30);
  EXPECT_DOUBLE_EQ(options.rho, 0.01);
  EXPECT_EQ(options.index, IndexType::kRStarTree);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.demo, DemoData::kBlobs);
  EXPECT_EQ(options.demo_n, 500);
  EXPECT_EQ(options.demo_dim, 3);
  EXPECT_EQ(options.output_path, "/tmp/x.csv");
  EXPECT_TRUE(options.compare_dbscan);
}

TEST(CliOptionsTest, HdbscanFlags) {
  CliOptions options;
  ASSERT_TRUE(
      ParseCliOptions({"--algorithm=hdbscan", "--mcs=25"}, &options).ok());
  EXPECT_EQ(options.algorithm, Algorithm::kHdbscan);
  EXPECT_EQ(options.min_cluster_size, 25);
  EXPECT_FALSE(ParseCliOptions({"--mcs=0"}, &options).ok());
}

TEST(CliOptionsTest, NuModes) {
  CliOptions options;
  ASSERT_TRUE(ParseCliOptions({"--nu=auto"}, &options).ok());
  EXPECT_EQ(options.nu_mode, NuMode::kAuto);
  ASSERT_TRUE(ParseCliOptions({"--nu=min"}, &options).ok());
  EXPECT_EQ(options.nu_mode, NuMode::kMinimum);
  ASSERT_TRUE(ParseCliOptions({"--nu=0.25"}, &options).ok());
  EXPECT_EQ(options.nu_mode, NuMode::kFixed);
  EXPECT_DOUBLE_EQ(options.fixed_nu, 0.25);
}

TEST(CliOptionsTest, RejectsBadInput) {
  CliOptions options;
  EXPECT_FALSE(ParseCliOptions({"positional"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--no-such-flag=1"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--algorithm=optics"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--eps=-3"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--eps=abc"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--minpts=0"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--nu=1.5"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--index=quadtree"}, &options).ok());
  EXPECT_FALSE(ParseCliOptions({"--demo=moons"}, &options).ok());
}

TEST(CliOptionsTest, HelpFlag) {
  CliOptions options;
  ASSERT_TRUE(ParseCliOptions({"--help"}, &options).ok());
  EXPECT_TRUE(options.show_help);
  EXPECT_FALSE(HelpText().empty());
}

TEST(CliOptionsTest, AlgorithmNamesNonEmpty) {
  for (const Algorithm a :
       {Algorithm::kDbsvec, Algorithm::kDbscan, Algorithm::kRhoApprox,
        Algorithm::kLshDbscan, Algorithm::kNqDbscan, Algorithm::kKMeans}) {
    EXPECT_GT(std::string(AlgorithmName(a)).size(), 0u);
  }
}

TEST(CliRunnerTest, DemoGeneratorsProduceRequestedShape) {
  for (const DemoData demo :
       {DemoData::kWalk, DemoData::kBlobs, DemoData::kT4}) {
    CliOptions options;
    options.demo = demo;
    options.demo_n = 400;
    options.demo_dim = demo == DemoData::kT4 ? 2 : 3;
    Dataset dataset(1);
    ASSERT_TRUE(LoadInput(options, &dataset).ok());
    EXPECT_EQ(dataset.size(), 400);
    if (demo != DemoData::kT4) {
      EXPECT_EQ(dataset.dim(), 3);
    } else {
      EXPECT_EQ(dataset.dim(), 2);
    }
  }
}

TEST(CliRunnerTest, LoadsCsvInput) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dbsvec_cli_in.csv")
          .string();
  Dataset points(2, {0.0, 0.0, 1.0, 1.0, 5.0, 5.0});
  ASSERT_TRUE(WriteCsv(points, {}, path).ok());
  CliOptions options;
  options.input_path = path;
  Dataset dataset(1);
  ASSERT_TRUE(LoadInput(options, &dataset).ok());
  EXPECT_EQ(dataset.size(), 3);
  EXPECT_EQ(dataset.dim(), 2);
  std::remove(path.c_str());
}

TEST(CliRunnerTest, MissingInputFileFails) {
  CliOptions options;
  options.input_path = "/nonexistent/never.csv";
  Dataset dataset(1);
  EXPECT_FALSE(LoadInput(options, &dataset).ok());
}

TEST(CliRunnerTest, ResolveEpsilonPrefersExplicitValue) {
  CliOptions options;
  options.epsilon = 3.5;
  Dataset dataset(1, {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(ResolveEpsilon(options, dataset), 3.5);
  options.epsilon = 0.0;
  options.min_pts = 2;
  EXPECT_GT(ResolveEpsilon(options, dataset), 0.0);
}

TEST(CliOptionsTest, ParsesFitCommand) {
  CliOptions options;
  ASSERT_TRUE(ParseCliOptions({"fit", "--model-out=/tmp/m.dbsvm",
                               "--normalize", "--demo=blobs"},
                              &options)
                  .ok());
  EXPECT_EQ(options.command, Command::kFit);
  EXPECT_EQ(options.model_out_path, "/tmp/m.dbsvm");
  EXPECT_TRUE(options.normalize);
  // fit without --model-out is an error (unless just asking for help).
  CliOptions fresh;
  EXPECT_FALSE(ParseCliOptions({"fit"}, &fresh).ok());
  CliOptions help;
  EXPECT_TRUE(ParseCliOptions({"fit", "--help"}, &help).ok());
}

TEST(CliOptionsTest, ParsesAssignCommand) {
  CliOptions options;
  ASSERT_TRUE(ParseCliOptions({"assign", "--model=/tmp/m.dbsvm",
                               "--input=/tmp/p.csv", "--batch=128"},
                              &options)
                  .ok());
  EXPECT_EQ(options.command, Command::kAssign);
  EXPECT_EQ(options.model_path, "/tmp/m.dbsvm");
  EXPECT_EQ(options.input_path, "/tmp/p.csv");
  EXPECT_EQ(options.assign_batch, 128);
  // Both --model and --input are required.
  CliOptions no_model;
  EXPECT_FALSE(
      ParseCliOptions({"assign", "--input=/tmp/p.csv"}, &no_model).ok());
  CliOptions no_input;
  EXPECT_FALSE(
      ParseCliOptions({"assign", "--model=/tmp/m.dbsvm"}, &no_input).ok());
  CliOptions bad_batch;
  EXPECT_FALSE(ParseCliOptions({"assign", "--model=/tmp/m.dbsvm",
                                "--input=/tmp/p.csv", "--batch=0"},
                               &bad_batch)
                   .ok());
  // The command word is only recognized in first position.
  CliOptions late_word;
  EXPECT_FALSE(ParseCliOptions({"--eps=2", "assign"}, &late_word).ok());
}

TEST(CliRunnerTest, FitAssignRoundTripReproducesTrainingLabels) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path = (tmp / "dbsvec_cli_fit.dbsvm").string();
  const std::string points_path = (tmp / "dbsvec_cli_fit_pts.csv").string();

  CliOptions fit;
  fit.command = Command::kFit;
  fit.model_out_path = model_path;
  fit.demo = DemoData::kBlobs;
  fit.demo_n = 800;
  fit.demo_dim = 3;
  fit.min_pts = 10;
  fit.normalize = true;
  Dataset dataset(1);
  ASSERT_TRUE(LoadInput(fit, &dataset).ok());
  // Keep the raw points: assign must see pre-normalization coordinates.
  const Dataset raw = dataset;
  Clustering trained;
  DbsvecModel model;
  ASSERT_TRUE(RunFit(fit, &dataset, &trained, &model).ok());
  ASSERT_TRUE(WriteCsv(raw, {}, points_path).ok());
  EXPECT_FALSE(model.transform.empty());

  CliOptions assign;
  assign.command = Command::kAssign;
  assign.model_path = model_path;
  assign.input_path = points_path;
  assign.assign_batch = 100;  // Forces several streamed batches.
  Dataset points(1);
  std::vector<int32_t> labels;
  ASSERT_TRUE(RunAssign(assign, &points, &labels).ok());
  std::remove(model_path.c_str());
  std::remove(points_path.c_str());

  ASSERT_EQ(points.size(), raw.size());
  ASSERT_EQ(static_cast<PointIndex>(labels.size()), raw.size());
  // Assigning the training set back must reproduce the training labels
  // (core-reachable points exactly; blobs have no ambiguous border here).
  int32_t mismatches = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    mismatches += labels[i] != trained.labels[i] ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(CliRunnerTest, RunAssignFailsOnDimensionMismatch) {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path = (tmp / "dbsvec_cli_dim.dbsvm").string();
  const std::string points_path = (tmp / "dbsvec_cli_dim_pts.csv").string();

  CliOptions fit;
  fit.command = Command::kFit;
  fit.model_out_path = model_path;
  fit.demo = DemoData::kBlobs;
  fit.demo_n = 400;
  fit.demo_dim = 2;
  fit.min_pts = 8;
  Dataset dataset(1);
  ASSERT_TRUE(LoadInput(fit, &dataset).ok());
  Clustering trained;
  DbsvecModel model;
  ASSERT_TRUE(RunFit(fit, &dataset, &trained, &model).ok());

  Dataset wrong_dim(3, {1.0, 2.0, 3.0});
  ASSERT_TRUE(WriteCsv(wrong_dim, {}, points_path).ok());
  CliOptions assign;
  assign.command = Command::kAssign;
  assign.model_path = model_path;
  assign.input_path = points_path;
  Dataset points(1);
  std::vector<int32_t> labels;
  EXPECT_FALSE(RunAssign(assign, &points, &labels).ok());
  std::remove(model_path.c_str());
  std::remove(points_path.c_str());
}

TEST(CliRunnerTest, EveryAlgorithmRunsOnDemoData) {
  CliOptions options;
  options.demo = DemoData::kBlobs;
  options.demo_n = 300;
  options.demo_dim = 2;
  options.min_pts = 5;
  options.kmeans_k = 3;
  Dataset dataset(1);
  ASSERT_TRUE(LoadInput(options, &dataset).ok());
  const double epsilon = ResolveEpsilon(options, dataset);
  for (const Algorithm a :
       {Algorithm::kDbsvec, Algorithm::kDbscan, Algorithm::kRhoApprox,
        Algorithm::kLshDbscan, Algorithm::kNqDbscan, Algorithm::kKMeans,
        Algorithm::kHdbscan}) {
    options.algorithm = a;
    Clustering out;
    ASSERT_TRUE(RunAlgorithm(options, dataset, epsilon, &out).ok())
        << AlgorithmName(a);
    EXPECT_EQ(static_cast<PointIndex>(out.labels.size()), dataset.size())
        << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace dbsvec::cli
