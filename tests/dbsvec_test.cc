#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "cluster/dbscan.h"
#include "core/dbsvec.h"
#include "data/shapes.h"
#include "data/surrogates.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "test_util.h"

namespace dbsvec {
namespace {

Dataset BlobScene(PointIndex n, int dim, int clusters, double noise,
                  uint64_t seed) {
  GaussianBlobsParams gen;
  gen.n = n;
  gen.dim = dim;
  gen.num_clusters = clusters;
  gen.stddev = 1.0;
  gen.noise_fraction = noise;
  gen.seed = seed;
  return GenerateGaussianBlobs(gen);
}

/// Core flags computed independently of any clusterer.
std::vector<char> CoreFlags(const Dataset& dataset, double epsilon,
                            int min_pts) {
  const BruteForceIndex index(dataset);
  std::vector<char> core(dataset.size(), 0);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    core[i] =
        index.RangeCount(dataset.point(i), epsilon) >= min_pts ? 1 : 0;
  }
  return core;
}

TEST(DbsvecTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  Clustering out;
  DbsvecParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
  params.epsilon = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
  params.min_pts = 5;
  params.learning_threshold = -1;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
  params.learning_threshold = 3;
  params.memory_factor = 1.0;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
  params.memory_factor = 2.0;
  params.nu_mode = NuMode::kFixed;
  params.fixed_nu = 0.0;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
  params.fixed_nu = 1.5;
  EXPECT_FALSE(RunDbsvec(dataset, params, &out).ok());
}

TEST(DbsvecTest, EmptyDataset) {
  Dataset dataset(2);
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, DbsvecParams(), &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
  EXPECT_TRUE(out.labels.empty());
}

TEST(DbsvecTest, SinglePointIsNoise) {
  Dataset dataset(2, {1.0, 1.0});
  Clustering out;
  DbsvecParams params;
  params.epsilon = 1.0;
  params.min_pts = 2;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
  EXPECT_EQ(out.labels[0], Clustering::kNoise);
}

TEST(DbsvecTest, MinPtsOneClustersEveryPoint) {
  Dataset dataset(1, {0.0, 10.0, 20.0});
  Clustering out;
  DbsvecParams params;
  params.epsilon = 1.0;
  params.min_pts = 1;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 3);
  EXPECT_EQ(out.CountNoise(), 0);
}

TEST(DbsvecTest, MatchesDbscanOnSimpleScene) {
  Dataset dataset(2, {0.0, 0.0, 0.1, 0.0, 0.0, 0.1,
                      5.0, 5.0, 5.1, 5.0, 5.0, 5.1,
                      20.0, 20.0});
  DbsvecParams params;
  params.epsilon = 0.2;
  params.min_pts = 3;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_EQ(out.CountNoise(), 1);
}

TEST(DbsvecTest, DeterministicForEqualSeeds) {
  const Dataset dataset = BlobScene(1200, 3, 4, 0.03, 201);
  DbsvecParams params;
  params.epsilon = SuggestEpsilon(dataset, 5);
  params.min_pts = 5;
  Clustering a;
  Clustering b;
  ASSERT_TRUE(RunDbsvec(dataset, params, &a).ok());
  ASSERT_TRUE(RunDbsvec(dataset, params, &b).ok());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DbsvecTest, UsesFarFewerRangeQueriesThanDbscan) {
  // In the paper's dense regime (neighborhoods much larger than MinPts)
  // DBSVEC needs a small fraction of DBSCAN's n range queries.
  RandomWalkParams gen;
  gen.n = 10'000;
  gen.dim = 8;
  gen.num_clusters = 8;
  gen.seed = 203;
  const Dataset dataset = GenerateRandomWalk(gen);
  DbsvecParams params;
  params.epsilon = 5000.0;
  params.min_pts = 50;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_LT(out.stats.num_range_queries,
            static_cast<uint64_t>(dataset.size()) / 4);
  EXPECT_GT(out.stats.num_svdd_trainings, 0u);
  EXPECT_GT(out.stats.num_support_vectors, 0u);
}

TEST(DbsvecTest, Theorem1NecessityCorePointsNeverStraddle) {
  // Theorem 1: every DBSVEC cluster is a subset of some DBSCAN cluster.
  // Checked on core points (border points are legitimately tie-broken
  // differently by the two algorithms).
  const Dataset dataset = BlobScene(1500, 2, 4, 0.05, 205);
  const int min_pts = 6;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  const std::vector<char> core = CoreFlags(dataset, epsilon, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());

  // Map each DBSVEC cluster to the DBSCAN cluster of its first core point;
  // any second core point in a different DBSCAN cluster violates Thm. 1.
  std::unordered_map<int32_t, int32_t> to_dbscan;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    if (!core[i] || out.labels[i] < 0) {
      continue;
    }
    const auto [it, inserted] =
        to_dbscan.emplace(out.labels[i], reference.labels[i]);
    EXPECT_EQ(it->second, reference.labels[i]) << "point " << i;
  }
}

TEST(DbsvecTest, Theorem3NoiseSetsIdentical) {
  const Dataset dataset = BlobScene(1500, 2, 4, 0.08, 207);
  const int min_pts = 6;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());

  for (PointIndex i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(reference.labels[i] == Clustering::kNoise,
              out.labels[i] == Clustering::kNoise)
        << "point " << i;
  }
}

TEST(DbsvecTest, Theorem2BorderPointsMatchWhenCoreSetsMatch) {
  // Theorem 2: if a DBSVEC cluster and a DBSCAN cluster have the same core
  // points, their border points coincide. Both algorithms run exact range
  // queries here, so the core sets match and every border point must (a)
  // be border in both and (b) sit in a cluster containing a core point
  // within epsilon.
  const Dataset dataset = BlobScene(1200, 2, 4, 0.08, 229);
  const int min_pts = 6;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  const std::vector<char> core = CoreFlags(dataset, epsilon, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.classify_points = true;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  ASSERT_EQ(out.point_types.size(), reference.point_types.size());

  const BruteForceIndex index(dataset);
  std::vector<PointIndex> neighborhood;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    // Role agreement between the exact algorithm and DBSVEC.
    EXPECT_EQ(reference.point_types[i] == PointType::kCore, core[i] == 1);
    EXPECT_EQ(out.point_types[i], reference.point_types[i]) << "point " << i;
    if (out.point_types[i] != PointType::kBorder) {
      continue;
    }
    // A border point's cluster must contain a core point within epsilon.
    index.RangeQuery(dataset.point(i), epsilon, &neighborhood);
    bool witnessed = false;
    for (const PointIndex j : neighborhood) {
      if (core[j] && out.labels[j] == out.labels[i]) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << "border point " << i;
  }
}

TEST(DbsvecTest, PointTypesEmptyUnlessRequested) {
  const Dataset dataset = BlobScene(300, 2, 2, 0.02, 231);
  DbsvecParams params;
  params.epsilon = SuggestEpsilon(dataset, 5);
  params.min_pts = 5;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_TRUE(out.point_types.empty());
}

TEST(DbsvecTest, AllCorePointsAreClustered) {
  // A core point can never end up as noise in DBSVEC.
  const Dataset dataset = BlobScene(1000, 3, 3, 0.1, 209);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  const std::vector<char> core = CoreFlags(dataset, epsilon, min_pts);
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    if (core[i]) {
      EXPECT_GE(out.labels[i], 0) << "core point " << i;
    }
  }
}

TEST(DbsvecTest, PerfectRecallOnShapeScene) {
  // Fig. 1 of the paper: same clusters as DBSCAN on the t4.8k-style scene
  // with the paper's MinPts=20.
  const Dataset dataset = GenerateShapeScene(ShapeScene::kT4, 8000, 42);
  DbscanParams dbscan_params;
  dbscan_params.epsilon = 8.5;
  dbscan_params.min_pts = 20;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = 8.5;
  params.min_pts = 20;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_DOUBLE_EQ(PairRecall(reference.labels, out.labels), 1.0);
  EXPECT_DOUBLE_EQ(PairPrecision(reference.labels, out.labels), 1.0);
  EXPECT_EQ(out.num_clusters, reference.num_clusters);
}

// Property sweep: near-perfect recall vs DBSCAN across dimensionality,
// noise levels and seeds, with the default nu* policy.
using RecallSweepParam = std::tuple<int, double, uint64_t>;

class DbsvecRecallSweepTest
    : public ::testing::TestWithParam<RecallSweepParam> {};

TEST_P(DbsvecRecallSweepTest, NearPerfectRecall) {
  const auto [dim, noise, seed] = GetParam();
  const Dataset dataset = BlobScene(900, dim, 4, noise, seed);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_GE(PairRecall(reference.labels, out.labels), 0.99)
      << "dim=" << dim << " noise=" << noise << " seed=" << seed;
  // Theorem 1 implies DBSVEC may split but never merge: precision stays 1
  // whenever core sets agree (they do here — both run exact queries).
  EXPECT_GE(PairPrecision(reference.labels, out.labels), 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbsvecRecallSweepTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(0.0, 0.05),
                       ::testing::Values(301, 302, 303)));

// Ablation variants must all stay valid and close to DBSCAN on easy data.
struct AblationSpec {
  const char* name;
  bool adaptive_weights;
  bool incremental_learning;
  bool auto_sigma;
};

class DbsvecAblationTest : public ::testing::TestWithParam<AblationSpec> {};

TEST_P(DbsvecAblationTest, VariantProducesValidClustering) {
  const AblationSpec& spec = GetParam();
  const Dataset dataset = BlobScene(800, 3, 3, 0.03, 211);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.adaptive_weights = spec.adaptive_weights;
  params.incremental_learning = spec.incremental_learning;
  params.auto_sigma = spec.auto_sigma;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_EQ(static_cast<PointIndex>(out.labels.size()), dataset.size());
  EXPECT_GE(PairRecall(reference.labels, out.labels), 0.8) << spec.name;
  EXPECT_GE(PairPrecision(reference.labels, out.labels), 0.999) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DbsvecAblationTest,
    ::testing::Values(AblationSpec{"full", true, true, true},
                      AblationSpec{"no_weights", false, true, true},
                      AblationSpec{"no_incremental", true, false, true},
                      AblationSpec{"random_sigma", true, true, false},
                      AblationSpec{"bare", false, false, false}),
    [](const ::testing::TestParamInfo<AblationSpec>& info) {
      return info.param.name;
    });

TEST(DbsvecTest, MinimumNuUsesFewerSupportVectors) {
  const Dataset dataset = BlobScene(2000, 4, 4, 0.02, 213);
  const int min_pts = 8;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering with_auto;
  ASSERT_TRUE(RunDbsvec(dataset, params, &with_auto).ok());
  params.nu_mode = NuMode::kMinimum;
  Clustering with_min;
  ASSERT_TRUE(RunDbsvec(dataset, params, &with_min).ok());
  EXPECT_LE(with_min.stats.num_support_vectors,
            with_auto.stats.num_support_vectors);
}

TEST(DbsvecTest, LargerFixedNuYieldsMoreSupportVectors) {
  const Dataset dataset = BlobScene(1500, 3, 3, 0.02, 215);
  const int min_pts = 6;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  uint64_t previous = 0;
  for (const double nu : {0.01, 0.2}) {
    DbsvecParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    params.nu_mode = NuMode::kFixed;
    params.fixed_nu = nu;
    Clustering out;
    ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
    EXPECT_GE(out.stats.num_support_vectors, previous) << "nu=" << nu;
    previous = out.stats.num_support_vectors;
  }
}

TEST(DbsvecTest, IndexBackendsAgreeClosely) {
  const Dataset dataset = BlobScene(900, 2, 4, 0.03, 217);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  Clustering brute;
  Clustering kd;
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.index = IndexType::kBruteForce;
  ASSERT_TRUE(RunDbsvec(dataset, params, &brute).ok());
  params.index = IndexType::kKdTree;
  ASSERT_TRUE(RunDbsvec(dataset, params, &kd).ok());
  EXPECT_GE(PairRecall(brute.labels, kd.labels), 0.99);
  EXPECT_EQ(brute.CountNoise(), kd.CountNoise());
}

TEST(DbsvecTest, NoiseListBounded) {
  const Dataset dataset = BlobScene(1000, 2, 3, 0.2, 219);
  const int min_pts = 8;
  DbsvecParams params;
  params.epsilon = SuggestEpsilon(dataset, min_pts);
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_LE(out.stats.noise_list_size,
            static_cast<uint64_t>(dataset.size()));
  EXPECT_GE(out.stats.noise_list_size,
            static_cast<uint64_t>(out.CountNoise()));
}

TEST(DbsvecTest, StallRecoveryNeverHurtsRecall) {
  // The stall-recovery pass (library extension) exists to heal splits on
  // thin elongated clusters; disabling it must still give a valid result
  // and can only lower recall.
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("t4.8k", &surrogate).ok());
  DbscanParams dbscan_params;
  dbscan_params.epsilon = 8.5;
  dbscan_params.min_pts = 20;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(surrogate.data, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = 8.5;
  params.min_pts = 20;
  Clustering with_recovery;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &with_recovery).ok());
  params.stall_recovery = false;
  Clustering without_recovery;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &without_recovery).ok());
  EXPECT_GE(PairRecall(reference.labels, with_recovery.labels),
            PairRecall(reference.labels, without_recovery.labels));
  EXPECT_GE(PairRecall(reference.labels, with_recovery.labels), 0.999);
}

// Property sweep over the learning threshold T: the paper (Sec. IV-B1)
// claims T in [2,4] keeps accuracy intact; we verify accuracy holds for
// the whole sensible range.
class DbsvecLearningThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(DbsvecLearningThresholdTest, HighRecallForAnyThreshold) {
  const Dataset dataset = BlobScene(1000, 3, 4, 0.03, 223);
  const int min_pts = 6;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.learning_threshold = GetParam();
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_GE(PairRecall(reference.labels, out.labels), 0.95)
      << "T=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, DbsvecLearningThresholdTest,
                         ::testing::Values(0, 1, 2, 3, 4, 6));

TEST(DbsvecTest, TinyTargetCapStillAccurate) {
  // Aggressive SVDD subsampling may cost extra rounds but not accuracy.
  const Dataset dataset = BlobScene(1500, 2, 4, 0.02, 225);
  const int min_pts = 8;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.max_svdd_target = 64;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_GE(PairRecall(reference.labels, out.labels), 0.98);
}

TEST(DbsvecTest, NuNearOneDegeneratesTowardDbscan) {
  // Sec. IV-C: as nu -> 1 every target point becomes a support vector and
  // DBSVEC degenerates to DBSCAN (range queries on everything).
  const Dataset dataset = BlobScene(800, 2, 3, 0.05, 227);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.nu_mode = NuMode::kFixed;
  params.fixed_nu = 1.0;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  EXPECT_DOUBLE_EQ(PairRecall(reference.labels, out.labels), 1.0);
  EXPECT_DOUBLE_EQ(PairPrecision(reference.labels, out.labels), 1.0);
}

TEST(DbsvecTest, WithIndexEntryPointMatchesConvenienceWrapper) {
  const Dataset dataset = BlobScene(600, 2, 3, 0.02, 221);
  DbsvecParams params;
  params.epsilon = SuggestEpsilon(dataset, 5);
  params.min_pts = 5;
  Clustering via_wrapper;
  ASSERT_TRUE(RunDbsvec(dataset, params, &via_wrapper).ok());
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(IndexType::kKdTree, dataset, params.epsilon);
  Clustering via_index;
  ASSERT_TRUE(RunDbsvecWithIndex(*index, params, &via_index).ok());
  EXPECT_EQ(via_wrapper.labels, via_index.labels);
}

}  // namespace
}  // namespace dbsvec
