#include "cluster/hdbscan.h"
#include "data/synthetic.h"
#include "eval/external_metrics.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(HdbscanTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  Clustering out;
  HdbscanParams params;
  params.min_cluster_size = 1;
  EXPECT_FALSE(RunHdbscan(dataset, params, &out).ok());
  params.min_cluster_size = 5;
  params.min_samples = -1;
  EXPECT_FALSE(RunHdbscan(dataset, params, &out).ok());
}

TEST(HdbscanTest, EmptyAndTinyDatasets) {
  Dataset empty(2);
  Clustering out;
  ASSERT_TRUE(RunHdbscan(empty, HdbscanParams(), &out).ok());
  EXPECT_EQ(out.num_clusters, 0);

  Dataset tiny(2, {0.0, 0.0, 1.0, 1.0});
  ASSERT_TRUE(RunHdbscan(tiny, HdbscanParams(), &out).ok());
  // Fewer points than min_cluster_size: everything is noise.
  EXPECT_EQ(out.num_clusters, 0);
  EXPECT_EQ(out.CountNoise(), 2);
}

TEST(HdbscanTest, RecoversSeparatedBlobs) {
  GaussianBlobsParams gen;
  gen.n = 600;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 0.8;
  gen.min_center_separation = 25.0;
  gen.seed = 501;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  Clustering out;
  HdbscanParams params;
  params.min_cluster_size = 15;
  ASSERT_TRUE(RunHdbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 3);
  EXPECT_GT(AdjustedRandIndex(truth, out.labels), 0.9);
}

TEST(HdbscanTest, HandlesVaryingDensityClusters) {
  // HDBSCAN's selling point: one tight and one diffuse cluster, far
  // apart — no single DBSCAN epsilon fits both, HDBSCAN finds both.
  Rng rng(503);
  Dataset dataset(2);
  std::vector<int32_t> truth;
  for (int i = 0; i < 300; ++i) {
    const double p[2] = {rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)};
    dataset.Append(p);
    truth.push_back(0);
  }
  for (int i = 0; i < 300; ++i) {
    const double p[2] = {rng.Gaussian(60.0, 6.0), rng.Gaussian(0.0, 6.0)};
    dataset.Append(p);
    truth.push_back(1);
  }
  Clustering out;
  HdbscanParams params;
  params.min_cluster_size = 20;
  ASSERT_TRUE(RunHdbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_GT(AdjustedRandIndex(truth, out.labels), 0.85);
}

TEST(HdbscanTest, UniformNoiseRejected) {
  // Background noise between two blobs stays unlabelled.
  GaussianBlobsParams gen;
  gen.n = 500;
  gen.dim = 2;
  gen.num_clusters = 2;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.noise_fraction = 0.2;
  gen.seed = 505;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  Clustering out;
  HdbscanParams params;
  // Above the size of any random clump the 20% background can form (a
  // 15-point clump is a legitimate density cluster and does get found).
  params.min_cluster_size = 25;
  ASSERT_TRUE(RunHdbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  // Most generated-noise points must be labelled noise.
  int noise_correct = 0;
  int noise_total = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == -1) {
      ++noise_total;
      noise_correct += out.labels[i] == Clustering::kNoise ? 1 : 0;
    }
  }
  EXPECT_GT(noise_correct, noise_total / 2);
}

TEST(HdbscanTest, LargerMinClusterSizeCoarsens) {
  GaussianBlobsParams gen;
  gen.n = 800;
  gen.dim = 2;
  gen.num_clusters = 6;
  gen.stddev = 1.0;
  gen.seed = 507;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  int32_t previous = 1 << 20;
  for (const int mcs : {10, 80, 300}) {
    Clustering out;
    HdbscanParams params;
    params.min_cluster_size = mcs;
    ASSERT_TRUE(RunHdbscan(dataset, params, &out).ok());
    EXPECT_LE(out.num_clusters, previous) << "mcs=" << mcs;
    previous = out.num_clusters;
  }
}

TEST(HdbscanTest, DeterministicAndValidLabels) {
  const Dataset dataset = testing::RandomDataset(400, 3, 10.0, 509);
  HdbscanParams params;
  params.min_cluster_size = 8;
  Clustering a;
  Clustering b;
  ASSERT_TRUE(RunHdbscan(dataset, params, &a).ok());
  ASSERT_TRUE(RunHdbscan(dataset, params, &b).ok());
  EXPECT_EQ(a.labels, b.labels);
  for (const int32_t label : a.labels) {
    EXPECT_GE(label, Clustering::kNoise);
    EXPECT_LT(label, a.num_clusters);
  }
}

TEST(HdbscanTest, DuplicatePointsHandled) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(1.0);
    values.push_back(1.0);
  }
  for (int i = 0; i < 50; ++i) {
    values.push_back(9.0);
    values.push_back(9.0);
  }
  Dataset dataset(2, std::move(values));
  Clustering out;
  HdbscanParams params;
  params.min_cluster_size = 10;
  ASSERT_TRUE(RunHdbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_EQ(out.CountNoise(), 0);
  EXPECT_EQ(out.labels[0], out.labels[49]);
  EXPECT_EQ(out.labels[50], out.labels[99]);
  EXPECT_NE(out.labels[0], out.labels[50]);
}

}  // namespace
}  // namespace dbsvec
