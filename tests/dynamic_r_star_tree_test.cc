#include <tuple>

#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "index/dynamic_r_star_tree.h"
#include "index/r_star_tree.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(DynamicRStarTreeTest, EmptyDataset) {
  Dataset dataset(2);
  DynamicRStarTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[2] = {0.0, 0.0};
  tree.RangeQuery(q, 10.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(DynamicRStarTreeTest, SinglePoint) {
  Dataset dataset(2, {3.0, 4.0});
  DynamicRStarTree tree(dataset);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(tree.height(), 1);
  std::vector<PointIndex> out;
  const double q[2] = {3.0, 4.0};
  tree.RangeQuery(q, 0.1, &out);
  EXPECT_EQ(out, (std::vector<PointIndex>{0}));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(DynamicRStarTreeTest, HeightGrowsWithSplits) {
  // 1000 points force multiple levels with fanout 16.
  const Dataset dataset = testing::RandomDataset(1000, 2, 100.0, 301);
  DynamicRStarTree tree(dataset);
  EXPECT_EQ(tree.size(), 1000);
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(DynamicRStarTreeTest, IncrementalInsertAfterConstruction) {
  Dataset dataset(2);
  const double p0[2] = {0.0, 0.0};
  dataset.Append(p0);
  DynamicRStarTree tree(dataset);
  // Grow the dataset, then tell the tree.
  for (int i = 1; i < 200; ++i) {
    const double p[2] = {static_cast<double>(i % 20),
                         static_cast<double>(i / 20)};
    dataset.Append(p);
    tree.Insert(static_cast<PointIndex>(i));
  }
  EXPECT_EQ(tree.size(), 200);
  EXPECT_TRUE(tree.CheckInvariants());
  const BruteForceIndex brute(dataset);
  std::vector<PointIndex> expected;
  std::vector<PointIndex> actual;
  const double q[2] = {5.0, 5.0};
  brute.RangeQuery(q, 3.0, &expected);
  tree.RangeQuery(q, 3.0, &actual);
  EXPECT_EQ(testing::Sorted(expected), testing::Sorted(actual));
}

TEST(DynamicRStarTreeTest, DuplicatePointsSurviveSplits) {
  // Many coincident points stress the split logic (zero-margin axes).
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(1.0);
    values.push_back(2.0);
  }
  Dataset dataset(2, std::move(values));
  DynamicRStarTree tree(dataset);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<PointIndex> out;
  const double q[2] = {1.0, 2.0};
  tree.RangeQuery(q, 0.5, &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(DynamicRStarTreeTest, MatchesPackedTreeExactly) {
  const Dataset dataset = testing::RandomDataset(800, 3, 50.0, 303);
  const DynamicRStarTree dynamic_tree(dataset);
  const RStarTree packed_tree(dataset);
  std::vector<PointIndex> a;
  std::vector<PointIndex> b;
  for (PointIndex q = 0; q < 40; ++q) {
    dynamic_tree.RangeQuery(dataset.point(q), 7.5, &a);
    packed_tree.RangeQuery(dataset.point(q), 7.5, &b);
    EXPECT_EQ(testing::Sorted(a), testing::Sorted(b)) << "query " << q;
  }
}

using DynSweepParam = std::tuple<int, int, double>;

class DynamicRStarTreeSweepTest
    : public ::testing::TestWithParam<DynSweepParam> {};

TEST_P(DynamicRStarTreeSweepTest, MatchesBruteForceAndKeepsInvariants) {
  const auto [n, dim, epsilon] = GetParam();
  const Dataset dataset =
      testing::RandomDataset(n, dim, 10.0, 7000 + n * 13 + dim);
  const BruteForceIndex brute(dataset);
  const DynamicRStarTree tree(dataset);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<PointIndex> expected;
  std::vector<PointIndex> actual;
  const int queries = std::min<PointIndex>(40, dataset.size());
  for (PointIndex q = 0; q < queries; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &expected);
    tree.RangeQuery(dataset.point(q), epsilon, &actual);
    EXPECT_EQ(testing::Sorted(expected), testing::Sorted(actual))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicRStarTreeSweepTest,
    ::testing::Combine(::testing::Values(1, 17, 300, 2000),
                       ::testing::Values(1, 2, 5, 9),
                       ::testing::Values(0.3, 1.5, 6.0)));

}  // namespace
}  // namespace dbsvec
