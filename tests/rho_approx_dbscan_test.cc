#include <tuple>

#include "cluster/dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(RhoApproxTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  Clustering out;
  RhoApproxParams params;
  params.epsilon = -1.0;
  EXPECT_FALSE(RunRhoApproxDbscan(dataset, params, &out).ok());
  params.epsilon = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(RunRhoApproxDbscan(dataset, params, &out).ok());
  params.min_pts = 5;
  params.rho = -0.5;
  EXPECT_FALSE(RunRhoApproxDbscan(dataset, params, &out).ok());
}

TEST(RhoApproxTest, EmptyDataset) {
  Dataset dataset(2);
  Clustering out;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, RhoApproxParams(), &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
}

TEST(RhoApproxTest, SimpleTwoClusterScene) {
  Dataset dataset(2, {0.0, 0.0, 0.1, 0.0, 0.0, 0.1,
                      5.0, 5.0, 5.1, 5.0, 5.0, 5.1,
                      20.0, 20.0});
  Clustering out;
  RhoApproxParams params;
  params.epsilon = 0.2;
  params.min_pts = 3;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_EQ(out.CountNoise(), 1);
}

TEST(RhoApproxTest, DenseCellShortcutMakesAllPointsCore) {
  // 10 coincident points with MinPts=10: the single cell is dense, so
  // every point is core without any per-point counting.
  std::vector<double> values;
  for (int i = 0; i < 10; ++i) {
    values.push_back(1.0);
    values.push_back(1.0);
  }
  Dataset dataset(2, std::move(values));
  Clustering out;
  RhoApproxParams params;
  params.epsilon = 0.5;
  params.min_pts = 10;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 1);
  EXPECT_EQ(out.CountNoise(), 0);
}

// Property sweep: with the recommended rho=0.001 the result should be
// essentially DBSCAN's across dimensions and densities.
using RhoSweepParam = std::tuple<int, uint64_t>;

class RhoApproxSweepTest : public ::testing::TestWithParam<RhoSweepParam> {};

TEST_P(RhoApproxSweepTest, NearPerfectRecallAtDefaultRho) {
  const auto [dim, seed] = GetParam();
  GaussianBlobsParams gen;
  gen.n = 700;
  gen.dim = dim;
  gen.num_clusters = 4;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.03;
  gen.seed = seed;
  const Dataset dataset = GenerateGaussianBlobs(gen);

  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, exact, &reference).ok());

  RhoApproxParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.rho = 0.001;
  Clustering out;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, params, &out).ok());
  EXPECT_GT(PairRecall(reference.labels, out.labels), 0.95)
      << "dim=" << dim << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RhoApproxSweepTest,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(11, 22, 33)));

TEST(RhoApproxTest, LargerRhoDegradesGracefully) {
  // A huge rho may merge nearby structures but must never crash and must
  // still produce a valid labeling.
  GaussianBlobsParams gen;
  gen.n = 500;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.seed = 9;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  Clustering out;
  RhoApproxParams params;
  params.epsilon = 1.0;
  params.min_pts = 5;
  params.rho = 2.0;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, params, &out).ok());
  EXPECT_EQ(static_cast<PointIndex>(out.labels.size()), dataset.size());
  for (const int32_t label : out.labels) {
    EXPECT_GE(label, Clustering::kNoise);
    EXPECT_LT(label, out.num_clusters);
  }
}

}  // namespace
}  // namespace dbsvec
