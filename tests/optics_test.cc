#include <algorithm>
#include <cmath>

#include "cluster/dbscan.h"
#include "cluster/optics.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(OpticsTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  OpticsResult result;
  OpticsParams params;
  params.max_epsilon = 0.0;
  EXPECT_FALSE(RunOptics(dataset, params, &result).ok());
  params.max_epsilon = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(RunOptics(dataset, params, &result).ok());
}

TEST(OpticsTest, OrderingIsAPermutation) {
  const Dataset dataset = testing::RandomDataset(400, 2, 10.0, 401);
  OpticsParams params;
  params.max_epsilon = 2.0;
  params.min_pts = 5;
  OpticsResult result;
  ASSERT_TRUE(RunOptics(dataset, params, &result).ok());
  ASSERT_EQ(result.ordering.size(), 400u);
  std::vector<PointIndex> sorted = result.ordering;
  std::sort(sorted.begin(), sorted.end());
  for (PointIndex i = 0; i < 400; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(OpticsTest, CoreDistanceMatchesBruteForceKthNeighbor) {
  const Dataset dataset = testing::RandomDataset(200, 3, 10.0, 403);
  OpticsParams params;
  params.max_epsilon = 100.0;  // Cover everything.
  params.min_pts = 7;
  OpticsResult result;
  ASSERT_TRUE(RunOptics(dataset, params, &result).ok());
  for (PointIndex p = 0; p < 20; ++p) {
    std::vector<double> dists;
    for (PointIndex o = 0; o < dataset.size(); ++o) {
      dists.push_back(dataset.Distance(p, o));
    }
    std::sort(dists.begin(), dists.end());
    EXPECT_NEAR(result.core_distance[p], dists[params.min_pts - 1], 1e-9)
        << "point " << p;
  }
}

TEST(OpticsTest, ReachabilityBoundedByMaxEpsilonWithinClusters) {
  GaussianBlobsParams gen;
  gen.n = 500;
  gen.dim = 2;
  gen.num_clusters = 2;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.seed = 405;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  OpticsParams params;
  params.max_epsilon = 2.0;
  params.min_pts = 5;
  OpticsResult result;
  ASSERT_TRUE(RunOptics(dataset, params, &result).ok());
  // Exactly two points (one per component) may have undefined
  // reachability; everything else was reached within max_epsilon.
  int undefined = 0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    if (std::isinf(result.reachability[i])) {
      ++undefined;
    } else {
      EXPECT_LE(result.reachability[i], params.max_epsilon + 1e-12);
    }
  }
  EXPECT_EQ(undefined, 2);
}

TEST(OpticsExtractTest, RejectsMismatchedInputs) {
  Dataset dataset(2, {0.0, 0.0, 1.0, 1.0});
  OpticsResult empty;
  Clustering out;
  EXPECT_FALSE(ExtractDbscanClustering(dataset, empty, 1.0, 5, &out).ok());
}

class OpticsEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OpticsEquivalenceTest, ExtractionMatchesDbscan) {
  GaussianBlobsParams gen;
  gen.n = 700;
  gen.dim = 2;
  gen.num_clusters = 4;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = GetParam();
  const Dataset dataset = GenerateGaussianBlobs(gen);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  OpticsParams params;
  params.max_epsilon = epsilon * 1.5;
  params.min_pts = min_pts;
  OpticsResult optics;
  ASSERT_TRUE(RunOptics(dataset, params, &optics).ok());
  Clustering extracted;
  ASSERT_TRUE(ExtractDbscanClustering(dataset, optics, epsilon, min_pts,
                                      &extracted)
                  .ok());

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());

  EXPECT_EQ(extracted.num_clusters, reference.num_clusters);
  // Core-point partition must match exactly; border points may tie-break
  // differently (noise agreement subsumes the rest).
  EXPECT_GE(PairRecall(reference.labels, extracted.labels), 0.99);
  EXPECT_GE(PairPrecision(reference.labels, extracted.labels), 0.99);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    if (reference.point_types[i] == PointType::kCore) {
      EXPECT_NE(extracted.labels[i], Clustering::kNoise) << "core " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpticsEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dbsvec
