// Bit-identical determinism of the parallel execution paths: every
// clusterer must produce the same labels, point types, and statistics
// (except wall-clock time) whether it runs sequentially or on a thread
// pool. This is the contract documented in docs/ALGORITHM.md — parallelism
// fans out pure computations and absorbs their results in a fixed order,
// so thread count must be unobservable in the output.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "serve/assignment_engine.h"

namespace dbsvec {
namespace {

// Thread counts compared against the sequential run. 8 exceeds the core
// count of small CI machines on purpose: oversubscription shuffles task
// interleavings harder than a perfectly sized pool.
constexpr int kParallelThreads = 8;

// Restores the global thread budget on scope exit so a failing test cannot
// leak a pool into unrelated tests of this binary.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetGlobalThreads(threads); }
  ~ScopedThreads() { SetGlobalThreads(0); }
};

Dataset WalkDataset() {
  RandomWalkParams params;
  params.n = 6'000;
  params.dim = 4;
  params.num_clusters = 6;
  params.seed = 23;
  return GenerateRandomWalk(params);
}

void ExpectSameStats(const ClusteringStats& a, const ClusteringStats& b) {
  EXPECT_EQ(a.num_range_queries, b.num_range_queries);
  EXPECT_EQ(a.num_distance_computations, b.num_distance_computations);
  EXPECT_EQ(a.num_svdd_trainings, b.num_svdd_trainings);
  EXPECT_EQ(a.num_support_vectors, b.num_support_vectors);
  EXPECT_EQ(a.num_merges, b.num_merges);
  EXPECT_EQ(a.noise_list_size, b.noise_list_size);
  EXPECT_EQ(a.smo_iterations, b.smo_iterations);
}

void ExpectSameClustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.point_types, b.point_types);
  ExpectSameStats(a.stats, b.stats);
}

constexpr IndexType kEngines[] = {IndexType::kBruteForce, IndexType::kKdTree,
                                  IndexType::kRStarTree, IndexType::kGrid};

TEST(DeterminismTest, DbsvecMatchesSequentialOnEveryEngine) {
  const Dataset dataset = WalkDataset();
  for (const IndexType engine : kEngines) {
    DbsvecParams params;
    params.epsilon = 5'000.0;
    params.min_pts = 60;
    params.index = engine;
    params.classify_points = true;

    Clustering sequential;
    {
      ScopedThreads threads(1);
      ASSERT_TRUE(RunDbsvec(dataset, params, &sequential).ok());
    }
    Clustering parallel;
    {
      ScopedThreads threads(kParallelThreads);
      ASSERT_TRUE(RunDbsvec(dataset, params, &parallel).ok());
    }
    SCOPED_TRACE(static_cast<int>(engine));
    ExpectSameClustering(sequential, parallel);
  }
}

TEST(DeterminismTest, DbscanMatchesSequentialOnEveryEngine) {
  const Dataset dataset = WalkDataset();
  for (const IndexType engine : kEngines) {
    DbscanParams params;
    params.epsilon = 5'000.0;
    params.min_pts = 60;
    params.index = engine;

    Clustering sequential;
    {
      ScopedThreads threads(1);
      ASSERT_TRUE(RunDbscan(dataset, params, &sequential).ok());
    }
    Clustering parallel;
    {
      ScopedThreads threads(kParallelThreads);
      ASSERT_TRUE(RunDbscan(dataset, params, &parallel).ok());
    }
    SCOPED_TRACE(static_cast<int>(engine));
    ExpectSameClustering(sequential, parallel);
  }
}

TEST(DeterminismTest, RepeatedParallelRunsAreStable) {
  // Two runs at the same thread count must also agree with each other —
  // catches races whose effect varies run to run rather than diverging
  // from the sequential baseline.
  const Dataset dataset = WalkDataset();
  DbsvecParams params;
  params.epsilon = 5'000.0;
  params.min_pts = 60;

  ScopedThreads threads(kParallelThreads);
  Clustering first;
  ASSERT_TRUE(RunDbsvec(dataset, params, &first).ok());
  Clustering second;
  ASSERT_TRUE(RunDbsvec(dataset, params, &second).ok());
  ExpectSameClustering(first, second);
}

TEST(ThreadPoolTest, ExecuteRunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.Execute(static_cast<int>(hits.size()), [&](int task) {
    hits[static_cast<size_t>(task)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedExecuteRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.Execute(8, [&](int) {
    // A task that itself calls Execute must not deadlock; nested work runs
    // inline on the calling worker.
    pool.Execute(4, [&](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ScopedThreads threads(kParallelThreads);
  std::vector<std::atomic<int>> hits(10'000);
  ParallelFor(hits.size(), /*grain=*/64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, GlobalBudgetOfOneDisablesPool) {
  ScopedThreads threads(1);
  EXPECT_EQ(GlobalThreads(), 1);
  EXPECT_EQ(GlobalThreadPool(), nullptr);
}

// --- Sharded execution engine -------------------------------------------
//
// The sharded engine's merged range-query results depend only on the point
// *set* (per-shard hits are globally sorted by id), so clustering output
// must be bit-identical at every shard count >= 1 and every thread count.
// Distance computations are partition-dependent (per-shard trees prune
// differently), so they are compared only across thread counts at a fixed
// shard count; every other statistic is invariant across both axes.

// Deliberately includes a count (7) that divides the dataset unevenly.
constexpr int kShardSweep[] = {1, 2, 4, 7};

Dataset ShardDataset() {
  // Smaller than WalkDataset: this sweep runs 4 engines x 4 shard counts
  // x 2 thread counts, including under TSan in tools/ci.sh.
  RandomWalkParams params;
  params.n = 2'000;
  params.dim = 4;
  params.num_clusters = 5;
  params.seed = 31;
  return GenerateRandomWalk(params);
}

void ExpectSameStatsExceptDistances(const ClusteringStats& a,
                                    const ClusteringStats& b) {
  EXPECT_EQ(a.num_range_queries, b.num_range_queries);
  EXPECT_EQ(a.num_svdd_trainings, b.num_svdd_trainings);
  EXPECT_EQ(a.num_support_vectors, b.num_support_vectors);
  EXPECT_EQ(a.num_merges, b.num_merges);
  EXPECT_EQ(a.noise_list_size, b.noise_list_size);
  EXPECT_EQ(a.smo_iterations, b.smo_iterations);
}

TEST(DeterminismTest, ShardedDbsvecBitIdenticalAtEveryShardAndThreadCount) {
  const Dataset dataset = ShardDataset();
  for (const IndexType engine : kEngines) {
    DbsvecParams params;
    params.epsilon = 5'000.0;
    params.min_pts = 40;
    params.index = engine;
    params.classify_points = true;

    params.shards = 1;
    Clustering baseline;
    {
      ScopedThreads threads(1);
      ASSERT_TRUE(RunDbsvec(dataset, params, &baseline).ok());
    }
    for (const int shards : kShardSweep) {
      params.shards = shards;
      Clustering fixed_shards;  // Reference at this shard count.
      {
        ScopedThreads threads(1);
        ASSERT_TRUE(RunDbsvec(dataset, params, &fixed_shards).ok());
      }
      for (const int threads_choice : {1, kParallelThreads}) {
        ScopedThreads threads(threads_choice);
        Clustering run;
        ASSERT_TRUE(RunDbsvec(dataset, params, &run).ok());
        SCOPED_TRACE(testing::Message()
                     << "engine=" << IndexTypeName(engine)
                     << " shards=" << shards
                     << " threads=" << threads_choice);
        EXPECT_EQ(run.labels, baseline.labels);
        EXPECT_EQ(run.point_types, baseline.point_types);
        EXPECT_EQ(run.num_clusters, baseline.num_clusters);
        ExpectSameStats(run.stats, fixed_shards.stats);
        ExpectSameStatsExceptDistances(run.stats, baseline.stats);
      }
    }
  }
}

TEST(DeterminismTest, ShardedDbscanBitIdenticalAtEveryShardAndThreadCount) {
  const Dataset dataset = ShardDataset();
  for (const IndexType engine : kEngines) {
    DbscanParams params;
    params.epsilon = 5'000.0;
    params.min_pts = 40;
    params.index = engine;

    params.shards = 1;
    Clustering baseline;
    {
      ScopedThreads threads(1);
      ASSERT_TRUE(RunDbscan(dataset, params, &baseline).ok());
    }
    for (const int shards : kShardSweep) {
      params.shards = shards;
      Clustering fixed_shards;
      {
        ScopedThreads threads(1);
        ASSERT_TRUE(RunDbscan(dataset, params, &fixed_shards).ok());
      }
      for (const int threads_choice : {1, kParallelThreads}) {
        ScopedThreads threads(threads_choice);
        Clustering run;
        ASSERT_TRUE(RunDbscan(dataset, params, &run).ok());
        SCOPED_TRACE(testing::Message()
                     << "engine=" << IndexTypeName(engine)
                     << " shards=" << shards
                     << " threads=" << threads_choice);
        EXPECT_EQ(run.labels, baseline.labels);
        EXPECT_EQ(run.point_types, baseline.point_types);
        EXPECT_EQ(run.num_clusters, baseline.num_clusters);
        ExpectSameStats(run.stats, fixed_shards.stats);
        ExpectSameStatsExceptDistances(run.stats, baseline.stats);
      }
    }
  }
}

TEST(DeterminismTest, ShardedAssignmentMatchesUnsharded) {
  // The serving index has no expansion loop: assignment answers depend only
  // on the range-query *set*, so a sharded serving engine must agree with
  // the unsharded one label for label.
  const Dataset dataset = ShardDataset();
  DbsvecParams params;
  params.epsilon = 5'000.0;
  params.min_pts = 40;
  Clustering out;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());

  std::unique_ptr<AssignmentEngine> unsharded;
  ASSERT_TRUE(
      AssignmentEngine::Create(model, {}, &unsharded).ok());
  std::vector<int32_t> reference;
  ASSERT_TRUE(unsharded->AssignBatch(dataset, &reference).ok());
  EXPECT_EQ(unsharded->shard_count(), 0);

  for (const int shards : kShardSweep) {
    AssignmentOptions options;
    options.shards = shards;
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, options, &engine).ok());
    EXPECT_EQ(engine->shard_count(), shards);
    for (const int threads_choice : {1, kParallelThreads}) {
      ScopedThreads threads(threads_choice);
      std::vector<int32_t> labels;
      ASSERT_TRUE(engine->AssignBatch(dataset, &labels).ok());
      EXPECT_EQ(labels, reference)
          << "shards=" << shards << " threads=" << threads_choice;
    }
  }
}

TEST(DeterminismTest, AssignBatchMatchesSequential) {
  const Dataset dataset = WalkDataset();
  DbsvecParams params;
  params.epsilon = 5'000.0;
  params.min_pts = 60;
  Clustering out;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());

  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(std::move(model), {}, &engine).ok());

  std::vector<int32_t> sequential;
  {
    ScopedThreads threads(1);
    ASSERT_TRUE(engine->AssignBatch(dataset, &sequential).ok());
  }
  std::vector<int32_t> parallel;
  {
    ScopedThreads threads(kParallelThreads);
    ASSERT_TRUE(engine->AssignBatch(dataset, &parallel).ok());
  }
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace dbsvec
