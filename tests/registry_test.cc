// The multi-tenant model registry end to end: name validation (the
// path-traversal guard), REST lifecycle (create 201 / conflict 409 /
// unknown 404 / bad-name 400), create-from-upload vs create-from-path,
// delete-while-assigning drain semantics, bit-identity of N registry
// tenants against N independent single-model servers, per-model journal
// recovery across a restart, the streaming assign protocol past the body
// cap, registry failpoints, and a concurrent create/delete/reload/assign
// churn (the TSan leg of tools/ci.sh).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "registry/model_name.h"
#include "registry/model_registry.h"
#include "serve/assignment_engine.h"
#include "server/http_client.h"
#include "server/payload.h"
#include "server/server.h"

namespace dbsvec {
namespace {

using server::HttpClient;
using server::HttpResponse;
using server::Server;
using server::ServerOptions;

// ---------------------------------------------------------------------------
// Name grammar

TEST(ModelNameTest, AcceptsTheDocumentedGrammar) {
  EXPECT_TRUE(registry::ValidateModelName("default").ok());
  EXPECT_TRUE(registry::ValidateModelName("tenant-7_x").ok());
  EXPECT_TRUE(registry::ValidateModelName("a").ok());
  EXPECT_TRUE(
      registry::ValidateModelName(std::string(64, 'a')).ok());
}

TEST(ModelNameTest, RejectsEverythingAFilesystemCouldReinterpret) {
  EXPECT_FALSE(registry::ValidateModelName("").ok());
  EXPECT_FALSE(registry::ValidateModelName(std::string(65, 'a')).ok());
  for (const char* name : {"..", "a/b", "a\\b", "A", "a.b", "a b", "a\nb"}) {
    const Status status = registry::ValidateModelName(name);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << name;
  }
  // The message names the offending character and position — the payload
  // the server returns verbatim in its 400 body.
  const Status status = registry::ValidateModelName("ok.bad");
  EXPECT_NE(status.message().find("character '.' at position 2"),
            std::string::npos)
      << status.message();
}

// ---------------------------------------------------------------------------
// Fixture: trained models + a registry server over loopback

class RegistryServerTest : public ::testing::Test {
 protected:
  static constexpr int kDim = 3;
  static constexpr int kNumModels = 3;

  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    temp_dir_ =
        std::filesystem::temp_directory_path() /
        ("dbsvec_registry_test_" + std::to_string(::getpid()) + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(temp_dir_);
    data_dir_ = (temp_dir_ / "data").string();
    queries_ = MakeBlobs(/*n=*/200, /*seed=*/29);
    const uint64_t seeds[kNumModels] = {29, 31, 37};
    for (int m = 0; m < kNumModels; ++m) {
      model_paths_[m] =
          (temp_dir_ / ("m" + std::to_string(m) + ".dbsvm")).string();
      FitAndSave(seeds[m], model_paths_[m]);
    }
  }

  void TearDown() override {
    server_.reset();
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    std::filesystem::remove_all(temp_dir_, ec);
  }

  static Dataset MakeBlobs(int n, uint64_t seed) {
    GaussianBlobsParams params;
    params.n = n;
    params.dim = kDim;
    params.num_clusters = 4;
    params.noise_fraction = 0.05;
    params.seed = seed;
    return GenerateGaussianBlobs(params);
  }

  void FitAndSave(uint64_t seed, const std::string& path) {
    const Dataset train = MakeBlobs(700, seed);
    DbsvecParams params;
    params.epsilon = 6.0;
    params.min_pts = 15;
    Clustering result;
    DbsvecModel model;
    ASSERT_TRUE(RunDbsvec(train, params, &result, &model).ok());
    ASSERT_GT(model.core_points.size(), 0);
    ASSERT_TRUE(SaveModel(model, path).ok());
  }

  /// Starts a pure-registry server (no initial engine) over `data_dir_`.
  void StartRegistryServer(ServerOptions options = {}) {
    options.port = 0;
    options.data_dir = data_dir_;
    ASSERT_TRUE(Server::Start(nullptr, options, &server_).ok());
  }

  Status Connect(HttpClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  /// PUT /v1/models/<name> from a server-side path; returns the status
  /// code.
  int CreateFromPath(HttpClient* client, const std::string& name,
                     const std::string& path) {
    HttpResponse response;
    EXPECT_TRUE(client
                    ->Roundtrip("PUT", "/v1/models/" + name,
                                "application/json",
                                "{\"path\": \"" + path + "\"}", {},
                                &response)
                    .ok());
    return response.status_code;
  }

  std::vector<int32_t> OfflineLabels(const std::string& model_path,
                                     const Dataset& points) {
    std::unique_ptr<AssignmentEngine> engine;
    EXPECT_TRUE(AssignmentEngine::Load(model_path, {}, &engine).ok());
    std::vector<int32_t> labels;
    EXPECT_TRUE(engine->AssignBatch(points, &labels).ok());
    return labels;
  }

  /// Binary assign request payload (u32 count, u32 dim, f64 row-major).
  static std::string BinaryBody(const Dataset& points, int begin,
                                int count) {
    std::string body;
    const auto put_u32 = [&body](uint32_t v) {
      body.append(reinterpret_cast<const char*>(&v), 4);
    };
    put_u32(static_cast<uint32_t>(count));
    put_u32(static_cast<uint32_t>(points.dim()));
    for (int i = 0; i < count; ++i) {
      const auto point = points.point(begin + i);
      body.append(reinterpret_cast<const char*>(point.data()),
                  point.size() * sizeof(double));
    }
    return body;
  }

  /// Binary label payload (u32 count, i32 labels) -> labels.
  static std::vector<int32_t> LabelsFromBinary(const std::string& body) {
    std::vector<int32_t> labels;
    if (body.size() < 4) {
      return labels;
    }
    uint32_t count = 0;
    std::memcpy(&count, body.data(), 4);
    labels.resize(count);
    std::memcpy(labels.data(), body.data() + 4,
                static_cast<size_t>(count) * 4);
    return labels;
  }

  /// One binary assign roundtrip against a model route.
  std::vector<int32_t> AssignBinary(HttpClient* client,
                                    const std::string& target,
                                    const Dataset& points,
                                    int* status_code = nullptr) {
    HttpResponse response;
    EXPECT_TRUE(client
                    ->Roundtrip("POST", target, "application/octet-stream",
                                BinaryBody(points, 0, points.size()), {},
                                &response)
                    .ok());
    if (status_code != nullptr) {
      *status_code = response.status_code;
    }
    if (response.status_code != 200) {
      return {};
    }
    return LabelsFromBinary(response.body);
  }

  std::filesystem::path temp_dir_;
  std::string data_dir_;
  std::string model_paths_[kNumModels];
  Dataset queries_{kDim};
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Lifecycle

TEST_F(RegistryServerTest, CreateConflictUnknownAndDelete) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());

  EXPECT_EQ(CreateFromPath(&client, "tenant_a", model_paths_[0]), 201);
  // Same name again: 409, and the original keeps serving.
  EXPECT_EQ(CreateFromPath(&client, "tenant_a", model_paths_[1]), 409);

  HttpResponse response;
  ASSERT_TRUE(client
                  .Roundtrip("GET", "/v1/models/tenant_a", "", "", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("\"name\":\"tenant_a\""), std::string::npos);

  // Unknown model: 404 on every model-scoped route.
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/models/ghost", "", "", {}, &response)
          .ok());
  EXPECT_EQ(response.status_code, 404);
  int status_code = 0;
  AssignBinary(&client, "/v1/models/ghost/assign", queries_, &status_code);
  EXPECT_EQ(status_code, 404);
  ASSERT_TRUE(client
                  .Roundtrip("DELETE", "/v1/models/ghost", "", "", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 404);

  // Delete: gone from the listing, its directory removed, recreate works.
  ASSERT_TRUE(client
                  .Roundtrip("DELETE", "/v1/models/tenant_a", "", "", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::path(data_dir_) / "tenant_a"));
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/models", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("\"count\":0"), std::string::npos);
  EXPECT_EQ(CreateFromPath(&client, "tenant_a", model_paths_[1]), 201);
}

TEST_F(RegistryServerTest, BadNamesAnswer400NamingTheOffendingCharacter) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;

  // Uppercase: the offending character and position come back verbatim.
  ASSERT_TRUE(client
                  .Roundtrip("PUT", "/v1/models/Bad", "application/json",
                             "{\"path\": \"" + model_paths_[0] + "\"}", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  EXPECT_NE(response.body.find("character 'B' at position 0"),
            std::string::npos)
      << response.body;

  // Path traversal: ".." is not a model name, so the route can never
  // resolve outside the data directory.
  ASSERT_TRUE(client
                  .Roundtrip("PUT", "/v1/models/..", "application/json",
                             "{\"path\": \"" + model_paths_[0] + "\"}", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  ASSERT_TRUE(client
                  .Roundtrip("GET", "/v1/models/../default", "", "", {},
                             &response)
                  .ok());
  EXPECT_NE(response.status_code, 200);
}

TEST_F(RegistryServerTest, CreateFromUploadMatchesCreateFromPath) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());

  std::ifstream in(model_paths_[0], std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  HttpResponse response;
  ASSERT_TRUE(client
                  .Roundtrip("PUT", "/v1/models/uploaded",
                             "application/octet-stream", bytes.str(), {},
                             &response)
                  .ok());
  ASSERT_EQ(response.status_code, 201) << response.body;
  ASSERT_EQ(CreateFromPath(&client, "from_path", model_paths_[0]), 201);

  const std::vector<int32_t> expected =
      OfflineLabels(model_paths_[0], queries_);
  EXPECT_EQ(AssignBinary(&client, "/v1/models/uploaded/assign", queries_),
            expected);
  EXPECT_EQ(AssignBinary(&client, "/v1/models/from_path/assign", queries_),
            expected);
  // The uploaded artifact persisted under the data dir.
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(data_dir_) /
                                      "uploaded" / "model.dbsvec"));
}

// ---------------------------------------------------------------------------
// Multi-tenant bit-identity

TEST_F(RegistryServerTest, TenantsMatchIndependentSingleModelServers) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  for (int m = 0; m < kNumModels; ++m) {
    ASSERT_EQ(CreateFromPath(&client, "tenant_" + std::to_string(m),
                             model_paths_[m]),
              201);
  }

  for (int m = 0; m < kNumModels; ++m) {
    // Ground truth: a dedicated single-model server over the same artifact.
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Load(model_paths_[m], {}, &engine).ok());
    ServerOptions solo_options;
    solo_options.port = 0;
    std::unique_ptr<Server> solo;
    ASSERT_TRUE(Server::Start(std::shared_ptr<AssignmentEngine>(
                                  std::move(engine)),
                              solo_options, &solo)
                    .ok());
    HttpClient solo_client;
    ASSERT_TRUE(solo_client.Connect("127.0.0.1", solo->port()).ok());
    const std::vector<int32_t> expected =
        AssignBinary(&solo_client, "/v1/assign", queries_);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(AssignBinary(&client,
                           "/v1/models/tenant_" + std::to_string(m) +
                               "/assign",
                           queries_),
              expected)
        << "tenant_" << m;
  }
}

TEST_F(RegistryServerTest, LegacyRoutesAliasTheDefaultModel) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_EQ(CreateFromPath(&client, "default", model_paths_[0]), 201);
  const std::vector<int32_t> via_legacy =
      AssignBinary(&client, "/v1/assign", queries_);
  const std::vector<int32_t> via_named =
      AssignBinary(&client, "/v1/models/default/assign", queries_);
  ASSERT_FALSE(via_legacy.empty());
  EXPECT_EQ(via_legacy, via_named);
  EXPECT_EQ(via_legacy, OfflineLabels(model_paths_[0], queries_));
}

// ---------------------------------------------------------------------------
// Delete-while-assigning

TEST_F(RegistryServerTest, InFlightAssignFinishesOnItsEngineAcrossDelete) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_EQ(CreateFromPath(&client, "victim", model_paths_[0]), 201);
  const std::vector<int32_t> expected =
      OfflineLabels(model_paths_[0], queries_);

  // Slow the assign down so the DELETE lands mid-request; the request
  // pinned its entry + engine at dispatch, so it must answer 200 with the
  // same labels as an undisturbed server.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("assign.batch", FailpointRegistry::Mode::kDelayMs,
                       "100")
                  .ok());
  std::vector<int32_t> labels;
  int status_code = 0;
  std::thread assigner([&] {
    HttpClient slow;
    ASSERT_TRUE(Connect(&slow).ok());
    labels =
        AssignBinary(&slow, "/v1/models/victim/assign", queries_,
                     &status_code);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  HttpClient deleter;
  ASSERT_TRUE(Connect(&deleter).ok());
  HttpResponse response;
  ASSERT_TRUE(deleter
                  .Roundtrip("DELETE", "/v1/models/victim", "", "", {},
                             &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
  assigner.join();
  FailpointRegistry::Instance().Disarm("assign.batch");

  EXPECT_EQ(status_code, 200);
  EXPECT_EQ(labels, expected);
  // After the drain the model really is gone.
  int after = 0;
  AssignBinary(&client, "/v1/models/victim/assign", queries_, &after);
  EXPECT_EQ(after, 404);
}

// ---------------------------------------------------------------------------
// Per-model durability across restart

TEST_F(RegistryServerTest, JournaledOverlaysRecoverBitIdentically) {
  ServerOptions options;
  options.durability.enabled = true;
  options.durability.fsync = FsyncPolicy::kAlways;
  StartRegistryServer(options);
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  for (int m = 0; m < kNumModels; ++m) {
    ASSERT_EQ(CreateFromPath(&client, "tenant_" + std::to_string(m),
                             model_paths_[m]),
              201);
  }

  // Feed every tenant's overlay (absorption journals each point), then
  // capture the post-absorption labels — the state a restart must rebuild.
  std::vector<int32_t> before[kNumModels];
  for (int m = 0; m < kNumModels; ++m) {
    const std::string target =
        "/v1/models/tenant_" + std::to_string(m) + "/assign";
    ASSERT_FALSE(AssignBinary(&client, target, queries_).empty());
    before[m] = AssignBinary(&client, target, queries_);
    ASSERT_FALSE(before[m].empty());
  }

  server_.reset();  // Journals are synced per record (fsync=always).
  StartRegistryServer(options);
  EXPECT_EQ(server_->registry_recovery().recovered, kNumModels);
  EXPECT_EQ(server_->registry_recovery().failed, 0);

  HttpClient again;
  ASSERT_TRUE(Connect(&again).ok());
  for (int m = 0; m < kNumModels; ++m) {
    EXPECT_EQ(AssignBinary(&again,
                           "/v1/models/tenant_" + std::to_string(m) +
                               "/assign",
                           queries_),
              before[m])
        << "tenant_" << m;
  }
}

// ---------------------------------------------------------------------------
// Streaming assign

TEST_F(RegistryServerTest, StreamingAssignProcessesBodiesPastTheCap) {
  ServerOptions options;
  options.max_body_bytes = 8 * 1024;  // Every frame must fit; the body not.
  StartRegistryServer(options);
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_EQ(CreateFromPath(&client, "default", model_paths_[0]), 201);

  // 40 frames x ~5 KB ≈ 200 KB total, 25x the request-body cap. A plain
  // request of the same size must be rejected, the stream must not.
  std::vector<std::string> frames;
  std::vector<int32_t> expected;
  const std::vector<int32_t> offline =
      OfflineLabels(model_paths_[0], queries_);
  for (int f = 0; f < 40; ++f) {
    frames.push_back(BinaryBody(queries_, 0, queries_.size()));
    expected.insert(expected.end(), offline.begin(), offline.end());
  }
  size_t total = 0;
  for (const std::string& frame : frames) {
    total += frame.size();
  }
  ASSERT_GT(total, 10 * options.max_body_bytes);

  HttpResponse oversized;
  ASSERT_TRUE(client
                  .Roundtrip("POST", "/v1/assign",
                             "application/octet-stream",
                             std::string(options.max_body_bytes + 1, 'x'),
                             {}, &oversized)
                  .ok());
  EXPECT_EQ(oversized.status_code, 413);

  HttpClient streamer;
  ASSERT_TRUE(Connect(&streamer).ok());
  std::vector<std::string> chunks;
  HttpResponse response;
  ASSERT_TRUE(streamer
                  .StreamingRoundtrip("/v1/models/default/assign", frames,
                                      &chunks, &response)
                  .ok());
  ASSERT_EQ(chunks.size(), frames.size());
  std::vector<int32_t> streamed;
  for (const std::string& chunk : chunks) {
    const std::vector<int32_t> labels = LabelsFromBinary(chunk);
    streamed.insert(streamed.end(), labels.begin(), labels.end());
  }
  EXPECT_EQ(streamed, expected);

  // The connection survived the stream: a normal request still works.
  EXPECT_EQ(AssignBinary(&streamer, "/v1/assign", queries_), offline);
  EXPECT_GE(server_->stats().stream_frames.load(), frames.size());
}

TEST_F(RegistryServerTest, StreamingRejectsOversizedFramesAndBadRoutes) {
  ServerOptions options;
  options.max_body_bytes = 4 * 1024;
  StartRegistryServer(options);
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_EQ(CreateFromPath(&client, "default", model_paths_[0]), 201);

  // One frame over the cap: rejected before processing, connection closed.
  {
    HttpClient streamer;
    ASSERT_TRUE(Connect(&streamer).ok());
    std::vector<std::string> chunks;
    HttpResponse response;
    const Status status = streamer.StreamingRoundtrip(
        "/v1/assign", {std::string(options.max_body_bytes + 1, 'x')},
        &chunks, &response);
    if (status.ok()) {
      EXPECT_EQ(response.status_code, 503) << response.body;
      EXPECT_NE(response.body.find("exceeds"), std::string::npos);
    }  // An EPIPE racing the error response is also a valid outcome.
    EXPECT_TRUE(chunks.empty());
  }
  // Streams target assign routes only.
  {
    HttpClient streamer;
    ASSERT_TRUE(Connect(&streamer).ok());
    std::vector<std::string> chunks;
    HttpResponse response;
    const Status status = streamer.StreamingRoundtrip(
        "/v1/models/default/reload",
        {BinaryBody(queries_, 0, queries_.size())}, &chunks, &response);
    if (status.ok()) {
      EXPECT_EQ(response.status_code, 400);
    }
    EXPECT_TRUE(chunks.empty());
  }
  // Unknown tenant: 404 before any frame is processed.
  {
    HttpClient streamer;
    ASSERT_TRUE(Connect(&streamer).ok());
    std::vector<std::string> chunks;
    HttpResponse response;
    const Status status = streamer.StreamingRoundtrip(
        "/v1/models/ghost/assign",
        {BinaryBody(queries_, 0, queries_.size())}, &chunks, &response);
    if (status.ok()) {
      EXPECT_EQ(response.status_code, 404);
    }
    EXPECT_TRUE(chunks.empty());
  }
}

// ---------------------------------------------------------------------------
// Failpoints

TEST_F(RegistryServerTest, CreateFailpointSurfacesCleanlyAndLeavesNoGhost) {
  StartRegistryServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("registry.create", FailpointRegistry::Mode::kError,
                       "io")
                  .ok());
  EXPECT_EQ(CreateFromPath(&client, "doomed", model_paths_[0]), 503);
  FailpointRegistry::Instance().Disarm("registry.create");

  // The failed create left nothing behind: the name is free and the
  // listing is empty.
  HttpResponse response;
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/models", "", "", {}, &response).ok());
  EXPECT_NE(response.body.find("\"count\":0"), std::string::npos)
      << response.body;
  EXPECT_EQ(CreateFromPath(&client, "doomed", model_paths_[0]), 201);
}

TEST_F(RegistryServerTest, RecoverFailpointSkipsModelsButKeepsServing) {
  StartRegistryServer();
  {
    HttpClient client;
    ASSERT_TRUE(Connect(&client).ok());
    ASSERT_EQ(CreateFromPath(&client, "tenant_0", model_paths_[0]), 201);
    ASSERT_EQ(CreateFromPath(&client, "tenant_1", model_paths_[1]), 201);
  }
  server_.reset();

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("registry.recover", FailpointRegistry::Mode::kError,
                       "io")
                  .ok());
  StartRegistryServer();
  FailpointRegistry::Instance().DisarmAll();
  // Every model failed recovery, none serves — but the server is up and
  // the failures are reported, not fatal.
  EXPECT_EQ(server_->registry_recovery().recovered, 0);
  EXPECT_EQ(server_->registry_recovery().failed, 2);
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 200);

  // A clean restart recovers both.
  server_.reset();
  StartRegistryServer();
  EXPECT_EQ(server_->registry_recovery().recovered, 2);
}

// ---------------------------------------------------------------------------
// Concurrent churn (the TSan leg)

TEST_F(RegistryServerTest, ConcurrentCreateDeleteReloadAssignChurn) {
  ServerOptions options;
  options.num_workers = 4;
  options.max_models = 16;
  StartRegistryServer(options);
  {
    HttpClient seed_client;
    ASSERT_TRUE(Connect(&seed_client).ok());
    ASSERT_EQ(CreateFromPath(&seed_client, "stable", model_paths_[0]), 201);
  }

  std::atomic<int> oks{0};
  std::atomic<int> transport_errors{0};
  const auto worker = [&](int id) {
    HttpClient client;
    if (!Connect(&client).ok()) {
      transport_errors.fetch_add(1);
      return;
    }
    const std::string mine = "churn_" + std::to_string(id);
    for (int iter = 0; iter < 12; ++iter) {
      HttpResponse response;
      // Create/delete my own tenant while assigning to the stable one and
      // reloading it — every combination of lifecycle x traffic races.
      client.Roundtrip("PUT", "/v1/models/" + mine, "application/json",
                       "{\"path\": \"" + model_paths_[id % kNumModels] +
                           "\"}",
                       {}, &response);
      int status_code = 0;
      AssignBinary(&client, "/v1/models/stable/assign", queries_,
                   &status_code);
      if (status_code == 200) {
        oks.fetch_add(1);
      }
      AssignBinary(&client, "/v1/models/" + mine + "/assign", queries_,
                   &status_code);
      client.Roundtrip("POST", "/v1/models/stable/reload",
                       "application/json",
                       "{\"path\": \"" + model_paths_[0] + "\"}", {},
                       &response);
      client.Roundtrip("DELETE", "/v1/models/" + mine, "", "", {},
                       &response);
      if (!client.connected()) {
        break;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_GT(oks.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);

  // The registry is consistent after the storm: stable serves, churn_*
  // are gone, and a fresh client sees a healthy server.
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  EXPECT_EQ(AssignBinary(&client, "/v1/models/stable/assign", queries_),
            OfflineLabels(model_paths_[0], queries_));
  HttpResponse response;
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/statz", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("\"models\":{"), std::string::npos);
}

}  // namespace
}  // namespace dbsvec
