// End-to-end tests across modules: surrogate datasets -> clusterers ->
// metrics -> CSV export, exercising the same paths as the paper-
// reproduction benches but at test scale.

#include <cstdio>
#include <filesystem>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "common/csv.h"
#include "common/normalize.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/external_metrics.h"
#include "eval/internal_metrics.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

/// Table III at test scale: DBSVEC must be essentially exact on the small
/// surrogate datasets.
class AccuracySuiteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AccuracySuiteTest, DbsvecNearExactOnSurrogate) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate(GetParam(), &surrogate).ok());
  DbscanParams dbscan_params;
  dbscan_params.epsilon = surrogate.epsilon;
  dbscan_params.min_pts = surrogate.min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(surrogate.data, dbscan_params, &reference).ok());

  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &out).ok());
  EXPECT_GE(PairRecall(reference.labels, out.labels), 0.99);
  EXPECT_GE(PairPrecision(reference.labels, out.labels), 0.999);
  EXPECT_EQ(reference.CountNoise(), out.CountNoise());  // Theorem 3.
}

INSTANTIATE_TEST_SUITE_P(SmallSurrogates, AccuracySuiteTest,
                         ::testing::Values("Seeds", "Breast", "Dim32",
                                           "Dim64", "D31", "t4.8k"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(IntegrationTest, AllApproximationsBeatChanceOnD31) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("D31", &surrogate).ok());
  DbscanParams dbscan_params;
  dbscan_params.epsilon = surrogate.epsilon;
  dbscan_params.min_pts = surrogate.min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(surrogate.data, dbscan_params, &reference).ok());

  RhoApproxParams rho_params;
  rho_params.epsilon = surrogate.epsilon;
  rho_params.min_pts = surrogate.min_pts;
  Clustering rho;
  ASSERT_TRUE(RunRhoApproxDbscan(surrogate.data, rho_params, &rho).ok());
  EXPECT_GT(PairRecall(reference.labels, rho.labels), 0.9);

  LshDbscanParams lsh_params;
  lsh_params.epsilon = surrogate.epsilon;
  lsh_params.min_pts = surrogate.min_pts;
  Clustering lsh;
  ASSERT_TRUE(RunLshDbscan(surrogate.data, lsh_params, &lsh).ok());
  EXPECT_GT(PairRecall(reference.labels, lsh.labels), 0.5);
}

TEST(IntegrationTest, PipelineClusterExportReimportAgreement) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("Seeds", &surrogate).ok());
  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &out).ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "dbsvec_integration.csv")
          .string();
  ASSERT_TRUE(WriteCsv(surrogate.data, out.labels, path).ok());
  Dataset reloaded(1);
  std::vector<int32_t> labels;
  ASSERT_TRUE(ReadCsv(path, true, &reloaded, &labels).ok());
  EXPECT_EQ(reloaded.size(), surrogate.data.size());
  EXPECT_EQ(labels, out.labels);
  // Clustering the reloaded data reproduces the identical result.
  Clustering again;
  ASSERT_TRUE(RunDbsvec(reloaded, params, &again).ok());
  EXPECT_EQ(again.labels, out.labels);
  std::remove(path.c_str());
}

TEST(IntegrationTest, NormalizationPreservesClusterStructure) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("Breast", &surrogate).ok());
  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering original;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &original).ok());

  // Uniform upscaling of coordinates and epsilon must not change the
  // partition (Euclidean similarity invariance).
  Dataset scaled = surrogate.data;
  for (PointIndex i = 0; i < scaled.size(); ++i) {
    for (int j = 0; j < scaled.dim(); ++j) {
      scaled.at(i, j) *= 1000.0;
    }
  }
  params.epsilon = surrogate.epsilon * 1000.0;
  Clustering rescaled;
  ASSERT_TRUE(RunDbsvec(scaled, params, &rescaled).ok());
  EXPECT_TRUE(testing::SamePartition(original.labels, rescaled.labels));
}

TEST(IntegrationTest, InternalMetricsPreferDbsvecOverRandom) {
  // Table IV's logic at test scale: DBSVEC's partition must dominate a
  // random one on both internal metrics.
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("Miss", &surrogate).ok());
  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &out).ok());
  ASSERT_GE(out.num_clusters, 2);

  Rng rng(7);
  std::vector<int32_t> random(out.labels.size());
  for (auto& label : random) {
    label = static_cast<int32_t>(rng.NextBounded(out.num_clusters));
  }
  EXPECT_GT(Compactness(surrogate.data, out.labels),
            Compactness(surrogate.data, random));
  EXPECT_LT(Separation(surrogate.data, out.labels),
            Separation(surrogate.data, random));
}

TEST(IntegrationTest, ExternalMetricsConsistentWithRecall) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("Dim32", &surrogate).ok());
  DbscanParams dbscan_params;
  dbscan_params.epsilon = surrogate.epsilon;
  dbscan_params.min_pts = surrogate.min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(surrogate.data, dbscan_params, &reference).ok());
  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &out).ok());
  // Perfect recall+precision implies perfect ARI and NMI.
  if (PairRecall(reference.labels, out.labels) == 1.0 &&
      PairPrecision(reference.labels, out.labels) == 1.0) {
    EXPECT_NEAR(AdjustedRandIndex(reference.labels, out.labels), 1.0, 1e-9);
    EXPECT_NEAR(NormalizedMutualInformation(reference.labels, out.labels),
                1.0, 1e-9);
  }
}

TEST(IntegrationTest, KMeansAndDbsvecAgreeOnBlobSurrogate) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("Dim64", &surrogate).ok());
  DbsvecParams params;
  params.epsilon = surrogate.epsilon;
  params.min_pts = surrogate.min_pts;
  Clustering density;
  ASSERT_TRUE(RunDbsvec(surrogate.data, params, &density).ok());
  KMeansParams kmeans_params;
  kmeans_params.k = std::max(2, density.num_clusters);
  Clustering partitional;
  ASSERT_TRUE(RunKMeans(surrogate.data, kmeans_params, &partitional).ok());
  // On 16 well-separated Gaussian clusters both families find the same
  // structure.
  EXPECT_GT(AdjustedRandIndex(density.labels, partitional.labels), 0.9);
}

}  // namespace
}  // namespace dbsvec
