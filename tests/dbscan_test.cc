#include <tuple>

#include "cluster/dbscan.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

/// Two tight groups of 3 points plus one isolated point.
Dataset TwoGroupsAndNoise() {
  return Dataset(2, {0.0, 0.0, 0.1, 0.0, 0.0, 0.1,   // Group A.
                     5.0, 5.0, 5.1, 5.0, 5.0, 5.1,   // Group B.
                     20.0, 20.0});                   // Noise.
}

TEST(DbscanTest, InvalidParamsRejected) {
  const Dataset dataset = TwoGroupsAndNoise();
  Clustering out;
  DbscanParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(RunDbscan(dataset, params, &out).ok());
  params.epsilon = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(RunDbscan(dataset, params, &out).ok());
}

TEST(DbscanTest, FindsTwoClustersAndNoise) {
  const Dataset dataset = TwoGroupsAndNoise();
  Clustering out;
  DbscanParams params;
  params.epsilon = 0.2;
  params.min_pts = 3;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_EQ(out.CountNoise(), 1);
  EXPECT_EQ(out.labels[0], out.labels[1]);
  EXPECT_EQ(out.labels[0], out.labels[2]);
  EXPECT_EQ(out.labels[3], out.labels[4]);
  EXPECT_NE(out.labels[0], out.labels[3]);
  EXPECT_EQ(out.labels[6], Clustering::kNoise);
}

TEST(DbscanTest, EverythingNoiseWhenMinPtsTooHigh) {
  const Dataset dataset = TwoGroupsAndNoise();
  Clustering out;
  DbscanParams params;
  params.epsilon = 0.2;
  params.min_pts = 5;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
  EXPECT_EQ(out.CountNoise(), 7);
}

TEST(DbscanTest, SingleClusterWithHugeEpsilon) {
  const Dataset dataset = TwoGroupsAndNoise();
  Clustering out;
  DbscanParams params;
  params.epsilon = 100.0;
  params.min_pts = 3;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 1);
  EXPECT_EQ(out.CountNoise(), 0);
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // A chain where the middle point is core and the tips are border points.
  Dataset dataset(1, {0.0, 1.0, 2.0, 10.0});
  Clustering out;
  DbscanParams params;
  params.epsilon = 1.0;
  params.min_pts = 3;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 1);
  EXPECT_EQ(out.labels[0], out.labels[1]);
  EXPECT_EQ(out.labels[2], out.labels[1]);
  EXPECT_EQ(out.labels[3], Clustering::kNoise);
}

TEST(DbscanTest, MinPtsOneMakesEveryPointItsOwnCluster) {
  Dataset dataset(1, {0.0, 10.0, 20.0});
  Clustering out;
  DbscanParams params;
  params.epsilon = 1.0;
  params.min_pts = 1;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 3);
  EXPECT_EQ(out.CountNoise(), 0);
}

TEST(DbscanTest, EmptyDataset) {
  Dataset dataset(2);
  Clustering out;
  ASSERT_TRUE(RunDbscan(dataset, DbscanParams(), &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
  EXPECT_TRUE(out.labels.empty());
}

TEST(DbscanTest, PointTypesClassified) {
  // Chain: middle point core, tips border, far point noise.
  Dataset dataset(1, {0.0, 1.0, 2.0, 10.0});
  Clustering out;
  DbscanParams params;
  params.epsilon = 1.0;
  params.min_pts = 3;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  ASSERT_EQ(out.point_types.size(), 4u);
  EXPECT_EQ(out.point_types[0], PointType::kBorder);
  EXPECT_EQ(out.point_types[1], PointType::kCore);
  EXPECT_EQ(out.point_types[2], PointType::kBorder);
  EXPECT_EQ(out.point_types[3], PointType::kNoise);
  EXPECT_EQ(out.CountType(PointType::kCore), 1);
  EXPECT_EQ(out.CountType(PointType::kBorder), 2);
  EXPECT_EQ(out.CountType(PointType::kNoise), 1);
}

TEST(DbscanTest, StatsPopulated) {
  const Dataset dataset = TwoGroupsAndNoise();
  Clustering out;
  DbscanParams params;
  params.epsilon = 0.2;
  params.min_pts = 3;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.stats.num_range_queries, 7u);  // One per point.
  EXPECT_GT(out.stats.num_distance_computations, 0u);
  EXPECT_GE(out.stats.elapsed_seconds, 0.0);
}

// Property: the clustering must not depend on the index backend.
class DbscanIndexTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(DbscanIndexTest, BackendInvariant) {
  GaussianBlobsParams gen;
  gen.n = 800;
  gen.dim = 2;
  gen.num_clusters = 4;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = 77;
  const Dataset dataset = GenerateGaussianBlobs(gen);

  DbscanParams reference_params;
  reference_params.epsilon = 0.7;
  reference_params.min_pts = 5;
  reference_params.index = IndexType::kBruteForce;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, reference_params, &reference).ok());

  DbscanParams params = reference_params;
  params.index = GetParam();
  Clustering out;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_TRUE(testing::SamePartition(reference.labels, out.labels));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DbscanIndexTest,
                         ::testing::Values(IndexType::kKdTree,
                                           IndexType::kRStarTree,
                                           IndexType::kGrid));

// Property: on well-separated blobs DBSCAN recovers the generating
// components for a range of seeds.
class DbscanBlobRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbscanBlobRecoveryTest, RecoversGeneratedComponents) {
  GaussianBlobsParams gen;
  gen.n = 600;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 0.8;
  gen.min_center_separation = 15.0;
  gen.seed = GetParam();
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);

  DbscanParams params;
  params.min_pts = 10;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts, 200, 1.5);
  Clustering out;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 3);
  // Gaussian tails are legitimately labelled noise, which costs truth
  // pairs; the bulk of each component must still be recovered.
  EXPECT_GT(PairRecall(truth, out.labels), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanBlobRecoveryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dbsvec
