#include <cmath>

#include "data/synthetic.h"
#include "eval/external_metrics.h"
#include "eval/internal_metrics.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(PairRecallTest, IdenticalLabelingsScoreOne) {
  const std::vector<int32_t> labels = {0, 0, 1, 1, 2, -1};
  EXPECT_DOUBLE_EQ(PairRecall(labels, labels), 1.0);
  EXPECT_DOUBLE_EQ(PairPrecision(labels, labels), 1.0);
}

TEST(PairRecallTest, RenamedLabelingsScoreOne) {
  const std::vector<int32_t> a = {0, 0, 1, 1};
  const std::vector<int32_t> b = {7, 7, 3, 3};
  EXPECT_DOUBLE_EQ(PairRecall(a, b), 1.0);
}

TEST(PairRecallTest, SplitHalvesPairs) {
  // Reference: one cluster of 4 (6 pairs). Split into two clusters of 2:
  // 2 preserved pairs -> recall 1/3.
  const std::vector<int32_t> reference = {0, 0, 0, 0};
  const std::vector<int32_t> split = {0, 0, 1, 1};
  EXPECT_NEAR(PairRecall(reference, split), 2.0 / 6.0, 1e-12);
  // The split labeling loses no pairs of its own: precision 1.
  EXPECT_DOUBLE_EQ(PairPrecision(reference, split), 1.0);
}

TEST(PairRecallTest, MergePenalizesPrecisionNotRecall) {
  const std::vector<int32_t> reference = {0, 0, 1, 1};
  const std::vector<int32_t> merged = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(PairRecall(reference, merged), 1.0);
  EXPECT_NEAR(PairPrecision(reference, merged), 2.0 / 6.0, 1e-12);
}

TEST(PairRecallTest, NoiseFormsNoPairs) {
  const std::vector<int32_t> reference = {0, 0, -1, -1};
  const std::vector<int32_t> noisy = {0, 0, 0, 0};
  // The two reference-noise points form no reference pairs.
  EXPECT_DOUBLE_EQ(PairRecall(reference, noisy), 1.0);
  // Losing a clustered point to noise costs recall.
  const std::vector<int32_t> lost = {0, -1, -1, -1};
  EXPECT_DOUBLE_EQ(PairRecall(reference, lost), 0.0);
}

TEST(PairRecallTest, EmptyAndPairFreeReferencesScoreOne) {
  EXPECT_DOUBLE_EQ(PairRecall({}, {}), 1.0);
  const std::vector<int32_t> singletons = {0, 1, 2};
  const std::vector<int32_t> anything = {0, 0, 0};
  EXPECT_DOUBLE_EQ(PairRecall(singletons, anything), 1.0);
}

TEST(AriTest, PerfectAgreementIsOne) {
  const std::vector<int32_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int32_t> b = {5, 5, 9, 9, 1, 1};
  EXPECT_NEAR(AdjustedRandIndex(a, b), 1.0, 1e-12);
}

TEST(AriTest, IndependentPartitionsNearZero) {
  Rng rng(31);
  std::vector<int32_t> a(2000);
  std::vector<int32_t> b(2000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int32_t>(rng.NextBounded(5));
    b[i] = static_cast<int32_t>(rng.NextBounded(5));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
}

TEST(AriTest, DisagreementLowersScore) {
  const std::vector<int32_t> a = {0, 0, 0, 1, 1, 1};
  const std::vector<int32_t> b = {0, 0, 1, 1, 1, 0};
  const double score = AdjustedRandIndex(a, b);
  EXPECT_LT(score, 1.0);
  EXPECT_GT(score, -1.0);
}

TEST(NmiTest, PerfectAgreementIsOne) {
  const std::vector<int32_t> a = {0, 0, 1, 1};
  const std::vector<int32_t> b = {3, 3, 7, 7};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  Rng rng(37);
  std::vector<int32_t> a(5000);
  std::vector<int32_t> b(5000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int32_t>(rng.NextBounded(4));
    b[i] = static_cast<int32_t>(rng.NextBounded(4));
  }
  EXPECT_LT(NormalizedMutualInformation(a, b), 0.05);
}

TEST(NmiTest, BoundedByOne) {
  const std::vector<int32_t> a = {0, 1, 0, 1, 2, 2};
  const std::vector<int32_t> b = {0, 0, 1, 1, 2, 0};
  const double score = NormalizedMutualInformation(a, b);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(CompactnessTest, WellSeparatedBlobsScoreNearOne) {
  GaussianBlobsParams gen;
  gen.n = 400;
  gen.dim = 2;
  gen.num_clusters = 2;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.seed = 41;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  EXPECT_GT(Compactness(dataset, truth), 0.85);
}

TEST(CompactnessTest, BadPartitionScoresLow) {
  GaussianBlobsParams gen;
  gen.n = 400;
  gen.dim = 2;
  gen.num_clusters = 2;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.seed = 43;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  // Random labels: silhouette collapses.
  Rng rng(44);
  std::vector<int32_t> random(truth.size());
  for (auto& label : random) {
    label = static_cast<int32_t>(rng.NextBounded(2));
  }
  EXPECT_LT(Compactness(dataset, random), 0.1);
  EXPECT_GT(Compactness(dataset, truth),
            Compactness(dataset, random));
}

TEST(CompactnessTest, SingleClusterScoresZero) {
  const Dataset dataset = testing::RandomDataset(100, 2, 10.0, 45);
  const std::vector<int32_t> one(100, 0);
  EXPECT_DOUBLE_EQ(Compactness(dataset, one), 0.0);
}

TEST(CompactnessTest, SampledEvaluationTracksExact) {
  GaussianBlobsParams gen;
  gen.n = 1200;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.seed = 47;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  const double exact = Compactness(dataset, truth, /*sample_cap=*/0);
  const double sampled = Compactness(dataset, truth, /*sample_cap=*/300);
  EXPECT_NEAR(exact, sampled, 0.05);
}

TEST(SeparationTest, WellSeparatedBlobsScoreLow) {
  GaussianBlobsParams gen;
  gen.n = 400;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.seed = 49;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  const double good = Separation(dataset, truth);
  EXPECT_GT(good, 0.0);
  EXPECT_LT(good, 0.3);
  // A random partition has much worse (higher) Davies-Bouldin.
  Rng rng(50);
  std::vector<int32_t> random(truth.size());
  for (auto& label : random) {
    label = static_cast<int32_t>(rng.NextBounded(3));
  }
  EXPECT_GT(Separation(dataset, random), good);
}

TEST(SeparationTest, SingleClusterScoresZero) {
  const Dataset dataset = testing::RandomDataset(50, 2, 10.0, 51);
  const std::vector<int32_t> one(50, 0);
  EXPECT_DOUBLE_EQ(Separation(dataset, one), 0.0);
}

TEST(SeparationTest, NoiseExcluded) {
  GaussianBlobsParams gen;
  gen.n = 300;
  gen.dim = 2;
  gen.num_clusters = 2;
  gen.stddev = 0.5;
  gen.min_center_separation = 40.0;
  gen.seed = 53;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(gen, &truth);
  std::vector<int32_t> with_noise = truth;
  with_noise[0] = -1;
  with_noise[1] = -1;
  // Still well-defined and close to the noise-free value.
  EXPECT_NEAR(Separation(dataset, with_noise), Separation(dataset, truth),
              0.05);
}

}  // namespace
}  // namespace dbsvec
