#include <algorithm>

#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "index/lsh_index.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(LshIndexTest, NoFalsePositives) {
  const double epsilon = 1.0;
  const Dataset dataset = testing::RandomDataset(400, 4, 10.0, 31);
  const LshIndex lsh(dataset, epsilon);
  std::vector<PointIndex> out;
  for (PointIndex q = 0; q < 40; ++q) {
    lsh.RangeQuery(dataset.point(q), epsilon, &out);
    for (const PointIndex i : out) {
      EXPECT_LE(dataset.SquaredDistance(q, i), epsilon * epsilon);
    }
  }
}

TEST(LshIndexTest, ResultsAreSubsetOfBruteForce) {
  const double epsilon = 1.5;
  const Dataset dataset = testing::RandomDataset(500, 3, 10.0, 32);
  const BruteForceIndex brute(dataset);
  const LshIndex lsh(dataset, epsilon);
  std::vector<PointIndex> exact;
  std::vector<PointIndex> approx;
  for (PointIndex q = 0; q < 40; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &exact);
    lsh.RangeQuery(dataset.point(q), epsilon, &approx);
    const auto exact_sorted = testing::Sorted(exact);
    const auto approx_sorted = testing::Sorted(approx);
    EXPECT_TRUE(std::includes(exact_sorted.begin(), exact_sorted.end(),
                              approx_sorted.begin(), approx_sorted.end()));
  }
}

TEST(LshIndexTest, QueryAlwaysFindsItself) {
  // A point collides with itself in every table, so self-recall is exact.
  const Dataset dataset = testing::RandomDataset(200, 5, 10.0, 33);
  const LshIndex lsh(dataset, 1.0);
  std::vector<PointIndex> out;
  for (PointIndex q = 0; q < dataset.size(); ++q) {
    lsh.RangeQuery(dataset.point(q), 1.0, &out);
    EXPECT_NE(std::find(out.begin(), out.end(), q), out.end());
  }
}

TEST(LshIndexTest, RecallImprovesWithMoreTables) {
  const double epsilon = 2.0;
  const Dataset dataset = testing::RandomDataset(600, 6, 10.0, 34);
  const BruteForceIndex brute(dataset);
  LshParams few;
  few.num_tables = 1;
  LshParams many;
  many.num_tables = 16;
  const LshIndex lsh_few(dataset, epsilon, few);
  const LshIndex lsh_many(dataset, epsilon, many);
  std::vector<PointIndex> exact;
  std::vector<PointIndex> out;
  int64_t exact_total = 0;
  int64_t few_total = 0;
  int64_t many_total = 0;
  for (PointIndex q = 0; q < 50; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &exact);
    exact_total += static_cast<int64_t>(exact.size());
    lsh_few.RangeQuery(dataset.point(q), epsilon, &out);
    few_total += static_cast<int64_t>(out.size());
    lsh_many.RangeQuery(dataset.point(q), epsilon, &out);
    many_total += static_cast<int64_t>(out.size());
  }
  EXPECT_GE(many_total, few_total);
  EXPECT_LE(many_total, exact_total);
  // 16 tables with one projection each should recover most neighbors.
  EXPECT_GT(static_cast<double>(many_total),
            0.6 * static_cast<double>(exact_total));
}

TEST(LshIndexTest, DeterministicForEqualSeeds) {
  const Dataset dataset = testing::RandomDataset(300, 4, 10.0, 35);
  const LshIndex a(dataset, 1.0);
  const LshIndex b(dataset, 1.0);
  std::vector<PointIndex> out_a;
  std::vector<PointIndex> out_b;
  for (PointIndex q = 0; q < 20; ++q) {
    a.RangeQuery(dataset.point(q), 1.0, &out_a);
    b.RangeQuery(dataset.point(q), 1.0, &out_b);
    EXPECT_EQ(testing::Sorted(out_a), testing::Sorted(out_b));
  }
}

}  // namespace
}  // namespace dbsvec
