// Assignment-engine semantics: agreement with the training run's ground
// truth (core points exact, noise exact, border divergence bounded),
// transform replay, the sphere prefilter's transparency, and error paths.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"
#include "test_util.h"

namespace dbsvec {
namespace {

Dataset BlobsDataset(int n, int dim, uint64_t seed) {
  GaussianBlobsParams params;
  params.n = n;
  params.dim = dim;
  params.num_clusters = 4;
  params.noise_fraction = 0.03;
  params.seed = seed;
  return GenerateGaussianBlobs(params);
}

/// Fits DBSVEC with point classification on, returning both the training
/// clustering (the agreement ground truth) and the servable model.
void FitWithGroundTruth(const Dataset& dataset, double epsilon, int min_pts,
                        Clustering* out, DbsvecModel* model) {
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  params.classify_points = true;
  ASSERT_TRUE(RunDbsvec(dataset, params, out, model).ok());
  ASSERT_GT(model->core_points.size(), 0);
}

std::unique_ptr<AssignmentEngine> MakeEngine(DbsvecModel model,
                                             AssignmentOptions options = {}) {
  std::unique_ptr<AssignmentEngine> engine;
  EXPECT_TRUE(
      AssignmentEngine::Create(std::move(model), options, &engine).ok());
  return engine;
}

/// Two equidistant cores in different clusters: the tie must break toward
/// the smaller cluster id regardless of index result order.
DbsvecModel TieModel() {
  DbsvecModel model;
  model.epsilon = 1.5;
  model.min_pts = 1;
  model.dim = 2;
  model.train_size = 2;
  model.num_clusters = 2;
  model.train_min = {-1.0, 0.0};
  model.train_max = {1.0, 0.0};
  model.core_points = Dataset(2, {1.0, 0.0, -1.0, 0.0});
  model.core_labels = {1, 0};
  model.core_is_sv = {1, 1};
  for (int cluster = 0; cluster < 2; ++cluster) {
    SubClusterSphere sphere;
    sphere.cluster = cluster;
    sphere.center = {cluster == 0 ? -1.0 : 1.0, 0.0};
    sphere.radius = 0.0;
    sphere.num_members = 1;
    model.spheres.push_back(sphere);
  }
  return model;
}

TEST(ServeTest, AgreesWithTrainingGroundTruth) {
  const Dataset dataset = BlobsDataset(1'500, 3, 29);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 6.0, 15, &truth, &model);

  auto engine = MakeEngine(model);
  std::vector<int32_t> assigned;
  ASSERT_TRUE(engine->AssignBatch(dataset, &assigned).ok());
  ASSERT_EQ(assigned.size(), truth.labels.size());

  int32_t border_total = 0;
  int32_t border_diverged = 0;
  for (size_t i = 0; i < assigned.size(); ++i) {
    switch (truth.point_types[i]) {
      case PointType::kCore:
        // Core training points reproduce their label exactly.
        EXPECT_EQ(assigned[i], truth.labels[i]) << "core point " << i;
        break;
      case PointType::kNoise:
        // Noise is exactly DBSCAN's noise set (Theorem 1), and no core
        // point lies within ε of it, so assignment must agree.
        EXPECT_EQ(assigned[i], Clustering::kNoise) << "noise point " << i;
        break;
      case PointType::kBorder:
        // Border points are within ε of some core point, so they can
        // never become noise; points touching several clusters may land
        // in a different one than training did.
        EXPECT_NE(assigned[i], Clustering::kNoise) << "border point " << i;
        ++border_total;
        border_diverged += assigned[i] != truth.labels[i] ? 1 : 0;
        break;
    }
  }
  // Divergence is confined to multi-cluster-contact border points; on
  // well-separated blobs that is a small minority of the border set.
  if (border_total > 0) {
    EXPECT_LE(border_diverged, border_total / 2)
        << border_diverged << " of " << border_total
        << " border points diverged";
  }
}

TEST(ServeTest, EngineFileRoundTrip) {
  const Dataset dataset = BlobsDataset(800, 2, 31);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 5.0, 10, &truth, &model);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dbsvec_serve_rt.dbsvm")
          .string();
  ASSERT_TRUE(SaveModel(model, path).ok());

  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Load(path, {}, &engine).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(engine->model() == model);

  std::vector<int32_t> from_file;
  ASSERT_TRUE(engine->AssignBatch(dataset, &from_file).ok());
  std::vector<int32_t> from_memory;
  ASSERT_TRUE(MakeEngine(model)->AssignBatch(dataset, &from_memory).ok());
  EXPECT_EQ(from_file, from_memory);
}

TEST(ServeTest, SingleAndBatchedAssignAgree) {
  const Dataset dataset = BlobsDataset(400, 2, 37);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 5.0, 10, &truth, &model);
  auto engine = MakeEngine(model);

  const Dataset queries = testing::RandomDataset(200, 2, 120.0, 41);
  std::vector<int32_t> batched;
  ASSERT_TRUE(engine->AssignBatch(queries, &batched).ok());
  for (PointIndex i = 0; i < queries.size(); ++i) {
    int32_t label = 0;
    ASSERT_TRUE(engine->Assign(queries.point(i), &label).ok());
    EXPECT_EQ(label, batched[i]) << "query " << i;
  }
}

TEST(ServeTest, PrefilterIsTransparent) {
  const Dataset dataset = BlobsDataset(600, 3, 43);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 6.0, 12, &truth, &model);

  AssignmentOptions with;
  with.sphere_prefilter = true;
  AssignmentOptions without;
  without.sphere_prefilter = false;
  auto filtered = MakeEngine(model, with);
  auto unfiltered = MakeEngine(model, without);

  // Mix of in-range and far-away queries so the filter actually rejects.
  Dataset queries = testing::RandomDataset(300, 3, 100.0, 47);
  for (PointIndex i = 0; i < 50; ++i) {
    queries.Append(std::vector<double>{1e6 + i, -1e6, 5e5});
  }
  std::vector<int32_t> a;
  std::vector<int32_t> b;
  ASSERT_TRUE(filtered->AssignBatch(queries, &a).ok());
  ASSERT_TRUE(unfiltered->AssignBatch(queries, &b).ok());
  EXPECT_EQ(a, b);

  const auto filtered_stats = filtered->stats();
  const auto unfiltered_stats = unfiltered->stats();
  EXPECT_GT(filtered_stats.sphere_rejections, 0u);
  EXPECT_LT(filtered_stats.range_queries, unfiltered_stats.range_queries);
  EXPECT_EQ(filtered_stats.points_assigned,
            static_cast<uint64_t>(queries.size()));
}

TEST(ServeTest, TransformIsReplayedOnQueries) {
  const Dataset dataset = BlobsDataset(500, 2, 53);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 5.0, 10, &truth, &model);

  // A model whose transform halves every coordinate expects raw queries at
  // twice the training scale; assignments must match the plain model fed
  // the training-scale points.
  DbsvecModel scaled = model;
  scaled.transform.scale = {0.5, 0.5};
  scaled.transform.shift = {0.0, 0.0};
  auto plain = MakeEngine(model);
  auto halved = MakeEngine(scaled);
  for (PointIndex i = 0; i < 100; ++i) {
    const auto p = dataset.point(i);
    int32_t expected = 0;
    ASSERT_TRUE(plain->Assign(p, &expected).ok());
    const std::vector<double> doubled = {2.0 * p[0], 2.0 * p[1]};
    int32_t actual = 0;
    ASSERT_TRUE(halved->Assign(doubled, &actual).ok());
    EXPECT_EQ(actual, expected) << "point " << i;
  }
}

TEST(ServeTest, TieBreaksTowardSmallerClusterId) {
  auto engine = MakeEngine(TieModel());
  int32_t label = -2;
  ASSERT_TRUE(engine->Assign(std::vector<double>{0.0, 0.0}, &label).ok());
  EXPECT_EQ(label, 0);
  // Off-center queries resolve by distance, not by id.
  ASSERT_TRUE(engine->Assign(std::vector<double>{0.5, 0.0}, &label).ok());
  EXPECT_EQ(label, 1);
  ASSERT_TRUE(engine->Assign(std::vector<double>{-0.5, 0.0}, &label).ok());
  EXPECT_EQ(label, 0);
  // Beyond ε of both cores: noise.
  ASSERT_TRUE(engine->Assign(std::vector<double>{0.0, 9.0}, &label).ok());
  EXPECT_EQ(label, Clustering::kNoise);
}

TEST(ServeTest, EmptyCoreSummaryAssignsEverythingNoise) {
  DbsvecModel model;
  model.epsilon = 1.0;
  model.min_pts = 2;
  model.dim = 2;
  model.train_size = 0;
  model.num_clusters = 0;
  model.core_points = Dataset(2);
  auto engine = MakeEngine(std::move(model));
  std::vector<int32_t> labels;
  ASSERT_TRUE(engine->AssignBatch(testing::RandomDataset(20, 2, 10.0, 59),
                                  &labels).ok());
  for (const int32_t label : labels) {
    EXPECT_EQ(label, Clustering::kNoise);
  }
}

TEST(ServeTest, RejectsDimensionMismatch) {
  auto engine = MakeEngine(TieModel());
  int32_t label = 0;
  EXPECT_FALSE(engine->Assign(std::vector<double>{1.0}, &label).ok());
  EXPECT_FALSE(
      engine->Assign(std::vector<double>{1.0, 2.0, 3.0}, &label).ok());
  std::vector<int32_t> labels;
  EXPECT_FALSE(
      engine->AssignBatch(Dataset(3, {0.0, 0.0, 0.0}), &labels).ok());
}

TEST(ServeTest, CreateRejectsInvalidInput) {
  std::unique_ptr<AssignmentEngine> engine;
  DbsvecModel invalid = TieModel();
  invalid.epsilon = -1.0;
  EXPECT_FALSE(
      AssignmentEngine::Create(std::move(invalid), {}, &engine).ok());
  AssignmentOptions bad_grain;
  bad_grain.batch_grain = 0;
  EXPECT_FALSE(
      AssignmentEngine::Create(TieModel(), bad_grain, &engine).ok());
  EXPECT_FALSE(
      AssignmentEngine::Load("/nonexistent/never.dbsvm", {}, &engine).ok());
}

TEST(ServeTest, EveryIndexEngineGivesSameAssignments) {
  const Dataset dataset = BlobsDataset(600, 2, 61);
  Clustering truth;
  DbsvecModel model;
  FitWithGroundTruth(dataset, 5.0, 10, &truth, &model);
  const Dataset queries = testing::RandomDataset(200, 2, 120.0, 67);

  std::vector<int32_t> reference;
  AssignmentOptions brute;
  brute.index = IndexType::kBruteForce;
  ASSERT_TRUE(
      MakeEngine(model, brute)->AssignBatch(queries, &reference).ok());
  for (const IndexType index : {IndexType::kKdTree, IndexType::kRStarTree,
                                IndexType::kGrid}) {
    AssignmentOptions options;
    options.index = index;
    std::vector<int32_t> labels;
    ASSERT_TRUE(
        MakeEngine(model, options)->AssignBatch(queries, &labels).ok());
    EXPECT_EQ(labels, reference) << "index " << static_cast<int>(index);
  }
}

}  // namespace
}  // namespace dbsvec
