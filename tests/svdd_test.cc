#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "svm/svdd.h"
#include "test_util.h"

namespace dbsvec {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;

Dataset RingDataset(int n, double radius, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset(2);
  for (int i = 0; i < n; ++i) {
    const double angle = kTwoPi * i / n;
    const double p[2] = {radius * std::cos(angle) + rng.Gaussian(0, 1e-3),
                         radius * std::sin(angle) + rng.Gaussian(0, 1e-3)};
    dataset.Append(p);
  }
  return dataset;
}

std::vector<PointIndex> AllIndices(const Dataset& dataset) {
  std::vector<PointIndex> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(SvddTest, EmptyTargetRejected) {
  Dataset dataset(2);
  SvddModel model;
  SvddParams params;
  params.nu = 0.1;
  EXPECT_EQ(Svdd::Train(dataset, {}, params, &model).code(),
            Status::Code::kInvalidArgument);
}

TEST(SvddTest, MissingPenaltyRejected) {
  Dataset dataset(2, {0.0, 0.0});
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;  // Neither nu nor c set.
  EXPECT_EQ(Svdd::Train(dataset, target, params, &model).code(),
            Status::Code::kInvalidArgument);
}

TEST(SvddTest, WeightSizeMismatchRejected) {
  Dataset dataset(2, {0.0, 0.0, 1.0, 1.0});
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.5;
  params.weights = {1.0};
  EXPECT_EQ(Svdd::Train(dataset, target, params, &model).code(),
            Status::Code::kInvalidArgument);
}

TEST(SvddTest, SinglePointBecomesSoleSupportVector) {
  Dataset dataset(2, {3.0, 4.0});
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.5;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  ASSERT_EQ(model.support_vectors().size(), 1u);
  EXPECT_NEAR(model.support_vectors()[0].alpha, 1.0, 1e-9);
  EXPECT_TRUE(model.Contains(dataset, dataset.point(0)));
}

TEST(SvddTest, AlphasSumToOne) {
  const Dataset dataset = testing::RandomDataset(200, 3, 5.0, 41);
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.1;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  double sum = 0.0;
  for (const auto& sv : model.support_vectors()) {
    sum += sv.alpha;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(SvddTest, SelectSigmaIsRadiusOverSqrt2) {
  const double radius = 4.0;
  const Dataset dataset = RingDataset(64, radius, 43);
  const auto target = AllIndices(dataset);
  const double sigma = Svdd::SelectSigma(dataset, target);
  EXPECT_NEAR(sigma, radius / std::sqrt(2.0), 0.05);
}

TEST(SvddTest, SelectSigmaFloorsOnDegenerateData) {
  Dataset dataset(2, {1.0, 1.0, 1.0, 1.0});
  const auto target = AllIndices(dataset);
  EXPECT_GT(Svdd::SelectSigma(dataset, target), 0.0);
}

TEST(SvddTest, AutoSigmaAvoidsCraterOverfitting) {
  // The paper's Sec. IV-B2 scenario: data on a circle with empty interior.
  // With sigma >= r/sqrt(2) (the selected value) the center of the circle
  // must be *inside* the sphere; with a much smaller sigma, the kernel
  // surface forms a crater and the center falls outside.
  const double radius = 5.0;
  const Dataset dataset = RingDataset(128, radius, 45);
  const auto target = AllIndices(dataset);
  const std::vector<double> center = {0.0, 0.0};

  SvddModel good;
  SvddParams params;
  params.nu = 0.2;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &good).ok());
  EXPECT_TRUE(good.Contains(dataset, center));

  SvddModel overfit;
  params.sigma = radius / 10.0;  // Far below the r/sqrt(2) bound.
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &overfit).ok());
  EXPECT_FALSE(overfit.Contains(dataset, center));
}

TEST(SvddTest, NuBoundsSupportVectorFractions) {
  // Schölkopf & Smola: nu lower-bounds the SV fraction and upper-bounds
  // the boundary-SV fraction (up to solver tolerance).
  const Dataset dataset = testing::RandomDataset(300, 2, 10.0, 47);
  const auto target = AllIndices(dataset);
  for (const double nu : {0.05, 0.1, 0.3}) {
    SvddModel model;
    SvddParams params;
    params.nu = nu;
    ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
    const double n = static_cast<double>(dataset.size());
    int bsv = 0;
    for (const auto& sv : model.support_vectors()) {
      bsv += sv.at_bound ? 1 : 0;
    }
    EXPECT_GE(model.support_vectors().size() + 1,
              static_cast<size_t>(nu * n * 0.9))
        << "nu=" << nu;
    EXPECT_LE(bsv, nu * n * 1.1 + 1) << "nu=" << nu;
  }
}

TEST(SvddTest, LargerNuYieldsMoreSupportVectors) {
  const Dataset dataset = testing::RandomDataset(400, 3, 10.0, 49);
  const auto target = AllIndices(dataset);
  size_t previous = 0;
  for (const double nu : {0.02, 0.1, 0.4}) {
    SvddModel model;
    SvddParams params;
    params.nu = nu;
    ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
    EXPECT_GE(model.support_vectors().size(), previous) << "nu=" << nu;
    previous = model.support_vectors().size();
  }
}

TEST(SvddTest, SphereContainsBulkOfGaussianBlob) {
  Rng rng(51);
  Dataset dataset(2);
  for (int i = 0; i < 500; ++i) {
    const double p[2] = {rng.Gaussian(10.0, 1.0), rng.Gaussian(-3.0, 1.0)};
    dataset.Append(p);
  }
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.05;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  int inside = 0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    inside += model.Contains(dataset, dataset.point(i)) ? 1 : 0;
  }
  // At most ~nu fraction may be outside (boundary SVs).
  EXPECT_GT(inside, static_cast<int>(0.9 * dataset.size()));
  // A far-away point must be outside the description.
  const std::vector<double> far = {100.0, 100.0};
  EXPECT_FALSE(model.Contains(dataset, far));
}

TEST(SvddTest, SupportVectorsLieOnTheBoundary) {
  // For a dense blob, normal SVs must be among the farthest points from
  // the blob centroid, not interior ones.
  Rng rng(53);
  Dataset dataset(2);
  for (int i = 0; i < 400; ++i) {
    const double p[2] = {rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 2.0)};
    dataset.Append(p);
  }
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.08;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());

  // Median distance of all points vs mean distance of SVs from origin.
  std::vector<double> dists;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    dists.push_back(std::hypot(dataset.at(i, 0), dataset.at(i, 1)));
  }
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double median = dists[dists.size() / 2];
  double sv_mean = 0.0;
  for (const auto& sv : model.support_vectors()) {
    sv_mean += std::hypot(dataset.at(sv.index, 0), dataset.at(sv.index, 1));
  }
  sv_mean /= static_cast<double>(model.support_vectors().size());
  EXPECT_GT(sv_mean, median);
}

TEST(SvddTest, SmallWeightMakesOutlierABoundarySV) {
  // A tight blob plus one outlier. With a small weight on the outlier its
  // cap binds and it becomes a boundary SV.
  Rng rng(55);
  Dataset dataset(2);
  for (int i = 0; i < 100; ++i) {
    const double p[2] = {rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)};
    dataset.Append(p);
  }
  const double outlier[2] = {8.0, 8.0};
  dataset.Append(outlier);
  const auto target = AllIndices(dataset);

  SvddParams params;
  params.c = 0.5;
  params.sigma = 2.0;
  params.weights.assign(dataset.size(), 1.0);
  params.weights.back() = 0.01;  // Cap the outlier's alpha at 0.005.
  SvddModel model;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  bool outlier_is_bsv = false;
  for (const auto& sv : model.support_vectors()) {
    if (sv.index == dataset.size() - 1) {
      outlier_is_bsv = sv.at_bound;
      EXPECT_LE(sv.alpha, 0.5 * 0.01 + 1e-9);
    }
  }
  EXPECT_TRUE(outlier_is_bsv);
}

TEST(SvddTest, RadiusSeparatesInsideFromOutside) {
  const Dataset dataset = RingDataset(100, 3.0, 57);
  const auto target = AllIndices(dataset);
  SvddModel model;
  SvddParams params;
  params.nu = 0.3;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  EXPECT_GT(model.radius_sq(), 0.0);
  // Ring points are (approximately) on the sphere; a distant point is not.
  const std::vector<double> far = {30.0, 0.0};
  EXPECT_GT(model.Distance2(dataset, far), model.radius_sq());
}

}  // namespace
}  // namespace dbsvec
