// Cross-cutting checks on the instrumentation every bench harness relies
// on: the counters in ClusteringStats and NeighborIndex must be mutually
// consistent and match the algorithms' cost models.

#include <memory>

#include "cluster/dbscan.h"
#include "cluster/nq_dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "index/neighbor_index.h"
#include "test_util.h"

namespace dbsvec {
namespace {

Dataset Blobs(PointIndex n, uint64_t seed) {
  GaussianBlobsParams gen;
  gen.n = n;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = seed;
  return GenerateGaussianBlobs(gen);
}

TEST(StatsConsistencyTest, DbscanIssuesExactlyOneQueryPerPoint) {
  const Dataset dataset = Blobs(700, 601);
  DbscanParams params;
  params.min_pts = 6;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  for (const IndexType index :
       {IndexType::kBruteForce, IndexType::kKdTree, IndexType::kRStarTree,
        IndexType::kGrid}) {
    params.index = index;
    Clustering out;
    ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
    // Every point is visited once, plus one expansion query per point
    // labelled during growth — the total equals n plus the number of
    // frontier pops, which is exactly the number of clustered points.
    const uint64_t clustered = static_cast<uint64_t>(
        dataset.size() - out.CountNoise());
    EXPECT_GE(out.stats.num_range_queries, clustered)
        << IndexTypeName(index);
    EXPECT_LE(out.stats.num_range_queries,
              static_cast<uint64_t>(dataset.size()) + clustered)
        << IndexTypeName(index);
    EXPECT_GT(out.stats.num_distance_computations, 0u)
        << IndexTypeName(index);
  }
}

TEST(StatsConsistencyTest, BruteForceDistanceCountIsQueriesTimesN) {
  const Dataset dataset = Blobs(500, 603);
  DbscanParams params;
  params.min_pts = 6;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  params.index = IndexType::kBruteForce;
  Clustering out;
  ASSERT_TRUE(RunDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.stats.num_distance_computations,
            out.stats.num_range_queries *
                static_cast<uint64_t>(dataset.size()));
}

TEST(StatsConsistencyTest, TreeIndexPrunesDistanceComputations) {
  const Dataset dataset = Blobs(2000, 605);
  DbscanParams params;
  params.min_pts = 8;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  params.index = IndexType::kBruteForce;
  Clustering brute;
  ASSERT_TRUE(RunDbscan(dataset, params, &brute).ok());
  params.index = IndexType::kKdTree;
  Clustering kd;
  ASSERT_TRUE(RunDbscan(dataset, params, &kd).ok());
  EXPECT_LT(kd.stats.num_distance_computations,
            brute.stats.num_distance_computations / 2);
}

TEST(StatsConsistencyTest, DbsvecQueriesNeverExceedDbscanScale) {
  const Dataset dataset = Blobs(1500, 607);
  const int min_pts = 8;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out).ok());
  // theta*n bound: s + k + m + MinPts*l queries, all far below 2n even in
  // the worst case of this workload.
  EXPECT_LT(out.stats.num_range_queries,
            2 * static_cast<uint64_t>(dataset.size()));
  EXPECT_GT(out.stats.num_svdd_trainings, 0u);
  EXPECT_GE(out.stats.num_support_vectors, out.stats.num_svdd_trainings);
  EXPECT_GT(out.stats.smo_iterations, 0);
  EXPECT_GE(out.stats.noise_list_size,
            static_cast<uint64_t>(out.CountNoise()));
  EXPECT_GE(out.stats.elapsed_seconds, 0.0);
}

TEST(StatsConsistencyTest, NqDbscanCountsFullScansPerSeed) {
  const Dataset dataset = Blobs(600, 609);
  NqDbscanParams params;
  params.min_pts = 6;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  Clustering out;
  ASSERT_TRUE(RunNqDbscan(dataset, params, &out).ok());
  // At least one full scan (n distance computations) per cluster seed and
  // per noise point.
  const uint64_t seeds =
      static_cast<uint64_t>(out.num_clusters) +
      static_cast<uint64_t>(out.CountNoise());
  EXPECT_GE(out.stats.num_distance_computations,
            seeds * static_cast<uint64_t>(dataset.size()) / 2);
}

TEST(StatsConsistencyTest, IndexCountersAccumulateAndReset) {
  const Dataset dataset = Blobs(300, 611);
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(IndexType::kKdTree, dataset);
  std::vector<PointIndex> out;
  index->RangeQuery(dataset.point(0), 1.0, &out);
  (void)index->RangeCount(dataset.point(1), 1.0);
  EXPECT_EQ(index->num_range_queries(), 2u);
  index->ResetCounters();
  EXPECT_EQ(index->num_range_queries(), 0u);
  EXPECT_EQ(index->num_distance_computations(), 0u);
}

TEST(StatsConsistencyTest, IndexFactoryAndNames) {
  const Dataset dataset = Blobs(50, 613);
  for (const IndexType type :
       {IndexType::kBruteForce, IndexType::kKdTree, IndexType::kRStarTree,
        IndexType::kGrid}) {
    const std::unique_ptr<NeighborIndex> index =
        CreateIndex(type, dataset, 1.0);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(&index->dataset(), &dataset);
    EXPECT_GT(std::string(IndexTypeName(type)).size(), 0u);
  }
}

}  // namespace
}  // namespace dbsvec
