// Randomized invariant checks: for a sweep of random datasets and random
// (epsilon, MinPts) settings, every clusterer must uphold its structural
// contracts — valid labels, DBSVEC's containment/noise theorems, exact
// algorithms agreeing with each other — regardless of geometry.

#include <tuple>

#include "cluster/dbscan.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/nq_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

/// A random mixture: some blobs, some uniform background, occasionally
/// degenerate duplicates.
Dataset FuzzDataset(uint64_t seed, int dim, PointIndex n) {
  Rng rng(seed);
  Dataset dataset(dim);
  dataset.Reserve(n);
  const int blobs = 1 + static_cast<int>(rng.NextBounded(4));
  std::vector<double> center(dim);
  std::vector<double> p(dim);
  for (int b = 0; b < blobs; ++b) {
    for (int j = 0; j < dim; ++j) {
      center[j] = rng.Uniform(0.0, 50.0);
    }
    const double spread = rng.Uniform(0.2, 3.0);
    const PointIndex share = n / (blobs + 1);
    for (PointIndex i = 0; i < share; ++i) {
      for (int j = 0; j < dim; ++j) {
        p[j] = center[j] + rng.Gaussian(0.0, spread);
      }
      dataset.Append(p);
    }
  }
  while (dataset.size() < n) {
    if (rng.NextDouble() < 0.1 && dataset.size() > 0) {
      // Duplicate an existing point exactly.
      const PointIndex src =
          static_cast<PointIndex>(rng.NextBounded(dataset.size()));
      for (int j = 0; j < dim; ++j) {
        p[j] = dataset.at(src, j);
      }
    } else {
      for (int j = 0; j < dim; ++j) {
        p[j] = rng.Uniform(0.0, 50.0);
      }
    }
    dataset.Append(p);
  }
  return dataset;
}

void ExpectValidLabels(const Clustering& c, PointIndex n) {
  ASSERT_EQ(static_cast<PointIndex>(c.labels.size()), n);
  for (const int32_t label : c.labels) {
    EXPECT_GE(label, Clustering::kNoise);
    EXPECT_LT(label, c.num_clusters);
  }
  // Every advertised cluster id actually appears.
  std::vector<char> seen(std::max(1, c.num_clusters), 0);
  for (const int32_t label : c.labels) {
    if (label >= 0) {
      seen[label] = 1;
    }
  }
  for (int32_t k = 0; k < c.num_clusters; ++k) {
    EXPECT_TRUE(seen[k]) << "cluster " << k << " is empty";
  }
}

using FuzzParam = std::tuple<uint64_t, int>;

class FuzzInvariantsTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzInvariantsTest, AllClusterersUpholdContracts) {
  const auto [seed, dim] = GetParam();
  Rng rng(seed * 7919 + 13);
  const PointIndex n = 300 + static_cast<PointIndex>(rng.NextBounded(500));
  const Dataset dataset = FuzzDataset(seed, dim, n);
  const int min_pts = 2 + static_cast<int>(rng.NextBounded(12));
  const double epsilon =
      SuggestEpsilon(dataset, min_pts) * rng.Uniform(0.5, 2.0);

  DbscanParams dbscan_params;
  dbscan_params.epsilon = epsilon;
  dbscan_params.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &reference).ok());
  ExpectValidLabels(reference, n);

  // NQ-DBSCAN is exact: identical partition.
  NqDbscanParams nq_params;
  nq_params.epsilon = epsilon;
  nq_params.min_pts = min_pts;
  Clustering nq;
  ASSERT_TRUE(RunNqDbscan(dataset, nq_params, &nq).ok());
  ExpectValidLabels(nq, n);
  EXPECT_TRUE(testing::SamePartition(reference.labels, nq.labels));

  // DBSVEC: valid labels, noise set identical (Theorem 3), and no two
  // DBSCAN clusters merged (precision ~1; border tie-breaks excepted).
  DbsvecParams dbsvec_params;
  dbsvec_params.epsilon = epsilon;
  dbsvec_params.min_pts = min_pts;
  Clustering dbsvec_result;
  ASSERT_TRUE(RunDbsvec(dataset, dbsvec_params, &dbsvec_result).ok());
  ExpectValidLabels(dbsvec_result, n);
  for (PointIndex i = 0; i < n; ++i) {
    EXPECT_EQ(reference.labels[i] == Clustering::kNoise,
              dbsvec_result.labels[i] == Clustering::kNoise)
        << "noise mismatch at " << i;
  }
  EXPECT_GE(PairPrecision(reference.labels, dbsvec_result.labels), 0.99);
  EXPECT_GE(PairRecall(reference.labels, dbsvec_result.labels), 0.9);

  // rho-approximate with rho=0 is exact up to border-point tie-breaks:
  // the core-point partition and the noise set must match DBSCAN's.
  RhoApproxParams rho_params;
  rho_params.epsilon = epsilon;
  rho_params.min_pts = min_pts;
  rho_params.rho = 0.0;
  Clustering rho;
  ASSERT_TRUE(RunRhoApproxDbscan(dataset, rho_params, &rho).ok());
  ExpectValidLabels(rho, n);
  std::vector<int32_t> ref_masked = reference.labels;
  std::vector<int32_t> rho_masked = rho.labels;
  for (PointIndex i = 0; i < n; ++i) {
    EXPECT_EQ(reference.labels[i] == Clustering::kNoise,
              rho.labels[i] == Clustering::kNoise)
        << "rho=0 noise mismatch at " << i;
    if (reference.point_types[i] == PointType::kBorder) {
      ref_masked[i] = Clustering::kNoise;
      rho_masked[i] = Clustering::kNoise;
    }
  }
  EXPECT_TRUE(testing::SamePartition(ref_masked, rho_masked));

  // DBSCAN-LSH: approximate but structurally valid.
  LshDbscanParams lsh_params;
  lsh_params.epsilon = epsilon;
  lsh_params.min_pts = min_pts;
  Clustering lsh;
  ASSERT_TRUE(RunLshDbscan(dataset, lsh_params, &lsh).ok());
  ExpectValidLabels(lsh, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzInvariantsTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
                       ::testing::Values(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace dbsvec
