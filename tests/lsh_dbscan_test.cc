#include "cluster/dbscan.h"
#include "cluster/lsh_dbscan.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(LshDbscanTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  Clustering out;
  LshDbscanParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(RunLshDbscan(dataset, params, &out).ok());
}

TEST(LshDbscanTest, ReasonableRecallOnSeparatedBlobs) {
  GaussianBlobsParams gen;
  gen.n = 800;
  gen.dim = 3;
  gen.num_clusters = 4;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.02;
  gen.seed = 81;
  const Dataset dataset = GenerateGaussianBlobs(gen);

  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);
  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, exact, &reference).ok());

  LshDbscanParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunLshDbscan(dataset, params, &out).ok());
  // Hashing is lossy: expect decent but not perfect agreement.
  EXPECT_GT(PairRecall(reference.labels, out.labels), 0.5);
}

TEST(LshDbscanTest, MoreTablesImproveAgreement) {
  GaussianBlobsParams gen;
  gen.n = 600;
  gen.dim = 4;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.seed = 83;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, exact, &reference).ok());

  double recalls[2] = {0.0, 0.0};
  const int table_counts[2] = {2, 24};
  for (int variant = 0; variant < 2; ++variant) {
    LshDbscanParams params;
    params.epsilon = epsilon;
    params.min_pts = min_pts;
    params.lsh.num_tables = table_counts[variant];
    Clustering out;
    ASSERT_TRUE(RunLshDbscan(dataset, params, &out).ok());
    recalls[variant] = PairRecall(reference.labels, out.labels);
  }
  EXPECT_GE(recalls[1] + 0.02, recalls[0]);
}

TEST(LshDbscanTest, DeterministicForEqualSeeds) {
  const Dataset dataset = testing::RandomDataset(400, 3, 10.0, 85);
  LshDbscanParams params;
  params.epsilon = 1.0;
  params.min_pts = 4;
  Clustering a;
  Clustering b;
  ASSERT_TRUE(RunLshDbscan(dataset, params, &a).ok());
  ASSERT_TRUE(RunLshDbscan(dataset, params, &b).ok());
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace dbsvec
