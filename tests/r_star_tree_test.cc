#include <tuple>

#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "index/r_star_tree.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(RStarTreeTest, EmptyDatasetReturnsNothing) {
  Dataset dataset(2);
  RStarTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[2] = {0.0, 0.0};
  tree.RangeQuery(q, 10.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, FindsAllPointsWithLargeRadius) {
  const Dataset dataset = testing::RandomDataset(321, 3, 10.0, 5);
  RStarTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[3] = {5.0, 5.0, 5.0};
  tree.RangeQuery(q, 100.0, &out);
  EXPECT_EQ(static_cast<PointIndex>(out.size()), dataset.size());
}

TEST(RStarTreeTest, CountsMatchQueries) {
  const Dataset dataset = testing::RandomDataset(500, 4, 10.0, 9);
  RStarTree tree(dataset);
  std::vector<PointIndex> out;
  for (PointIndex i = 0; i < 20; ++i) {
    tree.RangeQuery(dataset.point(i), 2.0, &out);
    EXPECT_EQ(tree.RangeCount(dataset.point(i), 2.0),
              static_cast<PointIndex>(out.size()));
  }
}

TEST(RStarTreeTest, ExternalQueryPoint) {
  Dataset dataset(2, {0.0, 0.0, 1.0, 0.0, 10.0, 10.0});
  RStarTree tree(dataset);
  std::vector<PointIndex> out;
  const double q[2] = {0.5, 0.0};
  tree.RangeQuery(q, 0.6, &out);
  EXPECT_EQ(testing::Sorted(out), (std::vector<PointIndex>{0, 1}));
}

using RTreeSweepParam = std::tuple<int, int, double>;

class RStarTreeSweepTest
    : public ::testing::TestWithParam<RTreeSweepParam> {};

TEST_P(RStarTreeSweepTest, MatchesBruteForce) {
  const auto [n, dim, epsilon] = GetParam();
  const Dataset dataset =
      testing::RandomDataset(n, dim, 10.0, 2000 + n * 31 + dim);
  const BruteForceIndex brute(dataset);
  const RStarTree tree(dataset);
  std::vector<PointIndex> expected;
  std::vector<PointIndex> actual;
  const int queries = std::min<PointIndex>(50, dataset.size());
  for (PointIndex q = 0; q < queries; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &expected);
    tree.RangeQuery(dataset.point(q), epsilon, &actual);
    EXPECT_EQ(testing::Sorted(expected), testing::Sorted(actual))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RStarTreeSweepTest,
    ::testing::Combine(::testing::Values(1, 17, 256, 1500),
                       ::testing::Values(1, 2, 6, 12),
                       ::testing::Values(0.2, 1.0, 5.0)));

}  // namespace
}  // namespace dbsvec
