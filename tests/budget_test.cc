// Bounded-cost SVDD (docs/PERFORMANCE.md): the budgeted SMO solver's hard
// support-vector cap and O(B·ñ) per-solve cost, the boundary-preserving
// target sampler, their wiring through RunDbsvec (stats, degradation,
// model provenance, CLI flags), the svdd.budget_merge failpoint, and the
// determinism contract of the sampled path across threads, shards, and
// range-query engines.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cli/cli_options.h"
#include "cluster/dbscan.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/shapes.h"
#include "data/synthetic.h"
#include "eval/external_metrics.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "svm/budgeted_smo_solver.h"
#include "svm/kernel_cache.h"
#include "svm/target_sampler.h"
#include "test_util.h"

namespace dbsvec {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    SetGlobalThreads(0);
  }

  FailpointRegistry& registry() { return FailpointRegistry::Instance(); }
};

std::vector<PointIndex> AllIndices(const Dataset& dataset) {
  std::vector<PointIndex> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

int ActiveCount(const std::vector<double>& alpha) {
  int active = 0;
  for (const double a : alpha) {
    active += a > 0.0 ? 1 : 0;
  }
  return active;
}

/// Dense Gaussian blobs: sub-clusters big enough that the expansion
/// actually trains SVDD spheres and (with a small budget) runs merge
/// maintenance.
Dataset BlobScene(PointIndex n, uint64_t seed) {
  GaussianBlobsParams gen;
  gen.n = n;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = seed;
  return GenerateGaussianBlobs(gen);
}

DbsvecParams SceneParams(const Dataset& dataset) {
  DbsvecParams params;
  params.min_pts = 10;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  return params;
}

// ---------------------------------------------------------------------------
// BudgetedSmoSolver: the cap, the cost bound, and the dual invariants.
// ---------------------------------------------------------------------------

TEST_F(BudgetTest, SolveRespectsBudgetAndDualInvariants) {
  const Dataset dataset = testing::RandomDataset(200, 3, 5.0, 31);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 2.0);
  const std::vector<double> bounds(dataset.size(), 0.1);

  BudgetedSmoOptions options;
  options.budget = 16;
  BudgetedSmoSolution solution;
  ASSERT_TRUE(BudgetedSmoSolver::Solve(dataset, &cache, bounds, options,
                                       &solution)
                  .ok());
  EXPECT_TRUE(solution.converged);
  EXPECT_LE(ActiveCount(solution.alpha), 16);
  double sum = 0.0;
  for (size_t i = 0; i < solution.alpha.size(); ++i) {
    EXPECT_GE(solution.alpha[i], 0.0);
    EXPECT_LE(solution.alpha[i], bounds[i] + 1e-12);
    sum += solution.alpha[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);  // Σα = 1 survives every merge/projection.
}

TEST_F(BudgetTest, SolveReportsExactAlphaKAlpha) {
  const Dataset dataset = testing::RandomDataset(120, 2, 5.0, 37);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.5);
  const std::vector<double> bounds(dataset.size(), 0.08);
  BudgetedSmoOptions options;
  options.budget = 20;
  BudgetedSmoSolution solution;
  ASSERT_TRUE(BudgetedSmoSolver::Solve(dataset, &cache, bounds, options,
                                       &solution)
                  .ok());
  double direct = 0.0;
  KernelCache fresh(dataset, target, 1.5);
  const int n = static_cast<int>(target.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      direct += solution.alpha[i] * solution.alpha[j] * fresh.At(i, j);
    }
  }
  EXPECT_NEAR(solution.alpha_k_alpha, direct, 1e-6);
}

TEST_F(BudgetTest, IterationCapIsLinearInBudgetNotTargetSize) {
  // The acceptance property of the whole feature: per-solve work is
  // O(B·ñ). With the default cap the iteration count must be bounded by
  // max(64, 16·B) — independent of ñ, where the exact solver's default
  // cap would be 100·ñ.
  const Dataset dataset = testing::RandomDataset(500, 3, 5.0, 41);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 2.0);
  // Caps of 0.2 need at least 5 active SVs to carry Σα = 1, so every budget
  // below stays feasible.
  const std::vector<double> bounds(dataset.size(), 0.2);
  for (const int budget : {8, 16, 64}) {
    BudgetedSmoOptions options;
    options.budget = budget;
    BudgetedSmoSolution solution;
    ASSERT_TRUE(BudgetedSmoSolver::Solve(dataset, &cache, bounds, options,
                                         &solution)
                    .ok())
        << budget;
    EXPECT_LE(solution.iterations, std::max<int64_t>(64, 16LL * budget))
        << budget;
    EXPECT_TRUE(solution.converged) << budget;
  }
}

TEST_F(BudgetTest, MergeMaintenanceFiresAndIsCounted) {
  // Tight caps force many actives; a small budget then has to merge.
  const Dataset dataset = testing::RandomDataset(300, 2, 5.0, 43);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  const std::vector<double> bounds(dataset.size(), 0.15);
  BudgetedSmoOptions options;
  options.budget = 8;
  BudgetedSmoSolution solution;
  ASSERT_TRUE(BudgetedSmoSolver::Solve(dataset, &cache, bounds, options,
                                       &solution)
                  .ok());
  EXPECT_GT(solution.merges + solution.forgets, 0);
  EXPECT_LE(ActiveCount(solution.alpha), 8);
}

TEST_F(BudgetTest, BudgetTooSmallForBoxConstraintsFailsCleanly) {
  // 16 caps of 0.05 carry at most 0.8 < 1: no feasible α exists within
  // the budget, and the solver must say so instead of looping.
  const Dataset dataset = testing::RandomDataset(100, 2, 5.0, 47);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  const std::vector<double> bounds(dataset.size(), 0.05);
  BudgetedSmoOptions options;
  options.budget = 16;
  BudgetedSmoSolution solution;
  const Status status =
      BudgetedSmoSolver::Solve(dataset, &cache, bounds, options, &solution);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("budget"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TargetSampler: boundary-preserving, order-preserving, deterministic.
// ---------------------------------------------------------------------------

TEST_F(BudgetTest, SamplerIsInertAtOrBelowThreshold) {
  const Dataset dataset = testing::RandomDataset(100, 2, 5.0, 53);
  const auto target = AllIndices(dataset);
  std::vector<PointIndex> sample;
  TargetSamplerOptions options;
  options.threshold = 0;  // Disabled.
  EXPECT_FALSE(TargetSampler::Sample(dataset, target, options, &sample));
  options.threshold = 100;  // n == threshold: nothing to shrink.
  EXPECT_FALSE(TargetSampler::Sample(dataset, target, options, &sample));
  options.threshold = 200;
  EXPECT_FALSE(TargetSampler::Sample(dataset, target, options, &sample));
}

TEST_F(BudgetTest, SamplerReturnsOrderPreservingSubsequenceOfExactSize) {
  const Dataset dataset = testing::RandomDataset(400, 3, 5.0, 59);
  const auto target = AllIndices(dataset);
  std::vector<PointIndex> sample;
  TargetSamplerOptions options;
  options.threshold = 64;
  ASSERT_TRUE(TargetSampler::Sample(dataset, target, options, &sample));
  ASSERT_EQ(sample.size(), 64u);
  // A strictly increasing subsequence of an increasing target is exactly
  // "order preserved, no duplicates".
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
}

TEST_F(BudgetTest, SamplerKeepsTheOuterShell) {
  // One far outlier must always survive sampling: it has the largest
  // distance to the centroid, and the outer shell is taken by rank.
  std::vector<double> values;
  Rng rng(61);
  for (int i = 0; i < 299; ++i) {
    values.push_back(rng.Uniform(0.0, 1.0));
    values.push_back(rng.Uniform(0.0, 1.0));
  }
  values.push_back(100.0);
  values.push_back(100.0);
  const Dataset dataset(2, std::move(values));
  const auto target = AllIndices(dataset);
  std::vector<PointIndex> sample;
  TargetSamplerOptions options;
  options.threshold = 32;
  ASSERT_TRUE(TargetSampler::Sample(dataset, target, options, &sample));
  EXPECT_NE(std::find(sample.begin(), sample.end(), PointIndex{299}),
            sample.end());
}

TEST_F(BudgetTest, SamplerIsDeterministicPerSeed) {
  const Dataset dataset = testing::RandomDataset(500, 2, 5.0, 67);
  const auto target = AllIndices(dataset);
  TargetSamplerOptions options;
  options.threshold = 100;
  options.seed = 7;
  std::vector<PointIndex> first;
  std::vector<PointIndex> second;
  ASSERT_TRUE(TargetSampler::Sample(dataset, target, options, &first));
  ASSERT_TRUE(TargetSampler::Sample(dataset, target, options, &second));
  EXPECT_EQ(first, second);
  options.seed = 8;
  std::vector<PointIndex> other_seed;
  ASSERT_TRUE(TargetSampler::Sample(dataset, target, options, &other_seed));
  EXPECT_NE(first, other_seed);  // The uniform floor moves with the seed.
}

// ---------------------------------------------------------------------------
// RunDbsvec wiring: stats, quality, validation, provenance.
// ---------------------------------------------------------------------------

TEST_F(BudgetTest, BudgetedFitBoundsPerSolveCostAndKeepsQuality) {
  const Dataset dataset = BlobScene(2'000, 71);
  const DbsvecParams exact_params = SceneParams(dataset);
  Clustering exact;
  ASSERT_TRUE(RunDbsvec(dataset, exact_params, &exact).ok());
  ASSERT_GT(exact.stats.num_svdd_trainings, 0u);

  DbsvecParams budgeted_params = exact_params;
  budgeted_params.sv_budget = 32;
  Clustering budgeted;
  ASSERT_TRUE(RunDbsvec(dataset, budgeted_params, &budgeted).ok());
  EXPECT_GT(budgeted.stats.num_svdd_trainings, 0u);
  // The acceptance bound: per-solve SMO cost is O(B), not O(ñ).
  EXPECT_LE(budgeted.stats.max_smo_iterations,
            std::max<int64_t>(64, 16LL * budgeted_params.sv_budget));
  EXPECT_EQ(budgeted.stats.num_nonconverged_solves, 0u);
  EXPECT_GE(AdjustedRandIndex(exact.labels, budgeted.labels), 0.95);
}

TEST_F(BudgetTest, SampledFitKeepsQuality) {
  const Dataset dataset = BlobScene(2'000, 73);
  const DbsvecParams exact_params = SceneParams(dataset);
  Clustering exact;
  ASSERT_TRUE(RunDbsvec(dataset, exact_params, &exact).ok());

  DbsvecParams sampled_params = exact_params;
  sampled_params.sample_threshold = 128;
  Clustering sampled;
  ASSERT_TRUE(RunDbsvec(dataset, sampled_params, &sampled).ok());
  EXPECT_GT(sampled.stats.num_sampled_solves, 0u);
  EXPECT_GE(AdjustedRandIndex(exact.labels, sampled.labels), 0.95);
}

TEST_F(BudgetTest, InertThresholdIsBitIdenticalToDefaults) {
  // sample_threshold larger than any target must not perturb anything:
  // the sampler never fires, consumes no RNG, and the run is the default
  // run bit for bit (labels and every counter).
  const Dataset dataset = BlobScene(1'000, 79);
  const DbsvecParams defaults = SceneParams(dataset);
  Clustering base;
  ASSERT_TRUE(RunDbsvec(dataset, defaults, &base).ok());

  DbsvecParams inert = defaults;
  inert.sample_threshold = dataset.size() + 1;
  Clustering with_flag;
  ASSERT_TRUE(RunDbsvec(dataset, inert, &with_flag).ok());
  EXPECT_EQ(base.labels, with_flag.labels);
  EXPECT_EQ(base.stats.num_range_queries, with_flag.stats.num_range_queries);
  EXPECT_EQ(base.stats.smo_iterations, with_flag.stats.smo_iterations);
  EXPECT_EQ(with_flag.stats.num_sampled_solves, 0u);
}

TEST_F(BudgetTest, NegativeParametersRejected) {
  const Dataset dataset = testing::RandomDataset(50, 2, 10.0, 83);
  DbsvecParams params;
  params.epsilon = 1.0;
  params.sv_budget = -1;
  Clustering out;
  EXPECT_EQ(RunDbsvec(dataset, params, &out).code(),
            Status::Code::kInvalidArgument);
  params.sv_budget = 0;
  params.sample_threshold = -1;
  EXPECT_EQ(RunDbsvec(dataset, params, &out).code(),
            Status::Code::kInvalidArgument);
}

TEST_F(BudgetTest, ModelRecordsBudgetProvenanceAndRoundTrips) {
  const Dataset dataset = BlobScene(800, 89);
  DbsvecParams params = SceneParams(dataset);
  params.sv_budget = 24;
  params.sample_threshold = 96;
  Clustering out;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());
  EXPECT_EQ(model.sv_budget, 24);
  EXPECT_EQ(model.sample_threshold, 96);

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SerializeModel(model, &bytes).ok());
  DbsvecModel loaded;
  ASSERT_TRUE(DeserializeModel(bytes, &loaded).ok());
  EXPECT_TRUE(loaded == model);
  EXPECT_EQ(loaded.sv_budget, 24);
  EXPECT_EQ(loaded.sample_threshold, 96);
}

TEST_F(BudgetTest, CliParsesBudgetFlags) {
  cli::CliOptions options;
  ASSERT_TRUE(cli::ParseCliOptions(
                  {"--sv-budget=32", "--sample-threshold=256"}, &options)
                  .ok());
  EXPECT_EQ(options.sv_budget, 32);
  EXPECT_EQ(options.sample_threshold, 256);
  EXPECT_FALSE(cli::ParseCliOptions({"--sv-budget=-1"}, &options).ok());
  EXPECT_FALSE(cli::ParseCliOptions({"--sv-budget=x"}, &options).ok());
  EXPECT_FALSE(cli::ParseCliOptions({"--sample-threshold=-2"}, &options).ok());
}

// ---------------------------------------------------------------------------
// Failpoint: svdd.budget_merge.
// ---------------------------------------------------------------------------

/// Budgeted params tight enough that merge maintenance provably runs
/// (asserted via the healthy run's counter before any fault is armed).
DbsvecParams MergeHeavyParams(const Dataset& dataset) {
  DbsvecParams params = SceneParams(dataset);
  params.sv_budget = 8;
  return params;
}

TEST_F(BudgetTest, BudgetMergeErrorDegradesToExactExpansion) {
  const Dataset dataset = BlobScene(1'000, 97);
  const DbsvecParams params = MergeHeavyParams(dataset);

  Clustering healthy;
  ASSERT_TRUE(RunDbsvec(dataset, params, &healthy).ok());
  ASSERT_GT(healthy.stats.num_budget_merges, 0u)
      << "workload does not reach the merge step; the sweep below would "
         "pass vacuously";

  ASSERT_TRUE(registry().ArmSpec("svdd.budget_merge:error").ok());
  Clustering degraded;
  ASSERT_TRUE(RunDbsvec(dataset, params, &degraded).ok());
  EXPECT_GE(registry().HitCount("svdd.budget_merge"), 1u);
  EXPECT_GT(degraded.stats.num_svdd_fallbacks, 0u);

  // Theorem 1/3: exact expansion keeps the DBSCAN partition.
  DbscanParams exact;
  exact.epsilon = params.epsilon;
  exact.min_pts = params.min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, exact, &reference).ok());
  EXPECT_TRUE(testing::SamePartition(degraded.labels, reference.labels));
}

TEST_F(BudgetTest, BudgetMergeNonconvergeForcesForgetPath) {
  const Dataset dataset = BlobScene(1'000, 97);
  const DbsvecParams params = MergeHeavyParams(dataset);

  ASSERT_TRUE(registry().ArmSpec("svdd.budget_merge:nonconverge").ok());
  Clustering forced;
  ASSERT_TRUE(RunDbsvec(dataset, params, &forced).ok());
  EXPECT_GE(registry().HitCount("svdd.budget_merge"), 1u);
  EXPECT_GT(forced.stats.num_budget_forgets, 0u);
  EXPECT_EQ(forced.stats.num_budget_merges, 0u);
}

// ---------------------------------------------------------------------------
// Determinism of the sampled/budgeted path.
// ---------------------------------------------------------------------------

TEST_F(BudgetTest, SampledPathIsBitIdenticalAcrossThreadsAndShards) {
  // The library's determinism contract, extended to the sampled/budgeted
  // path (mirrors determinism_test.cc): labels are bit-identical across
  // every engine × shard × thread combination, and the solver counters are
  // bit-identical across thread counts at a fixed (engine, shards). Across
  // engines — and between the legacy unsharded path and the sharded one —
  // the neighbor *order* differs, so the solve trajectory (merge counts,
  // iteration sums) legitimately differs; each configuration is held to
  // its own threads=1 reference.
  const Dataset dataset = BlobScene(2'000, 101);
  DbsvecParams params = SceneParams(dataset);
  params.sv_budget = 32;
  params.sample_threshold = 96;

  Clustering labels_baseline;
  {
    SetGlobalThreads(1);
    ASSERT_TRUE(RunDbsvec(dataset, params, &labels_baseline).ok());
    SetGlobalThreads(0);
  }
  ASSERT_GT(labels_baseline.stats.num_sampled_solves, 0u);

  constexpr IndexType kEngines[] = {IndexType::kBruteForce,
                                    IndexType::kKdTree,
                                    IndexType::kRStarTree, IndexType::kGrid};
  for (const IndexType engine : kEngines) {
    for (const int shards : {0, 1, 4}) {
      DbsvecParams variant = params;
      variant.index = engine;
      variant.shards = shards;
      Clustering reference;  // threads=1 at this (engine, shards).
      {
        SetGlobalThreads(1);
        ASSERT_TRUE(RunDbsvec(dataset, variant, &reference).ok());
        SetGlobalThreads(0);
      }
      for (const int threads : {1, 8}) {
        SetGlobalThreads(threads);
        Clustering run;
        ASSERT_TRUE(RunDbsvec(dataset, variant, &run).ok());
        SetGlobalThreads(0);
        SCOPED_TRACE("engine=" + std::to_string(static_cast<int>(engine)) +
                     " threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
        EXPECT_EQ(run.labels, labels_baseline.labels);
        EXPECT_GT(run.stats.num_sampled_solves, 0u);
        EXPECT_EQ(run.stats.num_sampled_solves,
                  reference.stats.num_sampled_solves);
        EXPECT_EQ(run.stats.num_budget_merges,
                  reference.stats.num_budget_merges);
        EXPECT_EQ(run.stats.num_budget_forgets,
                  reference.stats.num_budget_forgets);
        EXPECT_EQ(run.stats.smo_iterations, reference.stats.smo_iterations);
      }
    }
  }
}

TEST_F(BudgetTest, SeedsOnlyShiftTheSampleNotTheQuality) {
  // Fig-1-style shape scenes: any seed's sampled+budgeted run must stay
  // close to the exact partition (the sample floor moves with the seed;
  // the boundary shell, and thus the expansion, must not).
  for (const ShapeScene scene : {ShapeScene::kT4, ShapeScene::kT7}) {
    const Dataset dataset = GenerateShapeScene(scene, 4'000, 5);
    DbsvecParams exact_params;
    exact_params.min_pts = 10;
    exact_params.epsilon = SuggestEpsilon(dataset, exact_params.min_pts);
    Clustering exact;
    ASSERT_TRUE(RunDbsvec(dataset, exact_params, &exact).ok());

    for (const uint64_t seed : {7ull, 1234ull}) {
      DbsvecParams sampled_params = exact_params;
      sampled_params.seed = seed;
      sampled_params.sample_threshold = 256;
      sampled_params.sv_budget = 64;
      Clustering sampled;
      ASSERT_TRUE(RunDbsvec(dataset, sampled_params, &sampled).ok());
      SCOPED_TRACE("scene=" + std::to_string(static_cast<int>(scene)) +
                   " seed=" + std::to_string(seed));
      EXPECT_GE(AdjustedRandIndex(exact.labels, sampled.labels), 0.80);
    }
  }
}

}  // namespace
}  // namespace dbsvec
