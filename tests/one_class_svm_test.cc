#include <numeric>

#include "gtest/gtest.h"
#include "svm/one_class_svm.h"
#include "svm/svdd.h"
#include "test_util.h"

namespace dbsvec {
namespace {

std::vector<PointIndex> AllIndices(const Dataset& dataset) {
  std::vector<PointIndex> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(OneClassSvmTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  const auto target = AllIndices(dataset);
  OneClassSvm model;
  OneClassSvmParams params;
  params.nu = 0.0;
  EXPECT_FALSE(model.Train(dataset, target, params).ok());
  params.nu = 1.5;
  EXPECT_FALSE(model.Train(dataset, target, params).ok());
  params.nu = 0.5;
  params.sigma = 0.0;
  EXPECT_FALSE(model.Train(dataset, target, params).ok());
  EXPECT_FALSE(model.Train(dataset, {}, OneClassSvmParams()).ok());
}

TEST(OneClassSvmTest, ContainsBulkOfBlob) {
  Rng rng(71);
  Dataset dataset(2);
  for (int i = 0; i < 400; ++i) {
    const double p[2] = {rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)};
    dataset.Append(p);
  }
  const auto target = AllIndices(dataset);
  OneClassSvm model;
  OneClassSvmParams params;
  params.nu = 0.05;
  params.sigma = 2.0;
  ASSERT_TRUE(model.Train(dataset, target, params).ok());
  int inside = 0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    inside += model.Contains(dataset, dataset.point(i)) ? 1 : 0;
  }
  EXPECT_GT(inside, static_cast<int>(0.9 * dataset.size()));
  const std::vector<double> far = {50.0, 50.0};
  EXPECT_FALSE(model.Contains(dataset, far));
}

TEST(OneClassSvmTest, NuBoundsOutlierFraction) {
  const Dataset dataset = testing::RandomDataset(300, 3, 10.0, 73);
  const auto target = AllIndices(dataset);
  for (const double nu : {0.1, 0.3}) {
    OneClassSvm model;
    OneClassSvmParams params;
    params.nu = nu;
    params.sigma = 5.0;
    ASSERT_TRUE(model.Train(dataset, target, params).ok());
    int outside = 0;
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      outside += model.Contains(dataset, dataset.point(i)) ? 0 : 1;
    }
    // At most ~nu fraction of training points fall outside (BSVs).
    EXPECT_LE(outside, static_cast<int>(nu * dataset.size() * 1.15) + 1)
        << "nu=" << nu;
  }
}

// Footnote 1 of the paper: with the Gaussian kernel and C = 1/(nu*n~),
// SVDD and OC-SVM learn the same decision function.
class SvddOcsvmEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(SvddOcsvmEquivalenceTest, SameSupportVectorsAndDecisions) {
  const double nu = GetParam();
  const Dataset dataset = testing::RandomDataset(250, 2, 10.0, 75);
  const auto target = AllIndices(dataset);
  const double sigma = 3.0;

  SvddModel svdd;
  SvddParams svdd_params;
  svdd_params.nu = nu;  // C = 1/(nu*n~) internally.
  svdd_params.sigma = sigma;
  svdd_params.smo.tolerance = 1e-6;
  ASSERT_TRUE(Svdd::Train(dataset, target, svdd_params, &svdd).ok());

  OneClassSvm ocsvm;
  OneClassSvmParams oc_params;
  oc_params.nu = nu;
  oc_params.sigma = sigma;
  oc_params.smo.tolerance = 1e-6;
  ASSERT_TRUE(ocsvm.Train(dataset, target, oc_params).ok());

  // Identical duals => identical alphas => identical SV sets.
  ASSERT_EQ(svdd.support_vectors().size(), ocsvm.support_vectors().size());
  for (size_t i = 0; i < svdd.support_vectors().size(); ++i) {
    EXPECT_EQ(svdd.support_vectors()[i].index,
              ocsvm.support_vectors()[i].index);
    EXPECT_NEAR(svdd.support_vectors()[i].alpha,
                ocsvm.support_vectors()[i].alpha, 1e-6);
  }

  // Same inside/outside decision on a probe grid.
  Rng rng(76);
  int agreements = 0;
  const int probes = 200;
  for (int p = 0; p < probes; ++p) {
    const std::vector<double> q = {rng.Uniform(-2.0, 12.0),
                                   rng.Uniform(-2.0, 12.0)};
    agreements +=
        svdd.Contains(dataset, q) == ocsvm.Contains(dataset, q) ? 1 : 0;
  }
  // Allow a handful of boundary-epsilon disagreements.
  EXPECT_GE(agreements, probes - 4);
}

INSTANTIATE_TEST_SUITE_P(NuSweep, SvddOcsvmEquivalenceTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5));

}  // namespace
}  // namespace dbsvec
