// Fault-injection, deadline/cancellation, and graceful-degradation tests
// (docs/ROBUSTNESS.md): the failpoint registry itself, thread-pool fault
// containment, hardened CSV ingest, surfaced degraded-solve statistics,
// the SVDD→exact-expansion fallback (with its Theorem 1/3 invariants
// against reference DBSCAN), and a sweep arming every registered site one
// at a time through the full fit → save → load → assign pipeline.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli_options.h"
#include "cluster/dbscan.h"
#include "common/csv.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"
#include "svm/kernel_cache.h"
#include "svm/smo_solver.h"
#include "svm/svdd.h"
#include "test_util.h"

namespace dbsvec {
namespace {

using Mode = FailpointRegistry::Mode;

/// All tests run against the process-wide registry, so every test starts
/// and ends disarmed and with the default thread budget.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    SetGlobalThreads(0);
  }

  FailpointRegistry& registry() { return FailpointRegistry::Instance(); }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// Three well-separated Gaussian blobs plus noise: big enough that DBSVEC
/// actually trains SVDD spheres, small enough for a per-site sweep.
Dataset FaultScene() {
  GaussianBlobsParams gen;
  gen.n = 500;
  gen.dim = 2;
  gen.num_clusters = 3;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = 99;
  return GenerateGaussianBlobs(gen);
}

DbsvecParams SceneParams(const Dataset& dataset) {
  DbsvecParams params;
  params.min_pts = 5;
  params.epsilon = SuggestEpsilon(dataset, params.min_pts);
  return params;
}

Clustering DbscanReference(const Dataset& dataset,
                           const DbsvecParams& params) {
  DbscanParams exact;
  exact.epsilon = params.epsilon;
  exact.min_pts = params.min_pts;
  Clustering out;
  EXPECT_TRUE(RunDbscan(dataset, exact, &out).ok());
  return out;
}

// ---------------------------------------------------------------------------
// Failpoint registry.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, SitesCoverEveryInstrumentedLayer) {
  const std::vector<std::string_view> sites = FailpointRegistry::Sites();
  const std::vector<std::string_view> expected = {
      "csv.read",      "index.build",   "exec.shard_merge",
      "kernel_cache.materialize",       "cache.reserve",
      "smo.solve",     "svdd.train",    "svdd.budget_merge",
      "thread_pool.task",
      "model.save",    "model.load",    "assign.batch",
      "server.accept", "server.reload", "serve.refresh",
      "journal.append", "journal.fsync",
      "registry.create", "registry.recover",
  };
  EXPECT_EQ(sites.size(), expected.size());
  for (const std::string_view site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "missing site: " << site;
  }
}

TEST_F(FaultTest, ArmingUnknownSiteIsAnError) {
  const Status status = registry().Arm("no.such.site", Mode::kError);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("no.such.site"), std::string::npos);
}

TEST_F(FaultTest, ErrorModeFiresAndDisarms) {
  EXPECT_TRUE(FailpointCheck("csv.read").ok());  // Disarmed: inert.
  EXPECT_EQ(registry().HitCount("csv.read"), 0u);

  ASSERT_TRUE(registry().Arm("csv.read", Mode::kError).ok());
  const Status fired = FailpointCheck("csv.read");
  EXPECT_EQ(fired.code(), Status::Code::kInternal);
  EXPECT_EQ(fired.message(), "failpoint fired: csv.read");
  EXPECT_EQ(registry().HitCount("csv.read"), 1u);

  registry().Disarm("csv.read");
  EXPECT_TRUE(FailpointCheck("csv.read").ok());
}

TEST_F(FaultTest, ErrorModeSelectsStatusCode) {
  const std::map<std::string, Status::Code> codes = {
      {"io", Status::Code::kIoError},
      {"invalid_argument", Status::Code::kInvalidArgument},
      {"deadline_exceeded", Status::Code::kDeadlineExceeded},
      {"resource_exhausted", Status::Code::kResourceExhausted},
  };
  for (const auto& [name, code] : codes) {
    registry().DisarmAll();
    ASSERT_TRUE(registry().Arm("model.save", Mode::kError, name).ok());
    EXPECT_EQ(FailpointCheck("model.save").code(), code) << name;
  }
}

TEST_F(FaultTest, ArmSpecParsesCommaSeparatedEntries) {
  ASSERT_TRUE(
      registry().ArmSpec("smo.solve:nonconverge,model.save:error:io").ok());
  EXPECT_TRUE(FailpointNonconverge("smo.solve"));
  EXPECT_EQ(FailpointCheck("model.save").code(), Status::Code::kIoError);
  // Checking a site armed with a self-interpreted mode stays OK.
  EXPECT_TRUE(FailpointCheck("smo.solve").ok());
}

TEST_F(FaultTest, ArmSpecRejectsMalformedEntries) {
  EXPECT_FALSE(registry().ArmSpec("smo.solve").ok());           // No mode.
  EXPECT_FALSE(registry().ArmSpec("smo.solve:bogus").ok());     // Bad mode.
  EXPECT_FALSE(registry().ArmSpec("no.such.site:error").ok());  // Bad site.
  EXPECT_FALSE(registry().ArmSpec("smo.solve:delay_ms").ok());  // Missing arg.
  EXPECT_FALSE(registry().ArmSpec("smo.solve:delay_ms:x").ok());
  EXPECT_FALSE(registry().ArmSpec("model.save:error:bogus_code").ok());
}

TEST_F(FaultTest, DelayModeSleepsThenProceeds) {
  ASSERT_TRUE(registry().ArmSpec("csv.read:delay_ms:20").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailpointCheck("csv.read").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  EXPECT_EQ(registry().HitCount("csv.read"), 1u);
}

TEST_F(FaultTest, DisarmAllResetsHitCounters) {
  ASSERT_TRUE(registry().Arm("svdd.train", Mode::kNonconverge).ok());
  EXPECT_TRUE(FailpointNonconverge("svdd.train"));
  EXPECT_EQ(registry().HitCount("svdd.train"), 1u);
  registry().DisarmAll();
  EXPECT_FALSE(FailpointNonconverge("svdd.train"));
  EXPECT_EQ(registry().HitCount("svdd.train"), 0u);
}

// ---------------------------------------------------------------------------
// Deadline / cancellation primitives.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DefaultDeadlineIsUnlimited) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check("anything").ok());
}

TEST_F(FaultTest, ExpiredDeadlineNamesTheOperation) {
  const Deadline deadline = Deadline::After(-1.0);
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_TRUE(deadline.Expired());
  const Status status = deadline.Check("seed scan");
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(status.message(), "seed scan: deadline exceeded");
}

TEST_F(FaultTest, TimeBudgetEventuallyExpires) {
  const Deadline deadline = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.Expired());
}

TEST_F(FaultTest, CancelFlagTripsTheDeadline) {
  CancelFlag cancel;
  const Deadline deadline = Deadline::Cancellable(cancel);
  EXPECT_FALSE(deadline.unlimited());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check("fit").ok());
  cancel.Cancel();  // Copies alias the same flag.
  EXPECT_TRUE(deadline.Expired());
  const Status status = deadline.Check("fit");
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(status.message(), "fit: cancelled");
}

// ---------------------------------------------------------------------------
// Thread-pool fault containment.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ExecuteContainsExceptionsAndStaysReusable) {
  SetGlobalThreads(4);
  ThreadPool* pool = GlobalThreadPool();
  ASSERT_NE(pool, nullptr);
  std::atomic<int> ran{0};
  try {
    pool->Execute(16, [&](int i) {
      ++ran;
      if (i == 5 || i == 11) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected the captured exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");  // Lowest task index wins, not schedule.
  }
  EXPECT_EQ(ran.load(), 16);  // A failure does not cancel remaining tasks.

  std::atomic<int> sum{0};
  pool->Execute(8, [&](int i) { sum += i; });  // Pool survived the job.
  EXPECT_EQ(sum.load(), 28);
}

TEST_F(FaultTest, ExecuteWithStatusReportsLowestFailingTask) {
  SetGlobalThreads(4);
  ThreadPool* pool = GlobalThreadPool();
  ASSERT_NE(pool, nullptr);
  std::atomic<int> ran{0};
  const Status status = pool->ExecuteWithStatus(16, [&](int i) {
    ++ran;
    return i >= 3 ? Status::Internal(std::to_string(i)) : Status::Ok();
  });
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_EQ(status.message(), "3");
  EXPECT_EQ(ran.load(), 16);
}

TEST_F(FaultTest, ExecuteWithStatusContainsExceptions) {
  SetGlobalThreads(4);
  ThreadPool* pool = GlobalThreadPool();
  ASSERT_NE(pool, nullptr);
  const Status status = pool->ExecuteWithStatus(4, [](int i) -> Status {
    if (i == 2) {
      throw std::runtime_error("boom");
    }
    return Status::Ok();
  });
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST_F(FaultTest, ParallelForWithStatusReportsLowestFailingChunk) {
  SetGlobalThreads(4);
  const Status status =
      ParallelForWithStatus(64, 1, [](size_t begin, size_t) {
        return Status::Internal(std::to_string(begin));
      });
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_EQ(status.message(), "0");
}

TEST_F(FaultTest, TaskFailpointFiresIdenticallyAtEveryThreadCount) {
  for (const int threads : {1, 4}) {
    SetGlobalThreads(threads);
    registry().DisarmAll();
    ASSERT_TRUE(registry().ArmSpec("thread_pool.task:error").ok());
    const Status status =
        ParallelForWithStatus(64, 1, [](size_t, size_t) {
          return Status::Ok();
        });
    EXPECT_EQ(status.code(), Status::Code::kInternal) << threads;
    EXPECT_EQ(status.message(), "failpoint fired: thread_pool.task")
        << threads;
    EXPECT_GE(registry().HitCount("thread_pool.task"), 1u);
  }
}

// ---------------------------------------------------------------------------
// Hardened CSV ingest.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CsvRejectsNonFiniteValuesNamingTheLine) {
  const std::string path = TempPath("fault_nonfinite.csv");
  WriteTextFile(path, "0,1\n2,inf\n");
  Dataset dataset(1);
  const Status status = ReadCsv(path, false, &dataset, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST_F(FaultTest, CsvRejectsNonNumericFieldsNamingTheLine) {
  const std::string path = TempPath("fault_nonnumeric.csv");
  WriteTextFile(path, "0,1\nfoo,2\n");
  Dataset dataset(1);
  const Status status = ReadCsv(path, false, &dataset, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("non-numeric"), std::string::npos);
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST_F(FaultTest, CsvRejectsRaggedRowsNamingTheLine) {
  const std::string path = TempPath("fault_ragged.csv");
  WriteTextFile(path, "0,1\n2\n");
  Dataset dataset(1);
  const Status status = ReadCsv(path, false, &dataset, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("ragged row"), std::string::npos);
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST_F(FaultTest, CsvCorruptionIsCaughtByIngestValidation) {
  const std::string path = TempPath("fault_corrupt.csv");
  WriteTextFile(path, "0,1\n2,3\n");
  ASSERT_TRUE(registry().ArmSpec("csv.read:corrupt").ok());
  Dataset dataset(1);
  const Status status = ReadCsv(path, false, &dataset, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
}

TEST_F(FaultTest, RunDbsvecRejectsNonFiniteCoordinates) {
  Dataset dataset(2, {0.0, 0.0, std::nan(""), 1.0, 2.0, 2.0});
  DbsvecParams params;
  params.epsilon = 1.0;
  Clustering out;
  EXPECT_EQ(RunDbsvec(dataset, params, &out).code(),
            Status::Code::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Degraded solves surfaced: infeasible caps, rescaling, nonconvergence.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, SmoInfeasibleCapsMessagePinned) {
  Dataset dataset(1, {0.0, 1.0, 2.0, 3.0});
  const std::vector<PointIndex> target = {0, 1, 2, 3};
  KernelCache cache(dataset, target, /*sigma=*/1.0);
  const std::vector<double> bounds(4, 0.1);  // Σ caps = 0.4 < 1.
  SmoSolution solution;
  const Status status =
      SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(status.message(), "SMO: infeasible problem, sum of upper bounds < 1");
}

TEST_F(FaultTest, SvddSurfacesCapRescaling) {
  const Dataset dataset = testing::RandomDataset(12, 2, 1.0, 5);
  std::vector<PointIndex> target(12);
  std::iota(target.begin(), target.end(), 0);

  SvddParams params;
  params.c = 0.01;  // Σ ω_iC = 0.12 < 1: infeasible, must be scaled up.
  SvddModel model;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  EXPECT_TRUE(model.caps_rescaled());

  params.c = 1.0;  // Feasible caps: no rescue needed.
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  EXPECT_FALSE(model.caps_rescaled());
}

TEST_F(FaultTest, NonconvergeFailpointYieldsFeasibleButUnconvergedSolve) {
  const Dataset dataset = testing::RandomDataset(30, 2, 1.0, 5);
  std::vector<PointIndex> target(30);
  std::iota(target.begin(), target.end(), 0);
  SvddParams params;
  params.nu = 0.5;

  ASSERT_TRUE(registry().ArmSpec("smo.solve:nonconverge").ok());
  SvddModel model;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  EXPECT_FALSE(model.converged());
  EXPECT_FALSE(model.degenerate());  // Still a valid feasible sphere.
}

TEST_F(FaultTest, CorruptFailpointYieldsDegenerateSphere) {
  const Dataset dataset = testing::RandomDataset(30, 2, 1.0, 5);
  std::vector<PointIndex> target(30);
  std::iota(target.begin(), target.end(), 0);
  SvddParams params;
  params.nu = 0.5;

  ASSERT_TRUE(registry().ArmSpec("svdd.train:corrupt").ok());
  SvddModel model;
  ASSERT_TRUE(Svdd::Train(dataset, target, params, &model).ok());
  EXPECT_TRUE(model.degenerate());
}

// ---------------------------------------------------------------------------
// Graceful SVDD degradation inside RunDbsvec.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, TrainFailureDegradesToExactExpansion) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);

  // Precondition: the healthy run actually trains SVDD spheres, so the
  // armed run below exercises the degradation path rather than skipping it.
  Clustering healthy;
  ASSERT_TRUE(RunDbsvec(dataset, params, &healthy).ok());
  ASSERT_GT(healthy.stats.num_svdd_trainings, 0u);
  ASSERT_EQ(healthy.stats.num_svdd_fallbacks, 0u);

  ASSERT_TRUE(registry().ArmSpec("svdd.train:error").ok());
  Clustering degraded;
  ASSERT_TRUE(RunDbsvec(dataset, params, &degraded).ok());
  EXPECT_GT(degraded.stats.num_svdd_fallbacks, 0u);
  EXPECT_EQ(degraded.stats.num_svdd_trainings, 0u);

  // Theorem 1 + 3: with every sub-cluster expanded exactly, the result is
  // the reference DBSCAN partition (identical noise set included).
  const Clustering reference = DbscanReference(dataset, params);
  EXPECT_TRUE(testing::SamePartition(degraded.labels, reference.labels));
}

TEST_F(FaultTest, SolverAndKernelFaultsDegradeTheSameWay) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);
  const Clustering reference = DbscanReference(dataset, params);

  for (const std::string spec :
       {"smo.solve:error", "kernel_cache.materialize:error"}) {
    registry().DisarmAll();
    ASSERT_TRUE(registry().ArmSpec(spec).ok());
    Clustering degraded;
    ASSERT_TRUE(RunDbsvec(dataset, params, &degraded).ok()) << spec;
    EXPECT_GT(degraded.stats.num_svdd_fallbacks, 0u) << spec;
    EXPECT_TRUE(testing::SamePartition(degraded.labels, reference.labels))
        << spec;
  }
}

TEST_F(FaultTest, NonconvergedSolvesAreCountedAndDegradeGracefully) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);

  ASSERT_TRUE(registry().ArmSpec("smo.solve:nonconverge").ok());
  Clustering degraded;
  ASSERT_TRUE(RunDbsvec(dataset, params, &degraded).ok());
  EXPECT_GT(degraded.stats.num_nonconverged_solves, 0u);
  EXPECT_GT(degraded.stats.num_svdd_fallbacks, 0u);

  const Clustering reference = DbscanReference(dataset, params);
  EXPECT_TRUE(testing::SamePartition(degraded.labels, reference.labels));
}

TEST_F(FaultTest, DegradedRunsAreBitIdenticalAcrossThreadCounts) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);
  ASSERT_TRUE(registry().ArmSpec("svdd.train:error").ok());

  SetGlobalThreads(1);
  Clustering sequential;
  ASSERT_TRUE(RunDbsvec(dataset, params, &sequential).ok());

  SetGlobalThreads(8);
  Clustering parallel;
  ASSERT_TRUE(RunDbsvec(dataset, params, &parallel).ok());

  EXPECT_EQ(sequential.labels, parallel.labels);
  EXPECT_EQ(sequential.num_clusters, parallel.num_clusters);
  EXPECT_EQ(sequential.stats.num_svdd_fallbacks,
            parallel.stats.num_svdd_fallbacks);
}

// ---------------------------------------------------------------------------
// Deadlines through the long-running entry points.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RunDbsvecHonorsAnExpiredDeadline) {
  const Dataset dataset = FaultScene();
  DbsvecParams params = SceneParams(dataset);
  params.deadline = Deadline::After(-1.0);
  Clustering out;
  const Status status = RunDbsvec(dataset, params, &out);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(out.labels.empty());  // Labels cleared; no half-run output.
  EXPECT_EQ(out.num_clusters, 0);
}

TEST_F(FaultTest, RunDbsvecHonorsCancellation) {
  const Dataset dataset = FaultScene();
  DbsvecParams params = SceneParams(dataset);
  CancelFlag cancel;
  cancel.Cancel();
  params.deadline = Deadline::Cancellable(cancel);
  Clustering out;
  const Status status = RunDbsvec(dataset, params, &out);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
  EXPECT_NE(status.message().find("cancelled"), std::string::npos);
}

TEST_F(FaultTest, CreateIndexCheckedSurfacesDeadlineAndFault) {
  const Dataset dataset = testing::RandomDataset(50, 2, 10.0, 3);
  std::unique_ptr<NeighborIndex> index;

  ASSERT_TRUE(CreateIndexChecked(IndexType::kKdTree, dataset, 1.0,
                                 Deadline(), &index)
                  .ok());
  EXPECT_NE(index, nullptr);

  EXPECT_EQ(CreateIndexChecked(IndexType::kKdTree, dataset, 1.0,
                               Deadline::After(-1.0), &index)
                .code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(index, nullptr);  // Reset on failure.

  ASSERT_TRUE(registry().ArmSpec("index.build:error").ok());
  EXPECT_EQ(CreateIndexChecked(IndexType::kKdTree, dataset, 1.0, Deadline(),
                               &index)
                .code(),
            Status::Code::kInternal);
  EXPECT_EQ(index, nullptr);
}

TEST_F(FaultTest, AssignmentHonorsDeadlines) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);
  Clustering out;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());

  // An expired build deadline fails Create and hands back no engine.
  AssignmentOptions slow_build;
  slow_build.build_deadline = Deadline::After(-1.0);
  std::unique_ptr<AssignmentEngine> engine;
  EXPECT_EQ(AssignmentEngine::Create(model, slow_build, &engine).code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(engine, nullptr);

  ASSERT_TRUE(
      AssignmentEngine::Create(model, AssignmentOptions(), &engine).ok());
  ASSERT_NE(engine, nullptr);

  std::vector<int32_t> labels;
  EXPECT_TRUE(engine->AssignBatch(dataset, &labels).ok());
  EXPECT_EQ(labels.size(), static_cast<size_t>(dataset.size()));

  EXPECT_EQ(engine->AssignBatch(dataset, &labels, Deadline::After(-1.0))
                .code(),
            Status::Code::kDeadlineExceeded);

  int32_t label = 0;
  EXPECT_EQ(engine->Assign(dataset.point(0), &label, Deadline::After(-1.0))
                .code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(engine->Assign(dataset.point(0), &label).ok());
}

// ---------------------------------------------------------------------------
// Model I/O failpoints: injected errors and payload corruption.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ModelIoFailpointsAndCorruptionDetection) {
  const Dataset dataset = FaultScene();
  const DbsvecParams params = SceneParams(dataset);
  Clustering out;
  DbsvecModel model;
  ASSERT_TRUE(RunDbsvec(dataset, params, &out, &model).ok());
  const std::string path = TempPath("fault_model.bin");

  ASSERT_TRUE(registry().ArmSpec("model.save:error:io").ok());
  EXPECT_EQ(SaveModel(model, path).code(), Status::Code::kIoError);

  registry().DisarmAll();
  ASSERT_TRUE(SaveModel(model, path).ok());

  ASSERT_TRUE(registry().ArmSpec("model.load:error:io").ok());
  DbsvecModel loaded;
  EXPECT_EQ(LoadModel(path, &loaded).code(), Status::Code::kIoError);

  registry().DisarmAll();
  ASSERT_TRUE(LoadModel(path, &loaded).ok());
  EXPECT_TRUE(loaded == model);  // Clean round trip once disarmed.

  // A payload byte flipped on the write side must fail the load-side CRC.
  ASSERT_TRUE(registry().ArmSpec("model.save:corrupt").ok());
  ASSERT_TRUE(SaveModel(model, path).ok());
  registry().DisarmAll();
  Status status = LoadModel(path, &loaded);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);

  // Same for a byte flipped on the read side of a clean file.
  ASSERT_TRUE(SaveModel(model, path).ok());
  ASSERT_TRUE(registry().ArmSpec("model.load:corrupt").ok());
  status = LoadModel(path, &loaded);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The sweep: every site, one at a time, through fit → save → load → assign.
// ---------------------------------------------------------------------------

/// One full pipeline pass. `failed_step` is empty when every step
/// succeeded, else the name of the first failing step with its Status in
/// `failure`.
struct PipelineOutcome {
  std::string failed_step;
  Status failure;
  Clustering clustering;
  std::vector<int32_t> assigned;
};

PipelineOutcome RunPipeline(const std::string& csv_path,
                            const std::string& model_path) {
  PipelineOutcome outcome;
  const auto fail = [&outcome](const std::string& step, Status status) {
    outcome.failed_step = step;
    outcome.failure = std::move(status);
  };

  Dataset data(1);
  if (Status s = ReadCsv(csv_path, false, &data, nullptr); !s.ok()) {
    fail("ingest", std::move(s));
    return outcome;
  }
  DbsvecModel model;
  if (Status s = RunDbsvec(data, SceneParams(data), &outcome.clustering,
                           &model);
      !s.ok()) {
    fail("fit", std::move(s));
    return outcome;
  }
  if (Status s = SaveModel(model, model_path); !s.ok()) {
    fail("save", std::move(s));
    return outcome;
  }
  DbsvecModel loaded;
  if (Status s = LoadModel(model_path, &loaded); !s.ok()) {
    fail("load", std::move(s));
    return outcome;
  }
  std::unique_ptr<AssignmentEngine> engine;
  if (Status s = AssignmentEngine::Create(std::move(loaded),
                                          AssignmentOptions(), &engine);
      !s.ok()) {
    fail("create", std::move(s));
    return outcome;
  }
  if (Status s = engine->AssignBatch(data, &outcome.assigned); !s.ok()) {
    fail("assign", std::move(s));
    return outcome;
  }
  return outcome;
}

TEST_F(FaultTest, ErrorSweepEverySiteFailsCleanlyOrDegrades) {
  const Dataset dataset = FaultScene();
  const std::string csv_path = TempPath("fault_sweep.csv");
  ASSERT_TRUE(WriteCsv(dataset, {}, csv_path).ok());
  const std::string model_path = TempPath("fault_sweep_model.bin");

  // Healthy baseline: the full pipeline succeeds and trains SVDD spheres.
  const PipelineOutcome healthy = RunPipeline(csv_path, model_path);
  ASSERT_EQ(healthy.failed_step, "") << healthy.failure.ToString();
  ASSERT_GT(healthy.clustering.stats.num_svdd_trainings, 0u);
  const Clustering reference =
      DbscanReference(dataset, SceneParams(dataset));

  // Sites whose injected failure must degrade (run still succeeds via
  // exact expansion), vs sites whose failure must abort a specific step.
  const std::map<std::string, std::string> expected_fail_step = {
      {"csv.read", "ingest"},        {"index.build", "fit"},
      {"model.save", "save"},        {"model.load", "load"},
      {"assign.batch", "assign"},    {"thread_pool.task", "assign"},
  };
  const std::vector<std::string> fallback_sites = {
      "kernel_cache.materialize", "smo.solve", "svdd.train"};
  // The server sites live on the HTTP serving path, which this offline
  // fit/save/load/assign pipeline never crosses; tests/server_test.cc
  // sweeps them through a live server instead. exec.shard_merge sits on
  // the sharded batch path, which the default shards=0 pipeline never
  // takes; the ShardMerge* tests below exercise it through a sharded fit.
  // cache.reserve sits inside CacheManager::Reserve, which is never called
  // while the manager is disabled (the default here); tests/cache_test.cc
  // sweeps it through fit+assign with a budget configured.
  // svdd.budget_merge sits inside the budgeted SMO maintenance step, which
  // the default sv_budget=0 pipeline never enters; the Budget* tests in
  // tests/budget_test.cc sweep it through a budgeted fit.
  // journal.append / journal.fsync sit on the durable serving path, which
  // the offline fit+assign pipeline never takes; tests/durability_test.cc
  // sweeps them through journaled absorbs.
  // registry.create / registry.recover sit on the multi-tenant model
  // registry path; tests/registry_test.cc sweeps them through a live
  // registry server.
  const std::vector<std::string> out_of_pipeline_sites = {
      "server.accept", "server.reload", "serve.refresh", "exec.shard_merge",
      "cache.reserve", "svdd.budget_merge", "journal.append",
      "journal.fsync", "registry.create", "registry.recover"};

  for (const std::string_view site : FailpointRegistry::Sites()) {
    if (std::find(out_of_pipeline_sites.begin(), out_of_pipeline_sites.end(),
                  std::string(site)) != out_of_pipeline_sites.end()) {
      continue;
    }
    registry().DisarmAll();
    ASSERT_TRUE(registry().Arm(site, Mode::kError).ok()) << site;
    const PipelineOutcome outcome = RunPipeline(csv_path, model_path);
    EXPECT_GE(registry().HitCount(site), 1u)
        << site << " was armed but never reached";

    const auto it = expected_fail_step.find(std::string(site));
    if (it != expected_fail_step.end()) {
      EXPECT_EQ(outcome.failed_step, it->second) << site;
      EXPECT_FALSE(outcome.failure.ok()) << site;
      EXPECT_FALSE(outcome.failure.message().empty()) << site;
    } else {
      // Degradation site: the pipeline completes and the fit fell back to
      // exact expansion, reproducing the reference DBSCAN partition.
      ASSERT_NE(std::find(fallback_sites.begin(), fallback_sites.end(),
                          std::string(site)),
                fallback_sites.end())
          << "site with no sweep expectation: " << site;
      EXPECT_EQ(outcome.failed_step, "")
          << site << ": " << outcome.failure.ToString();
      EXPECT_GT(outcome.clustering.stats.num_svdd_fallbacks, 0u) << site;
      EXPECT_TRUE(testing::SamePartition(outcome.clustering.labels,
                                         reference.labels))
          << site;
    }
  }
}

// The sharded-merge site only exists on the sharded batch path, so it gets
// dedicated coverage: error mode must fail the sharded fit with a clean
// Status naming the site, and delay mode must change nothing but time.
TEST_F(FaultTest, ShardMergeErrorFailsShardedFit) {
  const Dataset dataset = FaultScene();
  DbsvecParams params = SceneParams(dataset);
  params.shards = 2;
  ASSERT_TRUE(registry().Arm("exec.shard_merge", Mode::kError).ok());
  Clustering out;
  const Status status = RunDbsvec(dataset, params, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exec.shard_merge"), std::string::npos);
  EXPECT_GE(registry().HitCount("exec.shard_merge"), 1u);
  // Interrupted fits hand back stats, never a half-expanded labelling.
  EXPECT_TRUE(out.labels.empty());
}

TEST_F(FaultTest, ShardMergeDelayOnlySlowsTheShardedFit) {
  const Dataset dataset = FaultScene();
  DbsvecParams params = SceneParams(dataset);
  params.shards = 2;
  Clustering baseline;
  ASSERT_TRUE(RunDbsvec(dataset, params, &baseline).ok());
  ASSERT_TRUE(registry().Arm("exec.shard_merge", Mode::kDelayMs, "5").ok());
  Clustering delayed;
  ASSERT_TRUE(RunDbsvec(dataset, params, &delayed).ok());
  EXPECT_GE(registry().HitCount("exec.shard_merge"), 1u);
  EXPECT_EQ(baseline.labels, delayed.labels);
  EXPECT_EQ(baseline.num_clusters, delayed.num_clusters);
}

TEST_F(FaultTest, NonconvergeSweepNeverFailsThePipeline) {
  const Dataset dataset = FaultScene();
  const std::string csv_path = TempPath("fault_sweep_nc.csv");
  ASSERT_TRUE(WriteCsv(dataset, {}, csv_path).ok());
  const std::string model_path = TempPath("fault_sweep_nc_model.bin");

  for (const std::string_view site : FailpointRegistry::Sites()) {
    registry().DisarmAll();
    ASSERT_TRUE(registry().Arm(site, Mode::kNonconverge).ok()) << site;
    const PipelineOutcome outcome = RunPipeline(csv_path, model_path);
    EXPECT_EQ(outcome.failed_step, "")
        << site << ": " << outcome.failure.ToString();
    if (site == "smo.solve" || site == "svdd.train") {
      EXPECT_GT(outcome.clustering.stats.num_nonconverged_solves, 0u)
          << site;
      EXPECT_GT(outcome.clustering.stats.num_svdd_fallbacks, 0u) << site;
    }
  }
}

// ---------------------------------------------------------------------------
// CLI surface.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CliParsesRobustnessFlags) {
  cli::CliOptions options;
  ASSERT_TRUE(cli::ParseCliOptions({"--deadline-ms=250",
                                    "--failpoints=smo.solve:nonconverge"},
                                   &options)
                  .ok());
  EXPECT_EQ(options.deadline_ms, 250);
  EXPECT_EQ(options.failpoints, "smo.solve:nonconverge");

  EXPECT_FALSE(cli::ParseCliOptions({"--deadline-ms=0"}, &options).ok());
  EXPECT_FALSE(cli::ParseCliOptions({"--deadline-ms=-5"}, &options).ok());
  EXPECT_FALSE(cli::ParseCliOptions({"--failpoints="}, &options).ok());
}

}  // namespace
}  // namespace dbsvec
