#include <tuple>

#include "cluster/dbscan.h"
#include "cluster/nq_dbscan.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(NqDbscanTest, InvalidParamsRejected) {
  Dataset dataset(2, {0.0, 0.0});
  Clustering out;
  NqDbscanParams params;
  params.epsilon = 0.0;
  EXPECT_FALSE(RunNqDbscan(dataset, params, &out).ok());
  params.epsilon = 1.0;
  params.min_pts = 0;
  EXPECT_FALSE(RunNqDbscan(dataset, params, &out).ok());
}

TEST(NqDbscanTest, EmptyDataset) {
  Dataset dataset(2);
  Clustering out;
  ASSERT_TRUE(RunNqDbscan(dataset, NqDbscanParams(), &out).ok());
  EXPECT_EQ(out.num_clusters, 0);
}

TEST(NqDbscanTest, SimpleScene) {
  Dataset dataset(2, {0.0, 0.0, 0.1, 0.0, 0.0, 0.1,
                      5.0, 5.0, 5.1, 5.0, 5.0, 5.1,
                      20.0, 20.0});
  Clustering out;
  NqDbscanParams params;
  params.epsilon = 0.2;
  params.min_pts = 3;
  ASSERT_TRUE(RunNqDbscan(dataset, params, &out).ok());
  EXPECT_EQ(out.num_clusters, 2);
  EXPECT_EQ(out.CountNoise(), 1);
}

TEST(NqDbscanTest, PrunesDistanceComputations) {
  // NQ-DBSCAN's point: fewer distance evaluations than DBSCAN-over-linear-
  // scan (which needs n per range query) on clustered data.
  GaussianBlobsParams gen;
  gen.n = 1500;
  gen.dim = 2;
  gen.num_clusters = 5;
  gen.stddev = 0.8;
  gen.seed = 87;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  const double epsilon = SuggestEpsilon(dataset, 5);

  DbscanParams brute;
  brute.epsilon = epsilon;
  brute.min_pts = 5;
  brute.index = IndexType::kBruteForce;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, brute, &reference).ok());

  NqDbscanParams params;
  params.epsilon = epsilon;
  params.min_pts = 5;
  Clustering out;
  ASSERT_TRUE(RunNqDbscan(dataset, params, &out).ok());
  EXPECT_LT(out.stats.num_distance_computations,
            reference.stats.num_distance_computations);
}

// Property: NQ-DBSCAN is an *exact* DBSCAN — identical partitions on every
// dataset family and seed.
using NqSweepParam = std::tuple<int, uint64_t>;

class NqDbscanSweepTest : public ::testing::TestWithParam<NqSweepParam> {};

TEST_P(NqDbscanSweepTest, ExactlyMatchesDbscan) {
  const auto [dim, seed] = GetParam();
  GaussianBlobsParams gen;
  gen.n = 500;
  gen.dim = dim;
  gen.num_clusters = 4;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.05;
  gen.seed = seed;
  const Dataset dataset = GenerateGaussianBlobs(gen);
  const int min_pts = 5;
  const double epsilon = SuggestEpsilon(dataset, min_pts);

  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  ASSERT_TRUE(RunDbscan(dataset, exact, &reference).ok());

  NqDbscanParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering out;
  ASSERT_TRUE(RunNqDbscan(dataset, params, &out).ok());
  EXPECT_TRUE(testing::SamePartition(reference.labels, out.labels))
      << "dim=" << dim << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NqDbscanSweepTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace dbsvec
