// Process-wide memory-budgeted cache manager (docs/CACHING.md): budget
// accounting under concurrency, demand-driven rebalancing, the shared
// SVDD row store, the serving query-cell cache, and the contract that
// matters above all of it — labels and statistics are bit-identical with
// the cache manager on, off, or thrashing at a tiny budget.

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_manager.h"
#include "cache/frequency_buffer.h"
#include "cache/query_cell_cache.h"
#include "cache/shared_row_cache.h"
#include "cluster/clustering.h"
#include "common/thread_pool.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "serve/assignment_engine.h"
#include "svm/kernel_cache.h"

namespace dbsvec {
namespace {

using cache::CacheHandle;
using cache::CacheManager;
using cache::FrequencyBuffer;
using cache::QueryCellCache;
using cache::SharedRowCache;

// Restores the global thread budget on scope exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetGlobalThreads(threads); }
  ~ScopedThreads() { SetGlobalThreads(0); }
};

// Sets the process-wide cache budget for one test block and restores the
// disabled default on exit, dropping everything the shared row store
// accumulated so tests stay order-independent within one process.
class ScopedCacheBudget {
 public:
  explicit ScopedCacheBudget(size_t bytes) {
    CacheManager::SetGlobalLimitBytes(bytes);
  }
  ~ScopedCacheBudget() {
    SharedRowCache::Global().Clear();
    CacheManager::SetGlobalLimitBytes(0);
  }
};

Dataset BlobsDataset(int n, int dim, uint64_t seed) {
  GaussianBlobsParams params;
  params.n = n;
  params.dim = dim;
  params.num_clusters = 4;
  params.noise_fraction = 0.03;
  params.seed = seed;
  return GenerateGaussianBlobs(params);
}

void ExpectSameClustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.point_types, b.point_types);
  EXPECT_EQ(a.stats.num_range_queries, b.stats.num_range_queries);
  EXPECT_EQ(a.stats.num_distance_computations,
            b.stats.num_distance_computations);
  EXPECT_EQ(a.stats.num_svdd_trainings, b.stats.num_svdd_trainings);
  EXPECT_EQ(a.stats.num_support_vectors, b.stats.num_support_vectors);
  EXPECT_EQ(a.stats.num_merges, b.stats.num_merges);
  EXPECT_EQ(a.stats.smo_iterations, b.stats.smo_iterations);
}

Clustering FitReference(const Dataset& dataset, DbsvecModel* model = nullptr) {
  DbsvecParams params;
  params.epsilon = 6.0;
  params.min_pts = 15;
  params.classify_points = true;
  Clustering clustering;
  EXPECT_TRUE(RunDbsvec(dataset, params, &clustering, model).ok());
  return clustering;
}

// ---------------------------------------------------------------------------
// FrequencyBuffer
// ---------------------------------------------------------------------------

TEST(CacheFrequencyBufferTest, WindowTracksRecentAccesses) {
  FrequencyBuffer buffer(8);
  for (int i = 0; i < 3; ++i) {
    buffer.Record(true);
  }
  buffer.Record(false);
  FrequencyBuffer::Snapshot window = buffer.Window();
  EXPECT_EQ(window.accesses, 4u);
  EXPECT_EQ(window.hits, 3u);
  EXPECT_EQ(buffer.total_accesses(), 4u);
  EXPECT_EQ(buffer.total_hits(), 3u);

  // Wrap the ring with misses: the window forgets the early hits while
  // the cumulative totals keep them.
  for (int i = 0; i < 8; ++i) {
    buffer.Record(false);
  }
  window = buffer.Window();
  EXPECT_EQ(window.accesses, 8u);
  EXPECT_EQ(window.hits, 0u);
  EXPECT_EQ(buffer.total_hits(), 3u);
  EXPECT_EQ(buffer.total_accesses(), 12u);
}

// ---------------------------------------------------------------------------
// CacheManager budget accounting
// ---------------------------------------------------------------------------

TEST(CacheManagerTest, ReserveEnforcesPerCacheAndGlobalBudget) {
  CacheManager manager(1000);
  auto a = manager.Register("a");
  auto b = manager.Register("b");
  // Registration splits evenly; both shares sum to the global limit.
  EXPECT_EQ(a->limit_bytes() + b->limit_bytes(), 1000u);

  EXPECT_TRUE(a->Reserve(a->limit_bytes()));
  EXPECT_FALSE(a->Reserve(1));  // Per-cache share exhausted.
  EXPECT_EQ(manager.used_bytes(), a->used_bytes());

  a->Release(a->used_bytes());
  EXPECT_EQ(manager.used_bytes(), 0u);
  EXPECT_FALSE(a->Reserve(1001));  // Larger than the whole budget.
}

TEST(CacheManagerTest, RegisterIsIdempotent) {
  CacheManager manager(1 << 20);
  auto first = manager.Register("kernel_rows");
  auto second = manager.Register("kernel_rows");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(manager.Stats().size(), 1u);
}

TEST(CacheManagerTest, DisabledManagerRefusesEveryReservation) {
  CacheManager manager(0);
  EXPECT_FALSE(manager.enabled());
  auto handle = manager.Register("a");
  EXPECT_FALSE(handle->Reserve(1));
}

TEST(CacheManagerTest, RebalanceShiftsBudgetTowardHotCache) {
  CacheManager manager(1 << 20);
  auto hot = manager.Register("hot");
  auto cold = manager.Register("cold");
  const size_t even_share = hot->limit_bytes();
  EXPECT_EQ(cold->limit_bytes(), even_share);

  for (int i = 0; i < 900; ++i) {
    hot->RecordAccess(true);
  }
  for (int i = 0; i < 20; ++i) {
    cold->RecordAccess(false);
  }
  manager.Rebalance();
  EXPECT_GT(hot->limit_bytes(), cold->limit_bytes());
  EXPECT_GT(hot->limit_bytes(), even_share);
  // Every cache keeps its floor, and shares still sum to the budget.
  EXPECT_GE(cold->limit_bytes(), manager.limit_bytes() / 8);
  EXPECT_EQ(hot->limit_bytes() + cold->limit_bytes(), manager.limit_bytes());
  EXPECT_GE(manager.rebalances(), 1u);
}

TEST(CacheManagerTest, ShrunkShareIsReportedAsOverLimit) {
  CacheManager manager(1 << 20);
  auto a = manager.Register("a");
  ASSERT_TRUE(a->Reserve(a->limit_bytes()));
  // A second registrant halves a's share below its usage; the owning
  // cache is expected to evict on its next access.
  auto b = manager.Register("b");
  EXPECT_TRUE(a->over_limit());
  a->Release(a->used_bytes());
  EXPECT_FALSE(a->over_limit());
  (void)b;
}

TEST(CacheManagerTest, ConcurrentReserveHammerNeverExceedsBudget) {
  constexpr size_t kLimit = 64 << 10;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20'000;
  CacheManager manager(kLimit);
  std::vector<std::shared_ptr<CacheHandle>> handles = {
      manager.Register("a"), manager.Register("b"), manager.Register("c")};

  std::atomic<bool> over_budget{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<uint32_t>(t) * 7919u + 13u);
      // Per-thread ledger of what this thread holds on each handle, so
      // everything reserved is eventually released.
      std::vector<std::vector<size_t>> held(handles.size());
      for (int op = 0; op < kOpsPerThread; ++op) {
        const size_t h = rng() % handles.size();
        CacheHandle& handle = *handles[h];
        if (rng() % 2 == 0 || held[h].empty()) {
          const size_t bytes = 64 + rng() % 512;
          if (handle.Reserve(bytes)) {
            held[h].push_back(bytes);
            handle.AddEntries(1);
          }
          handle.RecordAccess(rng() % 4 != 0);
        } else {
          handle.Release(held[h].back());
          handle.AddEntries(-1);
          handle.RecordEviction();
          held[h].pop_back();
        }
        // The invariant under test: at *every* step, accounted bytes stay
        // within the global budget — even while rebalances are shifting
        // shares underneath the reservations.
        if (manager.used_bytes() > manager.limit_bytes()) {
          over_budget.store(true, std::memory_order_relaxed);
        }
      }
      for (size_t h = 0; h < handles.size(); ++h) {
        for (const size_t bytes : held[h]) {
          handles[h]->Release(bytes);
          handles[h]->AddEntries(-1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(over_budget.load());
  EXPECT_EQ(manager.used_bytes(), 0u);
  for (const auto& handle : handles) {
    EXPECT_EQ(handle->used_bytes(), 0u);
    EXPECT_EQ(handle->entries(), 0u);
  }
  uint64_t total_share = 0;
  for (const cache::CacheStats& stats : manager.Stats()) {
    total_share += stats.limit_bytes;
  }
  EXPECT_EQ(total_share, kLimit);
}

TEST(CacheManagerTest, StatsJsonListsEveryRegisteredCache) {
  CacheManager manager(1 << 20);
  auto a = manager.Register("kernel_rows");
  ASSERT_TRUE(a->Reserve(1024));
  a->AddEntries(1);
  a->RecordAccess(true);
  a->RecordAccess(false);
  const std::string json = manager.StatsJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"kernel_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"used_bytes\":1024"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_hit_rate\":0.5"), std::string::npos) << json;
  a->Release(1024);
}

// ---------------------------------------------------------------------------
// SharedRowCache
// ---------------------------------------------------------------------------

TEST(CacheSharedRowTest, RoundTripsRowsAndSharesTokensByExactSignature) {
  CacheManager manager(1 << 20);
  SharedRowCache store(manager.Register("svdd_rows"));

  const Dataset dataset = BlobsDataset(64, 3, 11);
  std::vector<PointIndex> target = {1, 5, 9, 13};
  const uint64_t token = store.InternSignature(
      cache::MakeTargetSignature(dataset, target, 2.0));
  // Same set → same token; any difference → a distinct matrix identity.
  EXPECT_EQ(store.InternSignature(
                cache::MakeTargetSignature(dataset, target, 2.0)),
            token);
  EXPECT_NE(store.InternSignature(
                cache::MakeTargetSignature(dataset, target, 3.0)),
            token);
  std::vector<PointIndex> other_target = {1, 5, 9, 14};
  EXPECT_NE(store.InternSignature(
                cache::MakeTargetSignature(dataset, other_target, 2.0)),
            token);

  EXPECT_EQ(store.Lookup(token, 0), nullptr);
  const auto values =
      std::make_shared<const std::vector<float>>(4, 0.5f);
  store.Insert(token, 0, values);
  const auto cached = store.Lookup(token, 0);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(*cached, *values);
  EXPECT_LE(manager.used_bytes(), manager.limit_bytes());

  store.Clear();
  EXPECT_EQ(store.Lookup(token, 0), nullptr);
  EXPECT_EQ(manager.used_bytes(), 0u);
}

TEST(CacheSharedRowTest, EvictsUnderPressureAndStaysWithinBudget) {
  // Budget fits only a handful of rows; insertions must evict, never
  // blow the accounting.
  CacheManager manager(4 << 10);
  auto handle = manager.Register("svdd_rows");
  SharedRowCache store(handle, /*num_stripes=*/1);
  const Dataset dataset = BlobsDataset(16, 2, 3);
  std::vector<PointIndex> target = {0, 1, 2, 3};
  const uint64_t token = store.InternSignature(
      cache::MakeTargetSignature(dataset, target, 1.0));
  for (int row = 0; row < 64; ++row) {
    store.Insert(token, row,
                 std::make_shared<const std::vector<float>>(128, 1.0f));
    EXPECT_LE(manager.used_bytes(), manager.limit_bytes());
  }
  EXPECT_GT(handle->evictions(), 0u);
}

// ---------------------------------------------------------------------------
// KernelCache integration
// ---------------------------------------------------------------------------

TEST(CacheKernelTest, AtMissComputesSingleEntryWithoutTouchingLru) {
  const Dataset dataset = BlobsDataset(64, 3, 17);
  std::vector<PointIndex> target;
  for (PointIndex i = 0; i < 32; ++i) {
    target.push_back(i);
  }
  KernelCache kcache(dataset, target, 2.0);
  ASSERT_EQ(kcache.rows_resident(), 0u);

  // Double miss: the entry comes straight from the kernel function — no
  // row is materialized and the LRU stays empty.
  const double direct = kcache.At(3, 7);
  EXPECT_EQ(kcache.rows_resident(), 0u);
  EXPECT_EQ(kcache.rows_computed(), 0u);
  EXPECT_EQ(direct, kcache.kernel().FromSquaredDistance(
                        dataset.SquaredDistance(target[3], target[7])));

  // With row 3 resident, At serves from it (and from the symmetric row)
  // without materializing anything new.
  const std::span<const float> row3 = kcache.Row(3);
  EXPECT_EQ(kcache.rows_resident(), 1u);
  EXPECT_EQ(kcache.At(3, 7), static_cast<double>(row3[7]));
  EXPECT_EQ(kcache.At(7, 3), static_cast<double>(row3[7]));
  EXPECT_EQ(kcache.rows_resident(), 1u);
}

TEST(CacheKernelTest, FootprintAccountsForBookkeepingOverhead) {
  const Dataset dataset = BlobsDataset(64, 3, 17);
  std::vector<PointIndex> target = {0, 1, 2, 3, 4, 5, 6, 7};
  KernelCache kcache(dataset, target, 2.0, /*max_bytes=*/1 << 20);
  // Footprint must exceed the raw payload: the list node, map node, and
  // vector header are real bytes.
  EXPECT_GT(kcache.row_footprint_bytes(), target.size() * sizeof(float));
  EXPECT_EQ(kcache.max_rows(), (1u << 20) / kcache.row_footprint_bytes());
}

TEST(CacheKernelTest, SharedBudgetServesIdenticalRowsUnderThrashing) {
  const Dataset dataset = BlobsDataset(128, 3, 23);
  std::vector<PointIndex> target;
  for (PointIndex i = 0; i < 96; ++i) {
    target.push_back(i);
  }
  // Reference rows with the manager disabled.
  std::vector<std::vector<float>> reference;
  {
    KernelCache kcache(dataset, target, 2.0);
    for (int i = 0; i < 16; ++i) {
      const auto row = kcache.Row(i);
      reference.emplace_back(row.begin(), row.end());
    }
  }
  // A budget too small for even one footprint forces the fallback-buffer
  // path on every row; contents must not change.
  ScopedCacheBudget budget(1);
  KernelCache kcache(dataset, target, 2.0);
  for (int i = 0; i < 16; ++i) {
    const auto row = kcache.Row(i);
    EXPECT_TRUE(std::equal(row.begin(), row.end(), reference[i].begin(),
                           reference[i].end()))
        << "row " << i;
  }
  EXPECT_LE(CacheManager::Global().used_bytes(),
            CacheManager::Global().limit_bytes());
}

// ---------------------------------------------------------------------------
// QueryCellCache
// ---------------------------------------------------------------------------

TEST(CacheQueryCellTest, CandidatesAreSupersetOfExactNeighbors) {
  const Dataset dataset = BlobsDataset(600, 3, 31);
  const double epsilon = 4.0;
  std::unique_ptr<NeighborIndex> index =
      CreateIndex(IndexType::kKdTree, dataset);
  CacheManager manager(1 << 20);
  QueryCellCache qcache(index.get(), epsilon, dataset.dim(),
                        manager.Register("assign_query"));

  std::mt19937 rng(5);
  std::uniform_real_distribution<double> coord(-20.0, 20.0);
  std::vector<PointIndex> exact;
  std::vector<PointIndex> candidates;
  for (int q = 0; q < 400; ++q) {
    std::vector<double> query = {coord(rng), coord(rng), coord(rng)};
    index->RangeQuery(query, epsilon, &exact);
    qcache.Candidates(query, &candidates);
    for (const PointIndex id : exact) {
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), id),
                candidates.end())
          << "query " << q << " lost neighbor " << id;
    }
    EXPECT_LE(manager.used_bytes(), manager.limit_bytes());
  }
  // Re-querying the same cells hits.
  EXPECT_GT(qcache.handle().frequency().total_hits() +
                qcache.handle().entries(),
            0u);
}

TEST(CacheQueryCellTest, RepeatedCellQueriesHitAndClearEmptiesAccounting) {
  const Dataset dataset = BlobsDataset(200, 2, 37);
  std::unique_ptr<NeighborIndex> index =
      CreateIndex(IndexType::kKdTree, dataset);
  CacheManager manager(1 << 20);
  QueryCellCache qcache(index.get(), 3.0, dataset.dim(),
                        manager.Register("assign_query"));
  std::vector<PointIndex> candidates;
  std::vector<double> query = {1.0, 2.0};
  qcache.Candidates(query, &candidates);
  const std::vector<PointIndex> first = candidates;
  query = {1.1, 2.1};  // Same ε/4 cell for ε = 3.
  qcache.Candidates(query, &candidates);
  EXPECT_EQ(candidates, first);
  EXPECT_GE(qcache.handle().frequency().total_hits(), 1u);

  qcache.Clear();
  EXPECT_EQ(manager.used_bytes(), 0u);
  EXPECT_EQ(qcache.handle().entries(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity: fit and assign at budgets {off, tiny, huge}
// ---------------------------------------------------------------------------

TEST(CacheEndToEndTest, FitIsBitIdenticalAcrossBudgets) {
  const Dataset dataset = BlobsDataset(1'200, 3, 41);
  const Clustering reference = FitReference(dataset);

  for (const size_t budget_bytes : {size_t{8} << 10, size_t{256} << 20}) {
    SCOPED_TRACE(budget_bytes);
    ScopedCacheBudget budget(budget_bytes);
    const Clustering cached = FitReference(dataset);
    ExpectSameClustering(reference, cached);
    EXPECT_LE(CacheManager::Global().used_bytes(),
              CacheManager::Global().limit_bytes());
  }
}

TEST(CacheEndToEndTest, RepeatedFitsReuseSharedRowsBitIdentically) {
  const Dataset dataset = BlobsDataset(1'200, 3, 43);
  const Clustering reference = FitReference(dataset);

  ScopedCacheBudget budget(size_t{256} << 20);
  // First fit populates the cross-solve row store; the second pulls rows
  // from it. Both must reproduce the reference exactly.
  ExpectSameClustering(reference, FitReference(dataset));
  const uint64_t hits_before =
      SharedRowCache::Global().handle().frequency().total_hits();
  ExpectSameClustering(reference, FitReference(dataset));
  EXPECT_GT(SharedRowCache::Global().handle().frequency().total_hits(),
            hits_before);
}

TEST(CacheEndToEndTest, AssignIsBitIdenticalAcrossBudgets) {
  const Dataset dataset = BlobsDataset(1'200, 3, 47);
  DbsvecModel model;
  FitReference(dataset, &model);
  const Dataset queries = BlobsDataset(2'000, 3, 48);

  std::vector<int32_t> reference;
  uint64_t reference_range_queries = 0;
  {
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
    ASSERT_TRUE(engine->AssignBatch(queries, &reference).ok());
    reference_range_queries = engine->stats().range_queries;
  }

  for (const size_t budget_bytes : {size_t{8} << 10, size_t{256} << 20}) {
    SCOPED_TRACE(budget_bytes);
    ScopedCacheBudget budget(budget_bytes);
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
    std::vector<int32_t> cached;
    ASSERT_TRUE(engine->AssignBatch(queries, &cached).ok());
    EXPECT_EQ(cached, reference);
    // The range-query counter increments before the cache is consulted,
    // so serving stats stay comparable cache-on vs. cache-off.
    EXPECT_EQ(engine->stats().range_queries, reference_range_queries);
    EXPECT_LE(CacheManager::Global().used_bytes(),
              CacheManager::Global().limit_bytes());
  }
}

TEST(CacheEndToEndTest, ShardedAssignIsBitIdenticalWithCache) {
  const Dataset dataset = BlobsDataset(1'200, 3, 53);
  DbsvecModel model;
  FitReference(dataset, &model);
  const Dataset queries = BlobsDataset(1'000, 3, 54);

  std::vector<int32_t> reference;
  {
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
    ASSERT_TRUE(engine->AssignBatch(queries, &reference).ok());
  }

  ScopedCacheBudget budget(size_t{64} << 20);
  AssignmentOptions options;
  options.shards = 3;
  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(model, options, &engine).ok());
  std::vector<int32_t> cached;
  ASSERT_TRUE(engine->AssignBatch(queries, &cached).ok());
  EXPECT_EQ(cached, reference);
}

TEST(CacheEndToEndTest, StatzJsonReportsPipelineCaches) {
  const Dataset dataset = BlobsDataset(800, 3, 59);
  ScopedCacheBudget budget(size_t{64} << 20);
  DbsvecModel model;
  FitReference(dataset, &model);
  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
  std::vector<int32_t> labels;
  ASSERT_TRUE(engine->AssignBatch(dataset, &labels).ok());

  const std::string json = CacheManager::Global().StatsJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"kernel_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"svdd_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"assign_query\""), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// cache.reserve failpoint: allocation failure degrades, never diverges
// ---------------------------------------------------------------------------

TEST(CacheFailpointTest, ReserveFailureSweepsThroughFitAndAssign) {
  const Dataset dataset = BlobsDataset(1'000, 3, 61);
  const Dataset queries = BlobsDataset(800, 3, 62);
  Clustering reference_fit;
  DbsvecModel model;
  reference_fit = FitReference(dataset, &model);
  std::vector<int32_t> reference_assign;
  {
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
    ASSERT_TRUE(engine->AssignBatch(queries, &reference_assign).ok());
  }

  ScopedCacheBudget budget(size_t{64} << 20);
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.DisarmAll();
  ASSERT_TRUE(
      registry.Arm("cache.reserve", FailpointRegistry::Mode::kError).ok());

  // Every reservation fails: all three clients fall back to their
  // uncached paths and the results must not move by a bit.
  DbsvecModel faulted_model;
  DbsvecParams params;
  params.epsilon = 6.0;
  params.min_pts = 15;
  params.classify_points = true;
  Clustering faulted_fit;
  ASSERT_TRUE(RunDbsvec(dataset, params, &faulted_fit, &faulted_model).ok());
  ExpectSameClustering(reference_fit, faulted_fit);

  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(faulted_model, {}, &engine).ok());
  std::vector<int32_t> faulted_assign;
  ASSERT_TRUE(engine->AssignBatch(queries, &faulted_assign).ok());
  EXPECT_EQ(faulted_assign, reference_assign);

  EXPECT_GE(registry.HitCount("cache.reserve"), 1u);
  EXPECT_EQ(CacheManager::Global().used_bytes(), 0u);
  registry.DisarmAll();
}

// ---------------------------------------------------------------------------
// Concurrency: fits and serving traffic sharing one small budget
// ---------------------------------------------------------------------------

TEST(CacheConcurrencyTest, ConcurrentFitAndServeShareOneBudget) {
  const Dataset dataset = BlobsDataset(700, 3, 67);
  const Dataset queries = BlobsDataset(600, 3, 68);
  const Clustering reference_fit = FitReference(dataset);
  DbsvecModel model;
  FitReference(dataset, &model);
  std::vector<int32_t> reference_assign;
  {
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());
    ASSERT_TRUE(engine->AssignBatch(queries, &reference_assign).ok());
  }

  ScopedThreads threads(8);
  // Small enough that fits and serving evict each other's entries.
  ScopedCacheBudget budget(size_t{256} << 10);
  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(model, {}, &engine).ok());

  std::atomic<bool> over_budget{false};
  std::atomic<bool> diverged{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        const Clustering fit = FitReference(dataset);
        if (fit.labels != reference_fit.labels) {
          diverged.store(true);
        }
        if (CacheManager::Global().used_bytes() >
            CacheManager::Global().limit_bytes()) {
          over_budget.store(true);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        std::vector<int32_t> labels;
        if (!engine->AssignBatch(queries, &labels).ok() ||
            labels != reference_assign) {
          diverged.store(true);
        }
        if (CacheManager::Global().used_bytes() >
            CacheManager::Global().limit_bytes()) {
          over_budget.store(true);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_FALSE(diverged.load());
  EXPECT_FALSE(over_budget.load());
}

}  // namespace
}  // namespace dbsvec
