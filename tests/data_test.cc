#include <algorithm>

#include "cluster/dbscan.h"
#include "data/shapes.h"
#include "data/surrogates.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(RandomWalkTest, SizeAndDimensionRespected) {
  RandomWalkParams params;
  params.n = 5000;
  params.dim = 6;
  const Dataset dataset = GenerateRandomWalk(params);
  EXPECT_EQ(dataset.size(), 5000);
  EXPECT_EQ(dataset.dim(), 6);
}

TEST(RandomWalkTest, PointsStayInDomain) {
  RandomWalkParams params;
  params.n = 2000;
  params.dim = 3;
  params.domain = 1e5;
  const Dataset dataset = GenerateRandomWalk(params);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    for (int j = 0; j < dataset.dim(); ++j) {
      EXPECT_GE(dataset.at(i, j), 0.0);
      EXPECT_LE(dataset.at(i, j), 1e5);
    }
  }
}

TEST(RandomWalkTest, DeterministicForEqualSeeds) {
  RandomWalkParams params;
  params.n = 1000;
  const Dataset a = GenerateRandomWalk(params);
  const Dataset b = GenerateRandomWalk(params);
  EXPECT_EQ(a.data(), b.data());
  params.seed = 2;
  const Dataset c = GenerateRandomWalk(params);
  EXPECT_NE(a.data(), c.data());
}

TEST(RandomWalkTest, ProducesDensityClusters) {
  RandomWalkParams params;
  params.n = 10'000;
  params.dim = 4;
  params.num_clusters = 6;
  params.seed = 5;
  const Dataset dataset = GenerateRandomWalk(params);
  DbscanParams dbscan_params;
  dbscan_params.min_pts = 30;
  dbscan_params.epsilon = SuggestEpsilon(dataset, dbscan_params.min_pts);
  Clustering out;
  ASSERT_TRUE(RunDbscan(dataset, dbscan_params, &out).ok());
  EXPECT_GE(out.num_clusters, 2);
  EXPECT_LT(out.CountNoise(), dataset.size() / 2);
}

TEST(GaussianBlobsTest, GroundTruthMatchesSizes) {
  GaussianBlobsParams params;
  params.n = 1000;
  params.num_clusters = 4;
  params.noise_fraction = 0.1;
  std::vector<int32_t> truth;
  const Dataset dataset = GenerateGaussianBlobs(params, &truth);
  EXPECT_EQ(dataset.size(), 1000);
  ASSERT_EQ(truth.size(), 1000u);
  int noise = 0;
  int32_t max_label = -1;
  for (const int32_t label : truth) {
    noise += label == -1 ? 1 : 0;
    max_label = std::max(max_label, label);
  }
  EXPECT_EQ(noise, 100);
  EXPECT_EQ(max_label, 3);
}

TEST(GaussianBlobsTest, DeterministicForEqualSeeds) {
  GaussianBlobsParams params;
  params.n = 500;
  const Dataset a = GenerateGaussianBlobs(params);
  const Dataset b = GenerateGaussianBlobs(params);
  EXPECT_EQ(a.data(), b.data());
}

TEST(SuggestEpsilonTest, ScalesWithData) {
  GaussianBlobsParams params;
  params.n = 500;
  params.stddev = 1.0;
  params.seed = 7;
  const Dataset tight = GenerateGaussianBlobs(params);
  params.stddev = 5.0;
  const Dataset loose = GenerateGaussianBlobs(params);
  EXPECT_LT(SuggestEpsilon(tight, 5), SuggestEpsilon(loose, 5));
}

TEST(SuggestEpsilonTest, DegenerateInputs) {
  Dataset empty(2);
  EXPECT_GT(SuggestEpsilon(empty, 5), 0.0);
  Dataset one(2, {1.0, 1.0});
  EXPECT_GT(SuggestEpsilon(one, 5), 0.0);
}

TEST(ShapeSceneTest, SizeAndBounds) {
  const Dataset t4 = GenerateShapeScene(ShapeScene::kT4, 8000, 1);
  EXPECT_EQ(t4.size(), 8000);
  EXPECT_EQ(t4.dim(), 2);
  const Dataset t7 = GenerateShapeScene(ShapeScene::kT7, 10'000, 1);
  EXPECT_EQ(t7.size(), 10'000);
}

TEST(ShapeSceneTest, SceneContainsMultipleDensityClusters) {
  const Dataset t4 = GenerateShapeScene(ShapeScene::kT4, 8000, 42);
  DbscanParams params;
  params.epsilon = 8.5;
  params.min_pts = 20;
  Clustering out;
  ASSERT_TRUE(RunDbscan(t4, params, &out).ok());
  EXPECT_GE(out.num_clusters, 4);
  EXPECT_GT(out.CountNoise(), 0);
}

TEST(ShapeBuildersTest, CountsRespected) {
  Dataset dataset(2);
  AddBlob(&dataset, 10, 0, 0, 1.0, 1);
  AddRing(&dataset, 20, 0, 0, 5.0, 0.1, 2);
  AddSineBand(&dataset, 30, 0, 10, 0, 1, 5, 0.1, 3);
  AddBar(&dataset, 40, 0, 0, 10, 10, 0.1, 4);
  AddUniformNoise(&dataset, 50, 0, 0, 1, 1, 5);
  EXPECT_EQ(dataset.size(), 150);
}

TEST(SurrogatesTest, AllAccuracyNamesResolve) {
  for (const std::string& name : AccuracySurrogateNames()) {
    SurrogateDataset surrogate;
    ASSERT_TRUE(MakeSurrogate(name, &surrogate).ok()) << name;
    EXPECT_GT(surrogate.data.size(), 0) << name;
    EXPECT_GT(surrogate.epsilon, 0.0) << name;
    EXPECT_GE(surrogate.min_pts, 1) << name;
  }
}

TEST(SurrogatesTest, UnknownNameRejected) {
  SurrogateDataset surrogate;
  EXPECT_EQ(MakeSurrogate("no-such-dataset", &surrogate).code(),
            Status::Code::kNotFound);
}

TEST(SurrogatesTest, PaperCardinalitiesAndDimensions) {
  const struct {
    const char* name;
    PointIndex n;
    int d;
  } expected[] = {
      {"Seeds", 210, 7},        {"Map-Joensuu", 6014, 2},
      {"Map-Finland", 13467, 2}, {"Breast", 669, 9},
      {"House", 34112, 3},      {"Miss", 6480, 16},
      {"Dim32", 1024, 32},      {"Dim64", 1024, 64},
      {"D31", 3100, 2},         {"t4.8k", 8000, 2},
      {"t7.10k", 10000, 2},
  };
  for (const auto& spec : expected) {
    SurrogateDataset surrogate;
    ASSERT_TRUE(MakeSurrogate(spec.name, &surrogate).ok()) << spec.name;
    EXPECT_EQ(surrogate.data.size(), spec.n) << spec.name;
    EXPECT_EQ(surrogate.data.dim(), spec.d) << spec.name;
  }
}

TEST(SurrogatesTest, MaxPointsTruncates) {
  SurrogateDataset surrogate;
  ASSERT_TRUE(MakeSurrogate("PAMAP2", &surrogate, 5000).ok());
  EXPECT_EQ(surrogate.data.size(), 5000);
  EXPECT_EQ(surrogate.data.dim(), 17);
}

TEST(SurrogatesTest, SuggestedParamsYieldNonDegenerateClustering) {
  // Each Table III surrogate must produce multiple clusters with bounded
  // noise under its own suggested parameters (otherwise the accuracy
  // experiment would be vacuous).
  for (const std::string& name : AccuracySurrogateNames()) {
    SurrogateDataset surrogate;
    ASSERT_TRUE(MakeSurrogate(name, &surrogate).ok()) << name;
    DbscanParams params;
    params.epsilon = surrogate.epsilon;
    params.min_pts = surrogate.min_pts;
    Clustering out;
    ASSERT_TRUE(RunDbscan(surrogate.data, params, &out).ok()) << name;
    EXPECT_GE(out.num_clusters, 2) << name;
    EXPECT_LT(out.CountNoise(), surrogate.data.size() / 2) << name;
  }
}

TEST(SurrogatesTest, EfficiencyNamesResolveScaled) {
  for (const std::string& name : EfficiencySurrogateNames()) {
    SurrogateDataset surrogate;
    ASSERT_TRUE(MakeSurrogate(name, &surrogate, 3000).ok()) << name;
    EXPECT_EQ(surrogate.data.size(), 3000) << name;
  }
}

}  // namespace
}  // namespace dbsvec
