#include <cmath>

#include "core/parameter_selection.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(ParameterSelectionTest, NuStarMatchesFormula) {
  // Eq. 20: nu* = d*sqrt(log_MinPts n~)/n~.
  const int dim = 8;
  const int n = 1000;
  const int min_pts = 100;
  const double expected =
      dim * std::sqrt(std::log(1000.0) / std::log(100.0)) / 1000.0;
  EXPECT_NEAR(SelectNuStar(dim, n, min_pts), expected, 1e-12);
}

TEST(ParameterSelectionTest, NuStarClampedToOne) {
  // Large d with tiny target sets would exceed 1; the clamp keeps the dual
  // feasible.
  EXPECT_LE(SelectNuStar(64, 20, 5), 1.0);
  EXPECT_DOUBLE_EQ(SelectNuStar(1000, 10, 5), 1.0);
}

TEST(ParameterSelectionTest, NuStarAtLeastOneSupportVector) {
  for (const int n : {10, 100, 10000}) {
    EXPECT_GE(SelectNuStar(2, n, 100), 1.0 / n);
  }
}

TEST(ParameterSelectionTest, NuStarGrowsWithDimension) {
  EXPECT_LT(SelectNuStar(2, 5000, 100), SelectNuStar(16, 5000, 100));
}

TEST(ParameterSelectionTest, NuStarToleratesDegenerateMinPts) {
  // MinPts < 2 would make the log base ill-defined; treated as 2.
  EXPECT_GT(SelectNuStar(4, 1000, 1), 0.0);
  EXPECT_DOUBLE_EQ(SelectNuStar(4, 1000, 1), SelectNuStar(4, 1000, 2));
}

TEST(ParameterSelectionTest, NuMinIsOneSupportVector) {
  EXPECT_DOUBLE_EQ(SelectNuMin(500), 1.0 / 500.0);
  EXPECT_DOUBLE_EQ(SelectNuMin(1), 1.0);
}

TEST(ParameterSelectionTest, RandomSigmaWithinPairwiseRange) {
  const Dataset dataset = testing::RandomDataset(200, 3, 10.0, 71);
  std::vector<PointIndex> target(dataset.size());
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    target[i] = i;
  }
  // True pairwise extremes for the check.
  double min_dist = 1e300;
  double max_dist = 0.0;
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    for (PointIndex j = i + 1; j < dataset.size(); ++j) {
      const double d = dataset.Distance(i, j);
      min_dist = std::min(min_dist, d);
      max_dist = std::max(max_dist, d);
    }
  }
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const double sigma = RandomSigma(dataset, target, &rng);
    EXPECT_GE(sigma, min_dist * 0.99);
    EXPECT_LE(sigma, max_dist * 1.01);
  }
}

TEST(ParameterSelectionTest, RandomSigmaDegenerateTargets) {
  Dataset dataset(2, {1.0, 1.0});
  std::vector<PointIndex> one = {0};
  Rng rng(8);
  EXPECT_GT(RandomSigma(dataset, one, &rng), 0.0);
  Dataset same(2, {1.0, 1.0, 1.0, 1.0});
  std::vector<PointIndex> two = {0, 1};
  EXPECT_GT(RandomSigma(same, two, &rng), 0.0);
}

}  // namespace
}  // namespace dbsvec
