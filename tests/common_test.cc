#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.h"
#include "common/dataset.h"
#include "common/normalize.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/union_find.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("epsilon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(status.message(), "epsilon");
  EXPECT_EQ(status.ToString(), "InvalidArgument: epsilon");
}

TEST(StatusTest, DistinctCodesCompareUnequal) {
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_TRUE(Status::NotFound("x") == Status::NotFound("x"));
}

Status Inner() { return Status::Internal("inner"); }

Status Outer() {
  DBSVEC_RETURN_IF_ERROR(Inner());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer().code(), Status::Code::kInternal);
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset dataset(3);
  EXPECT_TRUE(dataset.empty());
  const double p0[3] = {1.0, 2.0, 3.0};
  const double p1[3] = {4.0, 5.0, 6.0};
  dataset.Append(p0);
  dataset.Append(p1);
  EXPECT_EQ(dataset.size(), 2);
  EXPECT_EQ(dataset.dim(), 3);
  EXPECT_DOUBLE_EQ(dataset.at(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(dataset.point(0)[1], 2.0);
}

TEST(DatasetTest, FlatBufferConstructor) {
  Dataset dataset(2, {0.0, 0.0, 3.0, 4.0});
  EXPECT_EQ(dataset.size(), 2);
  EXPECT_DOUBLE_EQ(dataset.SquaredDistance(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(dataset.Distance(0, 1), 5.0);
}

TEST(DatasetTest, SquaredDistanceToExternalPoint) {
  Dataset dataset(2, {1.0, 1.0});
  const double q[2] = {4.0, 5.0};
  EXPECT_DOUBLE_EQ(dataset.SquaredDistanceTo(0, q), 25.0);
}

TEST(DatasetTest, FreeDistanceFunctions) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(UnionFindTest, BasicUnionAndFind) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.Connected(0, 1));
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Connected(0, 1));
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, MakeSetGrows) {
  UnionFind uf;
  EXPECT_EQ(uf.MakeSet(), 0);
  EXPECT_EQ(uf.MakeSet(), 1);
  EXPECT_EQ(uf.size(), 2);
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Connected(0, 1));
}

TEST(UnionFindTest, TransitiveClosureOverChain) {
  const int n = 1000;
  UnionFind uf(n);
  for (int i = 0; i + 1 < n; ++i) {
    uf.Union(i, i + 1);
  }
  EXPECT_TRUE(uf.Connected(0, n - 1));
}

TEST(CsvTest, RoundTripWithLabels) {
  Dataset dataset(2, {1.5, 2.5, -3.0, 4.0, 0.0, 0.125});
  const std::vector<int32_t> labels = {0, 1, -1};
  const std::string path =
      (std::filesystem::temp_directory_path() / "dbsvec_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteCsv(dataset, labels, path).ok());
  Dataset read(1);
  std::vector<int32_t> read_labels;
  ASSERT_TRUE(ReadCsv(path, /*last_column_is_label=*/true, &read,
                      &read_labels)
                  .ok());
  ASSERT_EQ(read.size(), dataset.size());
  ASSERT_EQ(read.dim(), dataset.dim());
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    for (int j = 0; j < dataset.dim(); ++j) {
      EXPECT_DOUBLE_EQ(read.at(i, j), dataset.at(i, j));
    }
  }
  EXPECT_EQ(read_labels, labels);
  std::remove(path.c_str());
}

TEST(CsvTest, RoundTripWithoutLabels) {
  Dataset dataset(3, {1, 2, 3, 4, 5, 6});
  const std::string path =
      (std::filesystem::temp_directory_path() / "dbsvec_csv_nolabel.csv")
          .string();
  ASSERT_TRUE(WriteCsv(dataset, {}, path).ok());
  Dataset read(1);
  ASSERT_TRUE(ReadCsv(path, false, &read, nullptr).ok());
  EXPECT_EQ(read.size(), 2);
  EXPECT_EQ(read.dim(), 3);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  Dataset read(1);
  const Status status =
      ReadCsv("/nonexistent/definitely_missing.csv", false, &read, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

TEST(CsvTest, LabelSizeMismatchRejected) {
  Dataset dataset(2, {1, 2});
  const Status status = WriteCsv(dataset, {0, 1}, "/tmp/never_written.csv");
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

TEST(NormalizeTest, MapsToRequestedRange) {
  Dataset dataset(2, {0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  NormalizeToRange(&dataset, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(dataset.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dataset.at(2, 0), 100.0);
  EXPECT_DOUBLE_EQ(dataset.at(1, 0), 50.0);
  EXPECT_DOUBLE_EQ(dataset.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(dataset.at(2, 1), 100.0);
}

TEST(NormalizeTest, ConstantDimensionMapsToLow) {
  Dataset dataset(2, {5.0, 1.0, 5.0, 2.0});
  NormalizeToRange(&dataset, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(dataset.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dataset.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dataset.at(1, 1), 10.0);
}

TEST(TestUtilTest, SamePartitionDetectsRenaming) {
  EXPECT_TRUE(testing::SamePartition({0, 0, 1, -1}, {5, 5, 2, -1}));
  EXPECT_FALSE(testing::SamePartition({0, 0, 1, -1}, {5, 4, 2, -1}));
  EXPECT_FALSE(testing::SamePartition({0, 0, 1, -1}, {5, 5, 2, 2}));
  EXPECT_FALSE(testing::SamePartition({0, 1}, {0, 0}));
}

}  // namespace
}  // namespace dbsvec
