#include <algorithm>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "svm/kernel_cache.h"
#include "svm/smo_solver.h"
#include "test_util.h"

namespace dbsvec {
namespace {

std::vector<PointIndex> AllIndices(const Dataset& dataset) {
  std::vector<PointIndex> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(SmoSolverTest, EmptyTargetRejected) {
  Dataset dataset(2);
  std::vector<PointIndex> target;
  KernelCache cache(dataset, target, 1.0);
  SmoSolution solution;
  EXPECT_EQ(SmoSolver::Solve(&cache, {}, SmoOptions(), &solution).code(),
            Status::Code::kInvalidArgument);
}

TEST(SmoSolverTest, InfeasibleBoundsRejected) {
  Dataset dataset(1, {0.0, 1.0});
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  const std::vector<double> bounds = {0.3, 0.3};  // Sum < 1.
  SmoSolution solution;
  EXPECT_EQ(
      SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).code(),
      Status::Code::kInvalidArgument);
}

TEST(SmoSolverTest, NegativeBoundRejected) {
  Dataset dataset(1, {0.0, 1.0});
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  const std::vector<double> bounds = {-0.1, 2.0};
  SmoSolution solution;
  EXPECT_EQ(
      SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).code(),
      Status::Code::kInvalidArgument);
}

TEST(SmoSolverTest, TwoSymmetricPointsSplitEvenly) {
  Dataset dataset(1, {0.0, 1.0});
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  const std::vector<double> bounds = {1.0, 1.0};
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
  EXPECT_TRUE(solution.converged);
  EXPECT_NEAR(solution.alpha[0], 0.5, 1e-3);
  EXPECT_NEAR(solution.alpha[1], 0.5, 1e-3);
}

TEST(SmoSolverTest, BoxConstraintBinds) {
  Dataset dataset(1, {0.0, 1.0});
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.0);
  // Unconstrained optimum is (0.5, 0.5); capping alpha_0 at 0.2 pushes the
  // mass to alpha_1.
  const std::vector<double> bounds = {0.2, 1.0};
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
  EXPECT_NEAR(solution.alpha[0], 0.2, 1e-6);
  EXPECT_NEAR(solution.alpha[1], 0.8, 1e-6);
}

TEST(SmoSolverTest, EqualityAndBoundsHoldOnRandomProblems) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Dataset dataset = testing::RandomDataset(120, 3, 5.0, 100 + seed);
    const auto target = AllIndices(dataset);
    KernelCache cache(dataset, target, 2.0);
    Rng rng(seed);
    std::vector<double> bounds(dataset.size());
    for (double& b : bounds) {
      b = rng.Uniform(0.01, 0.2);
    }
    SmoSolution solution;
    ASSERT_TRUE(
        SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
    double sum = 0.0;
    for (int i = 0; i < static_cast<int>(bounds.size()); ++i) {
      EXPECT_GE(solution.alpha[i], -1e-12);
      EXPECT_LE(solution.alpha[i], bounds[i] + 1e-12);
      sum += solution.alpha[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SmoSolverTest, AlphaKAlphaMatchesDirectComputation) {
  const Dataset dataset = testing::RandomDataset(60, 2, 5.0, 7);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 1.5);
  std::vector<double> bounds(dataset.size(), 0.05);
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
  double direct = 0.0;
  KernelCache fresh(dataset, target, 1.5);
  for (int i = 0; i < static_cast<int>(target.size()); ++i) {
    for (int j = 0; j < static_cast<int>(target.size()); ++j) {
      direct += solution.alpha[i] * solution.alpha[j] * fresh.At(i, j);
    }
  }
  EXPECT_NEAR(solution.alpha_k_alpha, direct, 1e-6);
}

TEST(SmoSolverTest, SolutionIsNoWorseThanUniform) {
  // The objective at the solver's alpha must not exceed the objective of
  // the feasible uniform allocation.
  const Dataset dataset = testing::RandomDataset(80, 3, 5.0, 11);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 2.0);
  std::vector<double> bounds(dataset.size(), 1.0);
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
  const int n = static_cast<int>(target.size());
  KernelCache fresh(dataset, target, 2.0);
  double uniform_obj = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      uniform_obj += fresh.At(i, j) / (static_cast<double>(n) * n);
    }
  }
  // Objective = alpha'K alpha − Σ alpha_i K_ii; the diagonal term is 1 for
  // any feasible alpha under the Gaussian kernel, so comparing the
  // quadratic part suffices.
  EXPECT_LE(solution.alpha_k_alpha, uniform_obj + 1e-6);
}

TEST(SmoSolverTest, DefaultIterationCapPinned) {
  // max_iterations = 0 is a contract, not a placeholder: the solver
  // interprets it as max(10'000, 100·ñ). Both halves are pinned — the
  // default value itself, and that a default-capped solve on a problem
  // needing many iterations actually converges (a regression to "0 means
  // no iterations" or a much smaller cap would flip `converged`).
  EXPECT_EQ(SmoOptions().max_iterations, 0);
  const Dataset dataset = testing::RandomDataset(200, 4, 5.0, 13);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 2.0);
  std::vector<double> bounds(dataset.size(), 0.02);
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, SmoOptions(), &solution).ok());
  EXPECT_TRUE(solution.converged);
  EXPECT_GT(solution.iterations, 3);  // Needs real work (see cap test below).
  EXPECT_LE(solution.iterations,
            std::max<int64_t>(10'000, 100LL * dataset.size()));
}

TEST(SmoSolverTest, IterationCapReported) {
  const Dataset dataset = testing::RandomDataset(200, 4, 5.0, 13);
  const auto target = AllIndices(dataset);
  KernelCache cache(dataset, target, 2.0);
  std::vector<double> bounds(dataset.size(), 0.02);
  SmoOptions options;
  options.max_iterations = 3;
  SmoSolution solution;
  ASSERT_TRUE(SmoSolver::Solve(&cache, bounds, options, &solution).ok());
  EXPECT_LE(solution.iterations, 3);
}

TEST(KernelCacheTest, RowMatchesDirectKernel) {
  const Dataset dataset = testing::RandomDataset(50, 3, 5.0, 17);
  std::vector<PointIndex> target = {0, 5, 10, 15, 20};
  KernelCache cache(dataset, target, 1.7);
  const GaussianKernel kernel(1.7);
  const auto row = cache.Row(2);
  for (int j = 0; j < cache.size(); ++j) {
    const double expected = kernel(dataset.point(target[2]),
                                   dataset.point(target[j]));
    EXPECT_NEAR(row[j], expected, 1e-6);
  }
}

TEST(KernelCacheTest, EvictionKeepsResultsCorrect) {
  const Dataset dataset = testing::RandomDataset(100, 2, 5.0, 19);
  std::vector<PointIndex> target(dataset.size());
  std::iota(target.begin(), target.end(), 0);
  // Tiny cache: 2 rows resident.
  KernelCache cache(dataset, target, 1.0, /*max_bytes=*/1);
  const GaussianKernel kernel(1.0);
  for (const int i : {0, 17, 31, 0, 99, 17}) {
    const auto row = cache.Row(i);
    EXPECT_NEAR(row[i], 1.0, 1e-7);
    EXPECT_NEAR(row[50],
                kernel(dataset.point(target[i]), dataset.point(target[50])),
                1e-6);
  }
  EXPECT_GT(cache.rows_computed(), 0u);
}

TEST(KernelCacheTest, DiagIsOneForGaussian) {
  Dataset dataset(2, {1.0, 2.0});
  std::vector<PointIndex> target = {0};
  KernelCache cache(dataset, target, 3.0);
  EXPECT_DOUBLE_EQ(cache.Diag(0), 1.0);
}

TEST(GaussianKernelTest, KnownValues) {
  const GaussianKernel kernel(1.0);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {2.0};
  EXPECT_NEAR(kernel(a, b), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(kernel(a, a), 1.0);
  EXPECT_DOUBLE_EQ(kernel.sigma(), 1.0);
}

}  // namespace
}  // namespace dbsvec
