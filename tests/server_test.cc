// The HTTP serving subsystem end to end over loopback: the wire protocol
// (parser, payload codecs, status mapping), retry/backoff policy, and the
// live server — bit-identical assignment against the offline engine,
// atomic reload under concurrent load, deadline expiry as 504, admission
// control shedding, online refresh, and graceful drain. Failure paths are
// driven through the fault-injection registry (model.load, server.reload,
// server.accept, serve.refresh, assign.batch).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"
#include "server/http.h"
#include "server/http_client.h"
#include "server/payload.h"
#include "server/retry.h"
#include "server/server.h"

namespace dbsvec {
namespace {

using server::HttpClient;
using server::HttpParser;
using server::HttpRequest;
using server::HttpResponse;
using server::PayloadEncoding;
using server::RetryOptions;
using server::RetryPolicy;
using server::RetryReport;
using server::Server;
using server::ServerOptions;

// ---------------------------------------------------------------------------
// HTTP parser + serializer

TEST(HttpParserTest, ParsesSplitAndPipelinedRequests) {
  HttpParser parser(1 << 20);
  const std::string wire =
      "POST /v1/assign HTTP/1.1\r\nContent-Type: application/json\r\n"
      "Content-Length: 5\r\n\r\nhello"
      "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  // Byte-at-a-time delivery must parse identically to one big read.
  for (const char byte : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&byte, 1)).ok());
  }
  HttpRequest first;
  ASSERT_TRUE(parser.Next(&first));
  EXPECT_EQ(first.method, "POST");
  EXPECT_EQ(first.target, "/v1/assign");
  EXPECT_EQ(first.body, "hello");
  EXPECT_EQ(first.Header("content-type"), "application/json");
  EXPECT_TRUE(first.keep_alive);
  HttpRequest second;
  ASSERT_TRUE(parser.Next(&second));
  EXPECT_EQ(second.method, "GET");
  EXPECT_EQ(second.target, "/v1/healthz");
  EXPECT_TRUE(second.body.empty());
  EXPECT_FALSE(second.keep_alive);
  HttpRequest none;
  EXPECT_FALSE(parser.Next(&none));
}

TEST(HttpParserTest, RejectsChunkedAndOversizedBodies) {
  HttpParser chunked(1 << 20);
  const Status chunked_status = chunked.Feed(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(chunked_status.code(), Status::Code::kInvalidArgument);

  HttpParser small(16);
  const Status big_status =
      small.Feed("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_EQ(big_status.code(), Status::Code::kResourceExhausted);
}

TEST(HttpTest, StatusMappingMatchesWireProtocol) {
  EXPECT_EQ(server::HttpStatusFromStatus(Status::Ok()), 200);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::FailedPrecondition("x")),
            412);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::IoError("x")), 503);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::ResourceExhausted("x")),
            503);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::Unavailable("x")), 503);
  EXPECT_EQ(server::HttpStatusFromStatus(Status::Internal("x")), 500);
}

// ---------------------------------------------------------------------------
// Payload codecs

TEST(PayloadTest, JsonRoundTrip) {
  Dataset points(1);
  ASSERT_TRUE(server::ParseAssignBody(
                  " {\"points\" : [[1.5, -2], [3e2, 0.25]]} ",
                  PayloadEncoding::kJson, 100, &points)
                  .ok());
  ASSERT_EQ(points.size(), 2);
  ASSERT_EQ(points.dim(), 2);
  EXPECT_DOUBLE_EQ(points.point(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(points.point(1)[0], 300.0);

  const std::string labels =
      server::EncodeAssignResponse({0, -1, 7}, PayloadEncoding::kJson);
  EXPECT_EQ(labels, "{\"labels\":[0,-1,7]}");
}

TEST(PayloadTest, JsonRejectsRaggedAndNonFinite) {
  Dataset points(1);
  EXPECT_EQ(server::ParseAssignBody("{\"points\":[[1,2],[3]]}",
                                    PayloadEncoding::kJson, 100, &points)
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server::ParseAssignBody("{\"points\":[[1,nan]]}",
                                    PayloadEncoding::kJson, 100, &points)
                .code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server::ParseAssignBody("{\"points\":[[1],[2],[3]]}",
                                    PayloadEncoding::kJson, 2, &points)
                .code(),
            Status::Code::kResourceExhausted);
}

TEST(PayloadTest, BinaryRoundTrip) {
  // u32 count=2, u32 dim=1, then 2 doubles LE.
  std::string body;
  const auto put_u32 = [&body](uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      body.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  const auto put_f64 = [&body](double x) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      body.push_back(static_cast<char>((bits >> (8 * b)) & 0xff));
    }
  };
  put_u32(2);
  put_u32(1);
  put_f64(0.5);
  put_f64(-4.0);
  Dataset points(1);
  ASSERT_TRUE(server::ParseAssignBody(body, PayloadEncoding::kBinary, 100,
                                      &points)
                  .ok());
  ASSERT_EQ(points.size(), 2);
  EXPECT_DOUBLE_EQ(points.point(1)[0], -4.0);

  // Truncated payload must be rejected, not read out of bounds.
  EXPECT_FALSE(server::ParseAssignBody(body.substr(0, body.size() - 1),
                                       PayloadEncoding::kBinary, 100, &points)
                   .ok());

  const std::string encoded =
      server::EncodeAssignResponse({3, -1}, PayloadEncoding::kBinary);
  ASSERT_EQ(encoded.size(), 4 + 2 * 4);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), 2);
  EXPECT_EQ(static_cast<int8_t>(encoded[8]), -1);
}

// ---------------------------------------------------------------------------
// Retry policy

TEST(RetryTest, RetryableCategories) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::IoError("x")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("x")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("x")));
}

TEST(RetryTest, BackoffScheduleIsDeterministicAndBounded) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 35.0;
  options.jitter = 0.2;
  options.seed = 42;
  const RetryPolicy policy(options);
  const std::vector<double> schedule = policy.BackoffScheduleMs();
  ASSERT_EQ(schedule.size(), 4u);  // One sleep between each pair of tries.
  double base = 10.0;
  for (const double sleep_ms : schedule) {
    EXPECT_GE(sleep_ms, base * 0.8);
    EXPECT_LE(sleep_ms, base * 1.2);
    base = std::min(base * 2.0, 35.0);
  }
  // Same seed => same schedule; different seed => (almost surely) not.
  EXPECT_EQ(RetryPolicy(options).BackoffScheduleMs(), schedule);
  options.seed = 43;
  EXPECT_NE(RetryPolicy(options).BackoffScheduleMs(), schedule);
}

RetryOptions FastRetryOptions(int max_attempts) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 4.0;
  return options;
}

TEST(RetryTest, RecoversFromTransientFailuresWithinBudget) {
  const RetryPolicy policy(FastRetryOptions(4));
  int calls = 0;
  RetryReport report;
  const Status status = policy.Run(
      "op", Deadline(),
      [&calls]() -> Status {
        ++calls;
        return calls < 3 ? Status::IoError("flaky") : Status::Ok();
      },
      &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_FALSE(report.exhausted);
  // The sleeps taken are exactly the schedule prefix for the retries made.
  const std::vector<double> schedule = policy.BackoffScheduleMs();
  ASSERT_EQ(report.backoffs_ms.size(), 2u);
  EXPECT_EQ(report.backoffs_ms[0], schedule[0]);
  EXPECT_EQ(report.backoffs_ms[1], schedule[1]);
}

TEST(RetryTest, ExhaustionSurfacesAsUnavailable) {
  const RetryPolicy policy(FastRetryOptions(3));
  RetryReport report;
  const Status status = policy.Run(
      "doomed", Deadline(),
      []() -> Status { return Status::IoError("still down"); }, &report);
  EXPECT_EQ(status.code(), Status::Code::kUnavailable);
  EXPECT_NE(status.message().find("doomed"), std::string::npos);
  EXPECT_NE(status.message().find("3 attempts"), std::string::npos);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_TRUE(report.exhausted);
}

TEST(RetryTest, NonRetryableFailsFast) {
  const RetryPolicy policy(FastRetryOptions(4));
  RetryReport report;
  const Status status = policy.Run(
      "bad", Deadline(),
      []() -> Status { return Status::InvalidArgument("no"); }, &report);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_FALSE(report.exhausted);
}

TEST(RetryTest, DeadlineCutsRetriesShort) {
  RetryOptions options = FastRetryOptions(10);
  options.initial_backoff_ms = 200.0;
  options.max_backoff_ms = 200.0;
  const RetryPolicy policy(options);
  const Status status = policy.Run(
      "slow", Deadline::AfterMillis(30),
      []() -> Status { return Status::IoError("down"); }, nullptr);
  EXPECT_EQ(status.code(), Status::Code::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Live server over loopback

class ServerTest : public ::testing::Test {
 protected:
  static constexpr int kDim = 3;

  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    temp_dir_ = std::filesystem::temp_directory_path() /
                ("dbsvec_server_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(temp_dir_);
    // Same seed as model A's training set: the queries land inside the
    // trained clusters (non-noise, core-adjacent) instead of being noise
    // relative to a disjoint random scene.
    queries_ = MakeBlobs(/*n=*/400, /*seed=*/29);
    model_a_path_ = (temp_dir_ / "a.dbsvm").string();
    model_b_path_ = (temp_dir_ / "b.dbsvm").string();
    FitAndSave(/*seed=*/29, model_a_path_);
    FitAndSave(/*seed=*/31, model_b_path_);
  }

  void TearDown() override {
    server_.reset();
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    std::filesystem::remove_all(temp_dir_, ec);
  }

  static Dataset MakeBlobs(int n, uint64_t seed) {
    GaussianBlobsParams params;
    params.n = n;
    params.dim = kDim;
    params.num_clusters = 4;
    params.noise_fraction = 0.05;
    params.seed = seed;
    return GenerateGaussianBlobs(params);
  }

  void FitAndSave(uint64_t seed, const std::string& path) {
    const Dataset train = MakeBlobs(1'000, seed);
    DbsvecParams params;
    params.epsilon = 6.0;
    params.min_pts = 15;
    Clustering result;
    DbsvecModel model;
    ASSERT_TRUE(RunDbsvec(train, params, &result, &model).ok());
    ASSERT_GT(model.core_points.size(), 0);
    ASSERT_TRUE(SaveModel(model, path).ok());
  }

  void StartServer(ServerOptions options = {}) {
    std::unique_ptr<AssignmentEngine> engine;
    ASSERT_TRUE(AssignmentEngine::Load(model_a_path_, options.engine_options,
                                       &engine)
                    .ok());
    options.port = 0;
    ASSERT_TRUE(Server::Start(std::shared_ptr<AssignmentEngine>(
                                  std::move(engine)),
                              options, &server_)
                    .ok());
  }

  Status Connect(HttpClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  /// Offline ground truth: AssignBatch on a freshly loaded engine.
  std::vector<int32_t> OfflineLabels(const std::string& model_path,
                                     const Dataset& points) {
    std::unique_ptr<AssignmentEngine> engine;
    EXPECT_TRUE(AssignmentEngine::Load(model_path, {}, &engine).ok());
    std::vector<int32_t> labels;
    EXPECT_TRUE(engine->AssignBatch(points, &labels).ok());
    return labels;
  }

  static std::string JsonBody(const Dataset& points, int begin, int count) {
    std::string body = "{\"points\":[";
    char buffer[64];
    for (int i = 0; i < count; ++i) {
      body += i > 0 ? ",[" : "[";
      const auto point = points.point(begin + i);
      for (size_t d = 0; d < point.size(); ++d) {
        std::snprintf(buffer, sizeof(buffer), "%s%.17g", d > 0 ? "," : "",
                      point[d]);
        body += buffer;
      }
      body += "]";
    }
    return body + "]}";
  }

  static std::vector<int32_t> LabelsFromJson(const std::string& body) {
    std::vector<int32_t> labels;
    const size_t open = body.find('[');
    size_t cursor = open + 1;
    while (cursor < body.size() && body[cursor] != ']') {
      labels.push_back(
          static_cast<int32_t>(std::strtol(body.c_str() + cursor, nullptr,
                                           10)));
      cursor = body.find_first_of(",]", cursor);
      if (body[cursor] == ',') {
        ++cursor;
      }
    }
    return labels;
  }

  std::filesystem::path temp_dir_;
  std::string model_a_path_;
  std::string model_b_path_;
  Dataset queries_{kDim};
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthzAndUnknownRoutes) {
  StartServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "ok\n");
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/nothing", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 404);
  ASSERT_TRUE(
      client.Roundtrip("POST", "/v1/healthz", "", "x", {}, &response).ok());
  EXPECT_EQ(response.status_code, 405);
}

TEST_F(ServerTest, AssignMatchesOfflineEngineBitIdentically) {
  ServerOptions options;
  options.num_workers = 4;  // Any thread count must give identical labels.
  StartServer(options);
  const std::vector<int32_t> expected =
      OfflineLabels(model_a_path_, queries_);

  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  // JSON, in several batches over one keep-alive connection.
  std::vector<int32_t> served;
  const int batch = 64;
  for (int begin = 0; begin < queries_.size(); begin += batch) {
    const int count = std::min(batch, queries_.size() - begin);
    HttpResponse response;
    ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                                 JsonBody(queries_, begin, count), {},
                                 &response)
                    .ok());
    ASSERT_EQ(response.status_code, 200) << response.body;
    const std::vector<int32_t> labels = LabelsFromJson(response.body);
    ASSERT_EQ(labels.size(), static_cast<size_t>(count));
    served.insert(served.end(), labels.begin(), labels.end());
  }
  EXPECT_EQ(served, expected);

  // Binary payload: same points, same labels, byte-exact i32s.
  std::string body;
  const auto put_u32 = [&body](uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      body.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  put_u32(static_cast<uint32_t>(queries_.size()));
  put_u32(kDim);
  for (int i = 0; i < queries_.size(); ++i) {
    for (const double x : queries_.point(i)) {
      uint64_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      for (int b = 0; b < 8; ++b) {
        body.push_back(static_cast<char>((bits >> (8 * b)) & 0xff));
      }
    }
  }
  HttpResponse response;
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign",
                               "application/octet-stream", body, {},
                               &response)
                  .ok());
  ASSERT_EQ(response.status_code, 200);
  ASSERT_EQ(response.body.size(), 4 + expected.size() * 4);
  for (size_t i = 0; i < expected.size(); ++i) {
    int32_t label = 0;
    std::memcpy(&label, response.body.data() + 4 + i * 4, 4);
    ASSERT_EQ(label, expected[i]) << "binary label " << i;
  }
}

TEST_F(ServerTest, BadRequestsAreTypedNotFatal) {
  StartServer();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  // Wrong dimensionality -> 400 naming both dims.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               "{\"points\":[[1,2]]}", {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  EXPECT_NE(response.body.find("dimension"), std::string::npos);
  // Malformed JSON -> 400; connection stays serviceable (keep-alive).
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               "{\"points\":", {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  // Bad deadline header -> 400.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 1),
                               {"X-Deadline-Ms: soon"}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  // Unknown Content-Type -> 400.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "text/csv", "1,2,3", {},
                               &response)
                  .ok());
  EXPECT_EQ(response.status_code, 400);
  EXPECT_EQ(server_->stats().requests_bad.load(), 4u);
  // And the connection still serves good requests afterwards.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 4), {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
}

TEST_F(ServerTest, DeadlineExpiryIs504AndCounted) {
  StartServer();
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("assign.batch:delay_ms:50")
                  .ok());
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 64),
                               {"X-Deadline-Ms: 5"}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 504);
  EXPECT_NE(response.body.find("\"num_deadline_hits\":1"), std::string::npos)
      << response.body;
  EXPECT_EQ(server_->stats().num_deadline_hits.load(), 1u);
  FailpointRegistry::Instance().DisarmAll();
  // Without the header the same request completes normally again.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 64), {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
}

TEST_F(ServerTest, AdmissionControlShedsWith503RetryAfter) {
  ServerOptions options;
  options.max_inflight = 1;
  options.num_workers = 2;
  StartServer(options);
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("assign.batch:delay_ms:100")
                  .ok());
  std::atomic<int> shed{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &shed, &ok] {
      HttpClient client;
      ASSERT_TRUE(Connect(&client).ok());
      HttpResponse response;
      ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                                   JsonBody(queries_, 0, 16), {}, &response)
                      .ok());
      if (response.status_code == 503) {
        EXPECT_EQ(response.Header("Retry-After"), "1");
        ++shed;
      } else {
        EXPECT_EQ(response.status_code, 200);
        ++ok;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  FailpointRegistry::Instance().DisarmAll();
  // With one in-flight slot and 100 ms per assign, concurrent requests
  // must shed — and at least one must get through.
  EXPECT_GT(shed.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(server_->stats().requests_shed.load(),
            static_cast<uint64_t>(shed.load()));
  // Health stays exempt from admission control.
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 200);
}

TEST_F(ServerTest, StatzReportsModelIdentityWithoutRereadingFile) {
  StartServer();
  const std::shared_ptr<AssignmentEngine> engine = server_->engine();
  char expected_crc[16];
  std::snprintf(expected_crc, sizeof(expected_crc), "\"%08x\"",
                engine->model_crc());
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/statz", "", "", {}, &response).ok());
  ASSERT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find(
                "\"model_version\":" +
                std::to_string(DbsvecModel::kFormatVersion)),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find(std::string("\"model_crc\":") + expected_crc),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"model_sv_budget\":0"), std::string::npos);
  EXPECT_NE(response.body.find("\"model_sample_threshold\":0"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(response.body.find("\"assign_latency_p99_us\""),
            std::string::npos);
}

TEST_F(ServerTest, ReloadSwapsModelAtomically) {
  StartServer();
  const uint32_t crc_a = server_->engine()->model_crc();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/reload", "application/json",
                               "{\"path\": \"" + model_b_path_ + "\"}", {},
                               &response)
                  .ok());
  ASSERT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"reloaded\":true"), std::string::npos);
  EXPECT_NE(server_->engine()->model_crc(), crc_a);
  // Served labels now match the offline answer of model B.
  const std::vector<int32_t> expected =
      OfflineLabels(model_b_path_, queries_);
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, queries_.size()), {},
                               &response)
                  .ok());
  ASSERT_EQ(response.status_code, 200);
  EXPECT_EQ(LabelsFromJson(response.body), expected);
  EXPECT_EQ(server_->stats().reloads_ok.load(), 1u);
}

TEST_F(ServerTest, ReloadFailureRollsBackAndMapsTo503) {
  ServerOptions options;
  options.reload_retry = FastRetryOptions(3);
  StartServer(options);
  const uint32_t crc_before = server_->engine()->model_crc();
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  // Missing file: IoError, retried until the budget runs out, 503 out.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/reload", "application/json",
                               (temp_dir_ / "missing.dbsvm").string(), {},
                               &response)
                  .ok());
  EXPECT_EQ(response.status_code, 503);
  EXPECT_NE(response.body.find("\"attempts\":3"), std::string::npos)
      << response.body;
  // The previous engine keeps serving, untouched.
  EXPECT_EQ(server_->engine()->model_crc(), crc_before);
  EXPECT_EQ(server_->stats().reloads_failed.load(), 1u);
  EXPECT_EQ(server_->stats().reload_attempts.load(), 3u);
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 8), {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
}

TEST_F(ServerTest, ReloadRetryRecoversAndExhaustsThroughFailpoints) {
  ServerOptions options;
  options.reload_retry = FastRetryOptions(4);
  StartServer(options);

  // model.load:error:io — every load attempt fails, the budget exhausts,
  // and the typed exhaustion Status surfaces (mapped to 503 over HTTP).
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmSpec("model.load:error:io").ok());
  RetryReport report;
  Status status = server_->Reload(model_b_path_, Deadline(), &report);
  EXPECT_EQ(status.code(), Status::Code::kUnavailable);
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("model.load"), 4u);
  // The sleeps taken match the policy's deterministic schedule.
  const std::vector<double> schedule =
      RetryPolicy(options.reload_retry).BackoffScheduleMs();
  ASSERT_EQ(report.backoffs_ms.size(), 3u);
  EXPECT_EQ(report.backoffs_ms, std::vector<double>(schedule.begin(),
                                                    schedule.begin() + 3));
  FailpointRegistry::Instance().DisarmAll();

  // server.reload:error — internal, not retryable: exactly one attempt.
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmSpec("server.reload:error").ok());
  status = server_->Reload(model_b_path_, Deadline(), &report);
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_FALSE(report.exhausted);
  FailpointRegistry::Instance().DisarmAll();

  // Disarmed, the same reload succeeds within one attempt.
  status = server_->Reload(model_b_path_, Deadline(), &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.attempts, 1);
}

TEST_F(ServerTest, ReloadUnderLoadNeverTearsALabelBatch) {
  ServerOptions options;
  options.num_workers = 4;
  StartServer(options);
  // Precompute the only two legal answers for the probe batch: model A's
  // labels and model B's labels. Any response mixing the two (or failing)
  // is a torn read across the swap.
  const int kProbe = 32;
  Dataset probe(kDim);
  for (int i = 0; i < kProbe; ++i) {
    probe.Append(queries_.point(i));
  }
  const std::vector<int32_t> labels_a = OfflineLabels(model_a_path_, probe);
  const std::vector<int32_t> labels_b = OfflineLabels(model_b_path_, probe);
  const std::string body = JsonBody(queries_, 0, kProbe);

  std::atomic<bool> stop{false};
  std::atomic<int> responses{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([this, &body, &labels_a, &labels_b, &stop,
                          &responses, &torn] {
      HttpClient client;
      ASSERT_TRUE(Connect(&client).ok());
      while (!stop.load(std::memory_order_acquire)) {
        HttpResponse response;
        ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign",
                                     "application/json", body, {}, &response)
                        .ok());
        ASSERT_EQ(response.status_code, 200) << response.body;
        const std::vector<int32_t> labels = LabelsFromJson(response.body);
        if (labels != labels_a && labels != labels_b) {
          ++torn;
        }
        ++responses;
      }
    });
  }
  // Swap back and forth while the clients hammer.
  for (int swap = 0; swap < 6; ++swap) {
    const std::string& path = swap % 2 == 0 ? model_b_path_ : model_a_path_;
    ASSERT_TRUE(server_->Reload(path, Deadline()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(responses.load(), 8);
  EXPECT_EQ(server_->stats().reloads_ok.load(), 6u);
}

TEST_F(ServerTest, OnlineRefreshAbsorbsCoreAdjacentPoints) {
  ServerOptions options;
  options.online_refresh = true;
  options.engine_options.online_refresh = true;
  StartServer(options);
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());
  HttpResponse response;
  // Assigning the training distribution itself puts points inside member
  // spheres, so some get absorbed into the overlay.
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 0, 200), {}, &response)
                  .ok());
  ASSERT_EQ(response.status_code, 200);
  EXPECT_GT(server_->stats().cores_absorbed.load(), 0u);
  EXPECT_EQ(server_->stats().refresh_failures.load(), 0u);

  // An injected refresh fault degrades to a no-op: labels still 200.
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmSpec("serve.refresh:error").ok());
  ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                               JsonBody(queries_, 200, 100), {}, &response)
                  .ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(server_->stats().refresh_failures.load(), 1u);
  FailpointRegistry::Instance().DisarmAll();
}

TEST_F(ServerTest, AcceptFailpointRejectsConnections) {
  StartServer();
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmSpec("server.accept:error").ok());
  HttpClient client;
  ASSERT_TRUE(Connect(&client).ok());  // TCP accept happens, then close.
  HttpResponse response;
  EXPECT_FALSE(client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response)
                   .ok());
  FailpointRegistry::Instance().DisarmAll();
  // New connections work again.
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(
      client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response).ok());
  EXPECT_EQ(response.status_code, 200);
  EXPECT_GE(server_->stats().connections_rejected.load(), 1u);
}

TEST_F(ServerTest, ShutdownDrainsInFlightRequests) {
  StartServer();
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("assign.batch:delay_ms:100")
                  .ok());
  std::atomic<int> status_code{0};
  std::thread slow_client([this, &status_code] {
    HttpClient client;
    ASSERT_TRUE(Connect(&client).ok());
    HttpResponse response;
    ASSERT_TRUE(client.Roundtrip("POST", "/v1/assign", "application/json",
                                 JsonBody(queries_, 0, 16), {}, &response)
                    .ok());
    status_code.store(response.status_code);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Shutdown();  // Must wait for the in-flight response to flush.
  slow_client.join();
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(status_code.load(), 200);
}

}  // namespace
}  // namespace dbsvec
