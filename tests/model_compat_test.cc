// Backward compatibility of the model file format: committed golden v1 and
// v2 binaries (tests/data/) must keep loading under the v3 reader, validate,
// serve assignments, and re-save as well-formed v3 files. The goldens were
// written by the historical serializers and are never regenerated — they are
// the contract with models already on disk in the field.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "serve/assignment_engine.h"

namespace dbsvec {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DBSVEC_TEST_DATA_DIR) + "/" + name;
}

class ModelCompatTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelCompatTest, GoldenFileLoadsAndServes) {
  const int version = GetParam();
  DbsvecModel model;
  ASSERT_TRUE(
      LoadModel(GoldenPath("model_v" + std::to_string(version) + ".dbsvm"),
                &model)
          .ok());

  // The shared v1 prefix.
  EXPECT_DOUBLE_EQ(model.epsilon, 1.5);
  EXPECT_EQ(model.min_pts, 2);
  EXPECT_EQ(model.dim, 2);
  EXPECT_EQ(model.train_size, 8);
  EXPECT_EQ(model.num_clusters, 2);
  ASSERT_EQ(model.core_points.size(), 4);
  EXPECT_EQ(model.core_labels, (std::vector<int32_t>{0, 0, 1, 1}));
  ASSERT_EQ(model.spheres.size(), 2u);
  EXPECT_EQ(model.spheres[0].cluster, 0);
  EXPECT_EQ(model.spheres[1].cluster, 1);

  // v2 appended the bounded-cost SVDD provenance; a v1 file reads back with
  // the "exact training" defaults.
  if (version >= 2) {
    EXPECT_EQ(model.sv_budget, 16);
    EXPECT_EQ(model.sample_threshold, 32);
  } else {
    EXPECT_EQ(model.sv_budget, 0);
    EXPECT_EQ(model.sample_threshold, 0);
  }

  // v3 appended the absorbed overlay; pre-v3 files read back with none.
  EXPECT_EQ(model.absorbed_points.size(), 0);
  EXPECT_TRUE(model.absorbed_labels.empty());

  // The loaded model must actually serve.
  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Create(std::move(model), {}, &engine).ok());
  int32_t label = Clustering::kNoise;
  ASSERT_TRUE(engine->Assign(std::vector<double>{0.1, 0.1}, &label).ok());
  EXPECT_EQ(label, 0);
  ASSERT_TRUE(engine->Assign(std::vector<double>{10.2, 10.0}, &label).ok());
  EXPECT_EQ(label, 1);
  ASSERT_TRUE(engine->Assign(std::vector<double>{5.0, -40.0}, &label).ok());
  EXPECT_EQ(label, Clustering::kNoise);
}

TEST_P(ModelCompatTest, GoldenFileRoundTripsThroughV3Writer) {
  const int version = GetParam();
  DbsvecModel model;
  ASSERT_TRUE(
      LoadModel(GoldenPath("model_v" + std::to_string(version) + ".dbsvm"),
                &model)
          .ok());
  const std::filesystem::path resaved =
      std::filesystem::temp_directory_path() /
      ("dbsvec_compat_resave_v" + std::to_string(version) + "_" +
       std::to_string(::getpid()) + ".dbsvm");
  ASSERT_TRUE(SaveModel(model, resaved.string()).ok());
  DbsvecModel reloaded;
  ASSERT_TRUE(LoadModel(resaved.string(), &reloaded).ok());
  EXPECT_TRUE(reloaded == model);
  std::filesystem::remove(resaved);
}

INSTANTIATE_TEST_SUITE_P(Versions, ModelCompatTest, ::testing::Values(1, 2),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dbsvec
