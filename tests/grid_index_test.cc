#include <tuple>

#include "gtest/gtest.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "test_util.h"

namespace dbsvec {
namespace {

TEST(GridIndexTest, EmptyDataset) {
  Dataset dataset(2);
  GridIndex grid(dataset, 1.0);
  std::vector<PointIndex> out;
  const double q[2] = {0.0, 0.0};
  grid.RangeQuery(q, 1.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.num_cells(), 0u);
}

TEST(GridIndexTest, NegativeCoordinatesHandled) {
  Dataset dataset(2, {-1.5, -1.5, 1.5, 1.5});
  GridIndex grid(dataset, 1.0);
  std::vector<PointIndex> out;
  const double q[2] = {-1.4, -1.4};
  grid.RangeQuery(q, 0.5, &out);
  EXPECT_EQ(out, (std::vector<PointIndex>{0}));
}

TEST(GridIndexTest, CellWidthStored) {
  Dataset dataset(2, {0.0, 0.0});
  GridIndex grid(dataset, 2.5);
  EXPECT_DOUBLE_EQ(grid.cell_width(), 2.5);
  EXPECT_EQ(grid.num_cells(), 1u);
}

using GridSweepParam = std::tuple<int, int, double>;

class GridIndexSweepTest : public ::testing::TestWithParam<GridSweepParam> {
};

TEST_P(GridIndexSweepTest, MatchesBruteForceWhenRadiusWithinCellWidth) {
  const auto [n, dim, epsilon] = GetParam();
  const Dataset dataset =
      testing::RandomDataset(n, dim, 10.0, 4000 + n * 7 + dim);
  const BruteForceIndex brute(dataset);
  // Cell width equal to the query radius: the 3^d neighborhood covers the
  // ball, so results must be exact.
  const GridIndex grid(dataset, epsilon);
  std::vector<PointIndex> expected;
  std::vector<PointIndex> actual;
  const int queries = std::min<PointIndex>(30, dataset.size());
  for (PointIndex q = 0; q < queries; ++q) {
    brute.RangeQuery(dataset.point(q), epsilon, &expected);
    grid.RangeQuery(dataset.point(q), epsilon, &actual);
    EXPECT_EQ(testing::Sorted(expected), testing::Sorted(actual))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridIndexSweepTest,
    ::testing::Combine(::testing::Values(1, 64, 800),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0.5, 2.0, 8.0)));

}  // namespace
}  // namespace dbsvec
