// The durability layer end to end: overlay write-ahead journal round
// trips, torn-write fuzzing of the reader, crash recovery that reproduces
// the uncrashed engine bit-identically, atomic checkpoints folding the
// journal, disk-failure modes (short_write / enospc / fsync_error) at the
// model.save / journal.append / journal.fsync sites, graceful degradation
// of a durable server, and the /v1/snapshot + degraded-healthz endpoints.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "fault/failpoint.h"
#include "gtest/gtest.h"
#include "model/dbsvec_model.h"
#include "model/overlay_journal.h"
#include "model/serialize.h"
#include "serve/assignment_engine.h"
#include "server/durability.h"
#include "server/http_client.h"
#include "server/server.h"

namespace dbsvec {
namespace {

using server::DurabilityOptions;
using server::HttpClient;
using server::HttpResponse;
using server::RecoveryReport;
using server::Server;
using server::ServerOptions;

// ---------------------------------------------------------------------------
// Journal unit tests (no engine)

struct Replayed {
  int32_t label;
  std::vector<double> point;
};

/// Opens `path` collecting every replayed record into `*out`.
Status OpenCollecting(const std::string& path, uint32_t base_crc, int dim,
                      std::vector<Replayed>* out,
                      std::unique_ptr<OverlayJournal>* journal) {
  return OverlayJournal::Open(
      path, base_crc, dim, FsyncPolicy::kOff,
      [out](int32_t label, std::span<const double> point) -> Status {
        out->push_back({label, {point.begin(), point.end()}});
        return Status::Ok();
      },
      journal);
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("dbsvec_journal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "overlay.wal").string();
  }

  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// A fresh journal holding `n` deterministic dim-3 records.
  void WriteRecords(uint32_t base_crc, int n) {
    std::unique_ptr<OverlayJournal> journal;
    ASSERT_TRUE(OverlayJournal::Open(path_, base_crc, 3, FsyncPolicy::kOff,
                                     nullptr, &journal)
                    .ok());
    for (int i = 0; i < n; ++i) {
      const std::vector<double> point = {1.0 * i, 2.0 * i, 3.0 * i};
      ASSERT_TRUE(journal->Append(i % 4, point).ok());
    }
  }

  std::vector<uint8_t> FileBytes() const {
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(ReadFileBytes(path_, &bytes).ok());
    return bytes;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(JournalTest, AppendReplayRoundTrip) {
  WriteRecords(/*base_crc=*/42, /*n=*/7);
  std::vector<Replayed> replayed;
  std::unique_ptr<OverlayJournal> journal;
  ASSERT_TRUE(OpenCollecting(path_, 42, 3, &replayed, &journal).ok());
  ASSERT_EQ(replayed.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(replayed[static_cast<size_t>(i)].label, i % 4);
    EXPECT_EQ(replayed[static_cast<size_t>(i)].point,
              (std::vector<double>{1.0 * i, 2.0 * i, 3.0 * i}));
  }
  const OverlayJournalStats stats = journal->stats();
  EXPECT_EQ(stats.records, 7u);
  EXPECT_EQ(stats.records_replayed, 7u);
  EXPECT_EQ(stats.torn_bytes_truncated, 0u);
  EXPECT_EQ(stats.journals_discarded, 0u);
  EXPECT_FALSE(journal->degraded());
}

TEST_F(JournalTest, TornTailFuzzedAtEveryByteNeverCrashes) {
  WriteRecords(/*base_crc=*/7, /*n=*/5);
  const std::vector<uint8_t> full = FileBytes();
  constexpr size_t kHeader = 20;
  constexpr size_t kFrame = 8 + 4 + 3 * 8;  // overhead + label + 3 doubles.
  ASSERT_EQ(full.size(), kHeader + 5 * kFrame);

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    std::filesystem::remove(path_);
    {
      std::ofstream out(path_, std::ios::binary);
      out.write(reinterpret_cast<const char*>(full.data()),
                static_cast<std::streamsize>(cut));
    }
    std::vector<Replayed> replayed;
    std::unique_ptr<OverlayJournal> journal;
    ASSERT_TRUE(OpenCollecting(path_, 7, 3, &replayed, &journal).ok())
        << "cut at byte " << cut;
    const OverlayJournalStats stats = journal->stats();
    if (cut < kHeader) {
      // A torn header is indistinguishable from a foreign file: the journal
      // is discarded and reset, never replayed.
      EXPECT_EQ(stats.journals_discarded, 1u) << "cut at byte " << cut;
      EXPECT_TRUE(replayed.empty());
    } else {
      const size_t complete = (cut - kHeader) / kFrame;
      EXPECT_EQ(replayed.size(), complete) << "cut at byte " << cut;
      EXPECT_EQ(stats.torn_bytes_truncated, (cut - kHeader) % kFrame)
          << "cut at byte " << cut;
      // The torn tail is physically gone: the file ends at the last good
      // record and fresh appends land right there.
      EXPECT_EQ(std::filesystem::file_size(path_), kHeader + complete * kFrame);
    }
    // The reopened journal must accept appends whatever the damage was.
    EXPECT_TRUE(journal->Append(0, std::vector<double>{9, 9, 9}).ok())
        << "cut at byte " << cut;
  }
}

TEST_F(JournalTest, CorruptRecordEndsTheValidPrefix) {
  WriteRecords(/*base_crc=*/7, /*n=*/5);
  std::vector<uint8_t> bytes = FileBytes();
  constexpr size_t kHeader = 20;
  constexpr size_t kFrame = 8 + 4 + 3 * 8;
  // Flip one payload byte of record 2: records 0-1 stay valid, everything
  // from record 2 on is a torn tail even though records 3-4 are intact —
  // replay order would otherwise diverge from the original absorb order.
  bytes[kHeader + 2 * kFrame + 8 + 5] ^= 0x80;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  std::vector<Replayed> replayed;
  std::unique_ptr<OverlayJournal> journal;
  ASSERT_TRUE(OpenCollecting(path_, 7, 3, &replayed, &journal).ok());
  EXPECT_EQ(replayed.size(), 2u);
  EXPECT_EQ(journal->stats().torn_bytes_truncated, 3 * kFrame);
  EXPECT_EQ(std::filesystem::file_size(path_), kHeader + 2 * kFrame);
}

TEST_F(JournalTest, BaseCrcMismatchDiscardsTheJournal) {
  WriteRecords(/*base_crc=*/42, /*n=*/4);
  std::vector<Replayed> replayed;
  std::unique_ptr<OverlayJournal> journal;
  ASSERT_TRUE(OpenCollecting(path_, /*base_crc=*/43, 3, &replayed, &journal)
                  .ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(journal->stats().journals_discarded, 1u);
  EXPECT_EQ(journal->base_crc(), 43u);
  EXPECT_EQ(std::filesystem::file_size(path_), 20u);  // Fresh header only.
}

TEST_F(JournalTest, AppendFaultsDegradeAndRollBack) {
  std::unique_ptr<OverlayJournal> journal;
  ASSERT_TRUE(OverlayJournal::Open(path_, 1, 3, FsyncPolicy::kAlways, nullptr,
                                   &journal)
                  .ok());
  const std::vector<double> point = {1, 2, 3};
  ASSERT_TRUE(journal->Append(0, point).ok());
  const auto size_after_one = std::filesystem::file_size(path_);

  // enospc: fails before writing a byte; degraded, file untouched.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("journal.append:enospc")
                  .ok());
  EXPECT_FALSE(journal->Append(1, point).ok());
  EXPECT_TRUE(journal->degraded());
  EXPECT_EQ(std::filesystem::file_size(path_), size_after_one);
  FailpointRegistry::Instance().Disarm("journal.append");

  // fsync_error under --fsync=always: the record was written but cannot be
  // made durable, so it is rolled back — an acked-in-memory point must
  // never depend on an unsynced journal byte.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("journal.fsync:fsync_error")
                  .ok());
  EXPECT_FALSE(journal->Append(1, point).ok());
  EXPECT_TRUE(journal->degraded());
  EXPECT_EQ(std::filesystem::file_size(path_), size_after_one);
  EXPECT_GE(journal->stats().fsync_failures, 1u);
  FailpointRegistry::Instance().Disarm("journal.fsync");

  // Recovery: the next clean append clears the degraded flag.
  EXPECT_TRUE(journal->Append(2, point).ok());
  EXPECT_FALSE(journal->degraded());
  EXPECT_EQ(journal->stats().records_dropped, 2u);

  // short_write leaves a torn prefix on disk (simulated crash) and poisons
  // the handle: every later append fails fast so no good record can land
  // beyond the tear. Reset (a checkpoint) repairs it.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("journal.append:short_write")
                  .ok());
  EXPECT_FALSE(journal->Append(3, point).ok());
  FailpointRegistry::Instance().Disarm("journal.append");
  EXPECT_FALSE(journal->Append(3, point).ok());  // Poisoned: fail fast.
  ASSERT_TRUE(journal->Reset(/*new_base_crc=*/2).ok());
  EXPECT_FALSE(journal->degraded());
  EXPECT_TRUE(journal->Append(3, point).ok());

  // And the torn bytes the short write left behind never corrupt a reader:
  // the journal was reset, so a reopen sees header + one clean record.
  journal.reset();
  std::vector<Replayed> replayed;
  ASSERT_TRUE(OpenCollecting(path_, 2, 3, &replayed, &journal).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].label, 3);
}

// ---------------------------------------------------------------------------
// Atomic model saves (satellite: fit --model-out crash safety)

TEST_F(JournalTest, AtomicWriteFaultsLeaveTheOldFileIntact) {
  const std::string path = (dir_ / "artifact.bin").string();
  const std::vector<uint8_t> old_bytes = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteFileBytesAtomic(path, old_bytes, "model.save").ok());

  const std::vector<uint8_t> new_bytes(1024, 0xab);
  for (const char* mode : {"short_write", "enospc", "fsync_error"}) {
    ASSERT_TRUE(FailpointRegistry::Instance()
                    .ArmSpec(std::string("model.save:") + mode)
                    .ok());
    const Status status = WriteFileBytesAtomic(path, new_bytes, "model.save");
    ASSERT_FALSE(status.ok()) << mode;
    // The error names the path, the old file is untouched, and no .tmp
    // litter survives the failure.
    EXPECT_NE(status.message().find(path), std::string::npos) << mode;
    std::vector<uint8_t> on_disk;
    ASSERT_TRUE(ReadFileBytes(path, &on_disk).ok());
    EXPECT_EQ(on_disk, old_bytes) << mode;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << mode;
    FailpointRegistry::Instance().Disarm("model.save");
  }
  ASSERT_TRUE(WriteFileBytesAtomic(path, new_bytes, "model.save").ok());
  std::vector<uint8_t> on_disk;
  ASSERT_TRUE(ReadFileBytes(path, &on_disk).ok());
  EXPECT_EQ(on_disk, new_bytes);
}

// ---------------------------------------------------------------------------
// Engine-level crash recovery

class DurabilityTest : public ::testing::Test {
 protected:
  static constexpr int kDim = 3;

  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("dbsvec_durability_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    model_path_ = (dir_ / "model.dbsvm").string();
    snapshot_path_ = (dir_ / "model.ckpt").string();
    journal_path_ = (dir_ / "model.wal").string();

    const Dataset train = MakeBlobs(1'000, /*seed=*/29);
    DbsvecParams params;
    params.epsilon = 6.0;
    params.min_pts = 15;
    Clustering result;
    DbsvecModel model;
    ASSERT_TRUE(RunDbsvec(train, params, &result, &model).ok());
    ASSERT_TRUE(SaveModel(model, model_path_).ok());
    // Same distribution as training: the traffic lands inside member
    // spheres, so absorbs actually happen.
    traffic_ = MakeBlobs(300, /*seed=*/29);
    probes_ = MakeBlobs(200, /*seed=*/33);
  }

  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static Dataset MakeBlobs(int n, uint64_t seed) {
    GaussianBlobsParams params;
    params.n = n;
    params.dim = kDim;
    params.num_clusters = 4;
    params.noise_fraction = 0.05;
    params.seed = seed;
    return GenerateGaussianBlobs(params);
  }

  DurabilityOptions Durability() const {
    DurabilityOptions durability;
    durability.enabled = true;
    durability.snapshot_path = snapshot_path_;
    durability.journal_path = journal_path_;
    durability.fsync = FsyncPolicy::kOff;
    return durability;
  }

  /// A live journaling engine, as the serving path builds it.
  std::unique_ptr<AssignmentEngine> LiveEngine(
      std::shared_ptr<OverlayJournal>* journal_out = nullptr) {
    std::unique_ptr<AssignmentEngine> engine;
    std::shared_ptr<OverlayJournal> journal;
    EXPECT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                      server::RetryOptions(), &engine,
                                      &journal, nullptr)
                    .ok());
    if (journal_out != nullptr) {
      *journal_out = journal;
    }
    return engine;
  }

  /// Assigns `points` and absorbs the labeled result (the /v1/assign +
  /// refresh sequence), returning how many cores were absorbed.
  uint64_t Absorb(AssignmentEngine* engine, const Dataset& points) {
    std::vector<int32_t> labels;
    EXPECT_TRUE(engine->AssignBatch(points, &labels).ok());
    uint64_t absorbed = 0;
    EXPECT_TRUE(engine->AbsorbCoreAdjacent(points, labels, &absorbed).ok());
    return absorbed;
  }

  std::vector<int32_t> Labels(AssignmentEngine* engine, const Dataset& points) {
    std::vector<int32_t> labels;
    EXPECT_TRUE(engine->AssignBatch(points, &labels).ok());
    return labels;
  }

  std::filesystem::path dir_;
  std::string model_path_;
  std::string snapshot_path_;
  std::string journal_path_;
  Dataset traffic_{kDim};
  Dataset probes_{kDim};
};

TEST_F(DurabilityTest, RecoveryReproducesTheUncrashedEngineBitIdentically) {
  std::unique_ptr<AssignmentEngine> live = LiveEngine();
  const uint64_t absorbed = Absorb(live.get(), traffic_);
  ASSERT_GT(absorbed, 0u);
  const std::vector<int32_t> live_labels = Labels(live.get(), probes_);
  // "Crash": drop the engine without checkpointing. Only model + journal
  // survive on disk.
  live.reset();

  std::unique_ptr<AssignmentEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, &report)
                  .ok());
  EXPECT_FALSE(report.loaded_from_snapshot);
  EXPECT_EQ(report.records_replayed, absorbed);
  EXPECT_EQ(report.torn_bytes_truncated, 0u);
  EXPECT_EQ(recovered->stats().cores_absorbed, absorbed);
  EXPECT_EQ(Labels(recovered.get(), probes_), live_labels);
}

TEST_F(DurabilityTest, CheckpointFoldsTheJournalAndRebindsIt) {
  std::shared_ptr<OverlayJournal> journal;
  std::unique_ptr<AssignmentEngine> live = LiveEngine(&journal);
  const uint64_t before = Absorb(live.get(), traffic_);
  ASSERT_GT(before, 0u);

  uint32_t snapshot_crc = 0;
  uint64_t folded = 0;
  ASSERT_TRUE(live->Checkpoint(snapshot_path_, &snapshot_crc, &folded).ok());
  EXPECT_EQ(folded, before);
  EXPECT_EQ(journal->stats().records, 0u);
  EXPECT_EQ(journal->stats().resets, 1u);
  EXPECT_EQ(journal->base_crc(), snapshot_crc);

  // More absorbs after the checkpoint journal against the new base.
  const uint64_t after = Absorb(live.get(), probes_);
  const std::vector<int32_t> live_labels = Labels(live.get(), traffic_);
  live.reset();

  std::unique_ptr<AssignmentEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, &report)
                  .ok());
  EXPECT_TRUE(report.loaded_from_snapshot);
  EXPECT_EQ(report.records_replayed, after);
  EXPECT_EQ(report.journals_discarded, 0u);
  EXPECT_EQ(Labels(recovered.get(), traffic_), live_labels);
}

TEST_F(DurabilityTest, CrashBetweenSnapshotAndJournalResetIsSafe) {
  std::unique_ptr<AssignmentEngine> live = LiveEngine();
  ASSERT_GT(Absorb(live.get(), traffic_), 0u);
  const std::vector<int32_t> live_labels = Labels(live.get(), probes_);

  // Simulate dying inside Checkpoint after the snapshot rename but before
  // the journal reset: write the snapshot by hand, leave the journal bound
  // to the original model.
  DbsvecModel folded;
  ASSERT_TRUE(live->SnapshotModel(&folded).ok());
  ASSERT_TRUE(SaveModel(folded, snapshot_path_).ok());
  live.reset();

  std::unique_ptr<AssignmentEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, &report)
                  .ok());
  // The snapshot already contains every journaled record; the stale journal
  // (bound to the pre-checkpoint base) must be discarded, not replayed on
  // top — that would double-apply the overlay.
  EXPECT_TRUE(report.loaded_from_snapshot);
  EXPECT_EQ(report.journals_discarded, 1u);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(Labels(recovered.get(), probes_), live_labels);
}

TEST_F(DurabilityTest, FailedAppendSkipsTheInMemoryAbsorb) {
  std::shared_ptr<OverlayJournal> journal;
  std::unique_ptr<AssignmentEngine> live = LiveEngine(&journal);
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("journal.append:error:io")
                  .ok());
  EXPECT_EQ(Absorb(live.get(), traffic_), 0u);
  EXPECT_EQ(live->stats().cores_absorbed, 0u);
  EXPECT_GT(journal->stats().records_dropped, 0u);
  EXPECT_TRUE(journal->degraded());
  FailpointRegistry::Instance().Disarm("journal.append");

  // With the disk healthy again the same traffic absorbs, and a restart
  // sees exactly the overlay the live engine holds: no record was applied
  // without being journaled first.
  const uint64_t absorbed = Absorb(live.get(), traffic_);
  ASSERT_GT(absorbed, 0u);
  EXPECT_FALSE(journal->degraded());
  const std::vector<int32_t> live_labels = Labels(live.get(), probes_);
  live.reset();
  std::unique_ptr<AssignmentEngine> recovered;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, nullptr)
                  .ok());
  EXPECT_EQ(recovered->stats().cores_absorbed, absorbed);
  EXPECT_EQ(Labels(recovered.get(), probes_), live_labels);
}

// ---------------------------------------------------------------------------
// Durable server over loopback

class DurableServerTest : public DurabilityTest {
 protected:
  void StartDurable() {
    std::unique_ptr<AssignmentEngine> engine;
    std::shared_ptr<OverlayJournal> journal;
    RecoveryReport recovery;
    ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                      server::RetryOptions(), &engine,
                                      &journal, &recovery)
                    .ok());
    ServerOptions options;
    options.port = 0;
    options.online_refresh = true;
    options.engine_options.online_refresh = true;
    options.durability = Durability();
    options.journal = journal;
    options.recovery = recovery;
    ASSERT_TRUE(Server::Start(
                    std::shared_ptr<AssignmentEngine>(std::move(engine)),
                    options, &server_)
                    .ok());
  }

  std::string AssignBody(const Dataset& points, int count) {
    std::string body = "{\"points\":[";
    char buffer[64];
    for (int i = 0; i < count; ++i) {
      body += i > 0 ? ",[" : "[";
      const auto point = points.point(i);
      for (size_t d = 0; d < point.size(); ++d) {
        std::snprintf(buffer, sizeof(buffer), "%s%.17g", d > 0 ? "," : "",
                      point[d]);
        body += buffer;
      }
      body += "]";
    }
    return body + "]}";
  }

  HttpResponse Roundtrip(const std::string& method, const std::string& target,
                         const std::string& body) {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    HttpResponse response;
    EXPECT_TRUE(client
                    .Roundtrip(method, target,
                               body.empty() ? "" : "application/json", body,
                               {}, &response)
                    .ok());
    return response;
  }

  std::unique_ptr<Server> server_;
};

TEST_F(DurableServerTest, SnapshotEndpointCheckpointsTheOverlay) {
  StartDurable();
  const HttpResponse assigned =
      Roundtrip("POST", "/v1/assign", AssignBody(traffic_, 200));
  ASSERT_EQ(assigned.status_code, 200);
  ASSERT_GT(server_->stats().cores_absorbed.load(), 0u);

  const HttpResponse snapshot = Roundtrip("POST", "/v1/snapshot", "");
  EXPECT_EQ(snapshot.status_code, 200);
  EXPECT_NE(snapshot.body.find("\"snapshot\":true"), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"folded_records\":"), std::string::npos);
  EXPECT_EQ(server_->stats().checkpoints_ok.load(), 1u);
  EXPECT_TRUE(std::filesystem::exists(snapshot_path_));

  // statz carries the durability + failpoint observability objects.
  const HttpResponse statz = Roundtrip("GET", "/v1/statz", "");
  ASSERT_EQ(statz.status_code, 200);
  EXPECT_NE(statz.body.find("\"durability\":{"), std::string::npos);
  EXPECT_NE(statz.body.find("\"fsync\":\"off\""), std::string::npos);
  EXPECT_NE(statz.body.find("\"checkpoints_ok\":1"), std::string::npos);
  EXPECT_NE(statz.body.find("\"failpoints\":{"), std::string::npos);
  EXPECT_NE(statz.body.find("\"journal.append\":"), std::string::npos);

  // A restarted server serves the same labels the live one does.
  const std::vector<int32_t> live_labels =
      Labels(server_->engine().get(), probes_);
  server_->Shutdown();
  server_.reset();
  std::unique_ptr<AssignmentEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, &report)
                  .ok());
  EXPECT_TRUE(report.loaded_from_snapshot);
  EXPECT_EQ(Labels(recovered.get(), probes_), live_labels);
}

TEST_F(DurableServerTest, DegradedDurabilityKeepsServingAndFlagsHealthz) {
  StartDurable();
  EXPECT_EQ(Roundtrip("GET", "/v1/healthz", "").body, "ok\n");

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmSpec("journal.append:error:io")
                  .ok());
  const HttpResponse assigned =
      Roundtrip("POST", "/v1/assign", AssignBody(traffic_, 100));
  // Serving survives the dead disk; only durability degrades.
  EXPECT_EQ(assigned.status_code, 200);
  const HttpResponse health = Roundtrip("GET", "/v1/healthz", "");
  EXPECT_EQ(health.status_code, 200);
  EXPECT_NE(health.body.find("durability: degraded"), std::string::npos);
  const HttpResponse statz = Roundtrip("GET", "/v1/statz", "");
  EXPECT_NE(statz.body.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(statz.body.find("\"records_dropped\":"), std::string::npos);
  FailpointRegistry::Instance().Disarm("journal.append");

  // Healthy disk: the next absorbed point clears the flag.
  ASSERT_EQ(Roundtrip("POST", "/v1/assign", AssignBody(traffic_, 200))
                .status_code,
            200);
  EXPECT_EQ(Roundtrip("GET", "/v1/healthz", "").body, "ok\n");
}

TEST_F(DurableServerTest, SnapshotRequiresDurableMode) {
  ServerOptions options;
  options.port = 0;
  std::unique_ptr<AssignmentEngine> engine;
  ASSERT_TRUE(AssignmentEngine::Load(model_path_, {}, &engine).ok());
  ASSERT_TRUE(Server::Start(
                  std::shared_ptr<AssignmentEngine>(std::move(engine)),
                  options, &server_)
                  .ok());
  const HttpResponse response = Roundtrip("POST", "/v1/snapshot", "");
  EXPECT_EQ(response.status_code, 412);
  EXPECT_EQ(server_->stats().checkpoints_failed.load(), 0u);
}

TEST_F(DurableServerTest, DurableReloadRebindsTheJournal) {
  StartDurable();
  ASSERT_EQ(Roundtrip("POST", "/v1/assign", AssignBody(traffic_, 200))
                .status_code,
            200);
  ASSERT_GT(server_->stats().cores_absorbed.load(), 0u);

  // Reload the same model file: the overlay restarts empty and the journal
  // must restart with it, bound to the reloaded model's identity.
  const HttpResponse reload =
      Roundtrip("POST", "/v1/reload", "{\"path\": \"" + model_path_ + "\"}");
  ASSERT_EQ(reload.status_code, 200);
  const std::shared_ptr<AssignmentEngine> engine = server_->engine();
  EXPECT_EQ(engine->stats().cores_absorbed, 0u);
  ASSERT_NE(engine->journal(), nullptr);
  EXPECT_EQ(engine->journal()->base_crc(), engine->model_crc());
  EXPECT_EQ(engine->journal()->stats().records, 0u);

  // Post-reload absorbs journal against the new base and recover cleanly.
  ASSERT_EQ(Roundtrip("POST", "/v1/assign", AssignBody(traffic_, 200))
                .status_code,
            200);
  const std::vector<int32_t> live_labels = Labels(engine.get(), probes_);
  const uint64_t live_absorbed = engine->stats().cores_absorbed;
  ASSERT_GT(live_absorbed, 0u);
  server_->Shutdown();
  server_.reset();
  std::unique_ptr<AssignmentEngine> recovered;
  ASSERT_TRUE(server::RecoverEngine(model_path_, Durability(), {},
                                    server::RetryOptions(), &recovered,
                                    nullptr, nullptr)
                  .ok());
  EXPECT_EQ(recovered->stats().cores_absorbed, live_absorbed);
  EXPECT_EQ(Labels(recovered.get(), probes_), live_labels);
}

}  // namespace
}  // namespace dbsvec
