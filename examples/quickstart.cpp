// Quickstart: cluster a small 2-D dataset with DBSVEC and compare against
// exact DBSCAN.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cluster/dbscan.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/recall.h"

int main() {
  using namespace dbsvec;

  // 1. Get some data: five Gaussian blobs plus background noise. Any
  //    row-major buffer works — Dataset(dim, values) adopts it directly.
  GaussianBlobsParams gen;
  gen.n = 5000;
  gen.dim = 2;
  gen.num_clusters = 5;
  gen.stddev = 1.0;
  gen.noise_fraction = 0.02;
  gen.seed = 7;
  const Dataset data = GenerateGaussianBlobs(gen);

  // 2. Pick DBSCAN-style parameters. SuggestEpsilon implements the
  //    standard kth-nearest-neighbor heuristic when you have no prior.
  const int min_pts = 10;
  const double epsilon = SuggestEpsilon(data, min_pts, /*sample_size=*/200,
                                        /*inflation=*/2.0);
  std::printf("n=%d, d=%d, MinPts=%d, suggested eps=%.3f\n\n", data.size(),
              data.dim(), min_pts, epsilon);

  // 3. Run DBSVEC. All knobs have paper defaults; epsilon and min_pts are
  //    the only required settings.
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering result;
  if (const Status status = RunDbsvec(data, params, &result); !status.ok()) {
    std::fprintf(stderr, "DBSVEC failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("DBSVEC: %d clusters, %d noise points, %.3fs\n",
              result.num_clusters, result.CountNoise(),
              result.stats.elapsed_seconds);
  std::printf("        %llu range queries (DBSCAN would need %d), "
              "%llu SVDD trainings, %llu support vectors\n",
              static_cast<unsigned long long>(result.stats.num_range_queries),
              data.size(),
              static_cast<unsigned long long>(
                  result.stats.num_svdd_trainings),
              static_cast<unsigned long long>(
                  result.stats.num_support_vectors));

  // 4. Sanity-check against exact DBSCAN with the pair-recall metric the
  //    paper uses. Expect 1.000 (identical clusters).
  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  if (const Status status = RunDbscan(data, exact, &reference);
      !status.ok()) {
    std::fprintf(stderr, "DBSCAN failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nDBSCAN: %d clusters, %d noise points, %.3fs\n",
              reference.num_clusters, reference.CountNoise(),
              reference.stats.elapsed_seconds);
  std::printf("recall(DBSVEC vs DBSCAN)    = %.4f\n",
              PairRecall(reference.labels, result.labels));
  std::printf("precision(DBSVEC vs DBSCAN) = %.4f\n",
              PairPrecision(reference.labels, result.labels));
  return 0;
}
