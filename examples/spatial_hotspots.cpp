// Spatial hotspot discovery — the paper's motivating spatial-data-analysis
// use case. Clusters a GPS-like 2-D point set (Map-Finland surrogate,
// 13,467 points) into activity hotspots of arbitrary shape, reports
// per-hotspot summaries, and optionally exports the labelled points for
// mapping.
//
// Usage: spatial_hotspots [--out=labels.csv]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"

int main(int argc, char** argv) {
  using namespace dbsvec;

  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  // Load the map data (a surrogate with the Map-Finland cardinality; swap
  // in ReadCsv(...) for your own longitude/latitude file).
  SurrogateDataset map;
  if (const Status status = MakeSurrogate("Map-Finland", &map);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Loaded %d map points (d=%d); eps=%.1f MinPts=%d\n\n",
              map.data.size(), map.data.dim(), map.epsilon, map.min_pts);

  DbsvecParams params;
  params.epsilon = map.epsilon;
  params.min_pts = map.min_pts;
  Clustering result;
  if (const Status status = RunDbsvec(map.data, params, &result);
      !status.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Summarize each hotspot: size and bounding box, largest first.
  struct Hotspot {
    int32_t id;
    int64_t size = 0;
    double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  };
  std::vector<Hotspot> hotspots(result.num_clusters);
  for (int32_t c = 0; c < result.num_clusters; ++c) {
    hotspots[c].id = c;
  }
  for (PointIndex i = 0; i < map.data.size(); ++i) {
    const int32_t label = result.labels[i];
    if (label < 0) {
      continue;
    }
    Hotspot& h = hotspots[label];
    ++h.size;
    h.min_x = std::min(h.min_x, map.data.at(i, 0));
    h.max_x = std::max(h.max_x, map.data.at(i, 0));
    h.min_y = std::min(h.min_y, map.data.at(i, 1));
    h.max_y = std::max(h.max_y, map.data.at(i, 1));
  }
  std::sort(hotspots.begin(), hotspots.end(),
            [](const Hotspot& a, const Hotspot& b) {
              return a.size > b.size;
            });

  std::printf("Found %d hotspots (%.3fs, %llu range queries vs %d for "
              "DBSCAN), %d unclustered points\n\n",
              result.num_clusters, result.stats.elapsed_seconds,
              static_cast<unsigned long long>(
                  result.stats.num_range_queries),
              map.data.size(), result.CountNoise());
  std::printf("%-8s %-8s %-40s\n", "hotspot", "points", "bounding box");
  const int top = std::min<int>(10, static_cast<int>(hotspots.size()));
  for (int r = 0; r < top; ++r) {
    const Hotspot& h = hotspots[r];
    std::printf("%-8d %-8lld [%.0f, %.0f] x [%.0f, %.0f]\n", h.id,
                static_cast<long long>(h.size), h.min_x, h.max_x, h.min_y,
                h.max_y);
  }

  if (!out_path.empty()) {
    if (const Status status = WriteCsv(map.data, result.labels, out_path);
        status.ok()) {
      std::printf("\nlabelled points written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "\nexport failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
