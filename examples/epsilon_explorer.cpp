// Exploring the ε landscape with OPTICS + DBSVEC — choosing DBSCAN-family
// parameters on unfamiliar data.
//
// One OPTICS pass computes the reachability profile of the dataset; the
// "knee" levels of that profile are natural ε candidates. The example
// extracts a flat clustering at several candidate radii and cross-checks
// the chosen one with DBSVEC (which would be the production clusterer at
// scale).
//
// Usage: epsilon_explorer [--n=4000]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "cluster/optics.h"
#include "core/dbsvec.h"
#include "data/synthetic.h"
#include "eval/recall.h"

int main(int argc, char** argv) {
  using namespace dbsvec;

  PointIndex n = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<PointIndex>(std::atoll(argv[i] + 4));
    }
  }

  // Data with structure at two density scales: tight blobs plus one
  // diffuse blob, so different eps values give different clusterings.
  GaussianBlobsParams tight;
  tight.n = n * 3 / 4;
  tight.dim = 2;
  tight.num_clusters = 4;
  tight.stddev = 0.8;
  tight.min_center_separation = 25.0;
  tight.seed = 17;
  Dataset data = GenerateGaussianBlobs(tight);
  GaussianBlobsParams diffuse;
  diffuse.n = n / 4;
  diffuse.dim = 2;
  diffuse.num_clusters = 1;
  diffuse.stddev = 4.0;
  diffuse.seed = 18;
  const Dataset extra = GenerateGaussianBlobs(diffuse);
  for (PointIndex i = 0; i < extra.size(); ++i) {
    data.Append(extra.point(i));
  }

  const int min_pts = 8;
  OpticsParams params;
  params.min_pts = min_pts;
  params.max_epsilon = SuggestEpsilon(data, min_pts) * 6.0;
  OpticsResult optics;
  if (const Status status = RunOptics(data, params, &optics);
      !status.ok()) {
    std::fprintf(stderr, "OPTICS: %s\n", status.ToString().c_str());
    return 1;
  }

  // Candidate radii: percentiles of the finite reachability values.
  std::vector<double> reach;
  for (const double r : optics.reachability) {
    if (std::isfinite(r)) {
      reach.push_back(r);
    }
  }
  std::sort(reach.begin(), reach.end());
  std::printf("OPTICS over %d points (MinPts=%d, max_eps=%.2f): "
              "reachability median=%.3f p90=%.3f p99=%.3f\n\n",
              data.size(), min_pts, params.max_epsilon,
              reach[reach.size() / 2], reach[reach.size() * 9 / 10],
              reach[reach.size() * 99 / 100]);

  std::printf("%-12s %-10s %-8s\n", "epsilon", "clusters", "noise");
  const double percentiles[] = {0.5, 0.75, 0.9, 0.97};
  std::vector<double> candidates;
  for (const double pct : percentiles) {
    candidates.push_back(
        reach[static_cast<size_t>(pct * (reach.size() - 1))]);
  }
  for (const double eps : candidates) {
    Clustering flat;
    if (!ExtractDbscanClustering(data, optics, eps, min_pts, &flat).ok()) {
      continue;
    }
    std::printf("%-12.4f %-10d %-8d\n", eps, flat.num_clusters,
                flat.CountNoise());
  }

  // Pick the 90th-percentile radius and confirm with DBSVEC.
  const double chosen = candidates[2];
  Clustering flat;
  if (!ExtractDbscanClustering(data, optics, chosen, min_pts, &flat).ok()) {
    return 1;
  }
  DbsvecParams dbsvec_params;
  dbsvec_params.epsilon = chosen;
  dbsvec_params.min_pts = min_pts;
  Clustering fast;
  if (const Status status = RunDbsvec(data, dbsvec_params, &fast);
      !status.ok()) {
    std::fprintf(stderr, "DBSVEC: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nchosen eps=%.4f -> DBSVEC: %d clusters, %d noise, %.3fs, "
              "%llu range queries\n",
              chosen, fast.num_clusters, fast.CountNoise(),
              fast.stats.elapsed_seconds,
              static_cast<unsigned long long>(
                  fast.stats.num_range_queries));
  std::printf("agreement with the OPTICS extraction (pair recall): %.4f\n",
              PairRecall(flat.labels, fast.labels));
  return 0;
}
