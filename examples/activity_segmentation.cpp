// Activity segmentation on high-dimensional sensor streams — the paper's
// PAMAP2 use case (17-d physical-activity monitoring). Demonstrates the
// regime DBSVEC is built for: large n, moderate d, dense clusters, where
// exact DBSCAN's one-range-query-per-point cost dominates.
//
// The example clusters a PAMAP2-style stream, compares DBSVEC's wall time
// and range-query count against exact DBSCAN on the same data, and shows
// the paper's nu* policy at work.
//
// Usage: activity_segmentation [--n=60000]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/dbscan.h"
#include "common/normalize.h"
#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/recall.h"

int main(int argc, char** argv) {
  using namespace dbsvec;

  PointIndex n = 60'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<PointIndex>(std::atoll(argv[i] + 4));
    }
  }

  SurrogateDataset stream;
  if (const Status status = MakeSurrogate("PAMAP2", &stream, n);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // Normalize features to a common range, as the paper does for the
  // efficiency experiments.
  NormalizeToPaperRange(&stream.data);
  const double epsilon = 5000.0;
  const int min_pts = 100;
  std::printf("PAMAP2-style stream: n=%d, d=%d, eps=%.0f, MinPts=%d\n\n",
              stream.data.size(), stream.data.dim(), epsilon, min_pts);

  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = min_pts;
  Clustering segments;
  if (const Status status = RunDbsvec(stream.data, params, &segments);
      !status.ok()) {
    std::fprintf(stderr, "DBSVEC failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("DBSVEC found %d activity modes in %.2fs\n",
              segments.num_clusters, segments.stats.elapsed_seconds);
  std::printf("  range queries: %llu (%.1f%% of the n=%d DBSCAN needs)\n",
              static_cast<unsigned long long>(
                  segments.stats.num_range_queries),
              100.0 * static_cast<double>(segments.stats.num_range_queries) /
                  static_cast<double>(stream.data.size()),
              stream.data.size());
  std::printf("  SVDD trainings: %llu, support vectors: %llu, merges: %llu\n",
              static_cast<unsigned long long>(
                  segments.stats.num_svdd_trainings),
              static_cast<unsigned long long>(
                  segments.stats.num_support_vectors),
              static_cast<unsigned long long>(segments.stats.num_merges));

  // Mode sizes.
  std::vector<int64_t> sizes(segments.num_clusters, 0);
  for (const int32_t label : segments.labels) {
    if (label >= 0) {
      ++sizes[label];
    }
  }
  std::printf("\n%-6s %-10s\n", "mode", "samples");
  for (int32_t c = 0; c < segments.num_clusters; ++c) {
    std::printf("%-6d %-10lld\n", c, static_cast<long long>(sizes[c]));
  }
  std::printf("noise  %-10d\n", segments.CountNoise());

  // Ground the speedup claim on this machine: exact DBSCAN on the same
  // data and parameters.
  DbscanParams exact;
  exact.epsilon = epsilon;
  exact.min_pts = min_pts;
  Clustering reference;
  if (const Status status = RunDbscan(stream.data, exact, &reference);
      !status.ok()) {
    std::fprintf(stderr, "DBSCAN failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nexact DBSCAN (kd-tree): %.2fs -> DBSVEC speedup %.1fx, "
              "recall %.4f\n",
              reference.stats.elapsed_seconds,
              reference.stats.elapsed_seconds /
                  segments.stats.elapsed_seconds,
              PairRecall(reference.labels, segments.labels));
  return 0;
}
