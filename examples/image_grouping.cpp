// Grouping high-dimensional image features — the paper's Corel-Image use
// case (32-d feature vectors, 68k images). Demonstrates DBSVEC on high-d
// data where grid-based approximations collapse, and shows the
// accuracy/efficiency dial: DBSVEC_min (nu = 1/n~, fewest support vectors)
// vs the default nu* policy.
//
// Usage: image_grouping [--n=30000]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/dbsvec.h"
#include "data/surrogates.h"
#include "eval/internal_metrics.h"
#include "eval/recall.h"

int main(int argc, char** argv) {
  using namespace dbsvec;

  PointIndex n = 30'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<PointIndex>(std::atoll(argv[i] + 4));
    }
  }

  SurrogateDataset corel;
  if (const Status status = MakeSurrogate("Corel", &corel, n);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Corel-style features: n=%d, d=%d, eps=%.2f, MinPts=%d\n\n",
              corel.data.size(), corel.data.dim(), corel.epsilon,
              corel.min_pts);

  // Variant 1: the default nu* policy (Eq. 20) — accuracy first.
  DbsvecParams accurate;
  accurate.epsilon = corel.epsilon;
  accurate.min_pts = corel.min_pts;
  Clustering groups;
  if (const Status status = RunDbsvec(corel.data, accurate, &groups);
      !status.ok()) {
    std::fprintf(stderr, "DBSVEC failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Variant 2: DBSVEC_min — one support vector per training, maximum
  // speed, slightly weaker expansion coverage.
  DbsvecParams fast = accurate;
  fast.nu_mode = NuMode::kMinimum;
  Clustering groups_min;
  if (const Status status = RunDbsvec(corel.data, fast, &groups_min);
      !status.ok()) {
    std::fprintf(stderr, "DBSVEC_min failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf("%-12s %-9s %-7s %-8s %-14s %-12s\n", "variant", "groups",
              "noise", "time_s", "range_queries", "supp.vectors");
  std::printf("%-12s %-9d %-7d %-8.2f %-14llu %-12llu\n", "DBSVEC (nu*)",
              groups.num_clusters, groups.CountNoise(),
              groups.stats.elapsed_seconds,
              static_cast<unsigned long long>(
                  groups.stats.num_range_queries),
              static_cast<unsigned long long>(
                  groups.stats.num_support_vectors));
  std::printf("%-12s %-9d %-7d %-8.2f %-14llu %-12llu\n", "DBSVEC_min",
              groups_min.num_clusters, groups_min.CountNoise(),
              groups_min.stats.elapsed_seconds,
              static_cast<unsigned long long>(
                  groups_min.stats.num_range_queries),
              static_cast<unsigned long long>(
                  groups_min.stats.num_support_vectors));

  std::printf("\nagreement of the two variants (pair recall): %.4f\n",
              PairRecall(groups.labels, groups_min.labels));
  std::printf("internal quality of nu* grouping: compactness=%.3f "
              "(higher better), separation=%.3f (lower better)\n",
              Compactness(corel.data, groups.labels),
              Separation(corel.data, groups.labels));
  return 0;
}
