// dbsvec_cli — cluster a CSV (or generated demo data) from the command
// line with any algorithm in the library. Run with --help for usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_manager.h"
#include "cli/cli_options.h"
#include "cli/cli_runner.h"
#include "cluster/dbscan.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "eval/recall.h"
#include "fault/failpoint.h"
#include "model/dbsvec_model.h"
#include "model/overlay_journal.h"
#include "serve/assignment_engine.h"
#include "server/durability.h"
#include "server/server.h"

namespace dbsvec {
namespace {

/// Degraded-solve summary shared by the cluster and fit outputs: printed
/// only when something actually degraded, so healthy runs stay unchanged.
void PrintDegradedStats(const ClusteringStats& stats) {
  if (stats.num_nonconverged_solves == 0 && stats.num_svdd_fallbacks == 0 &&
      stats.num_caps_rescaled == 0) {
    return;
  }
  std::printf("degraded: nonconverged_solves=%llu svdd_fallbacks=%llu "
              "caps_rescaled=%llu\n",
              static_cast<unsigned long long>(stats.num_nonconverged_solves),
              static_cast<unsigned long long>(stats.num_svdd_fallbacks),
              static_cast<unsigned long long>(stats.num_caps_rescaled));
}

/// SMO aggregate line shared by the cluster and fit outputs. The max makes
/// per-solve cost visible without a profiler: under --sv-budget it must
/// stay bounded in B, not in the target size. The budget line appears only
/// when the bounded-cost machinery actually fired.
void PrintSolverStats(const ClusteringStats& stats) {
  if (stats.num_svdd_trainings == 0) {
    return;
  }
  std::printf("smo: solves=%llu iterations=%lld max_per_solve=%lld "
              "nonconverged=%llu\n",
              static_cast<unsigned long long>(stats.num_svdd_trainings),
              static_cast<long long>(stats.smo_iterations),
              static_cast<long long>(stats.max_smo_iterations),
              static_cast<unsigned long long>(stats.num_nonconverged_solves));
  if (stats.num_budget_merges > 0 || stats.num_budget_forgets > 0 ||
      stats.num_sampled_solves > 0) {
    std::printf("budget: merges=%llu forgets=%llu sampled_solves=%llu\n",
                static_cast<unsigned long long>(stats.num_budget_merges),
                static_cast<unsigned long long>(stats.num_budget_forgets),
                static_cast<unsigned long long>(stats.num_sampled_solves));
  }
}

/// `fit`: cluster with DBSVEC, persist the model, report its summary.
int RunFitCommand(const cli::CliOptions& options) {
  Dataset dataset(1);
  if (const Status status = cli::LoadInput(options, &dataset);
      !status.ok()) {
    std::fprintf(stderr, "input: %s\n", status.ToString().c_str());
    return 1;
  }
  Clustering result;
  DbsvecModel model;
  Stopwatch timer;
  if (const Status status =
          cli::RunFit(options, &dataset, &result, &model);
      !status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("fit: DBSVEC on %d points (d=%d), eps=%.4g, MinPts=%d\n",
              dataset.size(), dataset.dim(), model.epsilon, model.min_pts);
  std::printf("clusters=%d noise=%d time=%.3fs\n", result.num_clusters,
              result.CountNoise(), timer.ElapsedSeconds());
  PrintSolverStats(result.stats);
  PrintDegradedStats(result.stats);
  uint32_t model_crc = 0;
  if (const Status status = ModelPayloadCrc(model, &model_crc);
      !status.ok()) {
    std::fprintf(stderr, "model crc: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("model: core_points=%d (%d core-SVs) spheres=%zu version=%u "
              "crc=%08x -> %s\n",
              model.core_points.size(),
              static_cast<int>(std::count(model.core_is_sv.begin(),
                                          model.core_is_sv.end(), 1)),
              model.spheres.size(), DbsvecModel::kFormatVersion, model_crc,
              options.model_out_path.c_str());
  if (!options.output_path.empty()) {
    if (const Status status =
            WriteCsv(dataset, result.labels, options.output_path);
        !status.ok()) {
      std::fprintf(stderr, "output: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("labelled points written to %s\n",
                options.output_path.c_str());
  }
  return 0;
}

/// `assign`: load a model, stream the input points through it.
int RunAssignCommand(const cli::CliOptions& options) {
  Dataset points(1);
  std::vector<int32_t> labels;
  Stopwatch timer;
  if (const Status status = cli::RunAssign(options, &points, &labels);
      !status.ok()) {
    std::fprintf(stderr, "assign: %s\n", status.ToString().c_str());
    return 1;
  }
  const double elapsed = timer.ElapsedSeconds();
  int32_t noise = 0;
  for (const int32_t label : labels) {
    noise += label < 0 ? 1 : 0;
  }
  std::printf("assign: %d points from %s, noise=%d time=%.3fs "
              "(%.0f points/s)\n",
              points.size(), options.input_path.c_str(), noise, elapsed,
              elapsed > 0.0 ? points.size() / elapsed : 0.0);
  if (!options.output_path.empty()) {
    if (const Status status =
            WriteCsv(points, labels, options.output_path);
        !status.ok()) {
      std::fprintf(stderr, "output: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("labelled points written to %s\n",
                options.output_path.c_str());
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

/// `serve`: load a model (with crash recovery in durable mode), serve it
/// over HTTP until SIGTERM/SIGINT, then drain and shut down cleanly.
int RunServeCommand(const cli::CliOptions& options) {
  AssignmentOptions engine_options;
  engine_options.index = options.index;
  engine_options.shards = options.shards;
  engine_options.online_refresh = options.serve_refresh;

  server::DurabilityOptions durability;
  durability.enabled = options.serve_durable;
  durability.fsync = options.fsync_policy;
  durability.fsync_interval_ms = options.fsync_interval_ms;
  durability.checkpoint_interval_ms = options.checkpoint_interval_ms;

  const bool registry_mode = !options.serve_data_dir.empty();
  std::shared_ptr<AssignmentEngine> engine;
  std::shared_ptr<OverlayJournal> journal;
  server::RecoveryReport recovery;
  if (!registry_mode) {
    durability.snapshot_path = options.snapshot_path;
    durability.journal_path = options.journal_path;
    server::ResolveDurabilityPaths(options.model_path, &durability);

    // Startup goes through RecoverEngine even without --durable: transient
    // I/O errors while loading the model retry with backoff instead of
    // failing the process.
    std::unique_ptr<AssignmentEngine> loaded;
    if (const Status status = server::RecoverEngine(
            options.model_path, durability, engine_options,
            server::RetryOptions(), &loaded, &journal, &recovery);
        !status.ok()) {
      std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
      return 1;
    }
    engine = std::move(loaded);
  }
  // In registry mode the server recovers every model under the data dir
  // itself (per-model snapshot + journal); --model only seeds `default`
  // after startup, below.

  server::ServerOptions server_options;
  server_options.host = options.serve_host;
  server_options.port = options.serve_port;
  server_options.num_io_threads = options.serve_io_threads;
  server_options.num_workers = options.serve_workers;
  server_options.max_inflight = options.serve_max_inflight;
  server_options.default_deadline_ms = options.serve_default_deadline_ms;
  server_options.engine_options = engine_options;
  server_options.online_refresh = options.serve_refresh;
  server_options.durability = durability;
  server_options.journal = journal;
  server_options.recovery = recovery;
  server_options.data_dir = options.serve_data_dir;
  server_options.max_models = options.serve_max_models;
  server_options.model_max_inflight = options.serve_model_max_inflight;
  std::unique_ptr<server::Server> server;
  if (const Status status =
          server::Server::Start(engine, server_options, &server);
      !status.ok()) {
    std::fprintf(stderr, "serve: %s\n", status.ToString().c_str());
    return 1;
  }
  if (registry_mode) {
    const registry::RegistryRecoveryReport& recovered =
        server->registry_recovery();
    if (!options.model_path.empty() &&
        server->registry().Find("default") == nullptr) {
      // Seed-once: import the artifact as `default`; a restart recovers it
      // from the data dir instead, so re-running the same command is safe.
      if (const Status status = server->registry().CreateFromFile(
              "default", options.model_path);
          !status.ok()) {
        std::fprintf(stderr, "serve: seed default model: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    std::printf("serve: registry data-dir=%s models=%zu "
                "(recovered=%d failed=%d) max-models=%d%s\n",
                options.serve_data_dir.c_str(), server->registry().size(),
                recovered.recovered, recovered.failed,
                options.serve_max_models,
                options.serve_durable ? " durable" : "");
    for (const std::string& failed : recovered.failed_names) {
      std::fprintf(stderr, "serve: model '%s' failed recovery, skipped\n",
                   failed.c_str());
    }
  } else {
    std::printf("serve: model=%s version=%u crc=%08x\n",
                options.model_path.c_str(), engine->model_version(),
                engine->model_crc());
  }
  if (options.serve_durable && !registry_mode) {
    std::printf("serve: durable snapshot=%s journal=%s fsync=%s "
                "(recovered: from_snapshot=%d replayed=%llu "
                "torn_bytes=%llu discarded=%llu)\n",
                durability.snapshot_path.c_str(),
                durability.journal_path.c_str(),
                FsyncPolicyName(durability.fsync),
                recovery.loaded_from_snapshot ? 1 : 0,
                static_cast<unsigned long long>(recovery.records_replayed),
                static_cast<unsigned long long>(
                    recovery.torn_bytes_truncated),
                static_cast<unsigned long long>(
                    recovery.journals_discarded));
  }
  std::printf("serve: listening on %s:%d (io=%d workers=%d inflight<=%d%s)\n",
              server_options.host.c_str(), server->port(),
              server_options.num_io_threads, server_options.num_workers,
              server_options.max_inflight,
              options.serve_refresh ? " refresh=on" : "");
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("serve: stop signal received, draining\n");
  server->Shutdown();
  const server::ServerStats& stats = server->stats();
  std::printf("serve: shut down cleanly (requests=%llu assigned=%llu "
              "shed=%llu deadline_hits=%llu)\n",
              static_cast<unsigned long long>(stats.requests_total.load()),
              static_cast<unsigned long long>(stats.points_assigned.load()),
              static_cast<unsigned long long>(stats.requests_shed.load()),
              static_cast<unsigned long long>(
                  stats.num_deadline_hits.load()));
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  cli::CliOptions options;
  if (const Status status = cli::ParseCliOptions(args, &options);
      !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 cli::HelpText().c_str());
    return 2;
  }
  if (options.show_help) {
    std::printf("%s", cli::HelpText().c_str());
    return 0;
  }
  SetGlobalThreads(options.threads);
  if (options.cache_mb >= 0) {
    // Explicit flag overrides DBSVEC_CACHE_MB; unset (-1) lets Global()
    // read the environment on first use.
    cache::CacheManager::SetGlobalLimitBytes(
        static_cast<size_t>(options.cache_mb) << 20);
  }
  if (!options.failpoints.empty()) {
    if (const Status status =
            FailpointRegistry::Instance().ArmSpec(options.failpoints);
        !status.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  if (options.command == cli::Command::kFit) {
    return RunFitCommand(options);
  }
  if (options.command == cli::Command::kAssign) {
    return RunAssignCommand(options);
  }
  if (options.command == cli::Command::kServe) {
    return RunServeCommand(options);
  }

  Dataset dataset(1);
  if (const Status status = cli::LoadInput(options, &dataset);
      !status.ok()) {
    std::fprintf(stderr, "input: %s\n", status.ToString().c_str());
    return 1;
  }
  const double epsilon = cli::ResolveEpsilon(options, dataset);
  std::printf("%s on %d points (d=%d), eps=%.4g, MinPts=%d\n",
              cli::AlgorithmName(options.algorithm), dataset.size(),
              dataset.dim(), epsilon, options.min_pts);

  Clustering result;
  if (const Status status =
          cli::RunAlgorithm(options, dataset, epsilon, &result);
      !status.ok()) {
    std::fprintf(stderr, "clustering: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("clusters=%d noise=%d time=%.3fs range_queries=%llu "
              "distance_computations=%llu\n",
              result.num_clusters, result.CountNoise(),
              result.stats.elapsed_seconds,
              static_cast<unsigned long long>(
                  result.stats.num_range_queries),
              static_cast<unsigned long long>(
                  result.stats.num_distance_computations));
  if (result.stats.num_svdd_trainings > 0) {
    std::printf("svdd_trainings=%llu support_vectors=%llu merges=%llu\n",
                static_cast<unsigned long long>(
                    result.stats.num_svdd_trainings),
                static_cast<unsigned long long>(
                    result.stats.num_support_vectors),
                static_cast<unsigned long long>(result.stats.num_merges));
  }
  PrintSolverStats(result.stats);
  PrintDegradedStats(result.stats);

  if (options.compare_dbscan) {
    DbscanParams exact;
    exact.epsilon = epsilon;
    exact.min_pts = options.min_pts;
    Clustering reference;
    if (const Status status = RunDbscan(dataset, exact, &reference);
        status.ok()) {
      std::printf("vs exact DBSCAN: recall=%.4f precision=%.4f "
                  "(dbscan: clusters=%d noise=%d time=%.3fs)\n",
                  PairRecall(reference.labels, result.labels),
                  PairPrecision(reference.labels, result.labels),
                  reference.num_clusters, reference.CountNoise(),
                  reference.stats.elapsed_seconds);
    } else {
      std::fprintf(stderr, "compare: %s\n", status.ToString().c_str());
    }
  }

  if (!options.output_path.empty()) {
    if (const Status status =
            WriteCsv(dataset, result.labels, options.output_path);
        !status.ok()) {
      std::fprintf(stderr, "output: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("labelled points written to %s\n",
                options.output_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
