// dbsvec_client — load generator and smoke client for the dbsvec serving
// endpoint (docs/SERVING.md). Four modes:
//
//   --mode=assign  (default) fire --requests batched assign calls of
//                  --batch points each from --threads connections; points
//                  come from --input=FILE.csv or a seeded generator.
//   --mode=health  one GET /v1/healthz.
//   --mode=statz   one GET /v1/statz (prints the JSON).
//   --mode=reload  one POST reload with --reload-model=PATH.
//   --mode=create  one PUT /v1/models/<--model> (requires --model;
//                  --model-path=PATH registers a server-side artifact,
//                  --upload=FILE uploads the artifact bytes).
//   --mode=delete  one DELETE /v1/models/<--model>.
//   --mode=models  one GET /v1/models (prints the JSON).
//
// Multi-tenant targeting: --model=NAME routes assign/reload/snapshot
// through /v1/models/NAME/...; --models=a,b,c makes assign mode drive all
// the named tenants round-robin (request r goes to model r mod N).
// --stream switches assign mode to the streaming protocol: each request
// becomes one application/x-dbsvec-stream body of --frames frames of
// --batch points, answered as chunked per-frame labels.
//
// --deadline-ms sets the X-Deadline-Ms header on assign requests;
// --binary switches the assign payload to application/octet-stream.
// --expect-status=N makes the exit code demand at least one response with
// that HTTP status (e.g. 504 for a deadline smoke, 503 for shed smoke);
// without it, assign mode demands at least one 200 and zero transport
// errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/status.h"
#include "server/http_client.h"
#include "server/payload.h"

namespace dbsvec {
namespace {

struct ClientOptions {
  std::string mode = "assign";
  std::string host = "127.0.0.1";
  int port = 8080;
  int requests = 100;
  int batch = 64;
  int dim = 8;
  int threads = 1;
  int64_t deadline_ms = 0;
  bool binary = false;
  uint64_t seed = 7;
  std::string input_path;
  std::string reload_model;
  int expect_status = 0;
  bool quiet = false;
  /// Model routing: `model` scopes requests to /v1/models/<model>/...;
  /// `models` (comma-separated) round-robins assign traffic across
  /// tenants. Empty both => the legacy unnamed routes (`default`).
  std::string model;
  std::string models;
  std::string model_path;   ///< create: server-side artifact path.
  std::string upload_path;  ///< create: local artifact to upload.
  bool stream = false;      ///< assign: streaming protocol.
  int frames = 4;           ///< stream: frames per streaming request.
  /// assign mode: sequentially assign every input point (one thread, in
  /// file order, JSON) and write one label per line here — the
  /// crash-recovery harness diffs these dumps for bit-identity.
  std::string labels_out;
};

bool ParseFlag(const std::string& arg, std::string* key, std::string* value) {
  if (arg.rfind("--", 0) != 0) {
    return false;
  }
  const size_t eq = arg.find('=');
  *key = eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
  *value = eq == std::string::npos ? "" : arg.substr(eq + 1);
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "dbsvec_client --mode=assign|health|statz|reload|create|delete|models\n"
      "              [--host=ADDR] [--port=N] [--model=NAME]\n"
      "  assign: --requests=N --batch=N --threads=N --dim=D [--seed=N]\n"
      "          [--input=FILE.csv] [--deadline-ms=N] [--binary]\n"
      "          [--models=a,b,c]     round-robin across named tenants\n"
      "          [--stream --frames=N] streaming protocol, N frames/request\n"
      "          [--expect-status=N] [--quiet]\n"
      "          [--labels-out=FILE]  dump every point's label, one per\n"
      "                               line, in input order (single-threaded\n"
      "                               sweep; for bit-identity checks)\n"
      "  reload: --reload-model=PATH\n"
      "  create: --model=NAME + --model-path=PATH (server-side file) or\n"
      "          --upload=FILE (send artifact bytes)\n"
      "  delete: --model=NAME\n");
  return 2;
}

/// The assign route for one tenant ("" => legacy unnamed route).
std::string AssignTarget(const std::string& model) {
  return model.empty() ? "/v1/assign" : "/v1/models/" + model + "/assign";
}

/// Splits "a,b,c"; an empty spec yields {""} (the legacy route).
std::vector<std::string> SplitModels(const ClientOptions& options) {
  std::vector<std::string> out;
  std::string spec = options.models.empty() ? options.model : options.models;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    out.push_back(spec.substr(begin, comma - begin));
    begin = comma + 1;
  }
  if (out.empty()) {
    out.push_back("");
  }
  return out;
}

/// Shared outcome counters across driver threads.
struct Tally {
  std::mutex mutex;
  std::map<int, int> status_counts;  // HTTP status -> responses.
  int transport_errors = 0;
  std::vector<double> latencies_ms;
  std::string first_error;
};

std::string BuildAssignBody(const Dataset& points, int begin, int count,
                            bool binary) {
  if (binary) {
    std::string body;
    const uint32_t n = static_cast<uint32_t>(count);
    const uint32_t dim = static_cast<uint32_t>(points.dim());
    const auto put_u32 = [&body](uint32_t v) {
      for (int b = 0; b < 4; ++b) {
        body.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
      }
    };
    put_u32(n);
    put_u32(dim);
    for (int i = 0; i < count; ++i) {
      const auto point = points.point(begin + i);
      for (const double x : point) {
        uint64_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
          body.push_back(static_cast<char>((bits >> (8 * b)) & 0xff));
        }
      }
    }
    return body;
  }
  std::string body = "{\"points\":[";
  char buffer[64];
  for (int i = 0; i < count; ++i) {
    if (i > 0) {
      body += ",";
    }
    body += "[";
    const auto point = points.point(begin + i);
    for (size_t d = 0; d < point.size(); ++d) {
      if (d > 0) {
        body += ",";
      }
      std::snprintf(buffer, sizeof(buffer), "%.17g", point[d]);
      body += buffer;
    }
    body += "]";
  }
  body += "]}";
  return body;
}

void AssignWorker(const ClientOptions& options, const Dataset& points,
                  int thread_id, int num_requests, Tally* tally) {
  server::HttpClient client;
  if (const Status status = client.Connect(options.host, options.port);
      !status.ok()) {
    std::lock_guard<std::mutex> lock(tally->mutex);
    tally->transport_errors += num_requests;
    if (tally->first_error.empty()) {
      tally->first_error = status.ToString();
    }
    return;
  }
  Rng rng(options.seed + 1000 + static_cast<uint64_t>(thread_id));
  std::vector<std::string> extra;
  if (options.deadline_ms > 0) {
    extra.push_back("X-Deadline-Ms: " + std::to_string(options.deadline_ms));
  }
  const char* content_type =
      options.binary ? "application/octet-stream" : "application/json";
  const std::vector<std::string> tenants = SplitModels(options);
  for (int r = 0; r < num_requests; ++r) {
    const int max_begin = points.size() - options.batch;
    const int begin =
        max_begin > 0
            ? static_cast<int>(rng.NextBounded(
                  static_cast<uint64_t>(max_begin) + 1))
            : 0;
    const int count = std::min(options.batch, static_cast<int>(points.size()));
    // Round-robin across tenants so N models see interleaved, not phased,
    // traffic from every driver thread.
    const std::string target = AssignTarget(
        tenants[static_cast<size_t>(r) % tenants.size()]);
    server::HttpResponse response;
    Status status;
    const auto start = std::chrono::steady_clock::now();
    if (options.stream) {
      std::vector<std::string> frames;
      frames.reserve(static_cast<size_t>(options.frames));
      for (int f = 0; f < options.frames; ++f) {
        frames.push_back(
            BuildAssignBody(points, begin, count, /*binary=*/true));
      }
      std::vector<std::string> chunks;
      status = client.StreamingRoundtrip(target, frames, &chunks, &response);
      if (status.ok() && response.status_code == 0) {
        response.status_code = 200;  // All frames answered, chunked.
      }
    } else {
      const std::string body =
          BuildAssignBody(points, begin, count, options.binary);
      status = client.Roundtrip("POST", target, content_type, body, extra,
                                &response);
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!status.ok()) {
      // One reconnect per failure: the server closes connections on
      // protocol errors and teardown races are expected under load.
      client.Connect(options.host, options.port);
      std::lock_guard<std::mutex> lock(tally->mutex);
      ++tally->transport_errors;
      if (tally->first_error.empty()) {
        tally->first_error = status.ToString();
      }
      continue;
    }
    std::lock_guard<std::mutex> lock(tally->mutex);
    ++tally->status_counts[response.status_code];
    tally->latencies_ms.push_back(elapsed_ms);
  }
}

/// Parses the JSON assign response body {"labels":[l0,l1,...]}.
bool ParseLabelsJson(const std::string& body, std::vector<long>* labels) {
  const size_t key = body.find("\"labels\"");
  const size_t open = key == std::string::npos ? key : body.find('[', key);
  if (open == std::string::npos) {
    return false;
  }
  labels->clear();
  const char* p = body.c_str() + open + 1;
  while (*p != '\0' && *p != ']') {
    char* end = nullptr;
    const long value = std::strtol(p, &end, 10);
    if (end == p) {
      return false;
    }
    labels->push_back(value);
    p = end;
    while (*p == ',' || *p == ' ') {
      ++p;
    }
  }
  return *p == ']';
}

/// --labels-out: one connection, batches in input order from offset 0, one
/// label per line. Deterministic given a quiescent server, so two dumps
/// over the same engine state diff clean.
int RunLabelsDump(const ClientOptions& options, const Dataset& points) {
  server::HttpClient client;
  if (const Status status = client.Connect(options.host, options.port);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::FILE* out = std::fopen(options.labels_out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", options.labels_out.c_str());
    return 1;
  }
  std::vector<long> labels;
  int written = 0;
  for (int begin = 0; begin < points.size();
       begin += options.batch) {
    const int count =
        std::min(options.batch, static_cast<int>(points.size()) - begin);
    const std::string body =
        BuildAssignBody(points, begin, count, /*binary=*/false);
    server::HttpResponse response;
    const Status status =
        client.Roundtrip("POST", AssignTarget(options.model),
                         "application/json", body, {}, &response);
    if (!status.ok() || response.status_code != 200 ||
        !ParseLabelsJson(response.body, &labels) ||
        labels.size() != static_cast<size_t>(count)) {
      std::fprintf(stderr, "labels dump failed at offset %d: %s (http %d)\n",
                   begin, status.ToString().c_str(), response.status_code);
      std::fclose(out);
      return 1;
    }
    for (const long label : labels) {
      std::fprintf(out, "%ld\n", label);
      ++written;
    }
  }
  std::fclose(out);
  if (!options.quiet) {
    std::printf("labels: %d written to %s\n", written,
                options.labels_out.c_str());
  }
  return 0;
}

int RunAssign(const ClientOptions& options) {
  Dataset points(options.dim);
  if (!options.input_path.empty()) {
    points = Dataset(1);
    if (const Status status =
            ReadCsv(options.input_path, /*last_column_is_label=*/false,
                    &points, nullptr);
        !status.ok()) {
      std::fprintf(stderr, "input: %s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    // Seeded synthetic queries: clustered around a handful of centers so a
    // realistic mix of in-cluster and noise assignments is exercised.
    Rng rng(options.seed);
    const int num_centers = 8;
    std::vector<double> centers(
        static_cast<size_t>(num_centers) * options.dim);
    for (double& c : centers) {
      c = rng.Uniform(-10.0, 10.0);
    }
    const int n = std::max(options.batch * 8, 1024);
    std::vector<double> point(options.dim);
    for (int i = 0; i < n; ++i) {
      const int center = static_cast<int>(rng.NextBounded(num_centers));
      for (int d = 0; d < options.dim; ++d) {
        point[d] = centers[static_cast<size_t>(center) * options.dim + d] +
                   rng.Gaussian(0.0, 0.5);
      }
      points.Append(point);
    }
  }
  if (points.size() == 0) {
    std::fprintf(stderr, "no points to assign\n");
    return 1;
  }
  if (!options.labels_out.empty()) {
    return RunLabelsDump(options, points);
  }

  Tally tally;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  const int per_thread = options.requests / std::max(1, options.threads);
  const int remainder = options.requests % std::max(1, options.threads);
  for (int t = 0; t < options.threads; ++t) {
    const int count = per_thread + (t < remainder ? 1 : 0);
    if (count == 0) {
      continue;
    }
    threads.emplace_back(AssignWorker, std::cref(options), std::cref(points),
                         t, count, &tally);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  const auto percentile = [&tally](double p) {
    if (tally.latencies_ms.empty()) {
      return 0.0;
    }
    const size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(tally.latencies_ms.size() - 1));
    return tally.latencies_ms[rank];
  };
  int total_responses = 0;
  std::string status_summary;
  for (const auto& [code, count] : tally.status_counts) {
    total_responses += count;
    status_summary +=
        " " + std::to_string(code) + "=" + std::to_string(count);
  }
  if (!options.quiet) {
    std::printf("assign: %d responses in %.3fs (%.0f req/s, %.0f points/s)\n",
                total_responses, elapsed_s,
                elapsed_s > 0 ? total_responses / elapsed_s : 0.0,
                elapsed_s > 0
                    ? total_responses / elapsed_s * options.batch
                    : 0.0);
    std::printf("status:%s transport_errors=%d\n", status_summary.c_str(),
                tally.transport_errors);
    std::printf("latency_ms: p50=%.3f p99=%.3f max=%.3f\n", percentile(50),
                percentile(99),
                tally.latencies_ms.empty() ? 0.0
                                           : tally.latencies_ms.back());
  }
  if (!tally.first_error.empty() && !options.quiet) {
    std::fprintf(stderr, "first transport error: %s\n",
                 tally.first_error.c_str());
  }
  if (options.expect_status != 0) {
    if (tally.status_counts[options.expect_status] == 0) {
      std::fprintf(stderr, "expected at least one %d response, got none\n",
                   options.expect_status);
      return 1;
    }
    return 0;
  }
  if (tally.status_counts[200] == 0 || tally.transport_errors > 0) {
    return 1;
  }
  return 0;
}

int RunSimple(const ClientOptions& options) {
  server::HttpClient client;
  if (const Status status = client.Connect(options.host, options.port);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  server::HttpResponse response;
  Status status;
  if (options.mode == "health") {
    status = client.Roundtrip("GET", "/v1/healthz", "", "", {}, &response);
  } else if (options.mode == "statz") {
    status = client.Roundtrip("GET", "/v1/statz", "", "", {}, &response);
  } else if (options.mode == "models") {
    status = client.Roundtrip("GET", "/v1/models", "", "", {}, &response);
  } else if (options.mode == "create") {
    if (options.model.empty()) {
      std::fprintf(stderr, "create mode requires --model=NAME\n");
      return 2;
    }
    const std::string target = "/v1/models/" + options.model;
    if (!options.upload_path.empty()) {
      // Create-from-upload: the PUT body is the raw artifact.
      std::FILE* in = std::fopen(options.upload_path.c_str(), "rb");
      if (in == nullptr) {
        std::fprintf(stderr, "cannot open %s\n",
                     options.upload_path.c_str());
        return 1;
      }
      std::string bytes;
      char buffer[64 * 1024];
      size_t n;
      while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
        bytes.append(buffer, n);
      }
      std::fclose(in);
      status = client.Roundtrip("PUT", target, "application/octet-stream",
                                bytes, {}, &response);
    } else if (!options.model_path.empty()) {
      status = client.Roundtrip(
          "PUT", target, "application/json",
          "{\"path\": \"" + options.model_path + "\"}", {}, &response);
    } else {
      std::fprintf(stderr,
                   "create mode requires --model-path=PATH or "
                   "--upload=FILE\n");
      return 2;
    }
  } else if (options.mode == "delete") {
    if (options.model.empty()) {
      std::fprintf(stderr, "delete mode requires --model=NAME\n");
      return 2;
    }
    status = client.Roundtrip("DELETE", "/v1/models/" + options.model, "",
                              "", {}, &response);
  } else {  // reload
    if (options.reload_model.empty()) {
      std::fprintf(stderr, "reload mode requires --reload-model=PATH\n");
      return 2;
    }
    std::vector<std::string> extra;
    if (options.deadline_ms > 0) {
      extra.push_back("X-Deadline-Ms: " +
                      std::to_string(options.deadline_ms));
    }
    const std::string target =
        options.model.empty() ? "/v1/reload"
                              : "/v1/models/" + options.model + "/reload";
    status = client.Roundtrip(
        "POST", target, "application/json",
        "{\"path\": \"" + options.reload_model + "\"}", extra, &response);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%d %s\n", response.status_code, response.body.c_str());
  if (options.expect_status != 0) {
    return response.status_code == options.expect_status ? 0 : 1;
  }
  return response.status_code == 200 || response.status_code == 201 ? 0 : 1;
}

int Main(int argc, char** argv) {
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string key;
    std::string value;
    if (!ParseFlag(argv[i], &key, &value)) {
      return Usage();
    }
    if (key == "mode") {
      options.mode = value;
    } else if (key == "host") {
      options.host = value;
    } else if (key == "port") {
      options.port = std::atoi(value.c_str());
    } else if (key == "requests") {
      options.requests = std::atoi(value.c_str());
    } else if (key == "batch") {
      options.batch = std::atoi(value.c_str());
    } else if (key == "dim") {
      options.dim = std::atoi(value.c_str());
    } else if (key == "threads") {
      options.threads = std::atoi(value.c_str());
    } else if (key == "deadline-ms") {
      options.deadline_ms = std::atoll(value.c_str());
    } else if (key == "binary") {
      options.binary = value != "0" && value != "false";
    } else if (key == "seed") {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (key == "input") {
      options.input_path = value;
    } else if (key == "reload-model") {
      options.reload_model = value;
    } else if (key == "model") {
      options.model = value;
    } else if (key == "models") {
      options.models = value;
    } else if (key == "model-path") {
      options.model_path = value;
    } else if (key == "upload") {
      options.upload_path = value;
    } else if (key == "stream") {
      options.stream = value != "0" && value != "false";
    } else if (key == "frames") {
      options.frames = std::atoi(value.c_str());
    } else if (key == "labels-out") {
      options.labels_out = value;
    } else if (key == "expect-status") {
      options.expect_status = std::atoi(value.c_str());
    } else if (key == "quiet") {
      options.quiet = value != "0" && value != "false";
    } else if (key == "help") {
      Usage();
      return 0;
    } else {
      return Usage();
    }
  }
  if (options.port <= 0 || options.requests < 0 || options.batch <= 0 ||
      options.dim <= 0 || options.threads <= 0 || options.frames <= 0) {
    return Usage();
  }
  if (options.mode == "assign") {
    return RunAssign(options);
  }
  if (options.mode == "health" || options.mode == "statz" ||
      options.mode == "reload" || options.mode == "create" ||
      options.mode == "delete" || options.mode == "models") {
    return RunSimple(options);
  }
  return Usage();
}

}  // namespace
}  // namespace dbsvec

int main(int argc, char** argv) { return dbsvec::Main(argc, argv); }
