#!/usr/bin/env bash
# CI entry point: Release build + full test suite (run twice: once with the
# best SIMD backend, once with DBSVEC_SIMD=off so the scalar fallback stays
# green), a ThreadSanitizer build running the concurrency-sensitive tests,
# an AddressSanitizer build running the model-format, serving, fault, and
# SIMD agreement tests (malformed model files must fail with a Status, never
# with memory errors; the SoA block views must never read out of bounds),
# an UndefinedBehaviorSanitizer build over the same set, a
# DBSVEC_FAILPOINTS sweep driving the CLI end-to-end under ASan with every
# failpoint site armed via the environment (docs/ROBUSTNESS.md), and a
# serve smoke leg: the ASan server with a delay failpoint armed takes
# client traffic (JSON + binary assign, reload, an expect-504 deadline
# probe) and must drain cleanly on SIGTERM (docs/SERVING.md). A
# crash-recovery harness SIGKILLs a durable server (quiesced and
# mid-absorb) and asserts label bit-identity after restart, followed by a
# torn-journal truncation fuzz through the offline recovery oracle
# (docs/ROBUSTNESS.md). The multi-tenant registry gets three legs of its
# own: a TSan churn run (concurrent create/delete/reload/assign against
# named models), an ASan registry harness that creates three tenants over
# REST, SIGKILLs the server, and asserts per-model label bit-identity
# after recovery, and a registry.create / registry.recover failpoint
# sweep through the CLI (docs/SERVING.md).
# Run from anywhere; builds land in <repo>/build-ci-{release,tsan,asan,ubsan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== Release build + full ctest ==="
cmake -S "${repo}" -B "${repo}/build-ci-release" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${repo}/build-ci-release" -j "${jobs}"
ctest --test-dir "${repo}/build-ci-release" --output-on-failure -j "${jobs}"

echo "=== Release ctest with the scalar SIMD fallback (DBSVEC_SIMD=off) ==="
DBSVEC_SIMD=off \
  ctest --test-dir "${repo}/build-ci-release" --output-on-failure -j "${jobs}"

echo "=== Release ctest with the AVX-512 backend forced (DBSVEC_SIMD=avx512) ==="
# Forcing avx512 on a host without AVX-512F would just warn and fall back
# to auto-detect, re-running the first leg — skip it honestly instead.
if grep -q avx512f /proc/cpuinfo 2>/dev/null; then
  DBSVEC_SIMD=avx512 \
    ctest --test-dir "${repo}/build-ci-release" --output-on-failure \
    -j "${jobs}"
else
  echo "skipped: this host has no AVX-512F (the forced-avx512 leg needs it)"
fi

echo "=== bench_budget smoke: bounded-cost SVDD sweep stays sane ==="
# Seconds, not minutes: a tiny (B, S) sweep proving the budgeted and
# sampled paths fit, agree with the exact labels, and emit their JSON.
# No speedup requirement at this size (--min-speedup stays 0).
cmake --build "${repo}/build-ci-release" -j "${jobs}" --target bench_budget
"${repo}/build-ci-release/bench/bench_budget" --smoke \
  --out="${repo}/build-ci-release/BENCH_budget_smoke.json"

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=thread \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-tsan" -j "${jobs}" --target dbsvec_tests
# Determinism + thread-pool tests force an 8-thread pool, so they exercise
# every parallel section under TSan even on small machines — including the
# DeterminismTest.Sharded* sweep, which runs the sharded execution engine
# (per-shard fan-out + deterministic merge) at shards up to 7 with 8
# workers. The server reload-under-load test hammers /v1/assign from 8
# connections while the model pointer swaps, so the RCU handoff is
# race-checked too.
ctest --test-dir "${repo}/build-ci-tsan" --output-on-failure -j "${jobs}" \
  -R 'Determinism|ThreadPool|ServerTest.ReloadUnderLoad|DurableServer'

echo "=== TSan sharded fit through the CLI (shards=4, threads=8) ==="
# One end-to-end sharded fit under TSan via the real CLI entry point: the
# grouped shard-affine fan-out, worker pinning, and the sorted merge all
# race-checked in one shot.
cmake --build "${repo}/build-ci-tsan" -j "${jobs}" --target dbsvec_cli
"${repo}/build-ci-tsan/tools/dbsvec_cli" \
  --demo=blobs --demo-n=2000 --demo-dim=4 --minpts=10 \
  --shards=4 --threads=8

echo "=== TSan cache manager: concurrent fit + serve on a small budget ==="
# The Cache* tests hammer the budgeted manager from many threads —
# Reserve/Release races, rebalances shifting shares mid-reservation, the
# shared row store feeding concurrent solves, and the serving query cache
# under concurrent AssignBatch traffic. A CLI fit at a deliberately tiny
# --cache-mb race-checks the eviction/fallback paths end to end.
ctest --test-dir "${repo}/build-ci-tsan" --output-on-failure -j "${jobs}" \
  -R 'Cache'
"${repo}/build-ci-tsan/tools/dbsvec_cli" \
  --demo=blobs --demo-n=2000 --demo-dim=4 --minpts=10 \
  --cache-mb=1 --threads=8

echo "=== TSan registry churn: concurrent create/delete/reload/assign ==="
# Four client threads hammer one registry server with model creates,
# deletes, reloads, and assigns (plus streaming bodies and a
# delete-while-assigning race), so the registry's admin lock, the RCU
# engine handoff, and the per-model in-flight pin are all race-checked.
ctest --test-dir "${repo}/build-ci-tsan" --output-on-failure -j "${jobs}" \
  -R 'RegistryServerTest.ConcurrentCreateDeleteReloadAssignChurn|RegistryServerTest.InFlightAssignFinishesOnItsEngineAcrossDelete|RegistryServerTest.StreamingAssignProcessesBodiesPastTheCap'

echo "=== AddressSanitizer build + model/serving tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=address \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-asan" -j "${jobs}" --target dbsvec_tests \
  --target dbsvec_cli --target dbsvec_client
# The model tests fuzz truncations and bit flips of the binary format;
# under ASan any out-of-bounds parse becomes a hard failure. The SIMD
# agreement tests sweep every remainder-lane shape, so a kernel touching
# block padding it shouldn't would trip ASan here. The fault tests arm
# every failpoint site through the full fit/save/load/assign pipeline, so
# every injected failure path is leak- and overflow-checked too.
ctest --test-dir "${repo}/build-ci-asan" --output-on-failure -j "${jobs}" \
  -R 'Model|Serve|Cli|Simd|Fault|Budget|Durab|Journal'

echo "=== ASan budget sweep through the CLI (--sv-budget 0/16/128) ==="
# The bounded-cost SVDD path (docs/PERFORMANCE.md) exercised end to end
# under ASan: the exact solver (budget 0), a merge-heavy tiny budget, and
# a comfortable budget, each with the boundary-preserving sampler armed.
# The budgeted solver's merge/projection arithmetic and the sampler's
# re-check walk are exactly the kind of index-juggling ASan is for.
for budget in 0 16 128; do
  "${repo}/build-ci-asan/tools/dbsvec_cli" \
    --demo=blobs --demo-n=2000 --demo-dim=2 --minpts=10 \
    --sv-budget="${budget}" --sample-threshold=128
done

echo "=== DBSVEC_FAILPOINTS env sweep through the CLI (under ASan) ==="
# The env-var arming path is only reachable at process start, so it gets
# its own leg: each run arms one site via DBSVEC_FAILPOINTS and must exit
# either cleanly (degraded sites) or with the CLI's error exit code 1 —
# never a crash (ASan would turn memory errors into non-{0,1} exits).
cli="${repo}/build-ci-asan/tools/dbsvec_cli"
sweep_dir="$(mktemp -d)"
trap 'rm -rf "${sweep_dir}"' EXIT
"${cli}" fit --demo=blobs --demo-n=400 --demo-dim=2 --minpts=5 \
  --model-out="${sweep_dir}/model.bin" --output="${sweep_dir}/labeled.csv"
# fit --output appends the label column; strip it to get assign input, and
# prove the healthy assign works before sweeping failures through it.
cut -d, -f1-2 "${sweep_dir}/labeled.csv" > "${sweep_dir}/points.csv"
"${cli}" assign --model="${sweep_dir}/model.bin" \
  --input="${sweep_dir}/points.csv"
# site:expected-exit — injected failures on the fit path exit 1 with a
# clean error, while solver-layer failures degrade to exact expansion and
# the fit still succeeds (exit 0).
for entry in index.build:1 model.save:1 \
             kernel_cache.materialize:0 smo.solve:0 svdd.train:0; do
  site="${entry%:*}"
  expected="${entry#*:}"
  echo "--- fit with ${site}:error armed (expect exit ${expected}) ---"
  DBSVEC_FAILPOINTS="${site}:error" \
    "${cli}" fit --demo=blobs --demo-n=400 --demo-dim=2 --minpts=5 \
      --model-out="${sweep_dir}/model-armed.bin" && status=0 || status=$?
  if [ "${status}" -ne "${expected}" ]; then
    echo "fit sweep: ${site} exited ${status}, expected ${expected}" >&2
    exit 1
  fi
done
for site in csv.read model.load assign.batch thread_pool.task; do
  echo "--- assign with ${site}:error armed ---"
  DBSVEC_FAILPOINTS="${site}:error" \
    "${cli}" assign --model="${sweep_dir}/model.bin" \
      --input="${sweep_dir}/points.csv" && status=0 || status=$?
  if [ "${status}" -ne 1 ]; then
    echo "assign sweep: ${site} exited ${status}, expected 1" >&2
    exit 1
  fi
done
# Degraded-but-successful fit: nonconverged solves must be surfaced, not
# hidden — the summary line is part of the CLI contract.
DBSVEC_FAILPOINTS="smo.solve:nonconverge" \
  "${cli}" fit --demo=blobs --demo-n=400 --demo-dim=2 --minpts=5 \
    --model-out="${sweep_dir}/model-degraded.bin" \
  | grep -q '^degraded: nonconverged_solves='

echo "=== Serve smoke under ASan: failpoints, client traffic, SIGTERM ==="
# The server runs under ASan with the assign-path delay failpoint armed for
# its whole life, so every request crosses an injected slowdown. The load
# generator drives JSON and binary assigns, a reload swap, and a
# deadline probe that must surface as 504; finally SIGTERM must drain
# in-flight work and exit 0 with the clean-shutdown banner.
client="${repo}/build-ci-asan/tools/dbsvec_client"
serve_log="${sweep_dir}/serve.log"
DBSVEC_FAILPOINTS="assign.batch:delay_ms:20" \
  "${cli}" serve --model="${sweep_dir}/model.bin" --port=0 --workers=2 \
  > "${serve_log}" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
    "${serve_log}" 2>/dev/null || true)"
  [ -n "${port}" ] && break
  if ! kill -0 "${serve_pid}" 2>/dev/null; then
    echo "serve smoke: server died before listening" >&2
    cat "${serve_log}" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "${port}" ]; then
  echo "serve smoke: no listening banner within 10s" >&2
  cat "${serve_log}" >&2
  exit 1
fi
"${client}" --mode=health --port="${port}" --quiet
"${client}" --mode=assign --port="${port}" --requests=20 --batch=16 \
  --threads=2 --dim=2 --quiet
"${client}" --mode=assign --port="${port}" --requests=20 --batch=16 \
  --threads=2 --dim=2 --binary --quiet
"${client}" --mode=reload --port="${port}" \
  --reload-model="${sweep_dir}/model.bin" --quiet
# The armed 20ms delay plus a 5ms deadline must produce at least one 504.
"${client}" --mode=assign --port="${port}" --requests=5 --batch=4 \
  --threads=1 --dim=2 --deadline-ms=5 --expect-status=504 --quiet
"${client}" --mode=statz --port="${port}" --quiet
kill -TERM "${serve_pid}"
serve_status=0
wait "${serve_pid}" || serve_status=$?
if [ "${serve_status}" -ne 0 ]; then
  echo "serve smoke: SIGTERM shutdown exited ${serve_status}" >&2
  cat "${serve_log}" >&2
  exit 1
fi
grep -q 'shut down cleanly' "${serve_log}" || {
  echo "serve smoke: clean-shutdown banner missing" >&2
  cat "${serve_log}" >&2
  exit 1
}

echo "=== Crash-recovery harness under ASan: SIGKILL, restart, bit-identity ==="
# A durable server (--fsync=always) is killed with SIGKILL — once quiesced
# and once mid-absorb with a delay failpoint stretching the window — and
# restarted from its snapshot + journal. Labels must be bit-identical to
# the pre-kill fixpoint, and the offline recovery oracle (assign with
# --snapshot/--journal) must agree with the restarted server
# (docs/ROBUSTNESS.md). Absorption during a label dump can itself grow the
# overlay, so dumps are repeated until two consecutive passes agree: at
# that fixpoint a dump is a pure read and survives kill/restart unchanged.
crash_dir="${sweep_dir}/crash"
mkdir -p "${crash_dir}"
snapshot="${crash_dir}/model.ckpt"
journal="${crash_dir}/model.wal"
durable_log="${crash_dir}/serve.log"

start_durable_serve() {
  # Args: logfile [extra env as KEY=VALUE...]; sets serve_pid and port.
  local log="$1"
  shift
  env "$@" "${cli}" serve --model="${sweep_dir}/model.bin" --port=0 \
    --workers=2 --durable --fsync=always \
    --snapshot="${snapshot}" --journal="${journal}" \
    > "${log}" 2>&1 &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "${log}" 2>/dev/null || true)"
    [ -n "${port}" ] && break
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "crash harness: server died before listening" >&2
      cat "${log}" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "crash harness: no listening banner within 10s" >&2
    cat "${log}" >&2
    exit 1
  fi
}

dump_labels_fixpoint() {
  # Dump labels for points.csv until two consecutive passes agree; the
  # converged dump lands in $1.
  local out="$1"
  local prev="${crash_dir}/dump.prev"
  rm -f "${prev}"
  local converged=""
  for _ in $(seq 1 10); do
    "${client}" --mode=assign --port="${port}" --dim=2 \
      --input="${sweep_dir}/points.csv" --labels-out="${out}" --quiet
    if [ -f "${prev}" ] && cmp -s "${prev}" "${out}"; then
      converged=1
      break
    fi
    cp "${out}" "${prev}"
  done
  if [ -z "${converged}" ]; then
    echo "crash harness: label dump did not reach a fixpoint" >&2
    exit 1
  fi
}

# --- Phase 1: quiesced kill. Absorb traffic, converge, SIGKILL, restart,
# and the restarted server must serve the exact same labels.
start_durable_serve "${durable_log}"
grep -q 'serve: durable' "${durable_log}" || {
  echo "crash harness: durable banner missing" >&2
  cat "${durable_log}" >&2
  exit 1
}
"${client}" --mode=assign --port="${port}" --requests=20 --batch=16 \
  --threads=2 --dim=2 --quiet
dump_labels_fixpoint "${crash_dir}/labels.before"
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
start_durable_serve "${durable_log}.2"
grep -q 'recovered:' "${durable_log}.2" || {
  echo "crash harness: recovery banner missing after restart" >&2
  cat "${durable_log}.2" >&2
  exit 1
}
"${client}" --mode=assign --port="${port}" --dim=2 \
  --input="${sweep_dir}/points.csv" \
  --labels-out="${crash_dir}/labels.after" --quiet
cmp "${crash_dir}/labels.before" "${crash_dir}/labels.after" || {
  echo "crash harness: labels diverged across SIGKILL + recovery" >&2
  exit 1
}

# --- Phase 2: kill mid-absorb. The delay failpoint inside the refresh path
# guarantees the SIGKILL lands while an absorb (journal append included) is
# in flight; recovery must truncate any torn tail, never crash, and agree
# with the offline oracle recovering from the same snapshot + journal.
"${client}" --mode=statz --port="${port}" --quiet | grep -q '"durability"' || {
  echo "crash harness: statz durability section missing" >&2
  exit 1
}
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
start_durable_serve "${durable_log}.3" \
  DBSVEC_FAILPOINTS="serve.refresh:delay_ms:5"
"${client}" --mode=assign --port="${port}" --requests=50 --batch=8 \
  --threads=2 --dim=2 --quiet &
traffic_pid=$!
sleep 0.4
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
wait "${traffic_pid}" 2>/dev/null || true  # Traffic dies with the server.
start_durable_serve "${durable_log}.4"
dump_labels_fixpoint "${crash_dir}/labels.midkill"
kill -TERM "${serve_pid}"
wait "${serve_pid}" || {
  echo "crash harness: clean shutdown after recovery failed" >&2
  cat "${durable_log}.4" >&2
  exit 1
}
# Offline oracle: recover the identical state through the CLI (the journal
# is detached for a read-only process, so this mutates nothing) and the
# labels must match the restarted server's fixpoint.
"${cli}" assign --model="${sweep_dir}/model.bin" \
  --snapshot="${snapshot}" --journal="${journal}" \
  --input="${sweep_dir}/points.csv" \
  --output="${crash_dir}/oracle.csv"
cut -d, -f3 "${crash_dir}/oracle.csv" > "${crash_dir}/labels.oracle"
cmp "${crash_dir}/labels.midkill" "${crash_dir}/labels.oracle" || {
  echo "crash harness: server recovery disagrees with the offline oracle" >&2
  exit 1
}

echo "=== Torn-journal fuzz under ASan: truncated tails must recover ==="
# Chop the live journal at awkward byte counts (mid-record, mid-header,
# empty) and recover each stump through the CLI oracle: always exit 0,
# never crash — ASan turns any overread of a torn record into a failure.
wal_bytes="$(stat -c %s "${journal}")"
for cut_bytes in "${wal_bytes}" $((wal_bytes - 1)) $((wal_bytes - 13)) \
                 $((wal_bytes / 2)) 21 20 7 0; do
  [ "${cut_bytes}" -ge 0 ] || continue
  cp "${journal}" "${crash_dir}/torn.wal.orig"
  head -c "${cut_bytes}" "${crash_dir}/torn.wal.orig" \
    > "${crash_dir}/torn.wal"
  "${cli}" assign --model="${sweep_dir}/model.bin" \
    --snapshot="${snapshot}" --journal="${crash_dir}/torn.wal" \
    --input="${sweep_dir}/points.csv" \
    --output="${crash_dir}/torn.out.csv" || {
    echo "torn fuzz: recovery failed at ${cut_bytes} bytes" >&2
    exit 1
  }
done

echo "=== Registry harness under ASan: three tenants, SIGKILL, recovery ==="
# One registry server (--data-dir) hosts three named models created over
# REST from the same artifact. Mixed traffic (round-robin JSON assigns
# plus chunked streaming bodies) grows each tenant's overlay; after a
# SIGKILL the restarted server must recover every model and serve labels
# bit-identical to each tenant's pre-kill fixpoint (docs/SERVING.md).
reg_dir="${sweep_dir}/registry"
reg_data="${reg_dir}/data"
reg_log="${reg_dir}/serve.log"
mkdir -p "${reg_dir}"

start_registry_serve() {
  # Args: logfile [extra env as KEY=VALUE...]; sets serve_pid and port.
  local log="$1"
  shift
  env "$@" "${cli}" serve --data-dir="${reg_data}" --port=0 --workers=2 \
    --durable --fsync=always \
    > "${log}" 2>&1 &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "${log}" 2>/dev/null || true)"
    [ -n "${port}" ] && break
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "registry harness: server died before listening" >&2
      cat "${log}" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "registry harness: no listening banner within 10s" >&2
    cat "${log}" >&2
    exit 1
  fi
}

dump_tenant_fixpoint() {
  # Args: tenant outfile — dump the tenant's labels for points.csv until
  # two consecutive passes agree (absorption during a dump can itself
  # grow that tenant's overlay, same as the single-model harness above).
  local tenant="$1"
  local out="$2"
  local prev="${reg_dir}/dump.prev"
  rm -f "${prev}"
  local converged=""
  for _ in $(seq 1 10); do
    "${client}" --mode=assign --port="${port}" --model="${tenant}" \
      --dim=2 --input="${sweep_dir}/points.csv" --labels-out="${out}" \
      --quiet
    if [ -f "${prev}" ] && cmp -s "${prev}" "${out}"; then
      converged=1
      break
    fi
    cp "${out}" "${prev}"
  done
  if [ -z "${converged}" ]; then
    echo "registry harness: ${tenant} dump did not reach a fixpoint" >&2
    exit 1
  fi
}

start_registry_serve "${reg_log}"
grep -q 'serve: registry' "${reg_log}" || {
  echo "registry harness: registry banner missing" >&2
  cat "${reg_log}" >&2
  exit 1
}
for tenant in tenant_a tenant_b tenant_c; do
  "${client}" --mode=create --port="${port}" --model="${tenant}" \
    --model-path="${sweep_dir}/model.bin" >/dev/null
done
# The REST contract around the happy path: a duplicate name answers 409,
# a name the filesystem could reinterpret answers 400, a ghost answers
# 404 — all without disturbing the three live tenants.
"${client}" --mode=create --port="${port}" --model=tenant_a \
  --model-path="${sweep_dir}/model.bin" --expect-status=409 >/dev/null
"${client}" --mode=create --port="${port}" --model='Bad.Name' \
  --model-path="${sweep_dir}/model.bin" --expect-status=400 >/dev/null
"${client}" --mode=delete --port="${port}" --model=ghost \
  --expect-status=404 >/dev/null
# Round-robin JSON traffic plus streaming bodies across all three
# tenants, then a per-tenant fixpoint dump.
"${client}" --mode=assign --port="${port}" \
  --models=tenant_a,tenant_b,tenant_c --requests=30 --batch=8 \
  --threads=3 --dim=2 --quiet
"${client}" --mode=assign --port="${port}" \
  --models=tenant_a,tenant_b,tenant_c --requests=12 --batch=8 \
  --threads=3 --dim=2 --stream --frames=3 --quiet
for tenant in tenant_a tenant_b tenant_c; do
  dump_tenant_fixpoint "${tenant}" "${reg_dir}/${tenant}.before"
done
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
start_registry_serve "${reg_log}.2"
grep -q 'recovered=3 failed=0' "${reg_log}.2" || {
  echo "registry harness: restart did not recover all three models" >&2
  cat "${reg_log}.2" >&2
  exit 1
}
for tenant in tenant_a tenant_b tenant_c; do
  "${client}" --mode=assign --port="${port}" --model="${tenant}" \
    --dim=2 --input="${sweep_dir}/points.csv" \
    --labels-out="${reg_dir}/${tenant}.after" --quiet
  cmp "${reg_dir}/${tenant}.before" "${reg_dir}/${tenant}.after" || {
    echo "registry harness: ${tenant} diverged across SIGKILL" >&2
    exit 1
  }
done
kill -TERM "${serve_pid}"
wait "${serve_pid}" || {
  echo "registry harness: clean shutdown after recovery failed" >&2
  cat "${reg_log}.2" >&2
  exit 1
}

echo "=== Registry failpoint sweep under ASan (registry.create/.recover) ==="
# registry.create armed: seeding the default model through the import
# path must exit 1 with a clean error and leave no half-created model
# directory behind — never crash or hang.
rm -rf "${reg_dir}/create-armed"
DBSVEC_FAILPOINTS="registry.create:error" \
  timeout 60 "${cli}" serve --data-dir="${reg_dir}/create-armed" \
    --model="${sweep_dir}/model.bin" --port=0 --workers=2 \
    > "${reg_dir}/create-armed.log" 2>&1 && status=0 || status=$?
if [ "${status}" -ne 1 ]; then
  echo "registry sweep: create-armed serve exited ${status}, expected 1" >&2
  cat "${reg_dir}/create-armed.log" >&2
  exit 1
fi
if [ -d "${reg_dir}/create-armed/default" ]; then
  echo "registry sweep: failed create left a ghost model dir" >&2
  exit 1
fi
# registry.recover armed: every model under the data dir is skipped, but
# the server must come up and answer /v1/healthz anyway — per-model
# recovery failures degrade, they don't take down the process.
start_registry_serve "${reg_log}.3" \
  DBSVEC_FAILPOINTS="registry.recover:error"
grep -q 'recovered=0 failed=3' "${reg_log}.3" || {
  echo "registry sweep: recover-armed banner wrong" >&2
  cat "${reg_log}.3" >&2
  exit 1
}
"${client}" --mode=health --port="${port}" --quiet
kill -TERM "${serve_pid}"
wait "${serve_pid}" || {
  echo "registry sweep: recover-armed shutdown failed" >&2
  exit 1
}
# Disarmed restart: the same data dir recovers all three models again, so
# the armed run mutated nothing.
start_registry_serve "${reg_log}.4"
grep -q 'recovered=3 failed=0' "${reg_log}.4" || {
  echo "registry sweep: post-sweep restart lost models" >&2
  cat "${reg_log}.4" >&2
  exit 1
}
kill -TERM "${serve_pid}"
wait "${serve_pid}"

echo "=== bench_durability smoke: fsync sweep + recovery stay deterministic ==="
cmake --build "${repo}/build-ci-release" -j "${jobs}" \
  --target bench_durability
"${repo}/build-ci-release/bench/bench_durability" \
  --n=4000 --traffic=4000 --minpts=20 \
  --out="${repo}/build-ci-release/BENCH_durability_smoke.json"

echo "=== UndefinedBehaviorSanitizer build + model/serving/fault tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-ubsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=undefined \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-ubsan" -j "${jobs}" --target dbsvec_tests
# -fno-sanitize-recover turns any UB (signed overflow in an index
# computation, misaligned load in the serializers, ...) into a test
# failure rather than a diagnostic that scrolls by.
ctest --test-dir "${repo}/build-ci-ubsan" --output-on-failure -j "${jobs}" \
  -R 'Model|Serve|Cli|Simd|Fault|Durab|Journal'

echo "=== CI green ==="
