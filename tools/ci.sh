#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests. Run from anywhere; builds
# land in <repo>/build-ci-{release,tsan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== Release build + full ctest ==="
cmake -S "${repo}" -B "${repo}/build-ci-release" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${repo}/build-ci-release" -j "${jobs}"
ctest --test-dir "${repo}/build-ci-release" --output-on-failure -j "${jobs}"

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=thread \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-tsan" -j "${jobs}" --target dbsvec_tests
# Determinism + thread-pool tests force an 8-thread pool, so they exercise
# every parallel section under TSan even on small machines.
ctest --test-dir "${repo}/build-ci-tsan" --output-on-failure -j "${jobs}" \
  -R 'Determinism|ThreadPool'

echo "=== CI green ==="
