#!/usr/bin/env bash
# CI entry point: Release build + full test suite (run twice: once with the
# best SIMD backend, once with DBSVEC_SIMD=off so the scalar fallback stays
# green), a ThreadSanitizer build running the concurrency-sensitive tests,
# and an AddressSanitizer build running the model-format, serving, and SIMD
# agreement tests (malformed model files must fail with a Status, never
# with memory errors; the SoA block views must never read out of bounds).
# Run from anywhere; builds land in <repo>/build-ci-{release,tsan,asan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== Release build + full ctest ==="
cmake -S "${repo}" -B "${repo}/build-ci-release" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${repo}/build-ci-release" -j "${jobs}"
ctest --test-dir "${repo}/build-ci-release" --output-on-failure -j "${jobs}"

echo "=== Release ctest with the scalar SIMD fallback (DBSVEC_SIMD=off) ==="
DBSVEC_SIMD=off \
  ctest --test-dir "${repo}/build-ci-release" --output-on-failure -j "${jobs}"

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=thread \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-tsan" -j "${jobs}" --target dbsvec_tests
# Determinism + thread-pool tests force an 8-thread pool, so they exercise
# every parallel section under TSan even on small machines.
ctest --test-dir "${repo}/build-ci-tsan" --output-on-failure -j "${jobs}" \
  -R 'Determinism|ThreadPool'

echo "=== AddressSanitizer build + model/serving tests ==="
cmake -S "${repo}" -B "${repo}/build-ci-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDBSVEC_SANITIZE=address \
  -DDBSVEC_BUILD_BENCHMARKS=OFF \
  -DDBSVEC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${repo}/build-ci-asan" -j "${jobs}" --target dbsvec_tests
# The model tests fuzz truncations and bit flips of the binary format;
# under ASan any out-of-bounds parse becomes a hard failure. The SIMD
# agreement tests sweep every remainder-lane shape, so a kernel touching
# block padding it shouldn't would trip ASan here.
ctest --test-dir "${repo}/build-ci-asan" --output-on-failure -j "${jobs}" \
  -R 'Model|Serve|Cli|Simd'

echo "=== CI green ==="
