#ifndef DBSVEC_MODEL_OVERLAY_JOURNAL_H_
#define DBSVEC_MODEL_OVERLAY_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dbsvec {

/// When an appended record is made durable (docs/ROBUSTNESS.md).
enum class FsyncPolicy : uint8_t {
  kAlways,    ///< fsync after every record; a crash loses nothing acked.
  kInterval,  ///< fsync on a timer (the server's durability thread).
  kOff,       ///< never fsync; the OS page cache decides.
};

/// Parses "always" / "interval" / "off".
Status ParseFsyncPolicy(std::string_view name, FsyncPolicy* policy);
const char* FsyncPolicyName(FsyncPolicy policy);

/// Counters of one journal's whole life, including what its Open-time
/// recovery pass found. Snapshot via OverlayJournal::stats().
struct OverlayJournalStats {
  uint64_t records = 0;        ///< Intact records currently in the file.
  uint64_t bytes = 0;          ///< Current file size.
  uint64_t appends_ok = 0;     ///< Records durably appended by this process.
  uint64_t records_dropped = 0;  ///< Append failures (the absorb was skipped).
  uint64_t fsyncs = 0;
  uint64_t fsync_failures = 0;
  uint64_t resets = 0;         ///< Checkpoint truncations.
  uint64_t records_replayed = 0;       ///< Replayed at Open.
  uint64_t torn_bytes_truncated = 0;   ///< Torn tail discarded at Open.
  uint64_t journals_discarded = 0;     ///< 1 if Open dropped a stale journal.
  bool degraded = false;
};

/// Append-only write-ahead journal of absorbed overlay points.
///
/// File layout (all little-endian):
///   header   "DBSVECJ1" + u32 format version + u32 base_crc
///            + u32 CRC-32 of the preceding 16 bytes
///   record*  u32 payload length + u32 CRC-32(payload) + payload
///   payload  i32 cluster label + dim × f64 raw (untransformed) point
///
/// `base_crc` is the payload CRC of the model/snapshot the journal
/// extends: replaying these records (in order, through the public
/// AbsorbCoreAdjacent) on an engine built from exactly that artifact
/// reproduces the crashed engine's overlay bit-identically. A journal
/// whose base_crc does not match the artifact being recovered extends a
/// state that no longer exists and is discarded — which is precisely what
/// makes the checkpoint sequence (write snapshot, then reset journal)
/// crash-safe at every intermediate point.
///
/// Records hold RAW query coordinates so replay passes through the same
/// transform + dedupe + sphere checks the original absorb did.
///
/// Torn tails: a record whose length, CRC, or byte count is wrong (a crash
/// mid-append) ends the valid prefix; Open physically truncates the file
/// there and counts the discarded bytes. Nothing at or past a torn record
/// was ever acked, so truncation never loses an applied point.
///
/// Degradation: a failed append or fsync marks the journal degraded (the
/// server keeps serving and reports `durability: degraded`); a fully
/// successful append clears the flag. A failed append that cannot roll its
/// partial bytes back poisons the journal — every further append fails
/// fast — until a Reset (i.e. a checkpoint) rewrites the file.
///
/// Thread-safe; Append serializes internally.
class OverlayJournal {
 public:
  using ReplayFn =
      std::function<Status(int32_t label, std::span<const double> point)>;

  /// Opens (creating if absent) the journal at `path` for a base artifact
  /// with payload CRC `base_crc` and dimensionality `dim`. Existing
  /// records bound to `base_crc` are replayed in order through `replay`
  /// (null skips replay) and any torn tail is truncated; a journal bound
  /// to a different base or with a corrupt header is discarded and the
  /// file reset. On success `*journal` is ready for appends.
  static Status Open(const std::string& path, uint32_t base_crc, int dim,
                     FsyncPolicy policy, const ReplayFn& replay,
                     std::unique_ptr<OverlayJournal>* journal);

  ~OverlayJournal();
  OverlayJournal(const OverlayJournal&) = delete;
  OverlayJournal& operator=(const OverlayJournal&) = delete;

  /// Appends one absorbed-point record (raw coordinates, length dim) and
  /// makes it durable per the fsync policy. On error the caller must NOT
  /// apply the point in memory: un-journaled state would not survive a
  /// restart.
  Status Append(int32_t label, std::span<const double> point);

  /// fsyncs now regardless of policy (the interval timer, and tests).
  Status Sync();

  /// Empties the journal and rebinds it to `new_base_crc`, after a
  /// checkpoint folded every record into the snapshot whose payload CRC
  /// that is. Atomic (fresh header to `<path>.tmp`, fsync, rename, dir
  /// fsync); clears the degraded/poisoned state on success.
  Status Reset(uint32_t new_base_crc);

  const std::string& path() const { return path_; }
  FsyncPolicy policy() const { return policy_; }
  uint32_t base_crc() const;
  /// Lock-free; the health endpoint polls this.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  OverlayJournalStats stats() const;

 private:
  OverlayJournal(std::string path, uint32_t base_crc, int dim,
                 FsyncPolicy policy);

  Status SyncLocked();
  Status ReopenForAppendLocked();

  const std::string path_;
  const int dim_;
  const FsyncPolicy policy_;

  mutable std::mutex mutex_;
  uint32_t base_crc_;
  int fd_ = -1;
  bool poisoned_ = false;  ///< Unrepaired partial write; appends fail fast.
  std::atomic<bool> degraded_{false};
  OverlayJournalStats stats_;
};

}  // namespace dbsvec

#endif  // DBSVEC_MODEL_OVERLAY_JOURNAL_H_
