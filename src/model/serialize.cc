#include "model/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/failpoint.h"

namespace dbsvec {
namespace {

/// Table-driven CRC-32, table built once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  const auto& table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (const uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void ByteWriter::WriteF64(double value) {
  WriteU64(std::bit_cast<uint64_t>(value));
}

void ByteWriter::WriteF64Span(std::span<const double> values) {
  for (const double value : values) {
    WriteF64(value);
  }
}

void ByteWriter::WriteBytes(std::span<const uint8_t> values) {
  bytes_.insert(bytes_.end(), values.begin(), values.end());
}

Status ByteReader::Need(size_t count) const {
  if (bytes_.size() - offset_ < count) {
    return Status::InvalidArgument("model data truncated");
  }
  return Status::Ok();
}

Status ByteReader::ReadU8(uint8_t* value) {
  DBSVEC_RETURN_IF_ERROR(Need(1));
  *value = bytes_[offset_++];
  return Status::Ok();
}

Status ByteReader::ReadU32(uint32_t* value) {
  DBSVEC_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<uint32_t>(bytes_[offset_++]) << shift;
  }
  *value = v;
  return Status::Ok();
}

Status ByteReader::ReadU64(uint64_t* value) {
  DBSVEC_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<uint64_t>(bytes_[offset_++]) << shift;
  }
  *value = v;
  return Status::Ok();
}

Status ByteReader::ReadI32(int32_t* value) {
  uint32_t v = 0;
  DBSVEC_RETURN_IF_ERROR(ReadU32(&v));
  *value = static_cast<int32_t>(v);
  return Status::Ok();
}

Status ByteReader::ReadI64(int64_t* value) {
  uint64_t v = 0;
  DBSVEC_RETURN_IF_ERROR(ReadU64(&v));
  *value = static_cast<int64_t>(v);
  return Status::Ok();
}

Status ByteReader::ReadF64(double* value) {
  uint64_t bits = 0;
  DBSVEC_RETURN_IF_ERROR(ReadU64(&bits));
  *value = std::bit_cast<double>(bits);
  return Status::Ok();
}

Status ByteReader::ReadF64Vector(size_t count, std::vector<double>* values) {
  // Guard the multiplication: a corrupt count must not overflow into a
  // passing bounds check (or a giant reserve).
  if (count > remaining() / 8) {
    return Status::InvalidArgument("model data truncated");
  }
  values->reserve(values->size() + count);
  for (size_t i = 0; i < count; ++i) {
    double v = 0.0;
    DBSVEC_RETURN_IF_ERROR(ReadF64(&v));
    values->push_back(v);
  }
  return Status::Ok();
}

Status ByteReader::ReadBytes(size_t count, std::vector<uint8_t>* values) {
  DBSVEC_RETURN_IF_ERROR(Need(count));
  values->insert(values->end(), bytes_.begin() + offset_,
                 bytes_.begin() + offset_ + count);
  offset_ += count;
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path,
                      std::span<const uint8_t> bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != bytes.size() || !close_ok) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

namespace {

std::string ErrnoSuffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

/// Writes all of `bytes` to `fd`, retrying partial writes.
Status WriteAll(int fd, std::span<const uint8_t> bytes,
                const std::string& path) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t wrote =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("write failed: " + path + ErrnoSuffix());
    }
    offset += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

/// fsyncs the directory containing `path` so the rename itself is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open directory for fsync: " + dir +
                           ErrnoSuffix());
  }
  const bool synced = ::fsync(fd) == 0;
  const std::string suffix = synced ? std::string() : ErrnoSuffix();
  ::close(fd);
  if (!synced) {
    return Status::IoError("directory fsync failed: " + dir + suffix);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileBytesAtomic(const std::string& path,
                            std::span<const uint8_t> bytes,
                            std::string_view failpoint_site) {
  const std::string tmp_path = path + ".tmp";
  errno = 0;
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp_path +
                           ErrnoSuffix());
  }
  Status status = Status::Ok();
  if (!failpoint_site.empty() && FailpointEnospc(failpoint_site)) {
    status = Status::IoError("no space left on device writing: " + tmp_path +
                             " (injected)");
  } else if (!failpoint_site.empty() && FailpointShortWrite(failpoint_site)) {
    // Persist a torn prefix, exactly what a crash mid-write leaves behind.
    status = WriteAll(fd, bytes.subspan(0, bytes.size() / 2), tmp_path);
    if (status.ok()) {
      status = Status::IoError("short write: " + tmp_path + " (injected)");
    }
  } else {
    status = WriteAll(fd, bytes, tmp_path);
  }
  if (status.ok()) {
    errno = 0;
    const bool sync_injected =
        !failpoint_site.empty() && FailpointFsyncError(failpoint_site);
    if (sync_injected) {
      status = Status::IoError("fsync failed: " + tmp_path + " (injected)");
    } else if (::fsync(fd) != 0) {
      status = Status::IoError("fsync failed: " + tmp_path + ErrnoSuffix());
    }
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError("close failed: " + tmp_path + ErrnoSuffix());
  }
  if (status.ok()) {
    errno = 0;
    if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
      status = Status::IoError("rename failed: " + tmp_path + " -> " + path +
                               ErrnoSuffix());
    }
  }
  if (status.ok()) {
    status = SyncParentDir(path);
  }
  if (!status.ok()) {
    // Leave no torn artifact behind; `path` still holds its previous
    // content (or stays absent).
    ::unlink(tmp_path.c_str());
  }
  return status;
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  bytes->clear();
  uint8_t buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes->insert(bytes->end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read failed: " + path);
  }
  return Status::Ok();
}

}  // namespace dbsvec
