#ifndef DBSVEC_MODEL_DBSVEC_MODEL_H_
#define DBSVEC_MODEL_DBSVEC_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/normalize.h"
#include "common/status.h"

namespace dbsvec {

/// Fitted SVDD boundary descriptor of one sub-cluster, plus the
/// input-space bounding sphere of the sub-cluster's members. The input
/// sphere (center, radius) is what the assignment engine uses as a
/// prefilter: a query can only join cluster `cluster` through this
/// sub-cluster if it lies within radius + ε of the center. σ and the
/// feature-space R² are the fitted SVDD sphere parameters (Sec. IV-B2 /
/// Eq. 12 of the paper), kept for diagnostics and future boundary-based
/// serving.
struct SubClusterSphere {
  int32_t cluster = 0;       ///< Final (dense) cluster id.
  double sigma = 0.0;        ///< Kernel width of the last SVDD training.
  double radius_sq = 0.0;    ///< Feature-space R² of the last SVDD sphere.
  std::vector<double> center;  ///< Input-space centroid of the members.
  double radius = 0.0;       ///< Max input-space distance center → member.
  int64_t num_members = 0;   ///< Members at the end of the run.
  int32_t num_support_vectors = 0;  ///< SVs of the last training round.

  friend bool operator==(const SubClusterSphere&,
                         const SubClusterSphere&) = default;
};

/// A trained DBSVEC clustering reduced to a servable artifact: every point
/// whose ε-neighborhood the run proved dense (the "known core" set — seed
/// cores, core support vectors, and merge/noise-verification cores), its
/// final cluster label, plus the per-sub-cluster SVDD sphere summaries and
/// the normalization applied to the training data.
///
/// The summary is sufficient for assignment because every non-noise
/// training point was absorbed through the ε-neighborhood of a known core
/// point, and DBSCAN semantics (Definition 2) assign a new point x to a
/// cluster iff x lies within ε of one of that cluster's core points. See
/// docs/SERVING.md for the exact agreement guarantees.
struct DbsvecModel {
  /// Current file-format version; see docs/SERVING.md for the policy.
  /// v2 appends the bounded-cost SVDD provenance (sv_budget,
  /// sample_threshold) to the payload; v1 files still load (both read
  /// back as 0 — exact training, which is what v1 runs used).
  /// v3 appends the absorbed-core overlay (points taken in online via
  /// AbsorbCoreAdjacent, folded in by a checkpoint); v1/v2 files read
  /// back with an empty overlay.
  static constexpr uint32_t kFormatVersion = 3;

  // -- Fitted parameters -------------------------------------------------
  double epsilon = 0.0;
  int32_t min_pts = 0;
  /// Support-vector budget the fit ran with (0 = exact SMO). Provenance:
  /// serving never re-solves, but a served model should say whether its
  /// spheres came from budgeted solves.
  int32_t sv_budget = 0;
  /// Sampling threshold the fit ran with (0 = full targets).
  int32_t sample_threshold = 0;

  // -- Dataset summary ---------------------------------------------------
  int32_t dim = 0;
  int64_t train_size = 0;       ///< Points the model was fitted on.
  int32_t num_clusters = 0;
  /// Per-dimension min/max of the (transformed) training coordinates.
  std::vector<double> train_min;
  std::vector<double> train_max;
  /// Normalization applied to the training data before clustering; empty
  /// means the model operates on raw coordinates. Assignment queries pass
  /// through this transform before any distance is computed.
  AffineTransform transform;

  // -- Core summary ------------------------------------------------------
  /// Coordinates of every known-core point (dim columns per row).
  Dataset core_points{0};
  /// Cluster id of each core point, parallel to `core_points`.
  std::vector<int32_t> core_labels;
  /// 1 iff the core point was a support vector of some SVDD training
  /// round (a core-SV in the sense of Definition 6).
  std::vector<uint8_t> core_is_sv;

  // -- Sub-cluster spheres ----------------------------------------------
  std::vector<SubClusterSphere> spheres;

  // -- Absorbed-core overlay (v3) ---------------------------------------
  /// Points absorbed online through AbsorbCoreAdjacent and folded into
  /// this artifact by a checkpoint, in TRANSFORMED coordinates (the
  /// overlay lives post-transform, exactly as the engine stores it).
  /// Empty after a plain fit and for v1/v2 files.
  Dataset absorbed_points{0};
  /// Cluster id of each absorbed point, parallel to `absorbed_points`.
  std::vector<int32_t> absorbed_labels;

  bool operator==(const DbsvecModel& other) const;
};

/// Structural validity: dimensions agree, labels are in range, parameters
/// are positive. Run by Save before writing and by Load after parsing, so
/// neither a logic bug nor a hand-crafted file can produce an engine with
/// out-of-range indices.
Status ValidateModel(const DbsvecModel& model);

/// Serializes `model` into the versioned binary format (magic + version +
/// CRC-32 + little-endian payload). Deterministic: equal models produce
/// identical bytes.
Status SerializeModel(const DbsvecModel& model, std::vector<uint8_t>* bytes);

/// Parses bytes produced by SerializeModel. Returns InvalidArgument for
/// corrupt/truncated data or a bad checksum and FailedPrecondition for a
/// format version newer than kFormatVersion; never crashes on malformed
/// input.
Status DeserializeModel(std::span<const uint8_t> bytes, DbsvecModel* model);

/// CRC-32 of the model's serialized payload — the same checksum stored in
/// the file header, so a fitted-in-memory model and its on-disk artifact
/// report the same identity. Serving surfaces (`fit` CLI line, /v1/statz)
/// use (kFormatVersion, crc) as the model identity without re-reading the
/// file.
Status ModelPayloadCrc(const DbsvecModel& model, uint32_t* crc);

/// SerializeModel + write to `path`.
Status SaveModel(const DbsvecModel& model, const std::string& path);

/// Read `path` + DeserializeModel.
Status LoadModel(const std::string& path, DbsvecModel* model);

}  // namespace dbsvec

#endif  // DBSVEC_MODEL_DBSVEC_MODEL_H_
