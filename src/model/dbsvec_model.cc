#include "model/dbsvec_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/failpoint.h"
#include "model/serialize.h"

namespace dbsvec {
namespace {

/// File magic: "DBSVECM1" as raw bytes at offset 0.
constexpr uint8_t kMagic[8] = {'D', 'B', 'S', 'V', 'E', 'C', 'M', '1'};
/// Header: magic (8) + version (4) + payload CRC-32 (4) + payload size (8).
constexpr size_t kHeaderBytes = 24;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("model file corrupt: " + what);
}

bool AllFinite(std::span<const double> values) {
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool DbsvecModel::operator==(const DbsvecModel& other) const {
  return epsilon == other.epsilon && min_pts == other.min_pts &&
         sv_budget == other.sv_budget &&
         sample_threshold == other.sample_threshold &&
         dim == other.dim && train_size == other.train_size &&
         num_clusters == other.num_clusters &&
         train_min == other.train_min && train_max == other.train_max &&
         transform == other.transform &&
         core_points.dim() == other.core_points.dim() &&
         core_points.data() == other.core_points.data() &&
         core_labels == other.core_labels &&
         core_is_sv == other.core_is_sv && spheres == other.spheres &&
         // Compare overlay content, not Dataset dim: an empty overlay is
         // dim-0 after fit but dim-`dim` after a file round trip.
         absorbed_points.data() == other.absorbed_points.data() &&
         absorbed_labels == other.absorbed_labels;
}

Status ValidateModel(const DbsvecModel& model) {
  if (!(model.epsilon > 0.0) || !std::isfinite(model.epsilon)) {
    return Status::InvalidArgument("model: epsilon must be positive");
  }
  if (model.min_pts < 1) {
    return Status::InvalidArgument("model: min_pts must be >= 1");
  }
  if (model.dim < 1) {
    return Status::InvalidArgument("model: dim must be >= 1");
  }
  if (model.num_clusters < 0 || model.train_size < 0) {
    return Status::InvalidArgument("model: negative size field");
  }
  if (model.sv_budget < 0 || model.sample_threshold < 0) {
    return Status::InvalidArgument(
        "model: negative bounded-cost SVDD parameter");
  }
  if (model.core_points.dim() != model.dim) {
    return Status::InvalidArgument("model: core point dim mismatch");
  }
  const size_t num_core = static_cast<size_t>(model.core_points.size());
  if (model.core_labels.size() != num_core ||
      model.core_is_sv.size() != num_core) {
    return Status::InvalidArgument("model: core summary arrays disagree");
  }
  for (const int32_t label : model.core_labels) {
    if (label < 0 || label >= model.num_clusters) {
      return Status::InvalidArgument("model: core label out of range");
    }
  }
  if (!model.transform.empty() &&
      (model.transform.dim() != model.dim ||
       model.transform.shift.size() != model.transform.scale.size())) {
    return Status::InvalidArgument("model: transform dim mismatch");
  }
  if (!model.train_min.empty() &&
      (model.train_min.size() != static_cast<size_t>(model.dim) ||
       model.train_max.size() != static_cast<size_t>(model.dim))) {
    return Status::InvalidArgument("model: train range dim mismatch");
  }
  if (!AllFinite(model.core_points.data())) {
    return Status::InvalidArgument("model: non-finite core coordinate");
  }
  for (const SubClusterSphere& sphere : model.spheres) {
    if (sphere.cluster < 0 || sphere.cluster >= model.num_clusters) {
      return Status::InvalidArgument("model: sphere cluster out of range");
    }
    if (sphere.center.size() != static_cast<size_t>(model.dim)) {
      return Status::InvalidArgument("model: sphere center dim mismatch");
    }
    if (!(sphere.radius >= 0.0) || !std::isfinite(sphere.radius) ||
        !AllFinite(sphere.center)) {
      return Status::InvalidArgument("model: invalid sphere geometry");
    }
  }
  const size_t num_absorbed = static_cast<size_t>(model.absorbed_points.size());
  if (num_absorbed > 0 && model.absorbed_points.dim() != model.dim) {
    return Status::InvalidArgument("model: absorbed point dim mismatch");
  }
  if (model.absorbed_labels.size() != num_absorbed) {
    return Status::InvalidArgument("model: absorbed overlay arrays disagree");
  }
  for (const int32_t label : model.absorbed_labels) {
    if (label < 0 || label >= model.num_clusters) {
      return Status::InvalidArgument("model: absorbed label out of range");
    }
  }
  if (!AllFinite(model.absorbed_points.data())) {
    return Status::InvalidArgument("model: non-finite absorbed coordinate");
  }
  return Status::Ok();
}

Status SerializeModel(const DbsvecModel& model, std::vector<uint8_t>* bytes) {
  DBSVEC_RETURN_IF_ERROR(ValidateModel(model));

  ByteWriter payload;
  payload.WriteF64(model.epsilon);
  payload.WriteI32(model.min_pts);
  payload.WriteI32(model.dim);
  payload.WriteI64(model.train_size);
  payload.WriteI32(model.num_clusters);

  payload.WriteU8(model.transform.empty() ? 0 : 1);
  if (!model.transform.empty()) {
    payload.WriteF64Span(model.transform.scale);
    payload.WriteF64Span(model.transform.shift);
  }
  payload.WriteU8(model.train_min.empty() ? 0 : 1);
  if (!model.train_min.empty()) {
    payload.WriteF64Span(model.train_min);
    payload.WriteF64Span(model.train_max);
  }

  payload.WriteU64(static_cast<uint64_t>(model.core_points.size()));
  payload.WriteF64Span(model.core_points.data());
  for (const int32_t label : model.core_labels) {
    payload.WriteI32(label);
  }
  payload.WriteBytes(model.core_is_sv);

  payload.WriteU32(static_cast<uint32_t>(model.spheres.size()));
  for (const SubClusterSphere& sphere : model.spheres) {
    payload.WriteI32(sphere.cluster);
    payload.WriteF64(sphere.sigma);
    payload.WriteF64(sphere.radius_sq);
    payload.WriteF64Span(sphere.center);
    payload.WriteF64(sphere.radius);
    payload.WriteI64(sphere.num_members);
    payload.WriteI32(sphere.num_support_vectors);
  }

  // v2 fields, appended so a v2 reader can parse the v1 prefix untouched.
  payload.WriteI32(model.sv_budget);
  payload.WriteI32(model.sample_threshold);

  // v3 fields: the absorbed-core overlay, appended the same way.
  payload.WriteU64(static_cast<uint64_t>(model.absorbed_points.size()));
  payload.WriteF64Span(model.absorbed_points.data());
  for (const int32_t label : model.absorbed_labels) {
    payload.WriteI32(label);
  }

  ByteWriter out;
  out.WriteBytes(kMagic);
  out.WriteU32(DbsvecModel::kFormatVersion);
  out.WriteU32(Crc32(payload.bytes()));
  out.WriteU64(payload.bytes().size());
  out.WriteBytes(payload.bytes());
  *bytes = out.TakeBytes();
  return Status::Ok();
}

Status DeserializeModel(std::span<const uint8_t> bytes, DbsvecModel* model) {
  if (bytes.size() < kHeaderBytes) {
    return Corrupt("shorter than the header");
  }
  for (size_t i = 0; i < sizeof(kMagic); ++i) {
    if (bytes[i] != kMagic[i]) {
      return Corrupt("bad magic (not a DBSVEC model file)");
    }
  }
  ByteReader header(bytes.subspan(sizeof(kMagic), kHeaderBytes - 8));
  uint32_t version = 0;
  uint32_t expected_crc = 0;
  uint64_t payload_size = 0;
  DBSVEC_RETURN_IF_ERROR(header.ReadU32(&version));
  DBSVEC_RETURN_IF_ERROR(header.ReadU32(&expected_crc));
  DBSVEC_RETURN_IF_ERROR(header.ReadU64(&payload_size));
  if (version > DbsvecModel::kFormatVersion) {
    return Status::FailedPrecondition(
        "model format version " + std::to_string(version) +
        " is newer than this build supports (" +
        std::to_string(DbsvecModel::kFormatVersion) + ")");
  }
  if (version == 0) {
    return Corrupt("version 0 is not a valid format version");
  }
  if (payload_size != bytes.size() - kHeaderBytes) {
    return Corrupt(payload_size > bytes.size() - kHeaderBytes
                       ? "payload truncated"
                       : "trailing bytes after payload");
  }
  const std::span<const uint8_t> payload = bytes.subspan(kHeaderBytes);
  if (Crc32(payload) != expected_crc) {
    return Corrupt("checksum mismatch");
  }

  DbsvecModel parsed;
  ByteReader reader(payload);
  DBSVEC_RETURN_IF_ERROR(reader.ReadF64(&parsed.epsilon));
  DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&parsed.min_pts));
  DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&parsed.dim));
  DBSVEC_RETURN_IF_ERROR(reader.ReadI64(&parsed.train_size));
  DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&parsed.num_clusters));
  if (parsed.dim < 1 || parsed.dim > (1 << 20)) {
    return Corrupt("implausible dimensionality");
  }
  const size_t dim = static_cast<size_t>(parsed.dim);

  uint8_t has_transform = 0;
  DBSVEC_RETURN_IF_ERROR(reader.ReadU8(&has_transform));
  if (has_transform != 0) {
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &parsed.transform.scale));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &parsed.transform.shift));
  }
  uint8_t has_range = 0;
  DBSVEC_RETURN_IF_ERROR(reader.ReadU8(&has_range));
  if (has_range != 0) {
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &parsed.train_min));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &parsed.train_max));
  }

  uint64_t num_core = 0;
  DBSVEC_RETURN_IF_ERROR(reader.ReadU64(&num_core));
  if (num_core > reader.remaining() / (dim * 8)) {
    return Corrupt("core table larger than the file");
  }
  std::vector<double> core_values;
  DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(num_core * dim, &core_values));
  parsed.core_points = Dataset(parsed.dim, std::move(core_values));
  parsed.core_labels.reserve(num_core);
  for (uint64_t i = 0; i < num_core; ++i) {
    int32_t label = 0;
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&label));
    parsed.core_labels.push_back(label);
  }
  DBSVEC_RETURN_IF_ERROR(reader.ReadBytes(num_core, &parsed.core_is_sv));

  uint32_t num_spheres = 0;
  DBSVEC_RETURN_IF_ERROR(reader.ReadU32(&num_spheres));
  parsed.spheres.reserve(std::min<size_t>(num_spheres, 1024));
  for (uint32_t s = 0; s < num_spheres; ++s) {
    SubClusterSphere sphere;
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&sphere.cluster));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64(&sphere.sigma));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64(&sphere.radius_sq));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &sphere.center));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64(&sphere.radius));
    DBSVEC_RETURN_IF_ERROR(reader.ReadI64(&sphere.num_members));
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&sphere.num_support_vectors));
    parsed.spheres.push_back(std::move(sphere));
  }
  if (version >= 2) {
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&parsed.sv_budget));
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&parsed.sample_threshold));
  }
  if (version >= 3) {
    uint64_t num_absorbed = 0;
    DBSVEC_RETURN_IF_ERROR(reader.ReadU64(&num_absorbed));
    if (num_absorbed > reader.remaining() / (dim * 8)) {
      return Corrupt("absorbed overlay larger than the file");
    }
    std::vector<double> absorbed_values;
    DBSVEC_RETURN_IF_ERROR(
        reader.ReadF64Vector(num_absorbed * dim, &absorbed_values));
    parsed.absorbed_points = Dataset(parsed.dim, std::move(absorbed_values));
    parsed.absorbed_labels.reserve(num_absorbed);
    for (uint64_t i = 0; i < num_absorbed; ++i) {
      int32_t label = 0;
      DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&label));
      parsed.absorbed_labels.push_back(label);
    }
  }
  if (!reader.AtEnd()) {
    return Corrupt("unparsed bytes inside payload");
  }
  DBSVEC_RETURN_IF_ERROR(ValidateModel(parsed));
  *model = std::move(parsed);
  return Status::Ok();
}

Status ModelPayloadCrc(const DbsvecModel& model, uint32_t* crc) {
  std::vector<uint8_t> bytes;
  DBSVEC_RETURN_IF_ERROR(SerializeModel(model, &bytes));
  // The header stores the payload CRC at offset 12 (see the layout above);
  // recompute it over the payload instead of peeking at the header so this
  // stays correct if the header ever grows.
  *crc = Crc32(std::span<const uint8_t>(bytes).subspan(kHeaderBytes));
  return Status::Ok();
}

Status SaveModel(const DbsvecModel& model, const std::string& path) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("model.save"));
  std::vector<uint8_t> bytes;
  DBSVEC_RETURN_IF_ERROR(SerializeModel(model, &bytes));
  if (FailpointCorrupt("model.save") && bytes.size() > kHeaderBytes) {
    // Flip one payload byte after the CRC was computed: the file lands on
    // disk bit-rotted, and LoadModel must reject it with a checksum
    // mismatch instead of parsing garbage.
    bytes[kHeaderBytes] ^= 0x01;
  }
  return WriteFileBytesAtomic(path, bytes, "model.save");
}

Status LoadModel(const std::string& path, DbsvecModel* model) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("model.load"));
  std::vector<uint8_t> bytes;
  DBSVEC_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  if (FailpointCorrupt("model.load") && bytes.size() > kHeaderBytes) {
    bytes[kHeaderBytes] ^= 0x01;  // Simulated bit rot on the read path.
  }
  return DeserializeModel(bytes, model);
}

}  // namespace dbsvec
