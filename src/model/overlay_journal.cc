#include "model/overlay_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "fault/failpoint.h"
#include "model/serialize.h"

namespace dbsvec {
namespace {

/// Journal magic: "DBSVECJ1" as raw bytes at offset 0.
constexpr uint8_t kJournalMagic[8] = {'D', 'B', 'S', 'V', 'E', 'C', 'J', '1'};
constexpr uint32_t kJournalVersion = 1;
/// Header: magic (8) + version (4) + base_crc (4) + header CRC-32 (4).
constexpr size_t kJournalHeaderBytes = 20;
/// Per record: payload length (4) + payload CRC-32 (4).
constexpr size_t kRecordOverhead = 8;

std::string ErrnoSuffix() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

std::vector<uint8_t> BuildHeader(uint32_t base_crc) {
  ByteWriter writer;
  writer.WriteBytes(kJournalMagic);
  writer.WriteU32(kJournalVersion);
  writer.WriteU32(base_crc);
  writer.WriteU32(Crc32(writer.bytes()));
  return writer.TakeBytes();
}

/// True iff `bytes` starts with an intact header bound to `base_crc`.
bool HeaderMatches(std::span<const uint8_t> bytes, uint32_t base_crc) {
  if (bytes.size() < kJournalHeaderBytes) {
    return false;
  }
  const std::vector<uint8_t> expected = BuildHeader(base_crc);
  return std::equal(expected.begin(), expected.end(), bytes.begin());
}

size_t RecordPayloadBytes(int dim) {
  return 4 + static_cast<size_t>(dim) * 8;
}

}  // namespace

Status ParseFsyncPolicy(std::string_view name, FsyncPolicy* policy) {
  if (name == "always") {
    *policy = FsyncPolicy::kAlways;
  } else if (name == "interval") {
    *policy = FsyncPolicy::kInterval;
  } else if (name == "off") {
    *policy = FsyncPolicy::kOff;
  } else {
    return Status::InvalidArgument("unknown fsync policy '" +
                                   std::string(name) +
                                   "' (want always|interval|off)");
  }
  return Status::Ok();
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

OverlayJournal::OverlayJournal(std::string path, uint32_t base_crc, int dim,
                               FsyncPolicy policy)
    : path_(std::move(path)), dim_(dim), policy_(policy), base_crc_(base_crc) {}

OverlayJournal::~OverlayJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status OverlayJournal::Open(const std::string& path, uint32_t base_crc,
                            int dim, FsyncPolicy policy,
                            const ReplayFn& replay,
                            std::unique_ptr<OverlayJournal>* journal) {
  if (dim < 1) {
    return Status::InvalidArgument("journal: dim must be >= 1");
  }
  std::unique_ptr<OverlayJournal> opened(
      new OverlayJournal(path, base_crc, dim, policy));

  std::vector<uint8_t> bytes;
  const bool exists = ReadFileBytes(path, &bytes).ok();
  bool rewrite_header = !exists;
  if (exists && !HeaderMatches(bytes, base_crc)) {
    // The journal extends a model that is not the one being recovered
    // (or its header is corrupt); its records are either already folded
    // into a newer snapshot or meaningless. Discard, never replay.
    opened->stats_.journals_discarded = 1;
    rewrite_header = true;
  }
  if (rewrite_header) {
    DBSVEC_RETURN_IF_ERROR(WriteFileBytesAtomic(path, BuildHeader(base_crc)));
    opened->stats_.bytes = kJournalHeaderBytes;
    DBSVEC_RETURN_IF_ERROR(opened->ReopenForAppendLocked());
    *journal = std::move(opened);
    return Status::Ok();
  }

  // Replay the valid record prefix; the first torn record ends it.
  const size_t expected_payload = RecordPayloadBytes(dim);
  size_t offset = kJournalHeaderBytes;
  size_t good_end = offset;
  while (offset + kRecordOverhead <= bytes.size()) {
    ByteReader frame(std::span<const uint8_t>(bytes).subspan(offset, 8));
    uint32_t length = 0;
    uint32_t expected_crc = 0;
    (void)frame.ReadU32(&length);
    (void)frame.ReadU32(&expected_crc);
    if (length != expected_payload ||
        offset + kRecordOverhead + length > bytes.size()) {
      break;  // Torn length field or truncated payload.
    }
    const std::span<const uint8_t> payload =
        std::span<const uint8_t>(bytes).subspan(offset + kRecordOverhead,
                                                length);
    if (Crc32(payload) != expected_crc) {
      break;  // Torn payload.
    }
    ByteReader reader(payload);
    int32_t label = 0;
    std::vector<double> point;
    DBSVEC_RETURN_IF_ERROR(reader.ReadI32(&label));
    DBSVEC_RETURN_IF_ERROR(reader.ReadF64Vector(dim, &point));
    if (replay != nullptr) {
      DBSVEC_RETURN_IF_ERROR(replay(label, point));
    }
    offset += kRecordOverhead + length;
    good_end = offset;
    ++opened->stats_.records_replayed;
    ++opened->stats_.records;
  }
  if (good_end < bytes.size()) {
    opened->stats_.torn_bytes_truncated = bytes.size() - good_end;
    errno = 0;
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      return Status::IoError("journal: cannot truncate torn tail of " + path +
                             ErrnoSuffix());
    }
  }
  opened->stats_.bytes = good_end;
  DBSVEC_RETURN_IF_ERROR(opened->ReopenForAppendLocked());
  *journal = std::move(opened);
  return Status::Ok();
}

Status OverlayJournal::ReopenForAppendLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  errno = 0;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    return Status::IoError("journal: cannot open for append: " + path_ +
                           ErrnoSuffix());
  }
  return Status::Ok();
}

Status OverlayJournal::Append(int32_t label, std::span<const double> point) {
  if (point.size() != static_cast<size_t>(dim_)) {
    return Status::InvalidArgument("journal: point dim mismatch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto drop = [this](Status status) {
    ++stats_.records_dropped;
    degraded_.store(true, std::memory_order_relaxed);
    stats_.degraded = true;
    return status;
  };
  if (fd_ < 0 || poisoned_) {
    return drop(Status::IoError(
        "journal: unusable after an unrepaired write failure: " + path_));
  }
  if (Status injected = FailpointCheck("journal.append"); !injected.ok()) {
    return drop(std::move(injected));
  }

  ByteWriter payload;
  payload.WriteI32(label);
  payload.WriteF64Span(point);
  ByteWriter record;
  record.WriteU32(static_cast<uint32_t>(payload.bytes().size()));
  record.WriteU32(Crc32(payload.bytes()));
  record.WriteBytes(payload.bytes());
  const std::vector<uint8_t>& frame = record.bytes();

  if (FailpointEnospc("journal.append")) {
    return drop(Status::IoError("journal: no space left on device: " + path_ +
                                " (injected)"));
  }

  struct stat st{};
  const off_t pre_size = ::fstat(fd_, &st) == 0 ? st.st_size : -1;

  if (FailpointShortWrite("journal.append")) {
    // Persist a torn prefix — the on-disk shape of a crash mid-append —
    // and poison the journal so later appends cannot land after it (a
    // record behind a torn one would be silently lost by recovery).
    (void)!::write(fd_, frame.data(), frame.size() / 2);
    poisoned_ = true;
    return drop(
        Status::IoError("journal: short write: " + path_ + " (injected)"));
  }

  size_t written = 0;
  while (written < frame.size()) {
    errno = 0;
    const ssize_t wrote =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (wrote < 0 && errno == EINTR) {
      continue;
    }
    if (wrote <= 0) {
      break;
    }
    written += static_cast<size_t>(wrote);
  }
  Status status = Status::Ok();
  if (written != frame.size()) {
    status = Status::IoError("journal: write failed: " + path_ +
                             ErrnoSuffix());
  } else if (policy_ == FsyncPolicy::kAlways) {
    status = SyncLocked();
  }
  if (!status.ok()) {
    // Roll the partial (or unsynced) record back so "applied in memory"
    // and "present in the journal" stay exactly equivalent.
    if (pre_size < 0 || ::ftruncate(fd_, pre_size) != 0) {
      poisoned_ = true;
    }
    return drop(status);
  }
  ++stats_.appends_ok;
  ++stats_.records;
  stats_.bytes += frame.size();
  degraded_.store(false, std::memory_order_relaxed);
  stats_.degraded = false;
  return Status::Ok();
}

Status OverlayJournal::SyncLocked() {
  const auto fail = [this](Status status) {
    ++stats_.fsync_failures;
    degraded_.store(true, std::memory_order_relaxed);
    stats_.degraded = true;
    return status;
  };
  const Status injected = FailpointCheck("journal.fsync");
  if (!injected.ok()) {
    return fail(injected);
  }
  if (FailpointFsyncError("journal.fsync")) {
    return fail(Status::IoError("journal: fsync failed: " + path_ +
                                " (injected)"));
  }
  errno = 0;
  if (::fsync(fd_) != 0) {
    return fail(
        Status::IoError("journal: fsync failed: " + path_ + ErrnoSuffix()));
  }
  ++stats_.fsyncs;
  return Status::Ok();
}

Status OverlayJournal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    return Status::IoError("journal: not open: " + path_);
  }
  return SyncLocked();
}

Status OverlayJournal::Reset(uint32_t new_base_crc) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const Status written = WriteFileBytesAtomic(path_, BuildHeader(new_base_crc));
  const Status reopened = written.ok() ? ReopenForAppendLocked() : written;
  if (!written.ok() || !reopened.ok()) {
    // The old journal file (still bound to the old base) survives the
    // failed atomic rewrite, but this handle can no longer trust its
    // append position; fail fast until the next successful Reset.
    poisoned_ = true;
    degraded_.store(true, std::memory_order_relaxed);
    stats_.degraded = true;
    return written.ok() ? reopened : written;
  }
  base_crc_ = new_base_crc;
  poisoned_ = false;
  stats_.records = 0;
  stats_.bytes = kJournalHeaderBytes;
  ++stats_.resets;
  degraded_.store(false, std::memory_order_relaxed);
  stats_.degraded = false;
  return Status::Ok();
}

uint32_t OverlayJournal::base_crc() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_crc_;
}

OverlayJournalStats OverlayJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  OverlayJournalStats copy = stats_;
  copy.degraded = degraded_.load(std::memory_order_relaxed);
  return copy;
}

}  // namespace dbsvec
