#ifndef DBSVEC_MODEL_SERIALIZE_H_
#define DBSVEC_MODEL_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dbsvec {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`. Used as the
/// integrity checksum of the model file payload.
uint32_t Crc32(std::span<const uint8_t> bytes);

/// Append-only little-endian byte encoder. Every multi-byte value is
/// written byte by byte, so the produced stream is identical on big- and
/// little-endian hosts and a round-tripped model file is byte-stable.
class ByteWriter {
 public:
  void WriteU8(uint8_t value) { bytes_.push_back(value); }
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value) { WriteU32(static_cast<uint32_t>(value)); }
  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }
  /// IEEE-754 bit pattern, little-endian.
  void WriteF64(double value);
  void WriteF64Span(std::span<const double> values);
  void WriteBytes(std::span<const uint8_t> values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a fixed buffer. Every read
/// returns a Status instead of reading out of bounds, so a truncated or
/// garbage model file surfaces as an error, never as a crash.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  Status ReadU8(uint8_t* value);
  Status ReadU32(uint32_t* value);
  Status ReadU64(uint64_t* value);
  Status ReadI32(int32_t* value);
  Status ReadI64(int64_t* value);
  Status ReadF64(double* value);
  /// Reads `count` doubles appended to `*values`.
  Status ReadF64Vector(size_t count, std::vector<double>* values);
  Status ReadBytes(size_t count, std::vector<uint8_t>* values);

  size_t remaining() const { return bytes_.size() - offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  Status Need(size_t count) const;

  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

/// Writes `bytes` to `path` in one shot (single write, error-checked
/// close). NOT crash-safe: a crash mid-write leaves a torn file. Use
/// WriteFileBytesAtomic for any artifact another process may load.
Status WriteFileBytes(const std::string& path, std::span<const uint8_t> bytes);

/// Crash-safe replacement of `path` with `bytes`: writes `<path>.tmp`,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory, so
/// readers observe either the old file or the complete new one — never a
/// torn mix. The tmp file is unlinked on any failure and every error
/// Status names the path. When `failpoint_site` is non-empty, the
/// disk-failure modes (short_write / enospc / fsync_error) armed at that
/// site are honored.
Status WriteFileBytesAtomic(const std::string& path,
                            std::span<const uint8_t> bytes,
                            std::string_view failpoint_site = {});

/// Reads the whole of `path` into `*bytes`.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* bytes);

}  // namespace dbsvec

#endif  // DBSVEC_MODEL_SERIALIZE_H_
