#ifndef DBSVEC_SVM_ONE_CLASS_SVM_H_
#define DBSVEC_SVM_ONE_CLASS_SVM_H_

#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "svm/smo_solver.h"

namespace dbsvec {

/// Training configuration for the One-Class SVM.
struct OneClassSvmParams {
  /// ν ∈ (0, 1]: upper bound on the outlier fraction, lower bound on the
  /// support-vector fraction [Schölkopf et al. 2001].
  double nu = 0.1;
  /// Gaussian kernel width σ (> 0).
  double sigma = 1.0;
  /// Solver options.
  SmoOptions smo;
};

/// One-Class SVM [Schölkopf et al. 2001], estimating the support of a
/// distribution with the Gaussian kernel.
///
/// Included to validate footnote 1 of the paper: with a Gaussian kernel
/// (K(x,x) ≡ 1) and C = 1/(ν·ñ), the SVDD and OC-SVM duals differ only by
/// a constant, so both methods learn the same decision function. The
/// test suite asserts that equivalence against `Svdd`.
class OneClassSvm {
 public:
  struct SupportVector {
    PointIndex index = 0;
    double alpha = 0.0;
    bool at_bound = false;
  };

  /// Trains on `target` (indices into `dataset`).
  Status Train(const Dataset& dataset, std::span<const PointIndex> target,
               const OneClassSvmParams& params);

  /// Decision value f(x) = Σ α_i K(x_i, x) − ρ; non-negative inside the
  /// estimated support.
  double Decision(const Dataset& dataset,
                  std::span<const double> query) const;

  /// True iff the query lies inside the estimated support region.
  bool Contains(const Dataset& dataset, std::span<const double> query) const {
    return Decision(dataset, query) >= -1e-9;
  }

  const std::vector<SupportVector>& support_vectors() const {
    return support_vectors_;
  }
  /// The decision offset ρ.
  double rho() const { return rho_; }
  double sigma() const { return sigma_; }

 private:
  std::vector<SupportVector> support_vectors_;
  double rho_ = 0.0;
  double sigma_ = 1.0;
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_ONE_CLASS_SVM_H_
