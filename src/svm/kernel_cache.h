#ifndef DBSVEC_SVM_KERNEL_CACHE_H_
#define DBSVEC_SVM_KERNEL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/shared_row_cache.h"
#include "common/dataset.h"
#include "common/status.h"
#include "simd/soa_block.h"
#include "svm/kernel.h"

namespace dbsvec {

/// Lazily materialized kernel matrix over a *target set* (a subset of a
/// Dataset), with an LRU row cache — the same design libsvm uses, which the
/// paper's SVDD implementation is built on.
///
/// The SMO solver only ever touches two rows per iteration, so a bounded
/// row cache keeps memory O(cache_size) instead of O(ñ²) while serving the
/// common re-touched rows (the support vectors) from memory.
///
/// When the process-wide CacheManager is enabled (--cache-mb /
/// DBSVEC_CACHE_MB), every instance additionally accounts its resident
/// rows against the shared "kernel_rows" budget — concurrent solves share
/// one global limit instead of each assuming `max_bytes` — and consults
/// the cross-solve "svdd_rows" store before computing a row. Rows are
/// recomputed bit-identically on any miss, so results never depend on the
/// budget, residency, or what other solves are doing.
class KernelCache {
 public:
  /// Builds a cache over `target` (indices into `dataset`), Gaussian width
  /// `sigma`, and at most `max_bytes` of cached rows (at least two rows are
  /// always retained, budget permitting).
  KernelCache(const Dataset& dataset, std::span<const PointIndex> target,
              double sigma, size_t max_bytes = 64u << 20);
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// Number of target points ñ.
  int size() const { return static_cast<int>(target_.size()); }

  /// Row i of the kernel matrix: K(x_i, x_j) for every target j. The span
  /// is valid until the next Row() call (it may be evicted afterwards).
  /// A cache miss materializes the row with the global thread pool when
  /// the row is large enough to amortize the fan-out.
  std::span<const float> Row(int i);

  /// Materializes the given rows (indices into the target set) into the
  /// cache, computing the missing ones concurrently. Rows are inserted in
  /// argument order, so the LRU state ends up exactly as if each row had
  /// been fetched through Row() in that order; at most max_rows() rows are
  /// computed, and under a shared budget a row the reservation cannot
  /// admit is dropped (Row() recomputes it on demand). Not safe to call
  /// concurrently with itself or Row().
  void Materialize(std::span<const int> rows);

  /// Cache capacity in rows (the per-instance cap; a shared budget can
  /// constrain residency further).
  size_t max_rows() const { return max_rows_; }

  /// Accounted footprint of one resident row: payload floats plus the
  /// per-row bookkeeping (list node, hash-map node, vector header) — so
  /// `max_bytes` and the shared budget reflect actual memory, not just
  /// payload.
  size_t row_footprint_bytes() const { return row_footprint_bytes_; }

  /// Diagonal entry K(x_i, x_i); 1 for the Gaussian kernel.
  double Diag(int i) const {
    (void)i;
    return 1.0;
  }

  /// Single kernel entry. Served from a resident row when one covers it;
  /// otherwise the one entry is computed directly — never by
  /// materializing a full row — and the LRU state is left untouched.
  double At(int i, int j);

  /// Kernel value between target point i and an arbitrary query point.
  double AtQuery(int i, std::span<const double> query) const {
    return kernel_.FromSquaredDistance(
        dataset_.SquaredDistanceTo(target_[i], query));
  }

  /// The kernel in use.
  const GaussianKernel& kernel() const { return kernel_; }
  /// Dataset index of target point i.
  PointIndex target(int i) const { return target_[i]; }
  /// Instrumentation: rows served on a local cache miss (whether computed
  /// or pulled from the cross-solve store).
  uint64_t rows_computed() const { return rows_computed_; }
  /// Instrumentation: rows currently resident.
  size_t rows_resident() const { return rows_.size(); }

  /// Sticky materialization status. Row()/Materialize() cannot return a
  /// Status (Row hands out a span on the solver's hot path), so a row fill
  /// that fails — today only via the `kernel_cache.materialize` failpoint —
  /// records its first error here and the consumer (SmoSolver) checks it
  /// at its next step boundary. Once non-OK, subsequent row contents are
  /// unspecified and the solve must be abandoned.
  Status status() const;

 private:
  /// Computes row i; returns false when the fill was poisoned by an
  /// injected fault (the sticky status is set and the row must not be
  /// shared across solves).
  bool ComputeRow(int i, std::vector<float>* row) const;
  /// Fills `*row` on a local miss: cross-solve store first (when the
  /// manager is enabled), computing otherwise — and offers a freshly
  /// computed row back to the store.
  void FillRow(int i, std::vector<float>* row);
  /// Evicts the LRU tail, returning its bytes to the shared budget.
  void EvictTail();
  /// Inserts `row` as row i at the LRU front, evicting for capacity and
  /// budget. Returns false when the budget cannot admit the row even with
  /// the cache empty — the caller serves it from the fallback buffer.
  bool InsertRow(int i, std::vector<float>&& row);
  /// Records `status` as the sticky error if none is set yet. Safe from
  /// pool workers (Materialize fills rows concurrently).
  void RecordStatus(Status status) const;

  const Dataset& dataset_;
  std::vector<PointIndex> target_;
  /// SoA copy of the target points: row fills run through the batched
  /// RbfRow micro-kernel instead of per-point distance loops.
  simd::SoaBlockView target_view_;
  GaussianKernel kernel_;
  size_t row_footprint_bytes_;
  size_t max_rows_;

  // Shared-budget wiring; null/zero when the manager is disabled.
  std::shared_ptr<cache::CacheHandle> budget_;
  cache::SharedRowCache* shared_rows_ = nullptr;
  uint64_t signature_token_ = 0;

  // LRU bookkeeping: most recently used rows at the front.
  std::list<int> lru_;
  struct Entry {
    std::vector<float> row;
    std::list<int>::iterator lru_pos;
  };
  std::unordered_map<int, Entry> rows_;
  /// Serves a row the budget could not admit; valid until the next Row()
  /// call, exactly like a resident row's span.
  std::vector<float> fallback_row_;
  uint64_t rows_computed_ = 0;

  mutable std::mutex status_mutex_;
  mutable Status status_;  // First row-fill failure; OK while healthy.
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_KERNEL_CACHE_H_
