#ifndef DBSVEC_SVM_KERNEL_CACHE_H_
#define DBSVEC_SVM_KERNEL_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "simd/soa_block.h"
#include "svm/kernel.h"

namespace dbsvec {

/// Lazily materialized kernel matrix over a *target set* (a subset of a
/// Dataset), with an LRU row cache — the same design libsvm uses, which the
/// paper's SVDD implementation is built on.
///
/// The SMO solver only ever touches two rows per iteration, so a bounded
/// row cache keeps memory O(cache_size) instead of O(ñ²) while serving the
/// common re-touched rows (the support vectors) from memory.
class KernelCache {
 public:
  /// Builds a cache over `target` (indices into `dataset`), Gaussian width
  /// `sigma`, and at most `max_bytes` of cached rows (at least two rows are
  /// always retained).
  KernelCache(const Dataset& dataset, std::span<const PointIndex> target,
              double sigma, size_t max_bytes = 64u << 20);

  /// Number of target points ñ.
  int size() const { return static_cast<int>(target_.size()); }

  /// Row i of the kernel matrix: K(x_i, x_j) for every target j. The span
  /// is valid until the next Row() call (it may be evicted afterwards).
  /// A cache miss materializes the row with the global thread pool when
  /// the row is large enough to amortize the fan-out.
  std::span<const float> Row(int i);

  /// Materializes the given rows (indices into the target set) into the
  /// cache, computing the missing ones concurrently. Rows are inserted in
  /// argument order, so the LRU state ends up exactly as if each row had
  /// been fetched through Row() in that order; at most max_rows() rows are
  /// computed. Not safe to call concurrently with itself or Row().
  void Materialize(std::span<const int> rows);

  /// Cache capacity in rows.
  size_t max_rows() const { return max_rows_; }

  /// Diagonal entry K(x_i, x_i); 1 for the Gaussian kernel.
  double Diag(int i) const {
    (void)i;
    return 1.0;
  }

  /// Single kernel entry (uses the cache if row i is resident).
  double At(int i, int j);

  /// Kernel value between target point i and an arbitrary query point.
  double AtQuery(int i, std::span<const double> query) const {
    return kernel_.FromSquaredDistance(
        dataset_.SquaredDistanceTo(target_[i], query));
  }

  /// The kernel in use.
  const GaussianKernel& kernel() const { return kernel_; }
  /// Dataset index of target point i.
  PointIndex target(int i) const { return target_[i]; }
  /// Instrumentation: rows computed (cache misses).
  uint64_t rows_computed() const { return rows_computed_; }

  /// Sticky materialization status. Row()/Materialize() cannot return a
  /// Status (Row hands out a span on the solver's hot path), so a row fill
  /// that fails — today only via the `kernel_cache.materialize` failpoint —
  /// records its first error here and the consumer (SmoSolver) checks it
  /// at its next step boundary. Once non-OK, subsequent row contents are
  /// unspecified and the solve must be abandoned.
  Status status() const;

 private:
  void ComputeRow(int i, std::vector<float>* row) const;
  /// Records `status` as the sticky error if none is set yet. Safe from
  /// pool workers (Materialize fills rows concurrently).
  void RecordStatus(Status status) const;

  const Dataset& dataset_;
  std::vector<PointIndex> target_;
  /// SoA copy of the target points: row fills run through the batched
  /// RbfRow micro-kernel instead of per-point distance loops.
  simd::SoaBlockView target_view_;
  GaussianKernel kernel_;
  size_t max_rows_;

  // LRU bookkeeping: most recently used rows at the front.
  std::list<int> lru_;
  struct Entry {
    std::vector<float> row;
    std::list<int>::iterator lru_pos;
  };
  std::unordered_map<int, Entry> rows_;
  uint64_t rows_computed_ = 0;

  mutable std::mutex status_mutex_;
  mutable Status status_;  // First row-fill failure; OK while healthy.
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_KERNEL_CACHE_H_
