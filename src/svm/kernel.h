#ifndef DBSVEC_SVM_KERNEL_H_
#define DBSVEC_SVM_KERNEL_H_

#include <cmath>
#include <span>

#include "common/dataset.h"

namespace dbsvec {

/// Gaussian (RBF) kernel K(x, y) = exp(-||x - y||² / (2σ²)) — Eq. 6 of the
/// paper. σ is the RMS width; the paper's kernel-parameter selection
/// strategy (Sec. IV-B2) picks σ = r/√2 with r the radius of the target
/// set, the derived lower bound that avoids the "crater" overfitting
/// regime.
class GaussianKernel {
 public:
  /// Creates a kernel with width `sigma` (> 0).
  explicit GaussianKernel(double sigma)
      : inv_two_sigma_sq_(1.0 / (2.0 * sigma * sigma)), sigma_(sigma) {}

  /// K(a, b) for two coordinate vectors of equal length.
  double operator()(std::span<const double> a,
                    std::span<const double> b) const {
    return FromSquaredDistance(SquaredDistance(a, b));
  }

  /// K value given a precomputed squared Euclidean distance.
  double FromSquaredDistance(double dist_sq) const {
    return std::exp(-dist_sq * inv_two_sigma_sq_);
  }

  /// The RMS width parameter.
  double sigma() const { return sigma_; }

  /// The precomputed exponent coefficient 1/(2σ²) — handed to the batched
  /// RbfRow micro-kernel so its exp() argument matches
  /// FromSquaredDistance bit for bit.
  double inv_two_sigma_sq() const { return inv_two_sigma_sq_; }

 private:
  double inv_two_sigma_sq_;
  double sigma_;
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_KERNEL_H_
