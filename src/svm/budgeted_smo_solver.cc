#include "svm/budgeted_smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "simd/simd.h"

namespace dbsvec {
namespace {

/// Adds 2·delta·K(row k, ·) to the gradient — the exact repair for an α_k
/// change of `delta`. Element-wise, so chunking is bit-identical to the
/// sequential loop.
void RepairGradient(KernelCache* kernel, int k, double delta,
                    std::vector<double>* grad) {
  const std::span<const float> row = kernel->Row(k);
  const double d2 = 2.0 * delta;
  ParallelFor(grad->size(), 2048, [&](size_t begin, size_t end) {
    simd::ActiveOps().axpy_float(d2, row.data() + begin,
                                 grad->data() + begin, end - begin);
  });
}

/// One budget-maintenance step: the active set has grown past B, so merge
/// the two least-violating SVs (or forget the least-violating one when the
/// `svdd.budget_merge` nonconverge mode forces the forget path). Mass the
/// survivor's cap cannot hold is projected onto the other active SVs in
/// ascending-gradient order. `alpha` changes are applied here along with
/// their exact gradient repairs.
Status Maintain(const Dataset& dataset, KernelCache* kernel,
                std::span<const double> upper_bounds,
                std::vector<double>* alpha, std::vector<double>* grad,
                int* active_count, BudgetedSmoSolution* solution) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("svdd.budget_merge"));
  const int n = kernel->size();
  std::vector<double>& a = *alpha;

  // The two smallest-α active SVs: under a unit-norm kernel (K_ii = 1) the
  // perturbation of the expansion from dropping SV p is ‖α_pΦ(x_p)‖ = α_p,
  // so smallest α = least violating. Ties break on the smaller index.
  int first = -1;
  int second = -1;
  for (int k = 0; k < n; ++k) {
    if (a[k] <= 0.0) {
      continue;
    }
    if (first < 0 || a[k] < a[first]) {
      second = first;
      first = k;
    } else if (second < 0 || a[k] < a[second]) {
      second = k;
    }
  }
  if (first < 0 || second < 0) {
    // Cannot happen (maintenance only runs with > B >= 1 actives); keep a
    // clean error over UB if it ever does.
    return Status::Internal("budgeted SMO: maintenance with < 2 active SVs");
  }

  int loser = first;
  double leftover = 0.0;
  // Deltas to apply: (index, change). At most 2 entries before projection.
  std::vector<std::pair<int, double>> deltas;
  if (!FailpointNonconverge("svdd.budget_merge")) {
    // Weighted-midpoint merge: z = (α_f·x_f + α_s·x_s)/(α_f + α_s),
    // snapped to the nearer of the two original points so the surviving SV
    // stays an addressable dataset point.
    const int dim = dataset.dim();
    const auto pf = dataset.point(kernel->target(first));
    const auto ps = dataset.point(kernel->target(second));
    const double mass = a[first] + a[second];
    const double wf = a[first] / mass;
    double df = 0.0;  // ‖z − x_f‖² and ‖z − x_s‖², expanded per dimension.
    double ds = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double z = wf * pf[d] + (1.0 - wf) * ps[d];
      df += (z - pf[d]) * (z - pf[d]);
      ds += (z - ps[d]) * (z - ps[d]);
    }
    const int survivor = ds < df ? second : first;
    loser = survivor == first ? second : first;
    const double new_s = std::min(mass, upper_bounds[survivor]);
    leftover = mass - new_s;
    deltas.emplace_back(survivor, new_s - a[survivor]);
    deltas.emplace_back(loser, -a[loser]);
    ++solution->merges;
  } else {
    // Forced forget path: drop the least-violating SV outright and project
    // its mass onto the rest of the active set.
    leftover = a[first];
    deltas.emplace_back(loser, -a[loser]);
    ++solution->forgets;
  }

  if (leftover > 0.0) {
    // Projection step: Σα = 1 must survive the merge, so the mass the
    // survivor's box cap rejected goes to active SVs with headroom, lowest
    // gradient first (the direction the objective most wants mass).
    std::vector<int> recipients;
    for (int k = 0; k < n; ++k) {
      if (a[k] > 0.0 && k != loser && a[k] < upper_bounds[k]) {
        recipients.push_back(k);
      }
    }
    std::sort(recipients.begin(), recipients.end(), [&](int x, int y) {
      const double gx = (*grad)[x];
      const double gy = (*grad)[y];
      return gx != gy ? gx < gy : x < y;
    });
    for (const int k : recipients) {
      if (leftover <= 0.0) {
        break;
      }
      double headroom = upper_bounds[k] - a[k];
      for (const auto& [idx, delta] : deltas) {
        if (idx == k) {
          headroom -= delta;  // The survivor may already sit at its cap.
        }
      }
      const double take = std::min(headroom, leftover);
      if (take <= 0.0) {
        continue;
      }
      deltas.emplace_back(k, take);
      leftover -= take;
    }
    if (leftover > 1e-12) {
      // The caps of at most B active SVs cannot carry Σα = 1: the budget is
      // infeasible for this problem's box constraints. Fail the solve so
      // the caller degrades to exact expansion.
      return Status::InvalidArgument(
          "budgeted SMO: support-vector budget too small for the box "
          "constraints (raise --sv-budget or lower nu)");
    }
  }

  for (const auto& [k, delta] : deltas) {
    if (delta == 0.0) {
      continue;
    }
    a[k] += delta;
    RepairGradient(kernel, k, delta, grad);
    DBSVEC_RETURN_IF_ERROR(kernel->status());
  }
  a[loser] = 0.0;  // Exact: its delta was -a[loser].
  --*active_count;
  return Status::Ok();
}

}  // namespace

Status BudgetedSmoSolver::Solve(const Dataset& dataset, KernelCache* kernel,
                                std::span<const double> upper_bounds,
                                const BudgetedSmoOptions& options,
                                BudgetedSmoSolution* solution) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("smo.solve"));
  const int n = kernel->size();
  const int budget = options.budget;
  if (budget < 1) {
    return Status::InvalidArgument("budgeted SMO: budget must be >= 1");
  }
  if (n == 0) {
    return Status::InvalidArgument("SMO: empty target set");
  }
  if (static_cast<int>(upper_bounds.size()) != n) {
    return Status::InvalidArgument("SMO: bounds size mismatch");
  }
  double bound_sum = 0.0;
  for (const double c : upper_bounds) {
    if (c < 0.0) {
      return Status::InvalidArgument("SMO: negative upper bound");
    }
    bound_sum += c;
  }
  if (bound_sum < 1.0) {
    return Status::InvalidArgument(
        "SMO: infeasible problem, sum of upper bounds < 1");
  }

  // Feasible start within the budget: fill the largest caps first (the
  // order that reaches Σα = 1 with the fewest actives), at most B of them.
  std::vector<int> by_cap(n);
  std::iota(by_cap.begin(), by_cap.end(), 0);
  std::sort(by_cap.begin(), by_cap.end(), [&](int x, int y) {
    return upper_bounds[x] != upper_bounds[y]
               ? upper_bounds[x] > upper_bounds[y]
               : x < y;
  });
  std::vector<double>& alpha = solution->alpha;
  alpha.assign(n, 0.0);
  double remaining = 1.0;
  int active_count = 0;
  for (const int i : by_cap) {
    if (remaining <= 0.0 || active_count >= budget) {
      break;
    }
    const double take = std::min(upper_bounds[i], remaining);
    if (take <= 0.0) {
      continue;
    }
    alpha[i] = take;
    remaining -= take;
    ++active_count;
  }
  if (remaining > 0.0) {
    return Status::InvalidArgument(
        "budgeted SMO: support-vector budget too small for the box "
        "constraints (raise --sv-budget or lower nu)");
  }

  // Gradient g_i = 2·(Kα)_i − K_ii over the initial actives, exactly as in
  // the exact solver.
  std::vector<double> grad(n);
  for (int i = 0; i < n; ++i) {
    grad[i] = -kernel->Diag(i);
  }
  std::vector<int> init_rows;
  for (int j = 0; j < n; ++j) {
    if (alpha[j] > 0.0) {
      init_rows.push_back(j);
    }
  }
  kernel->Materialize(init_rows);
  DBSVEC_RETURN_IF_ERROR(kernel->status());
  for (const int j : init_rows) {
    RepairGradient(kernel, j, alpha[j], &grad);
  }
  DBSVEC_RETURN_IF_ERROR(kernel->status());

  // The budget also caps the work: O(B) iterations of O(ñ) each keeps a
  // budgeted solve O(B·ñ) total, independent of how hard the sub-problem
  // is. Hitting this cap is the solver meeting its contract, not a
  // failure — see BudgetedSmoSolution::converged.
  const int64_t max_iterations =
      options.smo.max_iterations > 0
          ? options.smo.max_iterations
          : std::max<int64_t>(64, 16LL * budget);

  solution->budget_limited = false;
  bool gap_closed = false;
  std::vector<float> row_i_copy;
  int64_t iter = 0;
  for (; iter < max_iterations; ++iter) {
    int i_up = -1;
    int j_down = -1;
    double min_grad = std::numeric_limits<double>::infinity();
    double max_grad = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < n; ++k) {
      if (alpha[k] < upper_bounds[k] && grad[k] < min_grad) {
        min_grad = grad[k];
        i_up = k;
      }
      if (alpha[k] > 0.0 && grad[k] > max_grad) {
        max_grad = grad[k];
        j_down = k;
      }
    }
    if (i_up < 0 || j_down < 0 ||
        max_grad - min_grad < options.smo.tolerance) {
      gap_closed = true;
      break;
    }

    const std::span<const float> row_i = kernel->Row(i_up);
    // Copy: fetching row j may evict row i from the cache.
    row_i_copy.assign(row_i.begin(), row_i.end());
    const std::span<const float> row_j = kernel->Row(j_down);
    DBSVEC_RETURN_IF_ERROR(kernel->status());

    const double k_ii = kernel->Diag(i_up);
    const double k_jj = kernel->Diag(j_down);
    const double k_ij = row_j[i_up];
    double eta = 2.0 * (k_ii + k_jj - 2.0 * k_ij);
    if (eta <= 1e-12) {
      eta = 1e-12;
    }
    double t = (grad[j_down] - grad[i_up]) / eta;
    t = std::min(t, upper_bounds[i_up] - alpha[i_up]);
    t = std::min(t, alpha[j_down]);
    if (t <= 0.0) {
      gap_closed = true;  // Numerical corner: the pair cannot move.
      break;
    }
    const bool i_was_active = alpha[i_up] > 0.0;
    alpha[i_up] += t;
    alpha[j_down] -= t;
    if (!i_was_active) {
      ++active_count;
    }
    if (alpha[j_down] <= 0.0) {
      alpha[j_down] = 0.0;
      --active_count;
    }
    const double t2 = 2.0 * t;
    simd::ActiveOps().gradient_update(t2, row_i_copy.data(), row_j.data(),
                                      grad.data(), static_cast<size_t>(n));
    if (active_count > budget) {
      DBSVEC_RETURN_IF_ERROR(Maintain(dataset, kernel, upper_bounds, &alpha,
                                      &grad, &active_count, solution));
    }
  }
  solution->iterations = iter;
  solution->budget_limited = !gap_closed;
  // A feasible α within budget is a successful budgeted solve whether the
  // KKT gap closed or the iteration budget ran out — bounded cost is the
  // contract. Only injected faults report nonconvergence.
  solution->converged = true;

  double alpha_grad = 0.0;
  double alpha_diag = 0.0;
  for (int i = 0; i < n; ++i) {
    alpha_grad += alpha[i] * grad[i];
    alpha_diag += alpha[i] * kernel->Diag(i);
  }
  solution->alpha_k_alpha = 0.5 * (alpha_grad + alpha_diag);
  if (FailpointNonconverge("smo.solve")) {
    solution->converged = false;
  }
  return Status::Ok();
}

}  // namespace dbsvec
