#include "svm/svdd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/failpoint.h"
#include "svm/budgeted_smo_solver.h"

namespace dbsvec {

double Svdd::SelectSigma(const Dataset& dataset,
                         std::span<const PointIndex> target) {
  const int dim = dataset.dim();
  std::vector<double> centroid(dim, 0.0);
  for (const PointIndex i : target) {
    const auto p = dataset.point(i);
    for (int j = 0; j < dim; ++j) {
      centroid[j] += p[j];
    }
  }
  for (double& c : centroid) {
    c /= static_cast<double>(target.size());
  }
  double max_dist_sq = 0.0;
  for (const PointIndex i : target) {
    max_dist_sq = std::max(max_dist_sq,
                           dataset.SquaredDistanceTo(i, centroid));
  }
  const double r = std::sqrt(max_dist_sq);
  constexpr double kSqrt2 = 1.41421356237309504880;
  constexpr double kMinSigma = 1e-9;
  return std::max(kMinSigma, r / kSqrt2);
}

Status Svdd::Train(const Dataset& dataset,
                   std::span<const PointIndex> target,
                   const SvddParams& params, SvddModel* model) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("svdd.train"));
  const int n = static_cast<int>(target.size());
  if (n == 0) {
    return Status::InvalidArgument("SVDD: empty target set");
  }
  if (!params.weights.empty() &&
      static_cast<int>(params.weights.size()) != n) {
    return Status::InvalidArgument("SVDD: weights size mismatch");
  }

  double c = params.c;
  if (params.nu > 0.0) {
    c = 1.0 / (params.nu * n);
  }
  if (c <= 0.0) {
    return Status::InvalidArgument("SVDD: neither nu nor c is set");
  }

  const double sigma =
      params.sigma > 0.0 ? params.sigma : SelectSigma(dataset, target);

  // Per-point caps C_i = ω_i·C (Eq. 11). Scale up minimally if infeasible.
  std::vector<double> bounds(n);
  double bound_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double w = params.weights.empty() ? 1.0 : params.weights[i];
    bounds[i] = std::min(1.0, w * c);
    bound_sum += bounds[i];
  }
  bool caps_rescaled = false;
  if (bound_sum < 1.0) {
    const double scale = 1.0000001 / bound_sum;
    for (double& b : bounds) {
      b = std::min(1.0, b * scale);
    }
    caps_rescaled = true;
  }

  KernelCache cache(dataset, target, sigma);
  SmoSolution solution;
  int64_t budget_merges = 0;
  int64_t budget_forgets = 0;
  bool budget_limited = false;
  if (params.sv_budget > 0) {
    BudgetedSmoOptions budget_options;
    budget_options.budget = params.sv_budget;
    budget_options.smo = params.smo;
    BudgetedSmoSolution budgeted;
    DBSVEC_RETURN_IF_ERROR(BudgetedSmoSolver::Solve(
        dataset, &cache, bounds, budget_options, &budgeted));
    solution.alpha = std::move(budgeted.alpha);
    solution.alpha_k_alpha = budgeted.alpha_k_alpha;
    solution.iterations = budgeted.iterations;
    solution.converged = budgeted.converged;
    budget_merges = budgeted.merges;
    budget_forgets = budgeted.forgets;
    budget_limited = budgeted.budget_limited;
  } else {
    DBSVEC_RETURN_IF_ERROR(
        SmoSolver::Solve(&cache, bounds, params.smo, &solution));
  }

  model->support_vectors_.clear();
  model->sigma_ = sigma;
  model->alpha_k_alpha_ = solution.alpha_k_alpha;
  model->smo_iterations_ = solution.iterations;
  model->converged_ = solution.converged;
  model->caps_rescaled_ = caps_rescaled;
  model->budget_merges_ = budget_merges;
  model->budget_forgets_ = budget_forgets;
  model->budget_limited_ = budget_limited;
  if (FailpointNonconverge("svdd.train")) {
    model->converged_ = false;
  }

  // α below this floor is numerical noise, not a support vector.
  const double alpha_floor = 1e-8;
  for (int i = 0; i < n; ++i) {
    const double a = solution.alpha[i];
    if (a <= alpha_floor) {
      continue;
    }
    const bool at_bound = a >= bounds[i] - 1e-12;
    model->support_vectors_.push_back(
        {.index = target[i], .alpha = a, .at_bound = at_bound});
  }
  // R² is the mean F(x) over the normal SVs (0 < α < C_i), falling back to
  // all SVs if every α sits at its bound. Must run after the SV list is
  // complete since Distance2 sums over it.
  double nsv_dist_sum = 0.0;
  int nsv_count = 0;
  double sv_dist_sum = 0.0;
  int sv_count = 0;
  for (const SvddModel::SupportVector& sv : model->support_vectors_) {
    const double f = model->Distance2(dataset, dataset.point(sv.index));
    sv_dist_sum += f;
    ++sv_count;
    if (!sv.at_bound) {
      nsv_dist_sum += f;
      ++nsv_count;
    }
  }
  if (nsv_count > 0) {
    model->radius_sq_ = nsv_dist_sum / nsv_count;
  } else if (sv_count > 0) {
    model->radius_sq_ = sv_dist_sum / sv_count;
  } else {
    model->radius_sq_ = 0.0;
  }
  if (FailpointCorrupt("svdd.train")) {
    // Deterministic degenerate sphere: a NaN radius is what a genuinely
    // pathological solve produces, and it must route the caller to the
    // exact-expansion fallback rather than poison containment tests.
    model->radius_sq_ = std::numeric_limits<double>::quiet_NaN();
  }
  return Status::Ok();
}

double SvddModel::Distance2(const Dataset& dataset,
                            std::span<const double> query) const {
  const GaussianKernel kernel(sigma_);
  double cross = 0.0;
  for (const SupportVector& sv : support_vectors_) {
    cross += sv.alpha * kernel.FromSquaredDistance(
                            dataset.SquaredDistanceTo(sv.index, query));
  }
  // K(x, x) = 1 for the Gaussian kernel.
  return 1.0 - 2.0 * cross + alpha_k_alpha_;
}

}  // namespace dbsvec
