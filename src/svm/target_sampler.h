#ifndef DBSVEC_SVM_TARGET_SAMPLER_H_
#define DBSVEC_SVM_TARGET_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"

namespace dbsvec {

/// Options for the boundary-preserving SVDD target sampler.
struct TargetSamplerOptions {
  /// Size threshold S: targets with more than S members are sampled down
  /// to exactly S. <= 0 disables sampling.
  int threshold = 0;
  /// Fraction of the sample taken from the outer shell (largest distance
  /// to the target centroid); the rest is a uniform floor over the
  /// interior. The shell is where SVDD support vectors live, so ranking by
  /// centroid distance preserves the decision boundary (after *Efficient
  /// SVDD Sampling with Approximation Guarantees*); the uniform floor
  /// keeps interior density represented so the fitted R² stays calibrated.
  double outer_fraction = 0.7;
  /// Seed for the uniform floor. The same seed always selects the same
  /// sample for the same target, independent of thread or shard count.
  uint64_t seed = 7;
};

/// Boundary-preserving sampler for large SVDD target sets.
class TargetSampler {
 public:
  /// When `target` exceeds `options.threshold`, fills `*sample` with
  /// exactly `threshold` members — the outer shell by distance-to-centroid
  /// rank plus a uniform floor over the interior — preserving `target`'s
  /// relative order, and returns true. Returns false (sample untouched)
  /// when sampling does not apply. Deterministic given the seed; no global
  /// RNG state is consumed.
  static bool Sample(const Dataset& dataset,
                     std::span<const PointIndex> target,
                     const TargetSamplerOptions& options,
                     std::vector<PointIndex>* sample);
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_TARGET_SAMPLER_H_
