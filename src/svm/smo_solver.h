#ifndef DBSVEC_SVM_SMO_SOLVER_H_
#define DBSVEC_SVM_SMO_SOLVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "svm/kernel_cache.h"

namespace dbsvec {

/// Options for the SMO quadratic-program solver.
struct SmoOptions {
  /// KKT violation tolerance: the solve stops when the maximal violating
  /// pair's gradient gap falls below this.
  double tolerance = 1e-3;
  /// Iteration cap; 0 means max(10'000, 100·ñ).
  int64_t max_iterations = 0;
};

/// Output of an SMO solve.
struct SmoSolution {
  /// Optimal Lagrange multipliers α (length ñ).
  std::vector<double> alpha;
  /// αᵀKα at the optimum (needed for the SVDD radius and discrimination
  /// function, Eq. 12).
  double alpha_k_alpha = 0.0;
  /// Iterations actually performed.
  int64_t iterations = 0;
  /// False iff the iteration cap was hit before the tolerance was met.
  bool converged = false;
};

/// Sequential Minimal Optimization [Platt 1999] for the weighted SVDD dual
/// (Eq. 11 of the paper):
///
///   min   Σᵢⱼ αᵢαⱼ K(xᵢ,xⱼ) − Σᵢ αᵢ K(xᵢ,xᵢ)
///   s.t.  0 ≤ αᵢ ≤ upper_bound[i]  (= ωᵢ·C),   Σᵢ αᵢ = 1
///
/// Working-set selection is the maximal-violating-pair rule (libsvm's
/// first-order rule). Each iteration updates exactly two multipliers along
/// the equality constraint and refreshes the cached gradient in O(ñ), so
/// the overall cost is linear in ñ per iteration — the property the paper
/// relies on for its O(ñ) SVDD training claim.
class SmoSolver {
 public:
  /// Solves the dual over the target set behind `kernel`. `upper_bounds`
  /// must have one entry per target point; their sum must be >= 1 for the
  /// problem to be feasible (returns InvalidArgument otherwise).
  static Status Solve(KernelCache* kernel,
                      std::span<const double> upper_bounds,
                      const SmoOptions& options, SmoSolution* solution);
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_SMO_SOLVER_H_
