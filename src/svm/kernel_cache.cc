#include "svm/kernel_cache.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "fault/failpoint.h"

namespace dbsvec {
namespace {

/// Kernel entries per parallel chunk; below this a row is computed inline.
constexpr size_t kRowGrain = 1024;

}  // namespace

KernelCache::KernelCache(const Dataset& dataset,
                         std::span<const PointIndex> target, double sigma,
                         size_t max_bytes)
    : dataset_(dataset),
      target_(target.begin(), target.end()),
      target_view_(dataset, target_),
      kernel_(sigma) {
  const size_t row_bytes = std::max<size_t>(1, target_.size()) * sizeof(float);
  max_rows_ = std::max<size_t>(2, max_bytes / row_bytes);
}

void KernelCache::RecordStatus(Status status) const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  if (status_.ok()) {
    status_ = std::move(status);
  }
}

Status KernelCache::status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

void KernelCache::ComputeRow(int i, std::vector<float>* row) const {
  const size_t n = static_cast<size_t>(size());
  row->resize(n);
  if (Status injected = FailpointCheck("kernel_cache.materialize");
      !injected.ok()) {
    // The row buffer stays zeroed; the sticky status tells the solver to
    // abandon the solve before any such row can influence the result.
    RecordStatus(std::move(injected));
    return;
  }
  const auto xi = dataset_.point(target_[i]);
  const double inv_two_sigma_sq = kernel_.inv_two_sigma_sq();
  float* out = row->data();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
    target_view_.RbfRow(xi, inv_two_sigma_sq, begin, end, out + begin);
  });
}

std::span<const float> KernelCache::Row(int i) {
  auto it = rows_.find(i);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.row;
  }
  if (rows_.size() >= max_rows_) {
    const int victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
  }
  lru_.push_front(i);
  Entry& entry = rows_[i];
  entry.lru_pos = lru_.begin();
  ComputeRow(i, &entry.row);
  ++rows_computed_;
  return entry.row;
}

void KernelCache::Materialize(std::span<const int> rows) {
  // Missing rows, deduplicated, insertion order preserved, capped at the
  // cache capacity (computing past capacity would evict rows materialized
  // a moment earlier).
  std::vector<int> missing;
  for (const int i : rows) {
    if (missing.size() >= max_rows_) {
      break;
    }
    if (rows_.find(i) == rows_.end() &&
        std::find(missing.begin(), missing.end(), i) == missing.end()) {
      missing.push_back(i);
    }
  }
  if (missing.empty()) {
    return;
  }
  std::vector<std::vector<float>> computed(missing.size());
  ParallelFor(missing.size(), 1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      ComputeRow(missing[k], &computed[k]);
    }
  });
  // Sequential insertion in argument order reproduces the LRU transitions
  // of one Row() call per row.
  for (size_t k = 0; k < missing.size(); ++k) {
    if (rows_.size() >= max_rows_) {
      const int victim = lru_.back();
      lru_.pop_back();
      rows_.erase(victim);
    }
    lru_.push_front(missing[k]);
    Entry& entry = rows_[missing[k]];
    entry.lru_pos = lru_.begin();
    entry.row = std::move(computed[k]);
    ++rows_computed_;
  }
}

double KernelCache::At(int i, int j) {
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    return it->second.row[j];
  }
  const auto jt = rows_.find(j);
  if (jt != rows_.end()) {
    return jt->second.row[i];
  }
  return kernel_.FromSquaredDistance(
      dataset_.SquaredDistance(target_[i], target_[j]));
}

}  // namespace dbsvec
