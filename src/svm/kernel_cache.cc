#include "svm/kernel_cache.h"

#include <algorithm>

namespace dbsvec {

KernelCache::KernelCache(const Dataset& dataset,
                         std::span<const PointIndex> target, double sigma,
                         size_t max_bytes)
    : dataset_(dataset),
      target_(target.begin(), target.end()),
      kernel_(sigma) {
  const size_t row_bytes = std::max<size_t>(1, target_.size()) * sizeof(float);
  max_rows_ = std::max<size_t>(2, max_bytes / row_bytes);
}

void KernelCache::ComputeRow(int i, std::vector<float>* row) const {
  const int n = size();
  row->resize(n);
  const auto xi = dataset_.point(target_[i]);
  for (int j = 0; j < n; ++j) {
    (*row)[j] = static_cast<float>(kernel_.FromSquaredDistance(
        dataset_.SquaredDistanceTo(target_[j], xi)));
  }
}

std::span<const float> KernelCache::Row(int i) {
  auto it = rows_.find(i);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.row;
  }
  if (rows_.size() >= max_rows_) {
    const int victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
  }
  lru_.push_front(i);
  Entry& entry = rows_[i];
  entry.lru_pos = lru_.begin();
  ComputeRow(i, &entry.row);
  ++rows_computed_;
  return entry.row;
}

double KernelCache::At(int i, int j) {
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    return it->second.row[j];
  }
  const auto jt = rows_.find(j);
  if (jt != rows_.end()) {
    return jt->second.row[i];
  }
  return kernel_.FromSquaredDistance(
      dataset_.SquaredDistance(target_[i], target_[j]));
}

}  // namespace dbsvec
