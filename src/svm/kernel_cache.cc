#include "svm/kernel_cache.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "fault/failpoint.h"

namespace dbsvec {
namespace {

/// Kernel entries per parallel chunk; below this a row is computed inline.
constexpr size_t kRowGrain = 1024;

/// Per-row bookkeeping bytes beyond the payload floats: the std::list
/// node (value + two links), the unordered_map node (key, Entry, hash
/// link), amortized bucket-array share, and the row vector's header.
/// An estimate — node layouts are implementation-defined — but close
/// enough that max_bytes tracks actual footprint instead of undercounting
/// by ~100 bytes per row.
constexpr size_t kRowOverheadBytes = 128;

}  // namespace

KernelCache::KernelCache(const Dataset& dataset,
                         std::span<const PointIndex> target, double sigma,
                         size_t max_bytes)
    : dataset_(dataset),
      target_(target.begin(), target.end()),
      target_view_(dataset, target_),
      kernel_(sigma) {
  row_footprint_bytes_ =
      std::max<size_t>(1, target_.size()) * sizeof(float) +
      kRowOverheadBytes;
  max_rows_ = std::max<size_t>(2, max_bytes / row_footprint_bytes_);
  cache::CacheManager& manager = cache::CacheManager::Global();
  if (manager.enabled()) {
    budget_ = manager.Register("kernel_rows");
    shared_rows_ = &cache::SharedRowCache::Global();
    signature_token_ = shared_rows_->InternSignature(
        cache::MakeTargetSignature(dataset_, target_, sigma));
  }
}

KernelCache::~KernelCache() {
  if (budget_ != nullptr) {
    budget_->Release(rows_.size() * row_footprint_bytes_);
    budget_->AddEntries(-static_cast<int64_t>(rows_.size()));
  }
}

void KernelCache::RecordStatus(Status status) const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  if (status_.ok()) {
    status_ = std::move(status);
  }
}

Status KernelCache::status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

bool KernelCache::ComputeRow(int i, std::vector<float>* row) const {
  const size_t n = static_cast<size_t>(size());
  row->resize(n);
  if (Status injected = FailpointCheck("kernel_cache.materialize");
      !injected.ok()) {
    // The row buffer stays zeroed; the sticky status tells the solver to
    // abandon the solve before any such row can influence the result.
    RecordStatus(std::move(injected));
    return false;
  }
  const auto xi = dataset_.point(target_[i]);
  const double inv_two_sigma_sq = kernel_.inv_two_sigma_sq();
  float* out = row->data();
  ParallelFor(n, kRowGrain, [&](size_t begin, size_t end) {
    target_view_.RbfRow(xi, inv_two_sigma_sq, begin, end, out + begin);
  });
  return true;
}

void KernelCache::FillRow(int i, std::vector<float>* row) {
  if (shared_rows_ != nullptr) {
    if (const auto cached = shared_rows_->Lookup(signature_token_, i);
        cached != nullptr) {
      // A shared row is the bit-identical result of the same computation
      // from an earlier (or concurrent) solve over this exact target set.
      row->assign(cached->begin(), cached->end());
      return;
    }
    if (ComputeRow(i, row)) {
      shared_rows_->Insert(
          signature_token_, i,
          std::make_shared<const std::vector<float>>(*row));
    }
    return;
  }
  ComputeRow(i, row);
}

void KernelCache::EvictTail() {
  const int victim = lru_.back();
  lru_.pop_back();
  rows_.erase(victim);
  if (budget_ != nullptr) {
    budget_->Release(row_footprint_bytes_);
    budget_->AddEntries(-1);
    budget_->RecordEviction();
  }
}

bool KernelCache::InsertRow(int i, std::vector<float>&& row) {
  while (rows_.size() >= max_rows_) {
    EvictTail();
  }
  if (budget_ != nullptr) {
    // A rebalance may have shrunk the kernel_rows share below what this
    // and other solves hold; converge from our side before growing.
    while (budget_->over_limit() && !lru_.empty()) {
      EvictTail();
    }
    while (!budget_->Reserve(row_footprint_bytes_)) {
      if (lru_.empty()) {
        return false;  // Budget refuses even a lone row: serve uncached.
      }
      EvictTail();
    }
    budget_->AddEntries(1);
  }
  lru_.push_front(i);
  Entry& entry = rows_[i];
  entry.lru_pos = lru_.begin();
  entry.row = std::move(row);
  return true;
}

std::span<const float> KernelCache::Row(int i) {
  auto it = rows_.find(i);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    if (budget_ != nullptr) {
      budget_->RecordAccess(true);
    }
    return it->second.row;
  }
  if (budget_ != nullptr) {
    budget_->RecordAccess(false);
  }
  std::vector<float> row;
  FillRow(i, &row);
  ++rows_computed_;
  if (!InsertRow(i, std::move(row))) {
    // The budget could not admit the row (InsertRow declined before
    // moving, so `row` still holds the values); hand it out through the
    // fallback buffer. Its span obeys the same contract (valid until the
    // next Row() call) and the LRU state is untouched, so a later,
    // less-pressured call can still cache this row.
    fallback_row_ = std::move(row);
    return fallback_row_;
  }
  return rows_.find(i)->second.row;
}

void KernelCache::Materialize(std::span<const int> rows) {
  // Missing rows, deduplicated, insertion order preserved, capped at the
  // cache capacity (computing past capacity would evict rows materialized
  // a moment earlier).
  std::vector<int> missing;
  for (const int i : rows) {
    if (missing.size() >= max_rows_) {
      break;
    }
    if (rows_.find(i) == rows_.end() &&
        std::find(missing.begin(), missing.end(), i) == missing.end()) {
      missing.push_back(i);
    }
  }
  if (budget_ != nullptr) {
    for (size_t k = 0; k < rows.size(); ++k) {
      // One access per requested row, mirroring the Row()-per-row
      // accounting the sequential path would have produced.
      budget_->RecordAccess(k < rows.size() - missing.size());
    }
  }
  if (missing.empty()) {
    return;
  }
  std::vector<std::vector<float>> computed(missing.size());
  ParallelFor(missing.size(), 1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      FillRow(missing[k], &computed[k]);
    }
  });
  // Sequential insertion in argument order reproduces the LRU transitions
  // of one Row() call per row; a row the budget cannot admit is dropped
  // and recomputed by the Row() call that needs it.
  for (size_t k = 0; k < missing.size(); ++k) {
    ++rows_computed_;
    InsertRow(missing[k], std::move(computed[k]));
  }
}

double KernelCache::At(int i, int j) {
  // Served from a resident row when possible; a double miss computes the
  // single entry directly (the AtQuery machinery) — materializing a full
  // O(ñ) row for one entry would thrash the LRU for nothing.
  const auto it = rows_.find(i);
  if (it != rows_.end()) {
    return it->second.row[j];
  }
  const auto jt = rows_.find(j);
  if (jt != rows_.end()) {
    return jt->second.row[i];
  }
  return kernel_.FromSquaredDistance(
      dataset_.SquaredDistance(target_[i], target_[j]));
}

}  // namespace dbsvec
