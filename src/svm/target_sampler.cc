#include "svm/target_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace dbsvec {

bool TargetSampler::Sample(const Dataset& dataset,
                           std::span<const PointIndex> target,
                           const TargetSamplerOptions& options,
                           std::vector<PointIndex>* sample) {
  const size_t n = target.size();
  const int threshold = options.threshold;
  if (threshold <= 0 || n <= static_cast<size_t>(threshold)) {
    return false;
  }
  const size_t budget = static_cast<size_t>(threshold);

  // Distance of every member to the target centroid: the ranking that
  // separates the outer shell (boundary candidates) from the interior.
  const int dim = dataset.dim();
  std::vector<double> centroid(dim, 0.0);
  for (const PointIndex i : target) {
    const auto p = dataset.point(i);
    for (int d = 0; d < dim; ++d) {
      centroid[d] += p[d];
    }
  }
  for (double& c : centroid) {
    c /= static_cast<double>(n);
  }
  std::vector<double> dist_sq(n);
  for (size_t k = 0; k < n; ++k) {
    dist_sq[k] = dataset.SquaredDistanceTo(target[k], centroid);
  }

  // Positions sorted by distance descending (ties on position, so the
  // order never depends on anything but the target itself).
  std::vector<size_t> by_dist(n);
  std::iota(by_dist.begin(), by_dist.end(), 0);
  std::sort(by_dist.begin(), by_dist.end(), [&](size_t x, size_t y) {
    return dist_sq[x] != dist_sq[y] ? dist_sq[x] > dist_sq[y] : x < y;
  });

  const double outer_fraction =
      std::clamp(options.outer_fraction, 0.0, 1.0);
  const size_t outer = std::min(
      budget, static_cast<size_t>(
                  std::ceil(outer_fraction * static_cast<double>(budget))));
  std::vector<uint8_t> chosen(n, 0);
  for (size_t k = 0; k < outer; ++k) {
    chosen[by_dist[k]] = 1;
  }

  // Uniform floor over the interior: a partial Fisher-Yates over the
  // not-yet-chosen positions, driven by a sampler-local Rng (so runs with
  // sampling off consume exactly the RNG stream they always did, and the
  // sample never depends on what other sub-clusters trained before it).
  const size_t floor_count = budget - outer;
  if (floor_count > 0) {
    std::vector<size_t> pool(by_dist.begin() + outer, by_dist.end());
    Rng rng(options.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<uint64_t>(n));
    for (size_t k = 0; k < floor_count; ++k) {
      const size_t j =
          k + static_cast<size_t>(rng.NextBounded(pool.size() - k));
      std::swap(pool[k], pool[j]);
      chosen[pool[k]] = 1;
    }
  }

  sample->clear();
  sample->reserve(budget);
  for (size_t k = 0; k < n; ++k) {
    if (chosen[k] != 0) {
      sample->push_back(target[k]);
    }
  }
  return true;
}

}  // namespace dbsvec
