#include "svm/one_class_svm.h"

#include "svm/kernel.h"
#include "svm/kernel_cache.h"

namespace dbsvec {

Status OneClassSvm::Train(const Dataset& dataset,
                          std::span<const PointIndex> target,
                          const OneClassSvmParams& params) {
  const int n = static_cast<int>(target.size());
  if (n == 0) {
    return Status::InvalidArgument("OC-SVM: empty target set");
  }
  if (params.nu <= 0.0 || params.nu > 1.0) {
    return Status::InvalidArgument("OC-SVM: nu must be in (0, 1]");
  }
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("OC-SVM: sigma must be positive");
  }
  sigma_ = params.sigma;

  // Schölkopf's dual, normalized so that Σα = 1:
  //   min ½ αᵀKα   s.t.  0 ≤ α_i ≤ 1/(ν·ñ),  Σα = 1.
  // For the Gaussian kernel (K_ii ≡ 1) this is the SVDD dual (Eq. 4 of
  // the paper) up to a constant, so the same SMO solver applies — which is
  // precisely the equivalence footnote 1 of the paper states.
  const double cap = 1.0 / (params.nu * n);
  std::vector<double> bounds(n, cap);
  KernelCache cache(dataset, target, params.sigma);
  SmoSolution solution;
  DBSVEC_RETURN_IF_ERROR(
      SmoSolver::Solve(&cache, bounds, params.smo, &solution));

  support_vectors_.clear();
  constexpr double kAlphaFloor = 1e-8;
  for (int i = 0; i < n; ++i) {
    const double a = solution.alpha[i];
    if (a <= kAlphaFloor) {
      continue;
    }
    support_vectors_.push_back(
        {.index = target[i], .alpha = a, .at_bound = a >= cap - 1e-12});
  }

  // ρ = f-value at the free (non-bound) support vectors, which sit exactly
  // on the decision surface; averaged for numerical robustness.
  const GaussianKernel kernel(params.sigma);
  double rho_sum = 0.0;
  int rho_count = 0;
  double bound_sum = 0.0;
  int bound_count = 0;
  for (const SupportVector& sv : support_vectors_) {
    double f = 0.0;
    for (const SupportVector& other : support_vectors_) {
      f += other.alpha * kernel.FromSquaredDistance(
                             dataset.SquaredDistance(other.index, sv.index));
    }
    if (!sv.at_bound) {
      rho_sum += f;
      ++rho_count;
    } else {
      bound_sum += f;
      ++bound_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / rho_count;
  } else if (bound_count > 0) {
    rho_ = bound_sum / bound_count;
  } else {
    rho_ = 0.0;
  }
  return Status::Ok();
}

double OneClassSvm::Decision(const Dataset& dataset,
                             std::span<const double> query) const {
  const GaussianKernel kernel(sigma_);
  double f = 0.0;
  for (const SupportVector& sv : support_vectors_) {
    f += sv.alpha * kernel.FromSquaredDistance(
                        dataset.SquaredDistanceTo(sv.index, query));
  }
  return f - rho_;
}

}  // namespace dbsvec
