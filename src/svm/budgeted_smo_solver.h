#ifndef DBSVEC_SVM_BUDGETED_SMO_SOLVER_H_
#define DBSVEC_SVM_BUDGETED_SMO_SOLVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "svm/kernel_cache.h"
#include "svm/smo_solver.h"

namespace dbsvec {

/// Options for the budget-capped SMO solver.
struct BudgetedSmoOptions {
  /// Hard cap B on active support vectors (α > 0). Must be >= 1.
  int budget = 0;
  /// Tolerance and iteration cap. `smo.max_iterations == 0` here means
  /// max(64, 16·B) — linear in the budget, *not* in ñ, which is what makes
  /// a budgeted solve O(B·ñ) total instead of O(ñ²).
  SmoOptions smo;
};

/// Output of a budgeted SMO solve.
struct BudgetedSmoSolution {
  /// Feasible multipliers α (length ñ) with at most B nonzero entries.
  std::vector<double> alpha;
  /// αᵀKα at the final iterate (exact: the gradient is repaired through
  /// every merge/forget, so the identity αᵀg = 2αᵀKα − Σα_iK_ii holds).
  double alpha_k_alpha = 0.0;
  /// Iterations actually performed.
  int64_t iterations = 0;
  /// A budgeted solve that produced a feasible α is converged by contract:
  /// stopping at the iteration budget is the solver doing its job (bounded
  /// cost), not a failure. False only under fault injection.
  bool converged = false;
  /// True when the solve stopped at the iteration budget with the KKT gap
  /// still above the tolerance — the expected mode on hard sub-problems.
  bool budget_limited = false;
  /// Budget-maintenance events this solve: weighted-midpoint merges of the
  /// two least-violating SVs, and outright forgets of the least-violating
  /// one (the forced path under the `svdd.budget_merge` nonconverge mode).
  int64_t merges = 0;
  int64_t forgets = 0;
};

/// SMO for the weighted SVDD dual (see SmoSolver) with a hard cap B on the
/// number of active support vectors, after *Scalable Support Vector
/// Clustering Using Budget*: whenever a step would leave more than B points
/// active, the two least-violating SVs (smallest α — the pair whose removal
/// perturbs the expansion Σα_iΦ(x_i) least under a unit-norm kernel) are
/// merged. The merge is a weighted midpoint in input space snapped to the
/// nearer of the two original points, so every surviving SV remains an
/// addressable dataset point (the sphere's Distance2 and the expansion's
/// range queries both identify SVs by dataset index). Mass the survivor's
/// box cap cannot hold is projected back onto the remaining active SVs in
/// ascending-gradient order, keeping 0 ≤ α ≤ C_i and Σα = 1 feasible
/// throughout; a budget whose active caps cannot carry Σα = 1 fails the
/// solve with InvalidArgument, which callers treat as "budgeted solve
/// failed" and degrade to exact expansion.
class BudgetedSmoSolver {
 public:
  /// Solves the dual over the target set behind `kernel` (`dataset` is the
  /// dataset the kernel's target indices point into; the merge step needs
  /// the input-space coordinates). Same feasibility contract as
  /// SmoSolver::Solve, plus `options.budget >= 1`.
  static Status Solve(const Dataset& dataset, KernelCache* kernel,
                      std::span<const double> upper_bounds,
                      const BudgetedSmoOptions& options,
                      BudgetedSmoSolution* solution);
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_BUDGETED_SMO_SOLVER_H_
