#include "svm/smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "simd/simd.h"

namespace dbsvec {

Status SmoSolver::Solve(KernelCache* kernel,
                        std::span<const double> upper_bounds,
                        const SmoOptions& options, SmoSolution* solution) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("smo.solve"));
  const int n = kernel->size();
  if (n == 0) {
    return Status::InvalidArgument("SMO: empty target set");
  }
  if (static_cast<int>(upper_bounds.size()) != n) {
    return Status::InvalidArgument("SMO: bounds size mismatch");
  }
  double bound_sum = 0.0;
  for (const double c : upper_bounds) {
    if (c < 0.0) {
      return Status::InvalidArgument("SMO: negative upper bound");
    }
    bound_sum += c;
  }
  if (bound_sum < 1.0) {
    return Status::InvalidArgument(
        "SMO: infeasible problem, sum of upper bounds < 1");
  }

  // Feasible start: fill multipliers greedily up to their caps until the
  // equality constraint Σα = 1 is met.
  std::vector<double>& alpha = solution->alpha;
  alpha.assign(n, 0.0);
  double remaining = 1.0;
  for (int i = 0; i < n && remaining > 0.0; ++i) {
    const double take = std::min(upper_bounds[i], remaining);
    alpha[i] = take;
    remaining -= take;
  }

  // Gradient of the objective: g_i = 2·(Kα)_i − K_ii. Initialization costs
  // one cached row per initially-nonzero multiplier (a handful: ~1/C).
  // The needed rows are known upfront, so they are materialized
  // concurrently; the accumulation then runs row-by-row in index order
  // (chunked over i), which keeps the floating-point sums bit-identical
  // to the sequential loop.
  std::vector<double> grad(n);
  for (int i = 0; i < n; ++i) {
    grad[i] = -kernel->Diag(i);
  }
  std::vector<int> init_rows;
  for (int j = 0; j < n; ++j) {
    if (alpha[j] > 0.0) {
      init_rows.push_back(j);
    }
  }
  kernel->Materialize(init_rows);
  DBSVEC_RETURN_IF_ERROR(kernel->status());
  for (const int j : init_rows) {
    const std::span<const float> row = kernel->Row(j);
    const double aj2 = 2.0 * alpha[j];
    ParallelFor(static_cast<size_t>(n), 2048,
                [&](size_t begin, size_t end) {
                  // grad[i] += aj2 * row[i], batched; element-wise, so any
                  // chunking is bit-identical to the sequential loop.
                  simd::ActiveOps().axpy_float(aj2, row.data() + begin,
                                               grad.data() + begin,
                                               end - begin);
                });
  }

  const int64_t max_iterations =
      options.max_iterations > 0
          ? options.max_iterations
          : std::max<int64_t>(10'000, 100LL * n);

  solution->converged = false;
  // Reused across iterations: constructing it inside the loop costs one
  // heap allocation per SMO step.
  std::vector<float> row_i_copy;
  int64_t iter = 0;
  for (; iter < max_iterations; ++iter) {
    // Maximal violating pair: i can move up (α_i < C_i) with minimal
    // gradient; j can move down (α_j > 0) with maximal gradient.
    int i_up = -1;
    int j_down = -1;
    double min_grad = std::numeric_limits<double>::infinity();
    double max_grad = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < n; ++k) {
      if (alpha[k] < upper_bounds[k] && grad[k] < min_grad) {
        min_grad = grad[k];
        i_up = k;
      }
      if (alpha[k] > 0.0 && grad[k] > max_grad) {
        max_grad = grad[k];
        j_down = k;
      }
    }
    if (i_up < 0 || j_down < 0 || max_grad - min_grad < options.tolerance) {
      solution->converged = true;
      break;
    }

    const std::span<const float> row_i = kernel->Row(i_up);
    // Copy: fetching row j may evict row i from the cache.
    row_i_copy.assign(row_i.begin(), row_i.end());
    const std::span<const float> row_j = kernel->Row(j_down);
    // A row fill that failed (fault injection) leaves the cache with a
    // sticky error and unspecified row contents; abandon the solve before
    // those rows can steer an update.
    DBSVEC_RETURN_IF_ERROR(kernel->status());

    const double k_ii = kernel->Diag(i_up);
    const double k_jj = kernel->Diag(j_down);
    const double k_ij = row_j[i_up];
    double eta = 2.0 * (k_ii + k_jj - 2.0 * k_ij);
    if (eta <= 1e-12) {
      eta = 1e-12;  // Degenerate curvature: take a clipped maximal step.
    }
    // Unconstrained optimum of the 1-D subproblem along α_i += t,
    // α_j −= t.
    double t = (grad[j_down] - grad[i_up]) / eta;
    t = std::min(t, upper_bounds[i_up] - alpha[i_up]);
    t = std::min(t, alpha[j_down]);
    if (t <= 0.0) {
      // Numerical corner: the violating pair cannot move. Treat as
      // converged at this tolerance.
      solution->converged = true;
      break;
    }
    alpha[i_up] += t;
    alpha[j_down] -= t;
    const double t2 = 2.0 * t;
    // grad[k] += t2 * (row_i[k] - row_j[k]) over the whole row — the
    // per-iteration hot loop of the solver, batched.
    simd::ActiveOps().gradient_update(t2, row_i_copy.data(), row_j.data(),
                                      grad.data(), static_cast<size_t>(n));
  }
  solution->iterations = iter;

  // αᵀKα recovered from the final gradient:
  //   αᵀg = 2·αᵀKα − Σ α_i K_ii.
  double alpha_grad = 0.0;
  double alpha_diag = 0.0;
  for (int i = 0; i < n; ++i) {
    alpha_grad += alpha[i] * grad[i];
    alpha_diag += alpha[i] * kernel->Diag(i);
  }
  solution->alpha_k_alpha = 0.5 * (alpha_grad + alpha_diag);
  if (FailpointNonconverge("smo.solve")) {
    // Deterministic degraded solve: the multipliers are a valid feasible
    // point, but the solve reports the iteration cap as hit — exactly what
    // downstream degradation policies must survive.
    solution->converged = false;
  }
  return Status::Ok();
}

}  // namespace dbsvec
