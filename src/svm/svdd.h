#ifndef DBSVEC_SVM_SVDD_H_
#define DBSVEC_SVM_SVDD_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "svm/kernel.h"
#include "svm/smo_solver.h"

namespace dbsvec {

/// Training configuration for (weighted) SVDD.
struct SvddParams {
  /// OC-SVM-style penalty ν ∈ (0, 1]: C = 1/(ν·ñ) (Sec. IV-C). ν is an
  /// upper bound on the fraction of boundary SVs and a lower bound on the
  /// fraction of SVs. If <= 0, `c` is used directly.
  double nu = 0.0;
  /// Direct penalty factor C (used only when nu <= 0). If both are unset,
  /// training fails with InvalidArgument.
  double c = 0.0;
  /// Gaussian width σ; <= 0 selects σ = r/√2 automatically, where r is the
  /// distance from the target-set centroid to its farthest member
  /// (Sec. IV-B2).
  double sigma = 0.0;
  /// Per-point penalty weights ω_i (Eq. 7); the dual box constraint becomes
  /// 0 ≤ α_i ≤ ω_i·C. Empty means unweighted (all ω_i = 1). If the weighted
  /// caps are infeasible (Σ ω_iC < 1) they are scaled up minimally.
  std::vector<double> weights;
  /// > 0: hard cap B on active support vectors. The solve runs through
  /// BudgetedSmoSolver (merge/forget of least-violating SVs, iteration cap
  /// linear in B), bounding per-solve cost at O(B·ñ). 0 = exact SMO.
  int sv_budget = 0;
  /// Solver options.
  SmoOptions smo;
};

/// A trained SVDD sphere description (Sec. II-D / IV-A of the paper).
class SvddModel {
 public:
  /// One support vector: a point with α > 0.
  struct SupportVector {
    PointIndex index = 0;  ///< Index into the original dataset.
    double alpha = 0.0;    ///< Lagrange multiplier.
    bool at_bound = false; ///< True for boundary SVs (α = ω_iC, outside).
  };

  /// All support vectors (both normal and boundary), α > 0.
  const std::vector<SupportVector>& support_vectors() const {
    return support_vectors_;
  }
  /// Squared sphere radius in feature space.
  double radius_sq() const { return radius_sq_; }
  /// σ used by the trained kernel.
  double sigma() const { return sigma_; }
  /// αᵀKα — the constant term of the discrimination function.
  double alpha_k_alpha() const { return alpha_k_alpha_; }
  /// Iterations the SMO solve took.
  int64_t smo_iterations() const { return smo_iterations_; }
  /// Whether the solver met its tolerance.
  bool converged() const { return converged_; }
  /// True when the weighted caps were infeasible (Σ ω_iC < 1) and had to be
  /// scaled up to admit a solution — a sign the caller's ν/weights were too
  /// aggressive for this target set.
  bool caps_rescaled() const { return caps_rescaled_; }
  /// Budget-maintenance events of a budgeted solve (0 under exact SMO).
  int64_t budget_merges() const { return budget_merges_; }
  int64_t budget_forgets() const { return budget_forgets_; }
  /// True when a budgeted solve stopped at its iteration budget with the
  /// KKT gap still open — expected on hard sub-problems, not a failure.
  bool budget_limited() const { return budget_limited_; }

  /// True when the trained sphere is unusable for expansion: a non-finite
  /// radius or constant term, or no support vectors at all. Callers should
  /// fall back to exact range-query expansion for such sub-clusters.
  bool degenerate() const {
    return support_vectors_.empty() || !std::isfinite(radius_sq_) ||
           !std::isfinite(alpha_k_alpha_) || !std::isfinite(sigma_) ||
           sigma_ <= 0.0;
  }

  /// Squared feature-space distance from Φ(query) to the sphere center
  /// (Eq. 12): F(x) = K(x,x) − 2Σᵢ αᵢK(xᵢ,x) + αᵀKα.
  double Distance2(const Dataset& dataset,
                   std::span<const double> query) const;

  /// True iff the query point lies inside or on the sphere
  /// (F(x) ≤ R², Eq. 12).
  bool Contains(const Dataset& dataset, std::span<const double> query) const {
    return Distance2(dataset, query) <= radius_sq_ + 1e-9;
  }

 private:
  friend class Svdd;

  std::vector<SupportVector> support_vectors_;
  double radius_sq_ = 0.0;
  double sigma_ = 1.0;
  double alpha_k_alpha_ = 0.0;
  int64_t smo_iterations_ = 0;
  bool converged_ = false;
  bool caps_rescaled_ = false;
  int64_t budget_merges_ = 0;
  int64_t budget_forgets_ = 0;
  bool budget_limited_ = false;
};

/// Trainer for the weighted SVDD model of Sec. IV-A.
class Svdd {
 public:
  /// Trains on the target set `target` (indices into `dataset`).
  /// On success fills `*model`.
  static Status Train(const Dataset& dataset,
                      std::span<const PointIndex> target,
                      const SvddParams& params, SvddModel* model);

  /// σ = r/√2 with r the distance from the centroid of `target` to its
  /// farthest member — the paper's kernel-width selection (Sec. IV-B2).
  /// Returns a small positive floor if all points coincide.
  static double SelectSigma(const Dataset& dataset,
                            std::span<const PointIndex> target);
};

}  // namespace dbsvec

#endif  // DBSVEC_SVM_SVDD_H_
