#include "svm/kernel.h"

// GaussianKernel is header-only; this translation unit exists so the build
// fails loudly if the header stops being self-contained.

namespace dbsvec {}  // namespace dbsvec
