#include "cache/shared_row_cache.h"

#include <cstring>
#include <utility>

namespace dbsvec::cache {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

TargetSignature MakeTargetSignature(const Dataset& dataset,
                                    std::span<const PointIndex> target,
                                    double sigma) {
  TargetSignature signature;
  std::memcpy(&signature.sigma_bits, &sigma, sizeof(sigma));
  signature.ids.assign(target.begin(), target.end());
  uint64_t fp = kFnvOffset;
  const int dim = dataset.dim();
  fp = FnvMix(fp, &dim, sizeof(dim));
  for (const PointIndex i : target) {
    const auto point = dataset.point(i);
    fp = FnvMix(fp, point.data(), point.size() * sizeof(double));
  }
  signature.coord_fp = fp;
  return signature;
}

SharedRowCache::SharedRowCache(std::shared_ptr<CacheHandle> handle,
                               int num_stripes)
    : handle_(std::move(handle)) {
  stripes_.reserve(static_cast<size_t>(num_stripes));
  for (int i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

SharedRowCache& SharedRowCache::Global() {
  static SharedRowCache* cache = new SharedRowCache(
      CacheManager::Global().Register("svdd_rows"));
  return *cache;
}

uint64_t SharedRowCache::InternSignature(TargetSignature signature) {
  const size_t bytes =
      signature.ids.size() * sizeof(PointIndex) + kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(sig_mutex_);
  for (auto it = signatures_.begin(); it != signatures_.end(); ++it) {
    if (it->signature == signature) {
      signatures_.splice(signatures_.begin(), signatures_, it);
      return it->token;
    }
  }
  while (signatures_.size() >= kMaxSignatures) {
    handle_->Release(signatures_.back().bytes);
    signatures_.pop_back();
  }
  // The registry is bounded and tiny next to the row store, but its id
  // vectors are real memory — account them. A refused reservation still
  // interns (tokens must exist for the row store to work) with zero
  // accounted bytes; at most kMaxSignatures id vectors ride unaccounted.
  const size_t accounted = handle_->Reserve(bytes) ? bytes : 0;
  const uint64_t token = next_token_++;
  signatures_.push_front(
      {.signature = std::move(signature), .token = token,
       .bytes = accounted});
  return token;
}

std::shared_ptr<const std::vector<float>> SharedRowCache::Lookup(
    uint64_t token, int row) {
  const RowKey key{token, row};
  Stripe& stripe = StripeFor(key);
  std::shared_ptr<const std::vector<float>> values;
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.rows.find(key);
    if (it != stripe.rows.end()) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru,
                        it->second.lru_pos);
      values = it->second.values;
    }
  }
  handle_->RecordAccess(values != nullptr);
  return values;
}

void SharedRowCache::EvictOne(Stripe* stripe) {
  const RowKey victim = stripe->lru.back();
  stripe->lru.pop_back();
  const auto it = stripe->rows.find(victim);
  handle_->Release(it->second.bytes);
  handle_->AddEntries(-1);
  handle_->RecordEviction();
  stripe->rows.erase(it);
}

void SharedRowCache::Insert(uint64_t token, int row,
                            std::shared_ptr<const std::vector<float>> values) {
  const RowKey key{token, row};
  const size_t bytes =
      values->size() * sizeof(float) + kEntryOverheadBytes;
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.rows.find(key) != stripe.rows.end()) {
    return;  // A concurrent solve cached it first (same bits either way).
  }
  // Shrink this stripe while the share is under pressure, then reserve;
  // a row that still does not fit is simply not cached.
  while (handle_->over_limit() && !stripe.lru.empty()) {
    EvictOne(&stripe);
  }
  while (!handle_->Reserve(bytes)) {
    if (stripe.lru.empty()) {
      return;
    }
    EvictOne(&stripe);
  }
  stripe.lru.push_front(key);
  Entry& entry = stripe.rows[key];
  entry.values = std::move(values);
  entry.bytes = bytes;
  entry.lru_pos = stripe.lru.begin();
  handle_->AddEntries(1);
}

void SharedRowCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    for (const auto& [key, entry] : stripe->rows) {
      handle_->Release(entry.bytes);
      handle_->AddEntries(-1);
    }
    stripe->rows.clear();
    stripe->lru.clear();
  }
  std::lock_guard<std::mutex> lock(sig_mutex_);
  for (const InternedSignature& sig : signatures_) {
    handle_->Release(sig.bytes);
  }
  signatures_.clear();
}

}  // namespace dbsvec::cache
