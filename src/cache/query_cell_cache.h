#ifndef DBSVEC_CACHE_QUERY_CELL_CACHE_H_
#define DBSVEC_CACHE_QUERY_CELL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cache/cache_manager.h"
#include "common/dataset.h"
#include "index/neighbor_index.h"

namespace dbsvec::cache {

/// Serving-side cache of hot assign-path range-query results, keyed by the
/// quantized query cell (one AssignmentEngine = one model snapshot, so the
/// model identity is implicit in the cache's lifetime — a /v1/reload swaps
/// in a new engine with a fresh cache via the RCU EngineHandle).
///
/// Design: space is quantized into cells of side ε/4. A cell's entry holds
/// the *superset* of core candidates any in-cell query can reach — the
/// result of one range query at the cell center with radius inflated by
/// the cell half-diagonal (plus a relative slack absorbing floating-point
/// rounding in the triangle inequality). The caller re-filters candidates
/// with exact squared distances (bit-identical to the index's own leaf
/// scans), so labels are exactly what the uncached path produces; the
/// cache only changes how many points the exact filter touches.
///
/// Entries live in lock-striped LRU buckets accounted against the
/// manager's "assign_query" share; a candidate set the budget cannot admit
/// is not cached and the query falls through to the index.
class QueryCellCache {
 public:
  static constexpr size_t kEntryOverheadBytes = 160;
  /// Cell side as a fraction of ε: smaller cells mean tighter candidate
  /// supersets (less exact-filter work per hit) but more distinct cells.
  static constexpr double kCellFraction = 0.25;

  QueryCellCache(const NeighborIndex* index, double epsilon, int dim,
                 std::shared_ptr<CacheHandle> handle, int num_stripes = 16);
  /// Returns every accounted byte to the manager (an engine's cache dies
  /// on /v1/reload; its budget must not leak with it).
  ~QueryCellCache() { Clear(); }

  QueryCellCache(const QueryCellCache&) = delete;
  QueryCellCache& operator=(const QueryCellCache&) = delete;

  /// Fills `*candidates` with a superset of the core ids within ε of
  /// `query` — from the cell's cached entry, or by issuing the inflated
  /// range query and caching it. The caller must filter by exact distance.
  void Candidates(std::span<const double> query,
                  std::vector<PointIndex>* candidates);

  /// Drops every entry (online refresh changes what a cell *could* answer
  /// for the overlay path, so absorption clears the cache even though the
  /// static-index candidates it stores would remain valid).
  void Clear();

  const CacheHandle& handle() const { return *handle_; }

 private:
  struct CellKey {
    std::vector<int64_t> cell;
    bool operator==(const CellKey& other) const {
      return cell == other.cell;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      uint64_t h = 1469598103934665603ULL;
      for (const int64_t c : key.cell) {
        h ^= static_cast<uint64_t>(c);
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    std::vector<PointIndex> candidates;
    size_t bytes = 0;
    std::list<CellKey>::iterator lru_pos;
  };
  struct Stripe {
    std::mutex mutex;
    std::list<CellKey> lru;  ///< Most recent at the front.
    std::unordered_map<CellKey, Entry, CellKeyHash> cells;
  };

  Stripe& StripeFor(const CellKey& key) {
    return *stripes_[CellKeyHash()(key) % stripes_.size()];
  }
  void EvictOne(Stripe* stripe);

  const NeighborIndex* index_;
  const double cell_side_;
  const double inflated_epsilon_;
  const int dim_;
  std::shared_ptr<CacheHandle> handle_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace dbsvec::cache

#endif  // DBSVEC_CACHE_QUERY_CELL_CACHE_H_
