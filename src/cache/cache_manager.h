#ifndef DBSVEC_CACHE_CACHE_MANAGER_H_
#define DBSVEC_CACHE_CACHE_MANAGER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/frequency_buffer.h"

namespace dbsvec::cache {

class CacheManager;

/// Budget account of one registered cache (the PlainCache-facing half of
/// the ArangoDB Manager split): the owning cache reserves bytes before
/// inserting an entry, releases them on eviction, and reports every access
/// into the frequency buffer the manager rebalances from.
///
/// All operations are lock-free atomics, safe from any thread. A handle
/// never owns cache entries — eviction policy stays with the cache; the
/// handle only says whether the bytes fit.
class CacheHandle {
 public:
  /// Tries to account `bytes` against this cache's share and the global
  /// budget. Returns false when either would be exceeded (or when the
  /// `cache.reserve` failpoint simulates an allocation failure) — the
  /// caller must evict and retry, or fall back to computing uncached.
  bool Reserve(size_t bytes);

  /// Returns bytes previously reserved.
  void Release(size_t bytes);

  /// Reports one lookup into the frequency buffer; the manager rebalances
  /// shares every few thousand recorded accesses across all caches.
  void RecordAccess(bool hit);

  /// Instrumentation: entries evicted by the owning cache.
  void RecordEviction() {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Entry-count bookkeeping (occupancy reporting only).
  void AddEntries(int64_t delta) {
    entries_.fetch_add(delta, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  size_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  /// True when a rebalance (or a global limit change) shrank this cache's
  /// share below its current usage; the owning cache should evict on its
  /// next access until this clears.
  bool over_limit() const { return used_bytes() > limit_bytes(); }
  uint64_t entries() const {
    return static_cast<uint64_t>(
        std::max<int64_t>(0, entries_.load(std::memory_order_relaxed)));
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  const FrequencyBuffer& frequency() const { return freq_; }

 private:
  friend class CacheManager;
  CacheHandle(CacheManager* manager, std::string name)
      : manager_(manager), name_(std::move(name)) {}

  CacheManager* manager_;
  const std::string name_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> limit_{0};
  std::atomic<int64_t> entries_{0};
  std::atomic<uint64_t> evictions_{0};
  FrequencyBuffer freq_;
};

/// Point-in-time statistics of one registered cache (for /v1/statz).
struct CacheStats {
  std::string name;
  uint64_t limit_bytes = 0;
  uint64_t used_bytes = 0;
  uint64_t entries = 0;
  uint64_t hits = 0;        ///< Cumulative.
  uint64_t misses = 0;      ///< Cumulative.
  uint64_t evictions = 0;
  double window_hit_rate = 0.0;  ///< Over the frequency-buffer window.
};

/// Process-wide memory-budgeted cache manager (the Manager role of the
/// ArangoDB Manager / PlainCache / FrequencyBuffer split).
///
/// One global byte budget is divided into per-cache shares. Every
/// registered cache accounts its entries through a CacheHandle; the
/// invariant — enforced by Reserve checking both the per-cache share and
/// the global used-bytes atomic — is that the sum of accounted bytes never
/// exceeds the global limit, even transiently while a rebalance is
/// shifting shares. Shares are redistributed toward the caches with the
/// most recent demand (frequency-buffer window accesses) every
/// kRebalanceInterval recorded accesses; a cache whose share shrank below
/// its usage evicts on its own next access (the manager never reaches into
/// a cache's entries).
///
/// A zero limit disables the manager: enabled() is false and clients keep
/// their legacy per-instance behavior. The process-wide instance
/// (Global()) reads DBSVEC_CACHE_MB at first use; SetGlobalLimitBytes
/// (the --cache-mb flag) overrides it at any time.
class CacheManager {
 public:
  /// Accesses between automatic rebalances (across all caches).
  static constexpr uint64_t kRebalanceInterval = 4096;

  explicit CacheManager(size_t limit_bytes) : limit_bytes_(limit_bytes) {}

  /// The process-wide manager. First use reads DBSVEC_CACHE_MB (megabytes;
  /// unset/0/unparsable = disabled).
  static CacheManager& Global();
  /// Overrides the Global() budget (0 disables). Existing caches whose
  /// share now exceeds the new limit evict on their next access.
  static void SetGlobalLimitBytes(size_t limit_bytes);

  /// True when a non-zero budget is set. Disabled managers hand out
  /// handles whose Reserve always fails, so clients usually check this
  /// once and keep their legacy uncached/locally-bounded path.
  bool enabled() const {
    return limit_bytes_.load(std::memory_order_relaxed) > 0;
  }

  /// Returns the handle registered under `name`, creating it on first use
  /// (idempotent — all KernelCache instances share the "kernel_rows"
  /// account). Registration splits the budget evenly across all handles;
  /// the next rebalance shifts it toward measured demand.
  std::shared_ptr<CacheHandle> Register(const std::string& name);

  /// Redistributes per-cache shares by frequency-window demand: every
  /// cache keeps a floor of limit/(4·caches) and the remainder is split
  /// proportionally to window accesses. Runs automatically every
  /// kRebalanceInterval accesses; public for tests and for explicit
  /// pressure handling.
  void Rebalance();

  size_t limit_bytes() const {
    return limit_bytes_.load(std::memory_order_relaxed);
  }
  size_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  std::vector<CacheStats> Stats() const;
  /// JSON object for /v1/statz: {"enabled":...,"limit_bytes":...,
  /// "used_bytes":...,"rebalances":...,"caches":[{...},...]}.
  std::string StatsJson() const;

 private:
  friend class CacheHandle;

  /// Resets the budget (SetGlobalLimitBytes) and re-splits shares.
  void SetLimitBytes(size_t limit_bytes);
  /// Called by CacheHandle::RecordAccess; triggers the periodic rebalance.
  void NoteAccess();

  std::atomic<uint64_t> limit_bytes_;
  std::atomic<uint64_t> used_bytes_{0};  ///< Sum of all handle used_bytes.
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> accesses_since_rebalance_{0};

  mutable std::mutex mutex_;  ///< Guards handles_ and share re-splits.
  std::vector<std::shared_ptr<CacheHandle>> handles_;
};

}  // namespace dbsvec::cache

#endif  // DBSVEC_CACHE_CACHE_MANAGER_H_
