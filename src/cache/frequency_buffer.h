#ifndef DBSVEC_CACHE_FREQUENCY_BUFFER_H_
#define DBSVEC_CACHE_FREQUENCY_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace dbsvec::cache {

/// Wait-free ring buffer of recent cache accesses, the signal the
/// CacheManager's rebalancer reads (the FrequencyBuffer role of the
/// ArangoDB cache subsystem): each access stamps one slot with hit/miss,
/// overwriting the oldest, so the window always reflects the last
/// `capacity` accesses without any reset or epoch bookkeeping.
///
/// Record is a relaxed fetch_add plus one relaxed byte store, safe from
/// any number of threads; Window() is an approximate racy scan, which is
/// fine — the rebalancer wants a demand *signal*, not an exact count.
class FrequencyBuffer {
 public:
  explicit FrequencyBuffer(size_t capacity = 1024)
      : slots_(capacity), cursor_(0) {
    for (auto& slot : slots_) {
      slot.store(kEmpty, std::memory_order_relaxed);
    }
  }

  /// Stamps one access into the ring.
  void Record(bool hit) {
    const uint64_t at = cursor_.fetch_add(1, std::memory_order_relaxed);
    slots_[at % slots_.size()].store(hit ? kHit : kMiss,
                                     std::memory_order_relaxed);
    total_accesses_.fetch_add(1, std::memory_order_relaxed);
    if (hit) {
      total_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  struct Snapshot {
    uint64_t accesses = 0;  ///< Stamped slots in the window.
    uint64_t hits = 0;      ///< Hit slots among them.
  };

  /// Hit/miss tallies over the last `capacity` accesses.
  Snapshot Window() const {
    Snapshot snapshot;
    for (const auto& slot : slots_) {
      const uint8_t value = slot.load(std::memory_order_relaxed);
      if (value == kEmpty) {
        continue;
      }
      ++snapshot.accesses;
      if (value == kHit) {
        ++snapshot.hits;
      }
    }
    return snapshot;
  }

  /// Cumulative totals since construction.
  uint64_t total_accesses() const {
    return total_accesses_.load(std::memory_order_relaxed);
  }
  uint64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kMiss = 1;
  static constexpr uint8_t kHit = 2;

  std::vector<std::atomic<uint8_t>> slots_;
  std::atomic<uint64_t> cursor_;
  std::atomic<uint64_t> total_accesses_{0};
  std::atomic<uint64_t> total_hits_{0};
};

}  // namespace dbsvec::cache

#endif  // DBSVEC_CACHE_FREQUENCY_BUFFER_H_
