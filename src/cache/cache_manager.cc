#include "cache/cache_manager.h"

#include <cstdio>
#include <cstdlib>

#include "fault/failpoint.h"

namespace dbsvec::cache {
namespace {

/// DBSVEC_CACHE_MB at process start; 0 (disabled) when unset, negative,
/// or unparsable — a bad value silently disabling the cache is acceptable,
/// a bad value aborting a serving process is not.
size_t LimitFromEnv() {
  const char* env = std::getenv("DBSVEC_CACHE_MB");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long long mb = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || mb <= 0) {
    return 0;
  }
  return static_cast<size_t>(mb) << 20;
}

}  // namespace

bool CacheHandle::Reserve(size_t bytes) {
  // The failpoint simulates an allocation failure: the reservation is
  // refused exactly as if the budget were exhausted, so the caller's
  // evict-and-retry / compute-uncached degradation path runs for real.
  if (!FailpointCheck("cache.reserve").ok()) {
    return false;
  }
  // Per-cache share first...
  uint64_t used = used_.load(std::memory_order_relaxed);
  do {
    if (used + bytes > limit_.load(std::memory_order_relaxed)) {
      return false;
    }
  } while (!used_.compare_exchange_weak(used, used + bytes,
                                        std::memory_order_relaxed));
  // ...then the global budget. Shares always sum to at most the global
  // limit, but this second check keeps the Σ-accounted ≤ limit invariant
  // airtight across transient states (a rebalance or SetGlobalLimitBytes
  // shrinking limits below current usage).
  uint64_t global = manager_->used_bytes_.load(std::memory_order_relaxed);
  do {
    if (global + bytes >
        manager_->limit_bytes_.load(std::memory_order_relaxed)) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
  } while (!manager_->used_bytes_.compare_exchange_weak(
      global, global + bytes, std::memory_order_relaxed));
  return true;
}

void CacheHandle::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  manager_->used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void CacheHandle::RecordAccess(bool hit) {
  freq_.Record(hit);
  manager_->NoteAccess();
}

CacheManager& CacheManager::Global() {
  static CacheManager* manager = new CacheManager(LimitFromEnv());
  return *manager;
}

void CacheManager::SetGlobalLimitBytes(size_t limit_bytes) {
  Global().SetLimitBytes(limit_bytes);
}

void CacheManager::SetLimitBytes(size_t limit_bytes) {
  limit_bytes_.store(limit_bytes, std::memory_order_relaxed);
  Rebalance();
}

std::shared_ptr<CacheHandle> CacheManager::Register(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& handle : handles_) {
      if (handle->name() == name) {
        return handle;
      }
    }
    handles_.push_back(
        std::shared_ptr<CacheHandle>(new CacheHandle(this, name)));
  }
  // Even split on registration; demand-driven shares come with the next
  // rebalance. Outside the lock: Rebalance takes mutex_ itself.
  Rebalance();
  return Register(name);
}

void CacheManager::NoteAccess() {
  const uint64_t count =
      accesses_since_rebalance_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count >= kRebalanceInterval) {
    // One thread wins the reset and runs the rebalance; the others carry
    // on — losing a few counted accesses to the race is harmless.
    uint64_t expected = count;
    if (accesses_since_rebalance_.compare_exchange_strong(
            expected, 0, std::memory_order_relaxed)) {
      Rebalance();
    }
  }
}

void CacheManager::Rebalance() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t total = limit_bytes_.load(std::memory_order_relaxed);
  if (handles_.empty()) {
    return;
  }
  if (total == 0) {
    for (const auto& handle : handles_) {
      handle->limit_.store(0, std::memory_order_relaxed);
    }
    return;
  }
  // Every cache keeps a floor of total/(4·caches) so a cold cache can
  // still warm back up; the remainder follows the frequency windows. A
  // +1 smoothing keeps the split defined before any traffic.
  const uint64_t floor_share =
      total / (4 * static_cast<uint64_t>(handles_.size()));
  std::vector<uint64_t> demand(handles_.size());
  uint64_t demand_sum = 0;
  for (size_t i = 0; i < handles_.size(); ++i) {
    demand[i] = handles_[i]->frequency().Window().accesses + 1;
    demand_sum += demand[i];
  }
  const uint64_t remainder =
      total - floor_share * static_cast<uint64_t>(handles_.size());
  uint64_t assigned = 0;
  size_t hottest = 0;
  for (size_t i = 0; i < handles_.size(); ++i) {
    const uint64_t share =
        floor_share + remainder * demand[i] / demand_sum;
    handles_[i]->limit_.store(share, std::memory_order_relaxed);
    assigned += share;
    if (demand[i] > demand[hottest]) {
      hottest = i;
    }
  }
  // Integer-division slack goes to the hottest cache, so shares always
  // sum to exactly the global limit.
  if (assigned < total) {
    handles_[hottest]->limit_.fetch_add(total - assigned,
                                        std::memory_order_relaxed);
  }
  rebalances_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<CacheStats> CacheManager::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CacheStats> stats;
  stats.reserve(handles_.size());
  for (const auto& handle : handles_) {
    CacheStats s;
    s.name = handle->name();
    s.limit_bytes = handle->limit_bytes();
    s.used_bytes = handle->used_bytes();
    s.entries = handle->entries();
    const uint64_t accesses = handle->frequency().total_accesses();
    s.hits = handle->frequency().total_hits();
    s.misses = accesses - s.hits;
    s.evictions = handle->evictions();
    const FrequencyBuffer::Snapshot window = handle->frequency().Window();
    s.window_hit_rate =
        window.accesses == 0
            ? 0.0
            : static_cast<double>(window.hits) /
                  static_cast<double>(window.accesses);
    stats.push_back(std::move(s));
  }
  return stats;
}

std::string CacheManager::StatsJson() const {
  std::string out = "{";
  out += "\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"limit_bytes\":" + std::to_string(limit_bytes());
  out += ",\"used_bytes\":" + std::to_string(used_bytes());
  out += ",\"rebalances\":" + std::to_string(rebalances());
  out += ",\"caches\":[";
  const std::vector<CacheStats> stats = Stats();
  for (size_t i = 0; i < stats.size(); ++i) {
    const CacheStats& s = stats[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"name\":\"" + s.name + "\"";
    out += ",\"limit_bytes\":" + std::to_string(s.limit_bytes);
    out += ",\"used_bytes\":" + std::to_string(s.used_bytes);
    out += ",\"entries\":" + std::to_string(s.entries);
    out += ",\"hits\":" + std::to_string(s.hits);
    out += ",\"misses\":" + std::to_string(s.misses);
    out += ",\"evictions\":" + std::to_string(s.evictions);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", s.window_hit_rate);
    out += ",\"window_hit_rate\":" + std::string(rate);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace dbsvec::cache
