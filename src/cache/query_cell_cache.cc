#include "cache/query_cell_cache.h"

#include <cmath>
#include <utility>

namespace dbsvec::cache {

QueryCellCache::QueryCellCache(const NeighborIndex* index, double epsilon,
                               int dim,
                               std::shared_ptr<CacheHandle> handle,
                               int num_stripes)
    : index_(index),
      cell_side_(epsilon * kCellFraction),
      // Any in-cell query sits within half the cell diagonal of the cell
      // center, so candidates within ε of the query are within
      // ε + (side/2)·√d of the center. The 1e-9 relative slack absorbs
      // floating-point rounding of the center coordinates and the
      // distance comparison — the triangle inequality is exact only in
      // real arithmetic, and a candidate lost to an ulp would break the
      // bit-identical-labels contract.
      inflated_epsilon_((epsilon + 0.5 * epsilon * kCellFraction *
                                       std::sqrt(static_cast<double>(dim))) *
                        (1.0 + 1e-9)),
      dim_(dim),
      handle_(std::move(handle)) {
  stripes_.reserve(static_cast<size_t>(num_stripes));
  for (int i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void QueryCellCache::EvictOne(Stripe* stripe) {
  const CellKey victim = stripe->lru.back();
  stripe->lru.pop_back();
  const auto it = stripe->cells.find(victim);
  handle_->Release(it->second.bytes);
  handle_->AddEntries(-1);
  handle_->RecordEviction();
  stripe->cells.erase(it);
}

void QueryCellCache::Candidates(std::span<const double> query,
                                std::vector<PointIndex>* candidates) {
  CellKey key;
  key.cell.resize(query.size());
  for (size_t d = 0; d < query.size(); ++d) {
    const double cell = std::floor(query[d] / cell_side_);
    if (!(cell >= -9.0e15 && cell <= 9.0e15)) {
      // Quantization would overflow int64 (a far-out query with the
      // sphere prefilter disabled): serve it uncached. Still a superset
      // of the ε-neighborhood, so the caller's exact filter is unchanged.
      index_->RangeQuery(query, inflated_epsilon_, candidates);
      handle_->RecordAccess(false);
      return;
    }
    key.cell[d] = static_cast<int64_t>(cell);
  }
  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.cells.find(key);
    if (it != stripe.cells.end()) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru,
                        it->second.lru_pos);
      *candidates = it->second.candidates;
      handle_->RecordAccess(true);
      return;
    }
  }
  handle_->RecordAccess(false);
  // Miss: one inflated range query at the cell center covers every query
  // this cell will ever see. Computed outside the stripe lock — a
  // concurrent miss on the same cell computes the same set twice and the
  // second insert is a no-op.
  std::vector<double> center(query.size());
  for (size_t d = 0; d < query.size(); ++d) {
    center[d] =
        (static_cast<double>(key.cell[d]) + 0.5) * cell_side_;
  }
  index_->RangeQuery(center, inflated_epsilon_, candidates);
  const size_t bytes = key.cell.size() * sizeof(int64_t) +
                       candidates->size() * sizeof(PointIndex) +
                       kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.cells.find(key) != stripe.cells.end()) {
    return;
  }
  while (handle_->over_limit() && !stripe.lru.empty()) {
    EvictOne(&stripe);
  }
  while (!handle_->Reserve(bytes)) {
    if (stripe.lru.empty()) {
      return;  // Does not fit at all: serve uncached.
    }
    EvictOne(&stripe);
  }
  stripe.lru.push_front(key);
  Entry& entry = stripe.cells[key];
  entry.candidates = *candidates;
  entry.bytes = bytes;
  entry.lru_pos = stripe.lru.begin();
  handle_->AddEntries(1);
}

void QueryCellCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    for (const auto& [key, entry] : stripe->cells) {
      handle_->Release(entry.bytes);
      handle_->AddEntries(-1);
    }
    stripe->cells.clear();
    stripe->lru.clear();
  }
}

}  // namespace dbsvec::cache
