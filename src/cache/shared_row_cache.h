#ifndef DBSVEC_CACHE_SHARED_ROW_CACHE_H_
#define DBSVEC_CACHE_SHARED_ROW_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cache/cache_manager.h"
#include "common/dataset.h"

namespace dbsvec::cache {

/// Identity of one kernel matrix: a kernel row depends on the *entire*
/// target set (ids and coordinates) and the Gaussian width, so rows are
/// only shareable between solves whose signatures match exactly. The
/// coordinate fingerprint is a 64-bit FNV-1a over every target coordinate:
/// together with the exact id-vector and sigma-bits comparison it guards
/// against a recycled Dataset reusing the same indices with different
/// contents (residual false-match odds are one 64-bit hash collision on
/// top of identical ids — negligible against any hardware error rate).
struct TargetSignature {
  uint64_t sigma_bits = 0;  ///< Bit pattern of the kernel sigma.
  uint64_t coord_fp = 0;    ///< FNV-1a over all target coordinates.
  std::vector<PointIndex> ids;

  bool operator==(const TargetSignature& other) const {
    return sigma_bits == other.sigma_bits && coord_fp == other.coord_fp &&
           ids == other.ids;
  }
};

/// Builds the signature of (dataset, target, sigma). O(ñ·d) — one pass
/// over the target coordinates, paid once per KernelCache construction.
TargetSignature MakeTargetSignature(const Dataset& dataset,
                                    std::span<const PointIndex> target,
                                    double sigma);

/// Process-wide store of materialized kernel rows, shared across SVDD
/// solves (the PlainCache role): repeated or concurrent fits over the same
/// target set pull rows from here instead of recomputing O(ñ·d) kernel
/// evaluations per row. Rows are bit-identical to a fresh computation, so
/// consulting the store never changes results.
///
/// Signatures are interned into 64-bit tokens through a small exact-match
/// registry (LRU-capped — a long-lived process sees unboundedly many
/// target sets); row entries are keyed by (token, row) in lock-striped
/// LRU buckets. Every byte — rows, and the interned id vectors — is
/// accounted against the manager's "svdd_rows" share; reservation failure
/// evicts from the stripe's LRU tail, and if the entry still does not fit
/// it is simply not cached (the caller recomputes, never blocks).
class SharedRowCache {
 public:
  /// Flat per-row-entry bookkeeping estimate: hash node + LRU node +
  /// shared_ptr control block + vector header.
  static constexpr size_t kEntryOverheadBytes = 160;
  /// Interned signatures kept at most; beyond it the least recently
  /// interned signature retires (its cached rows age out of the LRU
  /// unmatched — tokens are never reused).
  static constexpr size_t kMaxSignatures = 64;

  SharedRowCache(std::shared_ptr<CacheHandle> handle, int num_stripes = 8);
  /// Returns every accounted byte to the manager (the Global() instance
  /// never dies; this matters for test-local instances).
  ~SharedRowCache() { Clear(); }

  SharedRowCache(const SharedRowCache&) = delete;
  SharedRowCache& operator=(const SharedRowCache&) = delete;

  /// The process-wide store over CacheManager::Global(), registered as
  /// "svdd_rows".
  static SharedRowCache& Global();

  /// Interns `signature`, returning its token. Exact match against the
  /// registry; an equal signature interned twice gets the same token.
  uint64_t InternSignature(TargetSignature signature);

  /// Looks up row `row` of the matrix identified by `token`. Records the
  /// access; returns null on miss.
  std::shared_ptr<const std::vector<float>> Lookup(uint64_t token, int row);

  /// Offers a freshly computed row for caching. Best-effort: dropped when
  /// the budget cannot admit it even after evicting this stripe.
  void Insert(uint64_t token, int row,
              std::shared_ptr<const std::vector<float>> values);

  /// Drops every entry and interned signature (tests).
  void Clear();

  const CacheHandle& handle() const { return *handle_; }

 private:
  struct RowKey {
    uint64_t token = 0;
    int32_t row = 0;
    bool operator==(const RowKey& other) const {
      return token == other.token && row == other.row;
    }
  };
  struct RowKeyHash {
    size_t operator()(const RowKey& key) const {
      uint64_t h = key.token * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(key.row) + (h >> 29);
      return static_cast<size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };
  struct Entry {
    std::shared_ptr<const std::vector<float>> values;
    size_t bytes = 0;
    std::list<RowKey>::iterator lru_pos;
  };
  struct Stripe {
    std::mutex mutex;
    std::list<RowKey> lru;  ///< Most recent at the front.
    std::unordered_map<RowKey, Entry, RowKeyHash> rows;
  };

  Stripe& StripeFor(const RowKey& key) {
    return *stripes_[RowKeyHash()(key) % stripes_.size()];
  }
  /// Evicts the stripe's LRU tail. Caller holds the stripe mutex.
  void EvictOne(Stripe* stripe);

  std::shared_ptr<CacheHandle> handle_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Signature registry: exact signatures with their tokens, LRU-capped.
  std::mutex sig_mutex_;
  struct InternedSignature {
    TargetSignature signature;
    uint64_t token = 0;
    size_t bytes = 0;
  };
  std::list<InternedSignature> signatures_;  ///< Most recent at the front.
  uint64_t next_token_ = 1;
};

}  // namespace dbsvec::cache

#endif  // DBSVEC_CACHE_SHARED_ROW_CACHE_H_
