#ifndef DBSVEC_FAULT_FAILPOINT_H_
#define DBSVEC_FAULT_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dbsvec {

/// Deterministic fault-injection registry (docs/ROBUSTNESS.md).
///
/// Every fallible layer of the library declares a named *failpoint site*
/// (csv ingest, model I/O, kernel materialization, the SMO solve, ...).
/// A site is inert until armed; armed sites fire on every hit, so a test
/// or an operator can force a specific failure mode through the full
/// fit/save/load/assign pipeline and observe that it surfaces as a clean
/// `Status` instead of a crash or silent degradation.
///
/// Arming is either programmatic (`Arm`/`ArmSpec`, used by tests) or via
/// the environment at process start:
///
///   DBSVEC_FAILPOINTS=site:mode[:arg][,site:mode[:arg]...]
///
/// Modes:
///   error[:code]   The site returns an injected Status. `code` selects the
///                  category: internal (default), io, invalid_argument,
///                  deadline_exceeded, resource_exhausted.
///   delay_ms:N     The site sleeps N milliseconds, then proceeds normally
///                  (exposes deadline/cancellation races deterministically).
///   nonconverge    Solver sites report a completed-but-not-converged
///                  solve; other sites ignore this mode.
///   corrupt        Data sites deterministically corrupt their payload
///                  (a NaN coordinate, a flipped model byte) so the
///                  downstream validation layer must catch it.
///   short_write    Disk-write sites persist only a prefix of the payload
///                  and then report an I/O error — the torn-tail shape a
///                  crash mid-write leaves behind. Other sites ignore it.
///   enospc         Disk-write sites fail before writing anything, as if
///                  the filesystem were full. Other sites ignore it.
///   fsync_error    Disk-sync sites report that fsync failed after the data
///                  was handed to the kernel. Other sites ignore it.
///
/// The set of sites is fixed at compile time (`FailpointRegistry::Sites`),
/// so a sweep test can enumerate and arm every site one at a time. Arming
/// an unknown site is an InvalidArgument, never a silent no-op.
///
/// Thread safety: checks are safe from any thread (pool workers included).
/// The disarmed fast path is one relaxed atomic load. Arm/Disarm are safe
/// too but are meant to bracket a run, not race one.
class FailpointRegistry {
 public:
  enum class Mode : uint8_t {
    kError,
    kDelayMs,
    kNonconverge,
    kCorrupt,
    kShortWrite,
    kEnospc,
    kFsyncError,
  };

  /// The process-wide registry. Reads DBSVEC_FAILPOINTS once, on first use.
  static FailpointRegistry& Instance();

  /// All registered site names, in registration order.
  static std::vector<std::string_view> Sites();

  /// Arms `site` with the parsed form of one spec entry. `arg` is the
  /// status-code name for kError ("" = internal) or the millisecond count
  /// for kDelayMs (required); it is ignored by the other modes.
  Status Arm(std::string_view site, Mode mode, std::string_view arg = {});

  /// Arms from one "site:mode[:arg]" entry or a comma-separated list of
  /// them (the DBSVEC_FAILPOINTS syntax).
  Status ArmSpec(std::string_view spec);

  /// Disarms one site (a no-op when it is not armed).
  void Disarm(std::string_view site);
  /// Disarms every site and resets all hit counters.
  void DisarmAll();

  /// Hits `site` has taken while armed (any mode). Tests use this to prove
  /// a site is actually on the exercised path.
  uint64_t HitCount(std::string_view site) const;

  // -- Site-side checks (called by the instrumented library code) --------

  /// The standard site check: fires kError (returns the injected Status)
  /// and kDelayMs (sleeps, then returns OK). Disarmed or armed with a mode
  /// the site interprets itself (nonconverge/corrupt), returns OK.
  Status Check(std::string_view site);

  /// True iff `site` is armed with the given self-interpreted mode
  /// (kNonconverge, kCorrupt, or a disk-failure mode); counts a hit when
  /// it is.
  bool IsArmed(std::string_view site, Mode mode);

  /// Opaque per-site slot (defined in failpoint.cc).
  struct SiteState;

 private:
  FailpointRegistry();

  SiteState* FindSite(std::string_view site);
  const SiteState* FindSite(std::string_view site) const;
};

/// Convenience wrappers over the process-wide registry.
inline Status FailpointCheck(std::string_view site) {
  return FailpointRegistry::Instance().Check(site);
}
inline bool FailpointNonconverge(std::string_view site) {
  return FailpointRegistry::Instance().IsArmed(
      site, FailpointRegistry::Mode::kNonconverge);
}
inline bool FailpointCorrupt(std::string_view site) {
  return FailpointRegistry::Instance().IsArmed(
      site, FailpointRegistry::Mode::kCorrupt);
}
inline bool FailpointShortWrite(std::string_view site) {
  return FailpointRegistry::Instance().IsArmed(
      site, FailpointRegistry::Mode::kShortWrite);
}
inline bool FailpointEnospc(std::string_view site) {
  return FailpointRegistry::Instance().IsArmed(
      site, FailpointRegistry::Mode::kEnospc);
}
inline bool FailpointFsyncError(std::string_view site) {
  return FailpointRegistry::Instance().IsArmed(
      site, FailpointRegistry::Mode::kFsyncError);
}

}  // namespace dbsvec

#endif  // DBSVEC_FAULT_FAILPOINT_H_
