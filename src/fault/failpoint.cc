#include "fault/failpoint.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace dbsvec {
namespace {

/// Every failpoint site in the library, in pipeline order. A site name has
/// the form "<layer>.<operation>"; adding a site means adding it here and
/// placing the matching check in the instrumented code.
constexpr std::array<std::string_view, 19> kSites = {
    "csv.read",                  // Dataset ingest from CSV.
    "index.build",               // Range-query index construction.
    "exec.shard_merge",          // Sharded batch deterministic merge.
    "kernel_cache.materialize",  // Kernel row materialization.
    "cache.reserve",             // CacheManager budget reservation.
    "smo.solve",                 // The SMO quadratic-program solve.
    "svdd.train",                // SVDD training entry.
    "svdd.budget_merge",         // Budgeted-SMO SV merge/forget step.
    "thread_pool.task",          // Every fallible thread-pool task.
    "model.save",                // Model serialization + file write.
    "model.load",                // Model file read + parse.
    "assign.batch",              // AssignmentEngine (per point / chunk).
    "server.accept",             // Server accept path (per connection).
    "server.reload",             // Server model reload (/v1/reload).
    "serve.refresh",             // Online core absorption (per batch).
    "journal.append",            // Overlay WAL record append (per record).
    "journal.fsync",             // Overlay WAL fsync (per sync).
    "registry.create",           // ModelRegistry create (per model).
    "registry.recover",          // ModelRegistry startup recovery (per model).
};

Status InjectedError(std::string_view site, std::string_view code) {
  const std::string message =
      "failpoint fired: " + std::string(site);
  if (code.empty() || code == "internal") {
    return Status::Internal(message);
  }
  if (code == "io") {
    return Status::IoError(message);
  }
  if (code == "invalid_argument") {
    return Status::InvalidArgument(message);
  }
  if (code == "deadline_exceeded") {
    return Status::DeadlineExceeded(message);
  }
  if (code == "resource_exhausted") {
    return Status::ResourceExhausted(message);
  }
  return Status::Internal(message + " (unknown code '" + std::string(code) +
                          "')");
}

/// Status-code names accepted as the arg of the error mode.
bool KnownErrorCode(std::string_view code) {
  return code.empty() || code == "internal" || code == "io" ||
         code == "invalid_argument" || code == "deadline_exceeded" ||
         code == "resource_exhausted";
}

}  // namespace

struct FailpointRegistry::SiteState {
  std::string_view name;
  bool armed = false;
  Mode mode = Mode::kError;
  std::string error_code;  // kError only; "" = internal.
  int delay_ms = 0;        // kDelayMs only.
  std::atomic<uint64_t> hits{0};
};

namespace {

struct RegistryStorage {
  // One fixed slot per registered site; never resized, so Check can walk
  // it without holding the mutex (slot mutation is guarded below).
  std::array<FailpointRegistry::SiteState, kSites.size()> slots;
  // Fast path: number of armed sites. Zero means every check is a single
  // relaxed load.
  std::atomic<int> num_armed{0};
  // Guards arming/disarming and the non-atomic slot fields.
  std::mutex mutex;
};

RegistryStorage& Storage() {
  static RegistryStorage* storage = [] {
    auto* s = new RegistryStorage();
    for (size_t i = 0; i < kSites.size(); ++i) {
      s->slots[i].name = kSites[i];
    }
    return s;
  }();
  return *storage;
}

}  // namespace

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("DBSVEC_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    // A malformed env spec must be loud, not silently inert: it aborts the
    // process at first registry use with the parse error.
    const Status status = ArmSpec(env);
    if (!status.ok()) {
      std::fprintf(stderr, "DBSVEC_FAILPOINTS: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* instance = new FailpointRegistry();
  return *instance;
}

std::vector<std::string_view> FailpointRegistry::Sites() {
  return std::vector<std::string_view>(kSites.begin(), kSites.end());
}

FailpointRegistry::SiteState* FailpointRegistry::FindSite(
    std::string_view site) {
  for (SiteState& slot : Storage().slots) {
    if (slot.name == site) {
      return &slot;
    }
  }
  return nullptr;
}

const FailpointRegistry::SiteState* FailpointRegistry::FindSite(
    std::string_view site) const {
  return const_cast<FailpointRegistry*>(this)->FindSite(site);
}

Status FailpointRegistry::Arm(std::string_view site, Mode mode,
                              std::string_view arg) {
  SiteState* slot = FindSite(site);
  if (slot == nullptr) {
    return Status::InvalidArgument("failpoint: unknown site '" +
                                   std::string(site) + "'");
  }
  if (mode == Mode::kError && !KnownErrorCode(arg)) {
    // Mirror the unknown-site policy: a typo in the spec must be loud.
    return Status::InvalidArgument("failpoint: unknown error code '" +
                                   std::string(arg) + "'");
  }
  int delay_ms = 0;
  if (mode == Mode::kDelayMs) {
    char* end = nullptr;
    const std::string arg_str(arg);
    const long parsed = std::strtol(arg_str.c_str(), &end, 10);
    if (arg.empty() || end == arg_str.c_str() || *end != '\0' || parsed < 0) {
      return Status::InvalidArgument(
          "failpoint: delay_ms needs a non-negative millisecond arg, got '" +
          arg_str + "'");
    }
    delay_ms = static_cast<int>(parsed);
  }
  RegistryStorage& storage = Storage();
  std::lock_guard<std::mutex> lock(storage.mutex);
  if (!slot->armed) {
    storage.num_armed.fetch_add(1, std::memory_order_relaxed);
  }
  slot->armed = true;
  slot->mode = mode;
  slot->error_code = std::string(arg);
  slot->delay_ms = delay_ms;
  return Status::Ok();
}

Status FailpointRegistry::ArmSpec(std::string_view spec) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      continue;
    }
    const size_t mode_sep = entry.find(':');
    if (mode_sep == std::string_view::npos) {
      return Status::InvalidArgument(
          "failpoint: entry '" + std::string(entry) +
          "' is not site:mode[:arg]");
    }
    const std::string_view site = entry.substr(0, mode_sep);
    std::string_view mode_name = entry.substr(mode_sep + 1);
    std::string_view arg;
    if (const size_t arg_sep = mode_name.find(':');
        arg_sep != std::string_view::npos) {
      arg = mode_name.substr(arg_sep + 1);
      mode_name = mode_name.substr(0, arg_sep);
    }
    Mode mode;
    if (mode_name == "error") {
      mode = Mode::kError;
    } else if (mode_name == "delay_ms") {
      mode = Mode::kDelayMs;
    } else if (mode_name == "nonconverge") {
      mode = Mode::kNonconverge;
    } else if (mode_name == "corrupt") {
      mode = Mode::kCorrupt;
    } else if (mode_name == "short_write") {
      mode = Mode::kShortWrite;
    } else if (mode_name == "enospc") {
      mode = Mode::kEnospc;
    } else if (mode_name == "fsync_error") {
      mode = Mode::kFsyncError;
    } else {
      return Status::InvalidArgument("failpoint: unknown mode '" +
                                     std::string(mode_name) + "'");
    }
    DBSVEC_RETURN_IF_ERROR(Arm(site, mode, arg));
  }
  return Status::Ok();
}

void FailpointRegistry::Disarm(std::string_view site) {
  SiteState* slot = FindSite(site);
  if (slot == nullptr) {
    return;
  }
  RegistryStorage& storage = Storage();
  std::lock_guard<std::mutex> lock(storage.mutex);
  if (slot->armed) {
    slot->armed = false;
    storage.num_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  RegistryStorage& storage = Storage();
  std::lock_guard<std::mutex> lock(storage.mutex);
  for (SiteState& slot : storage.slots) {
    if (slot.armed) {
      slot.armed = false;
      storage.num_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    slot.hits.store(0, std::memory_order_relaxed);
  }
}

uint64_t FailpointRegistry::HitCount(std::string_view site) const {
  const SiteState* slot = FindSite(site);
  return slot == nullptr ? 0 : slot->hits.load(std::memory_order_relaxed);
}

Status FailpointRegistry::Check(std::string_view site) {
  RegistryStorage& storage = Storage();
  if (storage.num_armed.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  Mode mode;
  std::string error_code;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(storage.mutex);
    SiteState* slot = FindSite(site);
    if (slot == nullptr || !slot->armed) {
      return Status::Ok();
    }
    mode = slot->mode;
    error_code = slot->error_code;
    delay_ms = slot->delay_ms;
    if (mode == Mode::kError || mode == Mode::kDelayMs) {
      // Self-interpreted modes count their hit in IsArmed instead, so one
      // site firing registers exactly one hit.
      slot->hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  switch (mode) {
    case Mode::kError:
      return InjectedError(site, error_code);
    case Mode::kDelayMs:
      // Sleep outside the lock so a delayed site never stalls arming or
      // checks of other sites.
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::Ok();
    case Mode::kNonconverge:
    case Mode::kCorrupt:
    case Mode::kShortWrite:
    case Mode::kEnospc:
    case Mode::kFsyncError:
      // Self-interpreted modes: the site asks via IsArmed instead.
      return Status::Ok();
  }
  return Status::Ok();
}

bool FailpointRegistry::IsArmed(std::string_view site, Mode mode) {
  RegistryStorage& storage = Storage();
  if (storage.num_armed.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(storage.mutex);
  SiteState* slot = FindSite(site);
  if (slot == nullptr || !slot->armed || slot->mode != mode) {
    return false;
  }
  slot->hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace dbsvec
