#include "cluster/clustering.h"

#include <unordered_map>

namespace dbsvec {

int32_t Clustering::CountNoise() const {
  int32_t count = 0;
  for (const int32_t label : labels) {
    if (label == kNoise) {
      ++count;
    }
  }
  return count;
}

int32_t Clustering::CountType(PointType type) const {
  int32_t count = 0;
  for (const PointType t : point_types) {
    if (t == type) {
      ++count;
    }
  }
  return count;
}

int32_t CompactLabels(std::vector<int32_t>* labels) {
  std::unordered_map<int32_t, int32_t> remap;
  int32_t next = 0;
  for (int32_t& label : *labels) {
    if (label == Clustering::kNoise) {
      continue;
    }
    const auto [it, inserted] = remap.emplace(label, next);
    if (inserted) {
      ++next;
    }
    label = it->second;
  }
  return next;
}

}  // namespace dbsvec
