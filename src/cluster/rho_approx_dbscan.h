#ifndef DBSVEC_CLUSTER_RHO_APPROX_DBSCAN_H_
#define DBSVEC_CLUSTER_RHO_APPROX_DBSCAN_H_

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// Parameters of ρ-approximate DBSCAN [Gan & Tao, SIGMOD 2015].
struct RhoApproxParams {
  /// Neighborhood radius ε (> 0).
  double epsilon = 1.0;
  /// Density threshold MinPts (>= 1).
  int min_pts = 5;
  /// Approximation knob ρ: distances in (ε, ε(1+ρ)] may be treated as
  /// within range. The paper's experiments use the recommended 0.001.
  double rho = 0.001;
};

/// ρ-approximate DBSCAN: the state-of-the-art grid-based DBSCAN
/// approximation the paper compares against.
///
/// The data space is partitioned into cells of width ε/√d, so every cell
/// has diameter ≤ ε and all points inside one cell are mutually within ε.
/// Core-point tests count whole cells wholesale when the cell lies entirely
/// within ε of the query and fall back to per-point checks (with the
/// ρ-relaxed radius ε(1+ρ)) on the boundary shell. Clusters are connected
/// components of core cells, joined when a core-point pair across two cells
/// lies within ε (accepting pairs up to ε(1+ρ), which is exactly the
/// sanctioned ρ-approximation).
///
/// Non-empty cells are indexed by a kd-tree over their centers instead of
/// the original's quadtree hierarchy: the qualitative behaviour measured in
/// the paper (near-linear at low d, severe degradation as d grows because
/// per-query cell neighborhoods explode) is preserved, while the quadtree's
/// memory blow-up is traded for time blow-up. See DESIGN.md §6.
Status RunRhoApproxDbscan(const Dataset& dataset,
                          const RhoApproxParams& params, Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_RHO_APPROX_DBSCAN_H_
