#ifndef DBSVEC_CLUSTER_NQ_DBSCAN_H_
#define DBSVEC_CLUSTER_NQ_DBSCAN_H_

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// Parameters of NQ-DBSCAN.
struct NqDbscanParams {
  /// Neighborhood radius ε (> 0).
  double epsilon = 1.0;
  /// Density threshold MinPts (>= 1).
  int min_pts = 5;
};

/// NQ-DBSCAN [Chen et al. 2018]: exact DBSCAN that prunes *distance
/// computations* (not range queries) with a local neighborhood search.
///
/// For each cluster seed p the distances dist(p, ·) to all points are
/// computed once and the points sorted by them; the ε-neighborhood of any
/// point q reached during the expansion is then searched only inside the
/// triangle-inequality window {x : |dist(p,x) − dist(p,q)| ≤ ε}. Produces
/// exactly DBSCAN's clustering; worst-case time remains O(n²) (Table II).
Status RunNqDbscan(const Dataset& dataset, const NqDbscanParams& params,
                   Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_NQ_DBSCAN_H_
