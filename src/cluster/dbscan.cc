#include "cluster/dbscan.h"

#include <algorithm>
#include <deque>

#include "common/deadline.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "exec/sharded_index.h"
#include "exec/topology.h"

namespace dbsvec {
namespace {

constexpr int32_t kUnclassified = -2;

/// Breadth-first cluster growth with the frontier queried level by level:
/// all range queries of one BFS level fan out as one RangeQueryBatch
/// (thread-pool parallel; shard-affine under the sharded engine), then the
/// neighborhoods are absorbed sequentially in frontier order. The
/// frontier is processed in insertion order exactly like the sequential
/// deque, and every frontier point is queried unconditionally in both
/// versions, so labels, core flags, and query counts are identical to the
/// sequential run.
Status GrowClusterParallel(const NeighborIndex& index, double epsilon,
                           int min_pts, int32_t cid,
                           const std::vector<PointIndex>& seed_neighbors,
                           std::vector<int32_t>* labels,
                           std::vector<char>* is_core) {
  std::vector<PointIndex> frontier;
  std::vector<PointIndex> next;
  std::vector<std::vector<PointIndex>> neighborhoods;
  for (const PointIndex j : seed_neighbors) {
    if ((*labels)[j] == kUnclassified || (*labels)[j] == Clustering::kNoise) {
      (*labels)[j] = cid;
      frontier.push_back(j);
    }
  }
  while (!frontier.empty()) {
    DBSVEC_RETURN_IF_ERROR(
        index.RangeQueryBatch(frontier, epsilon, &neighborhoods));
    next.clear();
    for (size_t k = 0; k < frontier.size(); ++k) {
      const std::vector<PointIndex>& expansion = neighborhoods[k];
      if (static_cast<int>(expansion.size()) < min_pts) {
        continue;  // Border point.
      }
      (*is_core)[frontier[k]] = 1;
      for (const PointIndex j : expansion) {
        if ((*labels)[j] == kUnclassified ||
            (*labels)[j] == Clustering::kNoise) {
          (*labels)[j] = cid;
          next.push_back(j);
        }
      }
    }
    frontier.swap(next);
  }
  return Status::Ok();
}

}  // namespace

Status RunDbscanWithIndex(const NeighborIndex& index, double epsilon,
                          int min_pts, Clustering* out) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("DBSCAN: epsilon must be positive");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("DBSCAN: min_pts must be >= 1");
  }
  const Dataset& dataset = index.dataset();
  const PointIndex n = dataset.size();
  Stopwatch timer;
  index.ResetCounters();

  std::vector<int32_t>& labels = out->labels;
  labels.assign(n, kUnclassified);
  std::vector<char> is_core(n, 0);
  int32_t next_cluster = 0;

  if (GlobalThreadPool() == nullptr) {
    std::vector<PointIndex> neighbors;
    std::vector<PointIndex> expansion;
    std::deque<PointIndex> frontier;
    for (PointIndex i = 0; i < n; ++i) {
      if (labels[i] != kUnclassified) {
        continue;
      }
      index.RangeQuery(i, epsilon, &neighbors);
      if (static_cast<int>(neighbors.size()) < min_pts) {
        labels[i] = Clustering::kNoise;
        continue;
      }
      // i is core: open a new cluster and expand it breadth-first.
      const int32_t cid = next_cluster++;
      labels[i] = cid;
      is_core[i] = 1;
      frontier.clear();
      for (const PointIndex j : neighbors) {
        if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
          labels[j] = cid;
          frontier.push_back(j);
        }
      }
      while (!frontier.empty()) {
        const PointIndex q = frontier.front();
        frontier.pop_front();
        index.RangeQuery(q, epsilon, &expansion);
        if (static_cast<int>(expansion.size()) < min_pts) {
          continue;  // q is a border point.
        }
        is_core[q] = 1;
        for (const PointIndex j : expansion) {
          if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
            labels[j] = cid;
            frontier.push_back(j);
          }
        }
      }
    }
  } else {
    // Speculative batched seed scan (see the DBSVEC seed scan for the
    // consumption rule): prefetched queries for points that a cluster
    // expansion claims in the meantime are discarded, counters and all,
    // so the reported stats equal the sequential run's.
    const size_t batch_target =
        std::min<size_t>(256, 4 * static_cast<size_t>(GlobalThreads()));
    std::vector<PointIndex> batch;
    std::vector<std::vector<PointIndex>> batch_neighborhoods;
    std::vector<NeighborIndex::QueryCounters> batch_counters;
    PointIndex scan = 0;
    while (scan < n) {
      batch.clear();
      while (scan < n && batch.size() < batch_target) {
        if (labels[scan] == kUnclassified) {
          batch.push_back(scan);
        }
        ++scan;
      }
      batch_neighborhoods.resize(batch.size());
      batch_counters.assign(batch.size(), {});
      ParallelFor(batch.size(), 1, [&](size_t begin, size_t end) {
        for (size_t k = begin; k < end; ++k) {
          NeighborIndex::ScopedCounterCapture capture(&batch_counters[k]);
          index.RangeQuery(batch[k], epsilon, &batch_neighborhoods[k]);
        }
      });
      for (size_t k = 0; k < batch.size(); ++k) {
        const PointIndex i = batch[k];
        if (labels[i] != kUnclassified) {
          continue;  // Claimed by an expansion after prefetch: discard.
        }
        index.AccumulateCounters(batch_counters[k]);
        const std::vector<PointIndex>& neighbors = batch_neighborhoods[k];
        if (static_cast<int>(neighbors.size()) < min_pts) {
          labels[i] = Clustering::kNoise;
          continue;
        }
        const int32_t cid = next_cluster++;
        labels[i] = cid;
        is_core[i] = 1;
        DBSVEC_RETURN_IF_ERROR(GrowClusterParallel(
            index, epsilon, min_pts, cid, neighbors, &labels, &is_core));
      }
    }
  }

  out->point_types.resize(n);
  for (PointIndex i = 0; i < n; ++i) {
    out->point_types[i] = is_core[i] ? PointType::kCore
                          : labels[i] == Clustering::kNoise
                              ? PointType::kNoise
                              : PointType::kBorder;
  }
  out->num_clusters = next_cluster;
  out->stats = ClusteringStats{};
  out->stats.num_range_queries = index.num_range_queries();
  out->stats.num_distance_computations = index.num_distance_computations();
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

Status RunDbscan(const Dataset& dataset, const DbscanParams& params,
                 Clustering* out) {
  Stopwatch timer;
  std::unique_ptr<NeighborIndex> index;
  if (params.shards >= 1) {
    // Sharded engine (even at shards=1, the label baseline for every
    // shard count); workers are pinned round-robin across NUMA nodes.
    SetGlobalPinning(
        exec::PinningPlan(exec::DetectTopology(), GlobalThreads()));
    std::unique_ptr<exec::ShardedIndex> sharded;
    DBSVEC_RETURN_IF_ERROR(
        exec::ShardedIndex::Create(params.index, dataset, params.epsilon,
                                   params.shards, Deadline(), &sharded));
    index = std::move(sharded);
  } else {
    index = CreateIndex(params.index, dataset, params.epsilon);
  }
  DBSVEC_RETURN_IF_ERROR(
      RunDbscanWithIndex(*index, params.epsilon, params.min_pts, out));
  // Report the full wall time including index construction.
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
