#include "cluster/dbscan.h"

#include <deque>

#include "common/stopwatch.h"

namespace dbsvec {
namespace {

constexpr int32_t kUnclassified = -2;

}  // namespace

Status RunDbscanWithIndex(const NeighborIndex& index, double epsilon,
                          int min_pts, Clustering* out) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("DBSCAN: epsilon must be positive");
  }
  if (min_pts < 1) {
    return Status::InvalidArgument("DBSCAN: min_pts must be >= 1");
  }
  const Dataset& dataset = index.dataset();
  const PointIndex n = dataset.size();
  Stopwatch timer;
  index.ResetCounters();

  std::vector<int32_t>& labels = out->labels;
  labels.assign(n, kUnclassified);
  std::vector<char> is_core(n, 0);
  int32_t next_cluster = 0;

  std::vector<PointIndex> neighbors;
  std::vector<PointIndex> expansion;
  std::deque<PointIndex> frontier;
  for (PointIndex i = 0; i < n; ++i) {
    if (labels[i] != kUnclassified) {
      continue;
    }
    index.RangeQuery(i, epsilon, &neighbors);
    if (static_cast<int>(neighbors.size()) < min_pts) {
      labels[i] = Clustering::kNoise;
      continue;
    }
    // i is core: open a new cluster and expand it breadth-first.
    const int32_t cid = next_cluster++;
    labels[i] = cid;
    is_core[i] = 1;
    frontier.clear();
    for (const PointIndex j : neighbors) {
      if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
        labels[j] = cid;
        frontier.push_back(j);
      }
    }
    while (!frontier.empty()) {
      const PointIndex q = frontier.front();
      frontier.pop_front();
      index.RangeQuery(q, epsilon, &expansion);
      if (static_cast<int>(expansion.size()) < min_pts) {
        continue;  // q is a border point.
      }
      is_core[q] = 1;
      for (const PointIndex j : expansion) {
        if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
          labels[j] = cid;
          frontier.push_back(j);
        }
      }
    }
  }

  out->point_types.resize(n);
  for (PointIndex i = 0; i < n; ++i) {
    out->point_types[i] = is_core[i] ? PointType::kCore
                          : labels[i] == Clustering::kNoise
                              ? PointType::kNoise
                              : PointType::kBorder;
  }
  out->num_clusters = next_cluster;
  out->stats = ClusteringStats{};
  out->stats.num_range_queries = index.num_range_queries();
  out->stats.num_distance_computations = index.num_distance_computations();
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

Status RunDbscan(const Dataset& dataset, const DbscanParams& params,
                 Clustering* out) {
  Stopwatch timer;
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(params.index, dataset, params.epsilon);
  DBSVEC_RETURN_IF_ERROR(
      RunDbscanWithIndex(*index, params.epsilon, params.min_pts, out));
  // Report the full wall time including index construction.
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
