#include "cluster/optics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/stopwatch.h"

namespace dbsvec {
namespace {

constexpr double kUndefined = std::numeric_limits<double>::infinity();

/// Min-heap entry with lazy invalidation: stale (higher-reachability)
/// duplicates are skipped when popped.
struct Seed {
  double reachability;
  PointIndex point;
  bool operator>(const Seed& other) const {
    return reachability > other.reachability;
  }
};

}  // namespace

Status RunOptics(const Dataset& dataset, const OpticsParams& params,
                 OpticsResult* out) {
  if (params.max_epsilon <= 0.0) {
    return Status::InvalidArgument("OPTICS: max_epsilon must be positive");
  }
  if (params.min_pts < 1) {
    return Status::InvalidArgument("OPTICS: min_pts must be >= 1");
  }
  const PointIndex n = dataset.size();
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(params.index, dataset, params.max_epsilon);

  out->ordering.clear();
  out->ordering.reserve(n);
  out->reachability.assign(n, kUndefined);
  out->core_distance.assign(n, kUndefined);
  std::vector<char> processed(n, 0);

  std::vector<PointIndex> neighbors;
  std::vector<double> dists;
  std::priority_queue<Seed, std::vector<Seed>, std::greater<Seed>> seeds;

  // Processes one point: appends it to the ordering, computes its core
  // distance, and (if core) relaxes the reachability of its unprocessed
  // neighbors through the seed heap.
  auto process = [&](PointIndex p) {
    processed[p] = 1;
    out->ordering.push_back(p);
    index->RangeQuery(p, params.max_epsilon, &neighbors);
    if (static_cast<int>(neighbors.size()) >= params.min_pts) {
      dists.clear();
      dists.reserve(neighbors.size());
      for (const PointIndex o : neighbors) {
        dists.push_back(dataset.SquaredDistance(p, o));
      }
      std::nth_element(dists.begin(), dists.begin() + (params.min_pts - 1),
                       dists.end());
      out->core_distance[p] = std::sqrt(dists[params.min_pts - 1]);
      for (const PointIndex o : neighbors) {
        if (processed[o]) {
          continue;
        }
        const double reach = std::max(
            out->core_distance[p],
            std::sqrt(dataset.SquaredDistance(p, o)));
        if (reach < out->reachability[o]) {
          out->reachability[o] = reach;
          seeds.push({reach, o});
        }
      }
    }
  };

  for (PointIndex start = 0; start < n; ++start) {
    if (processed[start]) {
      continue;
    }
    process(start);
    while (!seeds.empty()) {
      const Seed seed = seeds.top();
      seeds.pop();
      if (processed[seed.point] ||
          seed.reachability > out->reachability[seed.point]) {
        continue;  // Stale heap entry.
      }
      process(seed.point);
    }
  }
  return Status::Ok();
}

Status ExtractDbscanClustering(const Dataset& dataset,
                               const OpticsResult& optics, double epsilon,
                               int min_pts, Clustering* out) {
  (void)min_pts;
  const PointIndex n = dataset.size();
  if (static_cast<PointIndex>(optics.ordering.size()) != n) {
    return Status::InvalidArgument(
        "extract: OPTICS result does not cover the dataset");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("extract: epsilon must be positive");
  }
  Stopwatch timer;
  out->labels.assign(n, Clustering::kNoise);
  int32_t current = -1;
  for (const PointIndex p : optics.ordering) {
    if (optics.reachability[p] > epsilon) {
      // Not density-reachable at this radius from anything before it.
      if (optics.core_distance[p] <= epsilon) {
        ++current;  // p starts a new cluster.
        out->labels[p] = current;
      }
      // else: noise at this epsilon.
    } else if (current >= 0) {
      out->labels[p] = current;
    }
  }
  out->num_clusters = current + 1;
  out->stats = ClusteringStats{};
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
