#include "cluster/rho_approx_dbscan.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "common/union_find.h"
#include "index/kd_tree.h"

namespace dbsvec {
namespace {

struct CellKeyHash {
  size_t operator()(const std::vector<int32_t>& key) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const int32_t c : key) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(c)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// The ε/√d grid with per-cell point lists and a kd-tree over cell centers
/// for neighbor-cell retrieval.
class CellGrid {
 public:
  CellGrid(const Dataset& dataset, double epsilon)
      : dataset_(dataset),
        width_(epsilon / std::sqrt(static_cast<double>(dataset.dim()))),
        centers_(dataset.dim()) {
    std::unordered_map<std::vector<int32_t>, int32_t, CellKeyHash> ids;
    std::vector<int32_t> key(dataset.dim());
    cell_of_point_.resize(dataset.size());
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      const auto p = dataset.point(i);
      for (int j = 0; j < dataset.dim(); ++j) {
        key[j] = static_cast<int32_t>(std::floor(p[j] / width_));
      }
      const auto [it, inserted] =
          ids.emplace(key, static_cast<int32_t>(points_.size()));
      if (inserted) {
        points_.emplace_back();
        lo_.push_back(key);
        std::vector<double> center(dataset.dim());
        for (int j = 0; j < dataset.dim(); ++j) {
          center[j] = (key[j] + 0.5) * width_;
        }
        centers_.Append(center);
      }
      points_[it->second].push_back(i);
      cell_of_point_[i] = it->second;
    }
    center_index_ = std::make_unique<KdTree>(centers_);
  }

  int32_t num_cells() const { return static_cast<int32_t>(points_.size()); }
  const std::vector<PointIndex>& cell_points(int32_t c) const {
    return points_[c];
  }
  int32_t cell_of(PointIndex i) const { return cell_of_point_[i]; }
  double width() const { return width_; }

  /// Cells whose boxes may intersect the ball B(q, radius): retrieved via
  /// the cell-center kd-tree with the padded radius radius + diag/2.
  void CandidateCells(std::span<const double> q, double radius,
                      std::vector<PointIndex>* out) const {
    const double half_diag =
        0.5 * width_ * std::sqrt(static_cast<double>(dataset_.dim()));
    center_index_->RangeQuery(q, radius + half_diag, out);
  }

  /// Squared min/max distance from q to cell c's box.
  void BoxDistance2(std::span<const double> q, int32_t c, double* min_sq,
                    double* max_sq) const {
    double mn = 0.0;
    double mx = 0.0;
    for (size_t j = 0; j < q.size(); ++j) {
      const double lo = lo_[c][j] * width_;
      const double hi = lo + width_;
      double d_min = 0.0;
      if (q[j] < lo) {
        d_min = lo - q[j];
      } else if (q[j] > hi) {
        d_min = q[j] - hi;
      }
      const double d_max = std::max(q[j] - lo, hi - q[j]);
      mn += d_min * d_min;
      mx += d_max * d_max;
    }
    *min_sq = mn;
    *max_sq = mx;
  }

  uint64_t distance_computations() const { return distance_computations_; }
  void AddDistanceComputations(uint64_t k) const {
    distance_computations_ += k;
  }

 private:
  const Dataset& dataset_;
  double width_;
  Dataset centers_;
  std::vector<std::vector<PointIndex>> points_;  // Per cell.
  std::vector<std::vector<int32_t>> lo_;         // Per-cell integer coords.
  std::vector<int32_t> cell_of_point_;
  std::unique_ptr<KdTree> center_index_;
  mutable uint64_t distance_computations_ = 0;
};

}  // namespace

Status RunRhoApproxDbscan(const Dataset& dataset,
                          const RhoApproxParams& params, Clustering* out) {
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("rho-approx: epsilon must be positive");
  }
  if (params.min_pts < 1) {
    return Status::InvalidArgument("rho-approx: min_pts must be >= 1");
  }
  if (params.rho < 0.0) {
    return Status::InvalidArgument("rho-approx: rho must be >= 0");
  }
  Stopwatch timer;
  const PointIndex n = dataset.size();
  const double eps = params.epsilon;
  const double eps_sq = eps * eps;
  const double relaxed = eps * (1.0 + params.rho);
  const double relaxed_sq = relaxed * relaxed;

  CellGrid grid(dataset, eps);
  uint64_t range_queries = 0;

  // Pass 1: core flags. A point in a cell holding >= MinPts points is core
  // outright (the cell diameter is <= eps); otherwise count neighbors with
  // wholesale adds for fully-inside cells and per-point checks at the
  // ρ-relaxed radius on the shell.
  std::vector<char> core(n, 0);
  std::vector<PointIndex> candidates;
  for (PointIndex i = 0; i < n; ++i) {
    const int32_t own_cell = grid.cell_of(i);
    if (static_cast<int>(grid.cell_points(own_cell).size()) >=
        params.min_pts) {
      core[i] = 1;
      continue;
    }
    const auto q = dataset.point(i);
    grid.CandidateCells(q, relaxed, &candidates);
    ++range_queries;
    int64_t count = 0;
    for (const PointIndex cell : candidates) {
      double min_sq = 0.0;
      double max_sq = 0.0;
      grid.BoxDistance2(q, cell, &min_sq, &max_sq);
      if (min_sq > relaxed_sq) {
        continue;
      }
      const std::vector<PointIndex>& members = grid.cell_points(cell);
      if (max_sq <= eps_sq) {
        count += static_cast<int64_t>(members.size());
        continue;
      }
      grid.AddDistanceComputations(members.size());
      for (const PointIndex j : members) {
        if (dataset.SquaredDistance(i, j) <= relaxed_sq) {
          ++count;
        }
      }
      if (count >= params.min_pts) {
        break;
      }
    }
    core[i] = count >= params.min_pts ? 1 : 0;
  }

  // Per-cell core lists for the connectivity and border passes.
  std::vector<std::vector<PointIndex>> cell_core(grid.num_cells());
  for (PointIndex i = 0; i < n; ++i) {
    if (core[i]) {
      cell_core[grid.cell_of(i)].push_back(i);
    }
  }

  // Pass 2: connect core cells. Two cells join when some core pair across
  // them is within eps (accepting up to eps(1+rho): the ρ-approximation).
  UnionFind cells(grid.num_cells());
  uint64_t merges = 0;
  for (int32_t u = 0; u < grid.num_cells(); ++u) {
    if (cell_core[u].empty()) {
      continue;
    }
    // Query around the first core point; the padded radius covers every
    // core point of this cell (cell diameter <= eps).
    const auto q = dataset.point(cell_core[u][0]);
    grid.CandidateCells(q, relaxed + grid.width() *
                                         std::sqrt(static_cast<double>(
                                             dataset.dim())),
                        &candidates);
    ++range_queries;
    for (const PointIndex v : candidates) {
      if (v == u || cell_core[v].empty() || cells.Connected(u, v)) {
        continue;
      }
      bool connected = false;
      for (const PointIndex p : cell_core[u]) {
        for (const PointIndex pv : cell_core[v]) {
          grid.AddDistanceComputations(1);
          if (dataset.SquaredDistance(p, pv) <= relaxed_sq) {
            connected = true;
            break;
          }
        }
        if (connected) {
          break;
        }
      }
      if (connected) {
        cells.Union(u, v);
        ++merges;
      }
    }
  }

  // Pass 3: labels. Core points take their cell component's id; border
  // points join the component of any core point within eps(1+rho).
  std::vector<int32_t>& labels = out->labels;
  labels.assign(n, Clustering::kNoise);
  for (PointIndex i = 0; i < n; ++i) {
    if (core[i]) {
      labels[i] = cells.Find(grid.cell_of(i));
    }
  }
  for (PointIndex i = 0; i < n; ++i) {
    if (core[i]) {
      continue;
    }
    const auto q = dataset.point(i);
    grid.CandidateCells(q, relaxed, &candidates);
    ++range_queries;
    for (const PointIndex cell : candidates) {
      bool assigned = false;
      for (const PointIndex j : cell_core[cell]) {
        grid.AddDistanceComputations(1);
        if (dataset.SquaredDistance(i, j) <= relaxed_sq) {
          labels[i] = cells.Find(static_cast<int32_t>(cell));
          assigned = true;
          break;
        }
      }
      if (assigned) {
        break;
      }
    }
  }

  out->num_clusters = CompactLabels(&labels);
  out->stats = ClusteringStats{};
  out->stats.num_range_queries = range_queries;
  out->stats.num_distance_computations = grid.distance_computations();
  out->stats.num_merges = merges;
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
