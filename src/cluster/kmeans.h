#ifndef DBSVEC_CLUSTER_KMEANS_H_
#define DBSVEC_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// Parameters of k-means.
struct KMeansParams {
  /// Number of clusters k (>= 1).
  int k = 8;
  /// Lloyd iteration cap.
  int max_iterations = 100;
  /// Convergence threshold on total squared centroid movement.
  double tolerance = 1e-6;
  /// Seed for the k-means++ initialization.
  uint64_t seed = 42;
};

/// k-means [Hartigan & Wong 1979] with k-means++ seeding — the
/// partitioning-based baseline of Table IV. Produces no noise labels
/// (every point is assigned to its nearest centroid).
Status RunKMeans(const Dataset& dataset, const KMeansParams& params,
                 Clustering* out);

/// Final centroids of a k-means run (row-major k×d), exposed for the
/// examples and tests.
Status RunKMeansWithCentroids(const Dataset& dataset,
                              const KMeansParams& params, Clustering* out,
                              std::vector<double>* centroids);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_KMEANS_H_
