#ifndef DBSVEC_CLUSTER_CLUSTERING_H_
#define DBSVEC_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <vector>

namespace dbsvec {

/// Instrumentation collected by every clusterer; the complexity experiments
/// (Table II) and the ablations read these back.
struct ClusteringStats {
  /// Wall-clock seconds for the clustering run (excludes dataset
  /// generation, includes index construction).
  double elapsed_seconds = 0.0;
  /// ε-range queries issued.
  uint64_t num_range_queries = 0;
  /// Point-to-point distance evaluations.
  uint64_t num_distance_computations = 0;
  /// SVDD trainings performed (DBSVEC only).
  uint64_t num_svdd_trainings = 0;
  /// Support vectors produced across all trainings (DBSVEC only).
  uint64_t num_support_vectors = 0;
  /// Sub-cluster merges (DBSVEC) or cell merges (ρ-approximate).
  uint64_t num_merges = 0;
  /// Potential-noise points examined by noise verification (DBSVEC only).
  uint64_t noise_list_size = 0;
  /// Total SMO iterations (DBSVEC only).
  int64_t smo_iterations = 0;
  /// Sub-clusters whose SVDD expansion was replaced by exact range-query
  /// expansion (DBSCAN semantics) because the solve failed, did not
  /// converge, or produced a degenerate sphere (DBSVEC only).
  uint64_t num_svdd_fallbacks = 0;
  /// SMO solves that hit the iteration cap without meeting the tolerance
  /// (DBSVEC only).
  uint64_t num_nonconverged_solves = 0;
  /// SVDD trainings whose weighted caps were infeasible (Σ ω_iC < 1) and
  /// had to be scaled up minimally (DBSVEC only).
  uint64_t num_caps_rescaled = 0;
  /// Largest single-solve SMO iteration count — with `smo_iterations` (the
  /// sum) this surfaces per-solve cost without failpoints (DBSVEC only).
  int64_t max_smo_iterations = 0;
  /// Budget-maintenance SV merges across all budgeted solves (DBSVEC with
  /// sv_budget > 0 only).
  uint64_t num_budget_merges = 0;
  /// Budget-maintenance SV forgets across all budgeted solves (DBSVEC with
  /// sv_budget > 0 only).
  uint64_t num_budget_forgets = 0;
  /// SVDD solves trained on a boundary-preserving sample instead of the
  /// full target set (DBSVEC with sample_threshold > 0 only).
  uint64_t num_sampled_solves = 0;
};

/// Role of a point in the density structure (Definitions 1-2 of the
/// paper): core points have dense ε-neighborhoods, border points are
/// non-core points inside some cluster, noise points belong to no cluster.
enum class PointType : uint8_t {
  kCore = 0,
  kBorder = 1,
  kNoise = 2,
};

/// Result of a clustering run: one label per point plus run statistics.
struct Clustering {
  /// Label given to noise points.
  static constexpr int32_t kNoise = -1;

  /// Cluster id of each point: 0..num_clusters-1, or kNoise.
  std::vector<int32_t> labels;
  /// Number of distinct (non-noise) clusters.
  int32_t num_clusters = 0;
  /// Core/border/noise role of each point. Filled by the exact algorithms
  /// (DBSCAN, NQ-DBSCAN) and, on request (DbsvecParams::classify_points),
  /// by DBSVEC; empty otherwise.
  std::vector<PointType> point_types;
  /// Run statistics.
  ClusteringStats stats;

  /// Number of points labelled noise.
  int32_t CountNoise() const;
  /// Number of points with the given role (0 if point_types is unfilled).
  int32_t CountType(PointType type) const;
};

/// Remaps arbitrary non-negative labels (and kNoise) in `labels` to the
/// dense range 0..k-1 (noise preserved); returns k. Order of first
/// appearance determines the new ids, so the mapping is deterministic.
int32_t CompactLabels(std::vector<int32_t>* labels);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_CLUSTERING_H_
