#include "cluster/hdbscan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/stopwatch.h"
#include "common/union_find.h"
#include "index/kd_tree.h"

namespace dbsvec {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One node of the single-linkage merge tree: leaves are points 0..n-1,
/// internal nodes n..2n-2 carry the merge distance and subtree size.
struct MergeNode {
  int32_t left = -1;
  int32_t right = -1;
  double distance = 0.0;
  PointIndex size = 1;
};

/// One cluster of the condensed tree.
struct CondensedCluster {
  int32_t parent = -1;
  double lambda_birth = 0.0;
  double stability = 0.0;
  std::vector<int32_t> children;
  /// Points that fell out of this cluster, with their exit lambda.
  std::vector<std::pair<PointIndex, double>> exits;
};

double Lambda(double distance) {
  return distance > 1e-300 ? 1.0 / distance : 1e300;
}

}  // namespace

Status RunHdbscan(const Dataset& dataset, const HdbscanParams& params,
                  Clustering* out) {
  if (params.min_cluster_size < 2) {
    return Status::InvalidArgument(
        "HDBSCAN: min_cluster_size must be >= 2");
  }
  if (params.min_samples < 0) {
    return Status::InvalidArgument("HDBSCAN: min_samples must be >= 0");
  }
  Stopwatch timer;
  const PointIndex n = dataset.size();
  out->labels.assign(n, Clustering::kNoise);
  out->num_clusters = 0;
  out->stats = ClusteringStats{};
  if (n == 0) {
    return Status::Ok();
  }
  const int min_cluster_size = params.min_cluster_size;
  const int min_samples =
      params.min_samples > 0 ? params.min_samples : min_cluster_size;

  // 1. Core distances: distance to the min_samples-th neighbor (self
  //    included, matching the ε-neighborhood convention of Definition 1).
  const KdTree tree(dataset);
  std::vector<double> core(n);
  std::vector<std::pair<double, PointIndex>> knn;
  const int k = std::min<int>(min_samples, n);
  for (PointIndex i = 0; i < n; ++i) {
    tree.KnnQuery(dataset.point(i), k, &knn);
    core[i] = knn.back().first;
  }

  // 2. Minimum spanning tree of the mutual-reachability graph
  //    mr(a,b) = max(core_a, core_b, dist(a,b)), via dense Prim.
  std::vector<double> best(n, kInf);
  std::vector<PointIndex> best_from(n, 0);
  std::vector<char> in_tree(n, 0);
  struct Edge {
    double weight;
    PointIndex a;
    PointIndex b;
  };
  std::vector<Edge> mst;
  mst.reserve(n > 0 ? n - 1 : 0);
  best[0] = 0.0;
  for (PointIndex step = 0; step < n; ++step) {
    PointIndex next = -1;
    double next_weight = kInf;
    for (PointIndex i = 0; i < n; ++i) {
      if (!in_tree[i] && best[i] < next_weight) {
        next_weight = best[i];
        next = i;
      }
    }
    in_tree[next] = 1;
    if (step > 0) {
      mst.push_back({next_weight, best_from[next], next});
    }
    for (PointIndex i = 0; i < n; ++i) {
      if (in_tree[i]) {
        continue;
      }
      const double mr =
          std::max({core[next], core[i],
                    std::sqrt(dataset.SquaredDistance(next, i))});
      if (mr < best[i]) {
        best[i] = mr;
        best_from[i] = next;
      }
    }
    out->stats.num_distance_computations += static_cast<uint64_t>(n);
  }

  // 3. Single-linkage hierarchy: merge MST edges in ascending order.
  std::sort(mst.begin(), mst.end(),
            [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
  std::vector<MergeNode> merges(n);  // Leaves first.
  merges.reserve(2 * static_cast<size_t>(n));
  UnionFind components(n);
  // Representative merge-tree node of each union-find root.
  std::vector<int32_t> tree_node(n);
  for (PointIndex i = 0; i < n; ++i) {
    tree_node[i] = i;
  }
  int32_t root = n == 1 ? 0 : -1;
  for (const Edge& edge : mst) {
    const int32_t ra = components.Find(edge.a);
    const int32_t rb = components.Find(edge.b);
    MergeNode node;
    node.left = tree_node[ra];
    node.right = tree_node[rb];
    node.distance = edge.weight;
    node.size = merges[node.left].size + merges[node.right].size;
    const int32_t id = static_cast<int32_t>(merges.size());
    merges.push_back(node);
    tree_node[components.Union(ra, rb)] = id;
    root = id;
  }

  // 4. Condensed tree: descend the hierarchy; a split is "real" when both
  //    sides hold >= min_cluster_size points, otherwise the smaller side's
  //    points fall out of the current condensed cluster at that lambda.
  std::vector<CondensedCluster> clusters;
  clusters.push_back({});  // Root cluster, lambda_birth 0.
  // Worklist of (merge node, condensed cluster id).
  std::vector<std::pair<int32_t, int32_t>> work = {{root, 0}};
  std::vector<int32_t> leaf_stack;
  auto spill_points = [&](int32_t merge_id, int32_t cluster_id,
                          double lambda) {
    // All leaf points below merge_id exit cluster_id at `lambda`.
    leaf_stack.assign(1, merge_id);
    while (!leaf_stack.empty()) {
      const int32_t m = leaf_stack.back();
      leaf_stack.pop_back();
      if (m < n) {
        clusters[cluster_id].exits.emplace_back(static_cast<PointIndex>(m),
                                                lambda);
      } else {
        leaf_stack.push_back(merges[m].left);
        leaf_stack.push_back(merges[m].right);
      }
    }
  };
  while (!work.empty()) {
    const auto [merge_id, cluster_id] = work.back();
    work.pop_back();
    if (merge_id < n) {
      // A bare point at the top of its branch: exits immediately.
      clusters[cluster_id].exits.emplace_back(
          static_cast<PointIndex>(merge_id), kInf);
      continue;
    }
    const MergeNode& node = merges[merge_id];
    const double lambda = Lambda(node.distance);
    const PointIndex left_size = merges[node.left].size;
    const PointIndex right_size = merges[node.right].size;
    const bool left_big = left_size >= min_cluster_size;
    const bool right_big = right_size >= min_cluster_size;
    if (left_big && right_big) {
      // True split: two new condensed clusters born at this lambda.
      for (const int32_t child : {node.left, node.right}) {
        const int32_t child_cluster =
            static_cast<int32_t>(clusters.size());
        clusters.push_back({});
        clusters[child_cluster].parent = cluster_id;
        clusters[child_cluster].lambda_birth = lambda;
        clusters[cluster_id].children.push_back(child_cluster);
        work.emplace_back(child, child_cluster);
      }
      // Points passing to children contribute (lambda - birth) each to the
      // parent's stability.
      clusters[cluster_id].stability +=
          (lambda - clusters[cluster_id].lambda_birth) *
          static_cast<double>(left_size + right_size);
    } else {
      if (left_big) {
        work.emplace_back(node.left, cluster_id);
      } else {
        spill_points(node.left, cluster_id, lambda);
      }
      if (right_big) {
        work.emplace_back(node.right, cluster_id);
      } else {
        spill_points(node.right, cluster_id, lambda);
      }
    }
  }
  // Exit contributions to stability (capped: an infinite exit lambda,
  // from duplicate points, contributes via the largest finite lambda).
  for (CondensedCluster& cluster : clusters) {
    double max_finite = cluster.lambda_birth;
    for (const auto& [point, lambda] : cluster.exits) {
      if (std::isfinite(lambda)) {
        max_finite = std::max(max_finite, lambda);
      }
    }
    for (const auto& [point, lambda] : cluster.exits) {
      const double capped = std::isfinite(lambda) ? lambda : max_finite;
      cluster.stability += capped - cluster.lambda_birth;
    }
  }

  // 5. Excess-of-mass extraction: bottom-up, keep a subtree's children if
  //    their combined selected stability beats the node's own; the root is
  //    never selected (it is "everything").
  const int32_t num_condensed = static_cast<int32_t>(clusters.size());
  std::vector<double> selected_stability(num_condensed, 0.0);
  std::vector<char> selected(num_condensed, 0);
  // Children were always appended after parents, so reverse order is a
  // valid bottom-up traversal.
  for (int32_t c = num_condensed - 1; c >= 0; --c) {
    double child_sum = 0.0;
    for (const int32_t child : clusters[c].children) {
      child_sum += selected_stability[child];
    }
    if (clusters[c].children.empty()) {
      selected_stability[c] = clusters[c].stability;
      selected[c] = 1;
    } else if (clusters[c].stability > child_sum && c != 0) {
      selected_stability[c] = clusters[c].stability;
      selected[c] = 1;
      // Deselect all descendants.
      std::vector<int32_t> stack = clusters[c].children;
      while (!stack.empty()) {
        const int32_t d = stack.back();
        stack.pop_back();
        selected[d] = 0;
        stack.insert(stack.end(), clusters[d].children.begin(),
                     clusters[d].children.end());
      }
    } else {
      selected_stability[c] = child_sum;
    }
  }
  selected[0] = 0;  // Root is never a cluster.

  // 6. Labels: each point belongs to the nearest selected ancestor of the
  //    cluster it exited from (if any).
  std::vector<int32_t> dense_id(num_condensed, -1);
  int32_t next_label = 0;
  for (int32_t c = 0; c < num_condensed; ++c) {
    if (selected[c]) {
      dense_id[c] = next_label++;
    }
  }
  for (int32_t c = 0; c < num_condensed; ++c) {
    for (const auto& [point, lambda] : clusters[c].exits) {
      int32_t walk = c;
      while (walk >= 0 && !selected[walk]) {
        walk = clusters[walk].parent;
      }
      if (walk >= 0) {
        out->labels[point] = dense_id[walk];
      }
    }
  }
  out->num_clusters = next_label;
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
