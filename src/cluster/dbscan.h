#ifndef DBSVEC_CLUSTER_DBSCAN_H_
#define DBSVEC_CLUSTER_DBSCAN_H_

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"
#include "index/neighbor_index.h"

namespace dbsvec {

/// Parameters of exact DBSCAN (Algorithm 1 of the paper).
struct DbscanParams {
  /// Neighborhood radius ε (> 0).
  double epsilon = 1.0;
  /// Density threshold MinPts (>= 1); a point is core iff its
  /// ε-neighborhood (including itself) holds at least MinPts points.
  int min_pts = 5;
  /// Range-query engine. kRStarTree reproduces the paper's R-DBSCAN
  /// baseline, kKdTree its kd-DBSCAN baseline.
  IndexType index = IndexType::kKdTree;
  /// 0 = the legacy unsharded path (default); >= 1 routes every range
  /// query through the sharded execution engine with this many
  /// per-shard indexes of type `index` (see exec::ShardedIndex — labels
  /// are bit-identical at any shards >= 1 and any thread count).
  int shards = 0;
};

/// Exact DBSCAN [Ester et al. 1996]. Builds the requested index over
/// `dataset` and runs Algorithm 1; the result is the ground truth against
/// which every approximate algorithm in this library is measured.
Status RunDbscan(const Dataset& dataset, const DbscanParams& params,
                 Clustering* out);

/// DBSCAN over a caller-supplied range-query engine (the index's dataset is
/// clustered). Used by DBSCAN-LSH and by tests that compare engines.
Status RunDbscanWithIndex(const NeighborIndex& index, double epsilon,
                          int min_pts, Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_DBSCAN_H_
