#ifndef DBSVEC_CLUSTER_OPTICS_H_
#define DBSVEC_CLUSTER_OPTICS_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"
#include "index/neighbor_index.h"

namespace dbsvec {

/// Parameters of OPTICS.
struct OpticsParams {
  /// Maximum radius examined (the ε of the reachability computation).
  double max_epsilon = 1.0;
  /// Density threshold MinPts.
  int min_pts = 5;
  /// Range-query engine.
  IndexType index = IndexType::kKdTree;
};

/// OPTICS output: the cluster-ordering with per-point reachability and
/// core distances. Infinity marks undefined distances.
struct OpticsResult {
  /// Points in processing order.
  std::vector<PointIndex> ordering;
  /// Reachability distance of each point (indexed by PointIndex).
  std::vector<double> reachability;
  /// Core distance of each point (indexed by PointIndex).
  std::vector<double> core_distance;
};

/// OPTICS [Ankerst et al. 1999] — library extension beyond the paper: the
/// density-ordering generalization of DBSCAN, provided so downstream users
/// can explore the ε-landscape once instead of re-clustering per ε. Built
/// on the same NeighborIndex substrate as every other clusterer here.
Status RunOptics(const Dataset& dataset, const OpticsParams& params,
                 OpticsResult* out);

/// Extracts a DBSCAN-equivalent flat clustering at radius `epsilon`
/// (must be <= the max_epsilon used to compute `optics`) — the standard
/// ExtractDBSCAN-Clustering procedure. Core points receive exactly
/// DBSCAN(ε, MinPts)'s partition; border points may tie-break differently,
/// as in any DBSCAN implementation.
Status ExtractDbscanClustering(const Dataset& dataset,
                               const OpticsResult& optics, double epsilon,
                               int min_pts, Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_OPTICS_H_
