#ifndef DBSVEC_CLUSTER_LSH_DBSCAN_H_
#define DBSVEC_CLUSTER_LSH_DBSCAN_H_

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"
#include "index/lsh_index.h"

namespace dbsvec {

/// Parameters of the hashing-based approximate DBSCAN baseline.
struct LshDbscanParams {
  /// Neighborhood radius ε (> 0).
  double epsilon = 1.0;
  /// Density threshold MinPts (>= 1).
  int min_pts = 5;
  /// LSH configuration; the defaults match the paper's setup (eight
  /// p-stable hash functions).
  LshParams lsh;
};

/// DBSCAN-LSH [Li, Heinis, Luk 2016]: DBSCAN with ε-range queries answered
/// approximately by a p-stable LSH index. Neighborhoods may be
/// under-counted (a neighbor that never collides with the query is
/// invisible), which is the source of the accuracy loss the paper measures
/// in Table III and the ε-sensitivity in Fig. 7.
Status RunLshDbscan(const Dataset& dataset, const LshDbscanParams& params,
                    Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_LSH_DBSCAN_H_
