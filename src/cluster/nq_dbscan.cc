#include "cluster/nq_dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/stopwatch.h"

namespace dbsvec {
namespace {

constexpr int32_t kUnclassified = -2;

}  // namespace

Status RunNqDbscan(const Dataset& dataset, const NqDbscanParams& params,
                   Clustering* out) {
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("NQ-DBSCAN: epsilon must be positive");
  }
  if (params.min_pts < 1) {
    return Status::InvalidArgument("NQ-DBSCAN: min_pts must be >= 1");
  }
  Stopwatch timer;
  const PointIndex n = dataset.size();
  const double eps = params.epsilon;
  const double eps_sq = eps * eps;

  std::vector<int32_t>& labels = out->labels;
  labels.assign(n, kUnclassified);
  std::vector<char> is_core(n, 0);
  int32_t next_cluster = 0;
  uint64_t range_queries = 0;
  uint64_t distance_computations = 0;

  // Pivot-distance table, rebuilt per seed: dist(seed, x) for all x, and
  // the points sorted by that distance for the triangle-inequality window.
  std::vector<double> pivot_dist(n);
  std::vector<PointIndex> by_pivot(n);
  std::vector<PointIndex> neighbors;
  std::deque<PointIndex> frontier;

  for (PointIndex i = 0; i < n; ++i) {
    if (labels[i] != kUnclassified) {
      continue;
    }
    // One full scan anchors the local search structure at this seed.
    for (PointIndex x = 0; x < n; ++x) {
      pivot_dist[x] = std::sqrt(dataset.SquaredDistance(i, x));
    }
    distance_computations += static_cast<uint64_t>(n);
    ++range_queries;

    neighbors.clear();
    for (PointIndex x = 0; x < n; ++x) {
      if (pivot_dist[x] <= eps) {
        neighbors.push_back(x);
      }
    }
    if (static_cast<int>(neighbors.size()) < params.min_pts) {
      labels[i] = Clustering::kNoise;
      continue;
    }

    for (PointIndex x = 0; x < n; ++x) {
      by_pivot[x] = x;
    }
    std::sort(by_pivot.begin(), by_pivot.end(),
              [&pivot_dist](PointIndex a, PointIndex b) {
                return pivot_dist[a] < pivot_dist[b];
              });

    const int32_t cid = next_cluster++;
    labels[i] = cid;
    is_core[i] = 1;
    frontier.clear();
    for (const PointIndex j : neighbors) {
      if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
        labels[j] = cid;
        frontier.push_back(j);
      }
    }
    while (!frontier.empty()) {
      const PointIndex q = frontier.front();
      frontier.pop_front();
      ++range_queries;
      // Triangle inequality: every x within eps of q satisfies
      // |pivot_dist[x] − pivot_dist[q]| <= eps, so only that window of the
      // pivot-sorted order needs exact distance checks.
      const double lo = pivot_dist[q] - eps;
      const double hi = pivot_dist[q] + eps;
      const auto begin = std::lower_bound(
          by_pivot.begin(), by_pivot.end(), lo,
          [&pivot_dist](PointIndex a, double v) { return pivot_dist[a] < v; });
      const auto end = std::upper_bound(
          begin, by_pivot.end(), hi,
          [&pivot_dist](double v, PointIndex a) { return v < pivot_dist[a]; });

      neighbors.clear();
      distance_computations += static_cast<uint64_t>(end - begin);
      for (auto it = begin; it != end; ++it) {
        if (dataset.SquaredDistance(q, *it) <= eps_sq) {
          neighbors.push_back(*it);
        }
      }
      if (static_cast<int>(neighbors.size()) < params.min_pts) {
        continue;  // Border point.
      }
      is_core[q] = 1;
      for (const PointIndex j : neighbors) {
        if (labels[j] == kUnclassified || labels[j] == Clustering::kNoise) {
          labels[j] = cid;
          frontier.push_back(j);
        }
      }
    }
  }

  out->point_types.resize(n);
  for (PointIndex i = 0; i < n; ++i) {
    out->point_types[i] = is_core[i] ? PointType::kCore
                          : labels[i] == Clustering::kNoise
                              ? PointType::kNoise
                              : PointType::kBorder;
  }
  out->num_clusters = next_cluster;
  out->stats = ClusteringStats{};
  out->stats.num_range_queries = range_queries;
  out->stats.num_distance_computations = distance_computations;
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
