#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "simd/distance.h"

namespace dbsvec {
namespace {

double DistanceToCentroid(const Dataset& dataset, PointIndex i,
                          const double* centroid, int dim) {
  return simd::SquaredDistance(dataset.point(i).data(), centroid,
                               static_cast<size_t>(dim));
}

}  // namespace

Status RunKMeansWithCentroids(const Dataset& dataset,
                              const KMeansParams& params, Clustering* out,
                              std::vector<double>* centroids) {
  const PointIndex n = dataset.size();
  const int dim = dataset.dim();
  if (params.k < 1) {
    return Status::InvalidArgument("k-means: k must be >= 1");
  }
  if (n < params.k) {
    return Status::InvalidArgument("k-means: fewer points than clusters");
  }
  Stopwatch timer;
  Rng rng(params.seed);
  const int k = params.k;
  uint64_t distance_computations = 0;

  // k-means++ seeding.
  std::vector<double> centers(static_cast<size_t>(k) * dim);
  std::vector<double> nearest_sq(n, std::numeric_limits<double>::infinity());
  const PointIndex first = static_cast<PointIndex>(rng.NextBounded(n));
  for (int j = 0; j < dim; ++j) {
    centers[j] = dataset.at(first, j);
  }
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (PointIndex i = 0; i < n; ++i) {
      const double d = DistanceToCentroid(
          dataset, i, centers.data() + static_cast<size_t>(c - 1) * dim, dim);
      ++distance_computations;
      if (d < nearest_sq[i]) {
        nearest_sq[i] = d;
      }
      total += nearest_sq[i];
    }
    // Sample the next center proportionally to squared distance.
    double pick = rng.NextDouble() * total;
    PointIndex chosen = n - 1;
    for (PointIndex i = 0; i < n; ++i) {
      pick -= nearest_sq[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    for (int j = 0; j < dim; ++j) {
      centers[static_cast<size_t>(c) * dim + j] = dataset.at(chosen, j);
    }
  }

  // Lloyd iterations.
  std::vector<int32_t>& labels = out->labels;
  labels.assign(n, 0);
  std::vector<double> sums(static_cast<size_t>(k) * dim);
  std::vector<int64_t> counts(k);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (PointIndex i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d = DistanceToCentroid(
            dataset, i, centers.data() + static_cast<size_t>(c) * dim, dim);
        ++distance_computations;
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      labels[i] = best_c;
      ++counts[best_c];
      const auto p = dataset.point(i);
      double* sum = sums.data() + static_cast<size_t>(best_c) * dim;
      for (int j = 0; j < dim; ++j) {
        sum[j] += p[j];
      }
    }
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        continue;  // Empty cluster keeps its previous centroid.
      }
      double* center = centers.data() + static_cast<size_t>(c) * dim;
      const double* sum = sums.data() + static_cast<size_t>(c) * dim;
      for (int j = 0; j < dim; ++j) {
        const double updated = sum[j] / static_cast<double>(counts[c]);
        const double diff = updated - center[j];
        movement += diff * diff;
        center[j] = updated;
      }
    }
    if (movement < params.tolerance) {
      break;
    }
  }

  out->num_clusters = k;
  out->stats = ClusteringStats{};
  out->stats.num_distance_computations = distance_computations;
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  if (centroids != nullptr) {
    *centroids = std::move(centers);
  }
  return Status::Ok();
}

Status RunKMeans(const Dataset& dataset, const KMeansParams& params,
                 Clustering* out) {
  return RunKMeansWithCentroids(dataset, params, out, nullptr);
}

}  // namespace dbsvec
