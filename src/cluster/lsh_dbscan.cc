#include "cluster/lsh_dbscan.h"

#include "cluster/dbscan.h"
#include "common/stopwatch.h"

namespace dbsvec {

Status RunLshDbscan(const Dataset& dataset, const LshDbscanParams& params,
                    Clustering* out) {
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("DBSCAN-LSH: epsilon must be positive");
  }
  Stopwatch timer;
  const LshIndex index(dataset, params.epsilon, params.lsh);
  DBSVEC_RETURN_IF_ERROR(
      RunDbscanWithIndex(index, params.epsilon, params.min_pts, out));
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
