#ifndef DBSVEC_CLUSTER_HDBSCAN_H_
#define DBSVEC_CLUSTER_HDBSCAN_H_

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// Parameters of HDBSCAN*.
struct HdbscanParams {
  /// Smallest group of points accepted as a cluster.
  int min_cluster_size = 10;
  /// k of the core-distance computation (density smoothing); 0 means
  /// min_cluster_size.
  int min_samples = 0;
};

/// HDBSCAN* [Campello, Moulavi, Sander 2013] — library extension beyond
/// the paper: hierarchical density-based clustering that removes DBSCAN's
/// single global ε. Pipeline: core distances (k-NN) → mutual-reachability
/// minimum spanning tree (Prim, O(n²·d)) → single-linkage hierarchy →
/// condensed tree at `min_cluster_size` → flat extraction by maximum
/// stability (excess of mass).
///
/// Complements DBSVEC in this library: DBSVEC accelerates clustering at a
/// *known* ε; HDBSCAN answers "what if no single ε fits" (clusters of
/// varying density). The O(n²) MST limits it to moderate n.
Status RunHdbscan(const Dataset& dataset, const HdbscanParams& params,
                  Clustering* out);

}  // namespace dbsvec

#endif  // DBSVEC_CLUSTER_HDBSCAN_H_
