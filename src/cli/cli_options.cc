#include "cli/cli_options.h"

#include <cstdlib>

namespace dbsvec::cli {
namespace {

bool ParseKeyValue(const std::string& arg, std::string* key,
                   std::string* value) {
  if (arg.rfind("--", 0) != 0) {
    return false;
  }
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    *key = arg.substr(2);
    *value = "";
  } else {
    *key = arg.substr(2, eq - 2);
    *value = arg.substr(eq + 1);
  }
  return true;
}

Status ParseAlgorithm(const std::string& value, Algorithm* out) {
  if (value == "dbsvec") {
    *out = Algorithm::kDbsvec;
  } else if (value == "dbscan") {
    *out = Algorithm::kDbscan;
  } else if (value == "rho" || value == "rho-approx") {
    *out = Algorithm::kRhoApprox;
  } else if (value == "lsh" || value == "dbscan-lsh") {
    *out = Algorithm::kLshDbscan;
  } else if (value == "nq" || value == "nq-dbscan") {
    *out = Algorithm::kNqDbscan;
  } else if (value == "kmeans") {
    *out = Algorithm::kKMeans;
  } else if (value == "hdbscan") {
    *out = Algorithm::kHdbscan;
  } else {
    return Status::InvalidArgument("unknown --algorithm: " + value);
  }
  return Status::Ok();
}

Status ParseIndex(const std::string& value, IndexType* out) {
  if (value == "kd") {
    *out = IndexType::kKdTree;
  } else if (value == "rstar" || value == "rtree") {
    *out = IndexType::kRStarTree;
  } else if (value == "brute") {
    *out = IndexType::kBruteForce;
  } else if (value == "grid") {
    *out = IndexType::kGrid;
  } else {
    return Status::InvalidArgument("unknown --index: " + value);
  }
  return Status::Ok();
}

Status ParseDemo(const std::string& value, DemoData* out) {
  if (value == "walk") {
    *out = DemoData::kWalk;
  } else if (value == "blobs") {
    *out = DemoData::kBlobs;
  } else if (value == "t4") {
    *out = DemoData::kT4;
  } else {
    return Status::InvalidArgument("unknown --demo: " + value);
  }
  return Status::Ok();
}

Status ParsePositiveDouble(const std::string& key, const std::string& value,
                           double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || parsed <= 0.0) {
    return Status::InvalidArgument("--" + key + " must be a positive number");
  }
  *out = parsed;
  return Status::Ok();
}

Status ParsePositiveInt(const std::string& key, const std::string& value,
                        int* out) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || parsed <= 0) {
    return Status::InvalidArgument("--" + key + " must be a positive integer");
  }
  *out = static_cast<int>(parsed);
  return Status::Ok();
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDbsvec:
      return "DBSVEC";
    case Algorithm::kDbscan:
      return "DBSCAN";
    case Algorithm::kRhoApprox:
      return "rho-approximate DBSCAN";
    case Algorithm::kLshDbscan:
      return "DBSCAN-LSH";
    case Algorithm::kNqDbscan:
      return "NQ-DBSCAN";
    case Algorithm::kKMeans:
      return "k-means";
    case Algorithm::kHdbscan:
      return "HDBSCAN*";
  }
  return "unknown";
}

std::string HelpText() {
  return
      "dbsvec_cli — density-based clustering from the command line\n"
      "\n"
      "Usage: dbsvec_cli [fit|assign|serve] [--flags]\n"
      "  (no command)  cluster a dataset, print a summary (original mode)\n"
      "  fit           cluster with DBSVEC and persist the trained model\n"
      "  assign        assign new points using a persisted model\n"
      "  serve         expose a persisted model over HTTP (docs/SERVING.md)\n"
      "\n"
      "Input (pick one):\n"
      "  --input=FILE.csv        headerless numeric CSV, one point per row\n"
      "  --demo=walk|blobs|t4    generate demo data (default: walk)\n"
      "  --demo-n=N --demo-dim=D demo size (default 20000 x 8)\n"
      "\n"
      "Clustering:\n"
      "  --algorithm=dbsvec|dbscan|rho|lsh|nq|kmeans|hdbscan  (default dbsvec)\n"
      "  --eps=X                 radius; omit to self-calibrate\n"
      "  --minpts=N              density threshold (default 100)\n"
      "  --k=N                   clusters for kmeans (default 10)\n"
      "  --mcs=N                 min cluster size for hdbscan (default 10)\n"
      "  --nu=auto|min|X         DBSVEC penalty factor (default auto)\n"
      "  --index=kd|rstar|brute|grid   range-query engine (default kd)\n"
      "  --rho=X                 rho for rho-approximate (default 0.001)\n"
      "  --seed=N                RNG seed (default 7)\n"
      "  --threads=N             worker threads: 0 = all cores (default),\n"
      "                          1 = sequential; results are identical\n"
      "  --cache-mb=M            process-wide cache budget in MiB shared by\n"
      "                          kernel rows, cross-solve SVDD rows, and the\n"
      "                          serving query cache (docs/CACHING.md);\n"
      "                          0 = disabled (default; DBSVEC_CACHE_MB env\n"
      "                          applies when the flag is omitted)\n"
      "  --shards=P              partition the dataset into P NUMA-homed\n"
      "                          shards with per-shard indexes (dbsvec,\n"
      "                          dbscan, assign, serve); 0 = unsharded\n"
      "                          (default); labels are identical at any P\n"
      "  --sv-budget=B           cap each SVDD solve at B support vectors\n"
      "                          (merge/forget maintenance, iteration cap\n"
      "                          linear in B); 0 = exact SMO (default)\n"
      "                          (docs/PERFORMANCE.md, bounded-cost SVDD)\n"
      "  --sample-threshold=S    train SVDD targets larger than S on a\n"
      "                          boundary-preserving sample of size S and\n"
      "                          re-check the rest against the sphere;\n"
      "                          0 = full targets (default)\n"
      "\n"
      "Output:\n"
      "  --output=FILE.csv       write points + label column\n"
      "  --compare-dbscan        also run exact DBSCAN, report recall\n"
      "  --help                  this text\n"
      "\n"
      "Model persistence (fit) / serving (assign):\n"
      "  --model-out=FILE.dbsvm  fit: write the trained model here\n"
      "  --normalize             fit: normalize to the paper range first;\n"
      "                          the transform is recorded in the model and\n"
      "                          replayed on every assigned point\n"
      "  --model=FILE.dbsvm      assign: model to load\n"
      "  --batch=N               assign: points per batched call "
      "(default 4096)\n"
      "\n"
      "Serving (serve; also honors --model, --index, --threads):\n"
      "  --host=ADDR             bind address (default 127.0.0.1)\n"
      "  --port=N                TCP port; 0 = ephemeral (default 8080)\n"
      "  --io-threads=N          event-loop threads (default 1)\n"
      "  --workers=N             request worker threads (default 2)\n"
      "  --max-inflight=N        admission bound; beyond it /v1/assign and\n"
      "                          /v1/reload are shed with 503 (default 64)\n"
      "  --deadline-ms-default=N per-request budget when the client sends\n"
      "                          no X-Deadline-Ms header (default: none)\n"
      "  --refresh               absorb core-adjacent assigned points into\n"
      "                          the dynamic overlay (online refresh)\n"
      "  --data-dir=DIR          multi-tenant model registry root: every\n"
      "                          model (PUT /v1/models/<name>) gets its own\n"
      "                          DIR/<name>/{model.dbsvec,snapshot.dbsvec,\n"
      "                          overlay.journal} and is recovered on start;\n"
      "                          --model then only seeds `default` once\n"
      "  --max-models=N          registry capacity (default 64)\n"
      "  --model-max-inflight=N  per-model admission bound on top of\n"
      "                          --max-inflight; 0 = global only (default)\n"
      "\n"
      "Durability (serve; --snapshot/--journal also apply to assign, which\n"
      "then recovers state exactly like a restarted server):\n"
      "  --durable               journal absorbed overlay points and answer\n"
      "                          POST /v1/snapshot; implies --refresh\n"
      "  --snapshot=FILE         checkpoint artifact (default <model>.ckpt)\n"
      "  --journal=FILE          write-ahead journal (default <model>.wal)\n"
      "  --fsync=always|interval|off   journal fsync policy (default\n"
      "                          interval; always = fsync per record)\n"
      "  --fsync-interval-ms=N   background fsync period (default 50)\n"
      "  --checkpoint-interval-ms=N  automatic checkpoint period;\n"
      "                          0 = manual only (default)\n"
      "\n"
      "Robustness:\n"
      "  --deadline-ms=N         overall time budget; an exceeded budget\n"
      "                          exits with a DeadlineExceeded status\n"
      "  --failpoints=SPEC       arm fault-injection sites, same syntax as\n"
      "                          the DBSVEC_FAILPOINTS env var\n"
      "                          (site:mode[:arg],...)\n";
}

Status ParseCliOptions(const std::vector<std::string>& args,
                       CliOptions* options) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string key;
    std::string value;
    if (!ParseKeyValue(arg, &key, &value)) {
      // A bare first word selects the command; anything else is an error.
      if (i == 0 && arg == "fit") {
        options->command = Command::kFit;
        continue;
      }
      if (i == 0 && arg == "assign") {
        options->command = Command::kAssign;
        continue;
      }
      if (i == 0 && arg == "serve") {
        options->command = Command::kServe;
        continue;
      }
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
    if (key == "help") {
      options->show_help = true;
    } else if (key == "input") {
      options->input_path = value;
    } else if (key == "output") {
      options->output_path = value;
    } else if (key == "demo") {
      DBSVEC_RETURN_IF_ERROR(ParseDemo(value, &options->demo));
    } else if (key == "demo-n") {
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &options->demo_n));
    } else if (key == "demo-dim") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->demo_dim));
    } else if (key == "algorithm") {
      DBSVEC_RETURN_IF_ERROR(ParseAlgorithm(value, &options->algorithm));
    } else if (key == "eps") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveDouble(key, value, &options->epsilon));
    } else if (key == "minpts") {
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &options->min_pts));
    } else if (key == "k") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->kmeans_k));
    } else if (key == "mcs") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->min_cluster_size));
    } else if (key == "nu") {
      if (value == "auto") {
        options->nu_mode = NuMode::kAuto;
      } else if (value == "min") {
        options->nu_mode = NuMode::kMinimum;
      } else {
        options->nu_mode = NuMode::kFixed;
        DBSVEC_RETURN_IF_ERROR(
            ParsePositiveDouble(key, value, &options->fixed_nu));
        if (options->fixed_nu > 1.0) {
          return Status::InvalidArgument("--nu must be in (0, 1]");
        }
      }
    } else if (key == "index") {
      DBSVEC_RETURN_IF_ERROR(ParseIndex(value, &options->index));
    } else if (key == "rho") {
      DBSVEC_RETURN_IF_ERROR(ParsePositiveDouble(key, value, &options->rho));
    } else if (key == "seed") {
      int seed = 0;
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &seed));
      options->seed = static_cast<uint64_t>(seed);
    } else if (key == "threads") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--threads must be a non-negative integer");
      }
      options->threads = static_cast<int>(parsed);
    } else if (key == "shards") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--shards must be a non-negative integer");
      }
      options->shards = static_cast<int>(parsed);
    } else if (key == "sv-budget") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--sv-budget must be a non-negative integer");
      }
      options->sv_budget = static_cast<int>(parsed);
    } else if (key == "sample-threshold") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--sample-threshold must be a non-negative integer");
      }
      options->sample_threshold = static_cast<int>(parsed);
    } else if (key == "cache-mb") {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--cache-mb must be a non-negative integer");
      }
      options->cache_mb = static_cast<int64_t>(parsed);
    } else if (key == "compare-dbscan") {
      options->compare_dbscan = value != "0" && value != "false";
    } else if (key == "model-out") {
      options->model_out_path = value;
    } else if (key == "model") {
      options->model_path = value;
    } else if (key == "normalize") {
      options->normalize = value != "0" && value != "false";
    } else if (key == "batch") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->assign_batch));
    } else if (key == "deadline-ms") {
      int deadline_ms = 0;
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &deadline_ms));
      options->deadline_ms = deadline_ms;
    } else if (key == "host") {
      options->serve_host = value;
    } else if (key == "port") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0 || parsed > 65535) {
        return Status::InvalidArgument("--port must be in [0, 65535]");
      }
      options->serve_port = static_cast<int>(parsed);
    } else if (key == "io-threads") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->serve_io_threads));
    } else if (key == "workers") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->serve_workers));
    } else if (key == "max-inflight") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->serve_max_inflight));
    } else if (key == "deadline-ms-default") {
      int default_ms = 0;
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &default_ms));
      options->serve_default_deadline_ms = default_ms;
    } else if (key == "refresh") {
      options->serve_refresh = value != "0" && value != "false";
    } else if (key == "data-dir") {
      if (value.empty()) {
        return Status::InvalidArgument("--data-dir needs a directory path");
      }
      options->serve_data_dir = value;
    } else if (key == "max-models") {
      DBSVEC_RETURN_IF_ERROR(
          ParsePositiveInt(key, value, &options->serve_max_models));
    } else if (key == "model-max-inflight") {
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || parsed < 0) {
        return Status::InvalidArgument(
            "--model-max-inflight must be a non-negative integer");
      }
      options->serve_model_max_inflight = static_cast<int>(parsed);
    } else if (key == "durable") {
      options->serve_durable = value != "0" && value != "false";
    } else if (key == "snapshot") {
      options->snapshot_path = value;
    } else if (key == "journal") {
      options->journal_path = value;
    } else if (key == "fsync") {
      DBSVEC_RETURN_IF_ERROR(
          ParseFsyncPolicy(value, &options->fsync_policy));
    } else if (key == "fsync-interval-ms") {
      int interval_ms = 0;
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &interval_ms));
      options->fsync_interval_ms = interval_ms;
    } else if (key == "checkpoint-interval-ms") {
      int interval_ms = 0;
      DBSVEC_RETURN_IF_ERROR(ParsePositiveInt(key, value, &interval_ms));
      options->checkpoint_interval_ms = interval_ms;
    } else if (key == "failpoints") {
      if (value.empty()) {
        return Status::InvalidArgument(
            "--failpoints needs a site:mode[:arg],... spec");
      }
      options->failpoints = value;
    } else {
      return Status::InvalidArgument("unknown flag: --" + key);
    }
  }
  if (options->command == Command::kFit && !options->show_help &&
      options->model_out_path.empty()) {
    return Status::InvalidArgument("fit requires --model-out=FILE");
  }
  if (options->command == Command::kAssign && !options->show_help) {
    if (options->model_path.empty()) {
      return Status::InvalidArgument("assign requires --model=FILE");
    }
    if (options->input_path.empty()) {
      return Status::InvalidArgument(
          "assign requires --input=FILE.csv (points to assign)");
    }
  }
  if (options->command == Command::kServe && !options->show_help &&
      options->model_path.empty() && options->serve_data_dir.empty()) {
    return Status::InvalidArgument(
        "serve requires --model=FILE or --data-dir=DIR");
  }
  if (options->serve_durable) {
    // A durable server journals absorbed points, so absorption must be on.
    options->serve_refresh = true;
  }
  return Status::Ok();
}

}  // namespace dbsvec::cli
