#ifndef DBSVEC_CLI_CLI_RUNNER_H_
#define DBSVEC_CLI_CLI_RUNNER_H_

#include "cli/cli_options.h"
#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"
#include "model/dbsvec_model.h"

namespace dbsvec::cli {

/// Loads (or generates) the dataset selected by `options`.
Status LoadInput(const CliOptions& options, Dataset* dataset);

/// Resolves the effective epsilon: the explicit --eps value, or the
/// kth-nearest-neighbor self-calibration when unset. k-means ignores it.
double ResolveEpsilon(const CliOptions& options, const Dataset& dataset);

/// Runs the selected algorithm with the resolved parameters.
Status RunAlgorithm(const CliOptions& options, const Dataset& dataset,
                    double epsilon, Clustering* out);

/// `fit`: optionally normalizes `*dataset` in place (--normalize), resolves
/// ε on the data DBSVEC will actually see, clusters with DBSVEC, and writes
/// the trained model (with the normalization transform attached) to
/// --model-out. `*out` receives the training clustering.
Status RunFit(const CliOptions& options, Dataset* dataset, Clustering* out,
              DbsvecModel* model);

/// `assign`: loads --model, reads the points CSV from --input, assigns
/// every point in batches of --batch, and fills `*labels`. `*points`
/// receives the raw input points (for --output).
Status RunAssign(const CliOptions& options, Dataset* points,
                 std::vector<int32_t>* labels);

}  // namespace dbsvec::cli

#endif  // DBSVEC_CLI_CLI_RUNNER_H_
