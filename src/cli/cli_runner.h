#ifndef DBSVEC_CLI_CLI_RUNNER_H_
#define DBSVEC_CLI_CLI_RUNNER_H_

#include "cli/cli_options.h"
#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec::cli {

/// Loads (or generates) the dataset selected by `options`.
Status LoadInput(const CliOptions& options, Dataset* dataset);

/// Resolves the effective epsilon: the explicit --eps value, or the
/// kth-nearest-neighbor self-calibration when unset. k-means ignores it.
double ResolveEpsilon(const CliOptions& options, const Dataset& dataset);

/// Runs the selected algorithm with the resolved parameters.
Status RunAlgorithm(const CliOptions& options, const Dataset& dataset,
                    double epsilon, Clustering* out);

}  // namespace dbsvec::cli

#endif  // DBSVEC_CLI_CLI_RUNNER_H_
