#include "cli/cli_runner.h"

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/hdbscan.h"
#include "cluster/nq_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "common/csv.h"
#include "core/dbsvec.h"
#include "data/shapes.h"
#include "data/synthetic.h"

namespace dbsvec::cli {

Status LoadInput(const CliOptions& options, Dataset* dataset) {
  if (!options.input_path.empty()) {
    return ReadCsv(options.input_path, /*last_column_is_label=*/false,
                   dataset, nullptr);
  }
  switch (options.demo) {
    case DemoData::kWalk: {
      RandomWalkParams params;
      params.n = options.demo_n;
      params.dim = options.demo_dim;
      params.num_clusters = 10;
      params.seed = options.seed;
      *dataset = GenerateRandomWalk(params);
      return Status::Ok();
    }
    case DemoData::kBlobs: {
      GaussianBlobsParams params;
      params.n = options.demo_n;
      params.dim = options.demo_dim;
      params.num_clusters = 5;
      params.noise_fraction = 0.02;
      params.seed = options.seed;
      *dataset = GenerateGaussianBlobs(params);
      return Status::Ok();
    }
    case DemoData::kT4:
      *dataset = GenerateShapeScene(ShapeScene::kT4, options.demo_n,
                                    options.seed);
      return Status::Ok();
    case DemoData::kNone:
      break;
  }
  return Status::InvalidArgument("no input: pass --input or --demo");
}

double ResolveEpsilon(const CliOptions& options, const Dataset& dataset) {
  if (options.epsilon > 0.0) {
    return options.epsilon;
  }
  return SuggestEpsilon(dataset, options.min_pts);
}

Status RunAlgorithm(const CliOptions& options, const Dataset& dataset,
                    double epsilon, Clustering* out) {
  switch (options.algorithm) {
    case Algorithm::kDbsvec: {
      DbsvecParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.nu_mode = options.nu_mode;
      params.fixed_nu = options.fixed_nu;
      params.index = options.index;
      params.seed = options.seed;
      return RunDbsvec(dataset, params, out);
    }
    case Algorithm::kDbscan: {
      DbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.index = options.index;
      return RunDbscan(dataset, params, out);
    }
    case Algorithm::kRhoApprox: {
      RhoApproxParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.rho = options.rho;
      return RunRhoApproxDbscan(dataset, params, out);
    }
    case Algorithm::kLshDbscan: {
      LshDbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.lsh.seed = options.seed;
      return RunLshDbscan(dataset, params, out);
    }
    case Algorithm::kNqDbscan: {
      NqDbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      return RunNqDbscan(dataset, params, out);
    }
    case Algorithm::kKMeans: {
      KMeansParams params;
      params.k = options.kmeans_k;
      params.seed = options.seed;
      return RunKMeans(dataset, params, out);
    }
    case Algorithm::kHdbscan: {
      HdbscanParams params;
      params.min_cluster_size = options.min_cluster_size;
      return RunHdbscan(dataset, params, out);
    }
  }
  return Status::InvalidArgument("unhandled algorithm");
}

}  // namespace dbsvec::cli
