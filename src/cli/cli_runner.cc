#include "cli/cli_runner.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/lsh_dbscan.h"
#include "cluster/hdbscan.h"
#include "cluster/nq_dbscan.h"
#include "cluster/rho_approx_dbscan.h"
#include "common/csv.h"
#include "common/normalize.h"
#include "core/dbsvec.h"
#include "data/shapes.h"
#include "data/synthetic.h"
#include "serve/assignment_engine.h"
#include "server/durability.h"

namespace dbsvec::cli {
namespace {

/// The run's time budget: --deadline-ms counted from the moment the run
/// starts, or unlimited when the flag is unset.
Deadline RunDeadline(const CliOptions& options) {
  return options.deadline_ms > 0 ? Deadline::AfterMillis(options.deadline_ms)
                                 : Deadline();
}

}  // namespace

Status LoadInput(const CliOptions& options, Dataset* dataset) {
  if (!options.input_path.empty()) {
    return ReadCsv(options.input_path, /*last_column_is_label=*/false,
                   dataset, nullptr);
  }
  switch (options.demo) {
    case DemoData::kWalk: {
      RandomWalkParams params;
      params.n = options.demo_n;
      params.dim = options.demo_dim;
      params.num_clusters = 10;
      params.seed = options.seed;
      *dataset = GenerateRandomWalk(params);
      return Status::Ok();
    }
    case DemoData::kBlobs: {
      GaussianBlobsParams params;
      params.n = options.demo_n;
      params.dim = options.demo_dim;
      params.num_clusters = 5;
      params.noise_fraction = 0.02;
      params.seed = options.seed;
      *dataset = GenerateGaussianBlobs(params);
      return Status::Ok();
    }
    case DemoData::kT4:
      *dataset = GenerateShapeScene(ShapeScene::kT4, options.demo_n,
                                    options.seed);
      return Status::Ok();
    case DemoData::kNone:
      break;
  }
  return Status::InvalidArgument("no input: pass --input or --demo");
}

double ResolveEpsilon(const CliOptions& options, const Dataset& dataset) {
  if (options.epsilon > 0.0) {
    return options.epsilon;
  }
  return SuggestEpsilon(dataset, options.min_pts);
}

Status RunAlgorithm(const CliOptions& options, const Dataset& dataset,
                    double epsilon, Clustering* out) {
  switch (options.algorithm) {
    case Algorithm::kDbsvec: {
      DbsvecParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.nu_mode = options.nu_mode;
      params.fixed_nu = options.fixed_nu;
      params.index = options.index;
      params.seed = options.seed;
      params.shards = options.shards;
      params.sv_budget = options.sv_budget;
      params.sample_threshold = options.sample_threshold;
      params.deadline = RunDeadline(options);
      return RunDbsvec(dataset, params, out);
    }
    case Algorithm::kDbscan: {
      DbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.index = options.index;
      params.shards = options.shards;
      return RunDbscan(dataset, params, out);
    }
    case Algorithm::kRhoApprox: {
      RhoApproxParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.rho = options.rho;
      return RunRhoApproxDbscan(dataset, params, out);
    }
    case Algorithm::kLshDbscan: {
      LshDbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      params.lsh.seed = options.seed;
      return RunLshDbscan(dataset, params, out);
    }
    case Algorithm::kNqDbscan: {
      NqDbscanParams params;
      params.epsilon = epsilon;
      params.min_pts = options.min_pts;
      return RunNqDbscan(dataset, params, out);
    }
    case Algorithm::kKMeans: {
      KMeansParams params;
      params.k = options.kmeans_k;
      params.seed = options.seed;
      return RunKMeans(dataset, params, out);
    }
    case Algorithm::kHdbscan: {
      HdbscanParams params;
      params.min_cluster_size = options.min_cluster_size;
      return RunHdbscan(dataset, params, out);
    }
  }
  return Status::InvalidArgument("unhandled algorithm");
}

Status RunFit(const CliOptions& options, Dataset* dataset, Clustering* out,
              DbsvecModel* model) {
  if (options.model_out_path.empty()) {
    return Status::InvalidArgument("fit requires --model-out=FILE");
  }
  AffineTransform transform;
  if (options.normalize) {
    transform = NormalizeToRangeWithTransform(dataset, 0.0, 1e5);
  }
  const double epsilon = ResolveEpsilon(options, *dataset);
  DbsvecParams params;
  params.epsilon = epsilon;
  params.min_pts = options.min_pts;
  params.nu_mode = options.nu_mode;
  params.fixed_nu = options.fixed_nu;
  params.index = options.index;
  params.seed = options.seed;
  params.shards = options.shards;
  params.sv_budget = options.sv_budget;
  params.sample_threshold = options.sample_threshold;
  params.deadline = RunDeadline(options);
  DBSVEC_RETURN_IF_ERROR(RunDbsvec(*dataset, params, out, model));
  model->transform = std::move(transform);
  return SaveModel(*model, options.model_out_path);
}

Status RunAssign(const CliOptions& options, Dataset* points,
                 std::vector<int32_t>* labels) {
  const Deadline deadline = RunDeadline(options);
  std::unique_ptr<AssignmentEngine> engine;
  AssignmentOptions serve_options;
  serve_options.index = options.index;
  serve_options.shards = options.shards;
  serve_options.build_deadline = deadline;
  if (!options.snapshot_path.empty() || !options.journal_path.empty()) {
    // Offline recovery oracle: rebuild the exact engine state a restarted
    // durable server would serve from (snapshot + journal replay), then
    // assign against it. The crash-recovery harness compares server output
    // against this path.
    server::DurabilityOptions durability;
    durability.enabled = true;
    durability.snapshot_path = options.snapshot_path;
    durability.journal_path = options.journal_path;
    durability.fsync = FsyncPolicy::kOff;  // Read-only replay; never sync.
    server::ResolveDurabilityPaths(options.model_path, &durability);
    DBSVEC_RETURN_IF_ERROR(server::RecoverEngine(
        options.model_path, durability, serve_options, server::RetryOptions(),
        &engine, /*journal=*/nullptr, /*report=*/nullptr));
    // Recovery opened the journal for append; this process only reads.
    engine->AttachJournal(nullptr);
  } else {
    DBSVEC_RETURN_IF_ERROR(
        AssignmentEngine::Load(options.model_path, serve_options, &engine));
  }
  DBSVEC_RETURN_IF_ERROR(ReadCsv(options.input_path,
                                 /*last_column_is_label=*/false, points,
                                 nullptr));
  if (points->dim() != engine->dim()) {
    return Status::InvalidArgument(
        "assign: input has dimension " + std::to_string(points->dim()) +
        ", model expects " + std::to_string(engine->dim()));
  }
  // Stream through the batch size: bounded scratch regardless of input
  // size, and each batch fans out on the thread pool.
  const PointIndex n = points->size();
  const PointIndex batch = std::max(1, options.assign_batch);
  labels->clear();
  labels->reserve(n);
  Dataset chunk(points->dim());
  std::vector<int32_t> chunk_labels;
  for (PointIndex begin = 0; begin < n; begin += batch) {
    const PointIndex end = std::min<PointIndex>(begin + batch, n);
    chunk = Dataset(points->dim());
    chunk.Reserve(end - begin);
    for (PointIndex i = begin; i < end; ++i) {
      chunk.Append(points->point(i));
    }
    DBSVEC_RETURN_IF_ERROR(engine->AssignBatch(chunk, &chunk_labels,
                                               deadline));
    labels->insert(labels->end(), chunk_labels.begin(), chunk_labels.end());
  }
  return Status::Ok();
}

}  // namespace dbsvec::cli
