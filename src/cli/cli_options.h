#ifndef DBSVEC_CLI_CLI_OPTIONS_H_
#define DBSVEC_CLI_CLI_OPTIONS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dbsvec.h"
#include "index/neighbor_index.h"
#include "model/overlay_journal.h"

namespace dbsvec::cli {

/// Top-level CLI mode. `cluster` (the default, no command word) keeps the
/// original flag-only interface; `fit` additionally persists a trained
/// DBSVEC model; `assign` serves point-assignment queries from one;
/// `serve` exposes a model over HTTP (docs/SERVING.md).
enum class Command {
  kCluster,
  kFit,
  kAssign,
  kServe,
};

/// Which clusterer the CLI runs.
enum class Algorithm {
  kDbsvec,
  kDbscan,
  kRhoApprox,
  kLshDbscan,
  kNqDbscan,
  kKMeans,
  kHdbscan,
};

/// Built-in demo data generators (used when no --input is given).
enum class DemoData {
  kNone,
  kWalk,   ///< Random-walk clusters (the paper's synthetic workload).
  kBlobs,  ///< Gaussian blobs.
  kT4,     ///< t4.8k-style 2-D scene.
};

/// Parsed command-line options of the dbsvec_cli tool.
struct CliOptions {
  Command command = Command::kCluster;
  Algorithm algorithm = Algorithm::kDbsvec;
  std::string input_path;   ///< CSV to cluster; empty => use `demo`.
  std::string output_path;  ///< Labelled CSV to write; empty => stdout
                            ///< summary only.
  DemoData demo = DemoData::kWalk;
  int demo_n = 20'000;
  int demo_dim = 8;

  double epsilon = 0.0;  ///< <= 0 => self-calibrate via SuggestEpsilon.
  int min_pts = 100;
  int kmeans_k = 10;
  int min_cluster_size = 10;  ///< HDBSCAN only.

  NuMode nu_mode = NuMode::kAuto;
  double fixed_nu = 0.1;
  IndexType index = IndexType::kKdTree;
  double rho = 0.001;
  uint64_t seed = 7;
  int threads = 0;  ///< 0 = hardware concurrency, 1 = sequential.
  int shards = 0;   ///< >= 1: sharded execution engine; 0 = unsharded.
  int sv_budget = 0;         ///< > 0: support-vector budget per solve.
  int sample_threshold = 0;  ///< > 0: boundary-preserving target sampling.
  /// Process-wide cache budget (docs/CACHING.md), in MiB. 0 disables the
  /// cache manager (legacy per-solve caching); -1 (unset) defers to the
  /// DBSVEC_CACHE_MB environment variable.
  int64_t cache_mb = -1;

  bool compare_dbscan = false;  ///< Also run exact DBSCAN, report recall.
  bool show_help = false;

  // fit/assign (model persistence + serving).
  std::string model_out_path;  ///< fit: where to write the model.
  std::string model_path;      ///< assign: model to load.
  bool normalize = false;      ///< fit: paper-range normalization, recorded
                               ///< in the model's transform.
  int assign_batch = 4096;     ///< assign: points per AssignBatch call.

  // Robustness (docs/ROBUSTNESS.md).
  int64_t deadline_ms = 0;   ///< > 0: overall time budget for the run.
  std::string failpoints;    ///< DBSVEC_FAILPOINTS-syntax spec to arm.

  // serve (docs/SERVING.md). --model, --index, and --threads above also
  // apply; --threads sizes the global pool AssignBatch fans out on.
  std::string serve_host = "127.0.0.1";
  int serve_port = 8080;      ///< 0 binds an ephemeral port.
  int serve_io_threads = 1;   ///< Event-loop threads.
  int serve_workers = 2;      ///< Request-processing threads.
  int serve_max_inflight = 64;
  int64_t serve_default_deadline_ms = 0;  ///< Per-request default budget.
  bool serve_refresh = false;  ///< Online core absorption (overlay).

  // Multi-tenant registry (docs/SERVING.md, "Model registry"). With a
  // data dir, each model lives under <data-dir>/<name>/ with its own
  // snapshot + journal, and --model (optional) seeds the `default` model
  // on first start; without one the server is single-model in-memory
  // unless models are uploaded.
  std::string serve_data_dir;       ///< Empty = no per-model durability.
  int serve_max_models = 64;        ///< Registry capacity.
  int serve_model_max_inflight = 0; ///< Per-model admission; 0 = global only.

  // Durability (docs/ROBUSTNESS.md). --durable implies --refresh for
  // serve. assign also honors --snapshot/--journal: it then recovers
  // engine state exactly like a restarted server (the offline recovery
  // oracle the crash harness compares against).
  bool serve_durable = false;
  std::string snapshot_path;  ///< Empty => `<model>.ckpt`.
  std::string journal_path;   ///< Empty => `<model>.wal`.
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  int64_t fsync_interval_ms = 50;
  int64_t checkpoint_interval_ms = 0;  ///< 0 = manual (POST /v1/snapshot).
};

/// Parses argv into `*options`. Returns InvalidArgument with a message
/// naming the offending flag on bad input. Recognized flags are listed by
/// HelpText().
Status ParseCliOptions(const std::vector<std::string>& args,
                       CliOptions* options);

/// Usage text for --help.
std::string HelpText();

/// Human-readable algorithm name.
const char* AlgorithmName(Algorithm algorithm);

}  // namespace dbsvec::cli

#endif  // DBSVEC_CLI_CLI_OPTIONS_H_
