#ifndef DBSVEC_EXEC_SHARDED_INDEX_H_
#define DBSVEC_EXEC_SHARDED_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/deadline.h"
#include "common/status.h"
#include "exec/topology.h"
#include "index/neighbor_index.h"

namespace dbsvec::exec {

/// Partition-parallel range-query engine: the dataset is split into
/// `shards` contiguous global-id ranges, each owning a compact local copy
/// of its points (so every shard's working set — including the inner
/// engine's structure-of-arrays blocks — is one contiguous region, NUMA-
/// friendly under the round-robin shard→node placement of
/// exec::ShardHomeNode) plus its own spatial index of the requested inner
/// type.
///
/// Every query fans out to all shards and the per-shard hits are merged
/// sorted by global point id. Shards cover contiguous ascending id ranges,
/// so sorting each shard's local hits and concatenating in shard order
/// yields the globally sorted result without a comparison-based merge.
/// Because the merged neighbor order depends only on the point *set* — not
/// on shard internals, the shard count, or the thread count — clustering
/// output downstream of this engine is bit-identical at any shards >= 1
/// and any thread count.
///
/// Counter policy: the sharded layer reports exactly one range query per
/// external query (invariant across shard counts); distance computations
/// are folded up from the shards and are partition-dependent (per-shard
/// trees prune differently), so they are invariant across thread counts
/// but not across shard counts.
///
/// Thread safety: matches the inner engine. The four static inner engines
/// answer concurrent queries safely, so a ShardedIndex over them does too.
class ShardedIndex final : public NeighborIndex {
 public:
  /// Builds `shards` per-shard indexes of type `inner` (clamped to the
  /// dataset size so no shard is empty). Honors `deadline` and the
  /// `index.build` failpoint through CreateIndexChecked per shard.
  static Status Create(IndexType inner, const Dataset& dataset,
                       double epsilon_hint, int shards,
                       const Deadline& deadline,
                       std::unique_ptr<ShardedIndex>* out);

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  void RangeQueryWithDistances(std::span<const double> query, double epsilon,
                               std::vector<PointIndex>* out,
                               std::vector<double>* dist_sq) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;

  /// Shard-affine batched fan-out: the (shard, query) sub-query grid runs
  /// on the global pool via ExecuteGrouped (one group per shard, so pinned
  /// workers mostly stay on their home shard's memory), then the partial
  /// results are absorbed sequentially in (query, shard) order. The
  /// `exec.shard_merge` failpoint fires in the merge stage (error mode
  /// fails the batch; delay mode stalls it).
  Status RangeQueryBatch(std::span<const PointIndex> queries, double epsilon,
                         std::vector<std::vector<PointIndex>>* results)
      const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  IndexType inner_type() const { return inner_type_; }
  /// NUMA node homing shard `s` (round-robin over detected nodes).
  int shard_home_node(int s) const;

 private:
  struct Shard {
    PointIndex begin = 0;  // Global id of local point 0.
    Dataset points{0};     // Contiguous local copy; local i = begin + i.
    std::unique_ptr<NeighborIndex> index;
  };

  ShardedIndex(const Dataset& dataset, IndexType inner)
      : NeighborIndex(dataset), inner_type_(inner) {}

  /// Runs the sub-query against one shard, appending *global* ids sorted
  /// ascending to `out`; returns the shard-local distance-computation
  /// count (the sub-query is never reported as a range query — the
  /// sharded layer counts one per external query).
  uint64_t QueryShard(const Shard& shard, std::span<const double> query,
                      double epsilon, std::vector<PointIndex>* out) const;

  IndexType inner_type_;
  std::vector<Shard> shards_;
  Topology topology_;
};

}  // namespace dbsvec::exec

#endif  // DBSVEC_EXEC_SHARDED_INDEX_H_
