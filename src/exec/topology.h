#ifndef DBSVEC_EXEC_TOPOLOGY_H_
#define DBSVEC_EXEC_TOPOLOGY_H_

#include <string>
#include <vector>

namespace dbsvec::exec {

/// One NUMA node and the CPUs local to it.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine's NUMA layout as seen by the sharded execution engine.
struct Topology {
  std::vector<NumaNode> nodes;
  /// True when the layout came from /sys/devices/system/node; false for
  /// the single-node fallback (non-Linux, masked sysfs, parse failure).
  bool from_sysfs = false;

  int num_cpus() const {
    int n = 0;
    for (const NumaNode& node : nodes) {
      n += static_cast<int>(node.cpus.size());
    }
    return n;
  }
};

/// Parses a kernel cpulist string ("0-3,8-11", "0", "") into sorted CPU
/// ids. Malformed ranges are skipped; the result may be empty.
std::vector<int> ParseCpuList(const std::string& list);

/// Reads the NUMA layout from /sys/devices/system/node/node*/cpulist.
/// Falls back to a single node holding CPUs [0, hardware_concurrency) when
/// sysfs is unavailable or yields no CPUs, so callers always get at least
/// one node with at least one CPU.
Topology DetectTopology();

/// NUMA node homing shard `shard` under the round-robin placement the
/// sharded engine uses: shard s lives on node s % nodes.size().
int ShardHomeNode(const Topology& topology, int shard);

/// CPU pinning plan for `threads` pool workers: worker w is assigned a CPU
/// from node w % nodes.size(), cycling through each node's CPUs. Matches
/// ShardHomeNode, so worker w's home shard (w % shards, see
/// ThreadPool::ExecuteGrouped) and its pinned CPU land on the same node
/// whenever shards is a multiple of the node count. Pass the result to
/// SetGlobalPinning.
std::vector<int> PinningPlan(const Topology& topology, int threads);

}  // namespace dbsvec::exec

#endif  // DBSVEC_EXEC_TOPOLOGY_H_
