#include "exec/sharded_index.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/thread_pool.h"
#include "fault/failpoint.h"

namespace dbsvec::exec {

Status ShardedIndex::Create(IndexType inner, const Dataset& dataset,
                            double epsilon_hint, int shards,
                            const Deadline& deadline,
                            std::unique_ptr<ShardedIndex>* out) {
  out->reset();
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  const PointIndex n = dataset.size();
  // Clamp so every shard owns at least one point (a degenerate empty
  // dataset keeps a single empty shard).
  const int num_shards =
      std::max(1, std::min(shards, std::max<PointIndex>(n, 1)));

  std::unique_ptr<ShardedIndex> index(new ShardedIndex(dataset, inner));
  index->topology_ = DetectTopology();
  index->shards_.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = index->shards_[static_cast<size_t>(s)];
    const PointIndex begin =
        static_cast<PointIndex>(static_cast<int64_t>(n) * s / num_shards);
    const PointIndex end =
        static_cast<PointIndex>(static_cast<int64_t>(n) * (s + 1) /
                                num_shards);
    shard.begin = begin;
    Dataset local(dataset.dim());
    local.Reserve(end - begin);
    for (PointIndex i = begin; i < end; ++i) {
      local.Append(dataset.point(i));
    }
    shard.points = std::move(local);
    // Sequential per-shard builds: the inner bulk loads may parallelize
    // internally, and a fixed build order keeps any build-time failure
    // (deadline, index.build failpoint) deterministic.
    DBSVEC_RETURN_IF_ERROR(CreateIndexChecked(inner, shard.points,
                                              epsilon_hint, deadline,
                                              &shard.index));
  }
  *out = std::move(index);
  return Status::Ok();
}

uint64_t ShardedIndex::QueryShard(const Shard& shard,
                                  std::span<const double> query,
                                  double epsilon,
                                  std::vector<PointIndex>* out) const {
  QueryCounters local;
  std::vector<PointIndex> hits;
  {
    // Divert the inner engine's counter bumps: sub-queries are an
    // implementation detail, not externally visible range queries.
    ScopedCounterCapture capture(&local);
    shard.index->RangeQuery(query, epsilon, &hits);
  }
  std::sort(hits.begin(), hits.end());
  out->reserve(out->size() + hits.size());
  for (const PointIndex i : hits) {
    out->push_back(shard.begin + i);
  }
  return local.distance_computations;
}

void ShardedIndex::RangeQuery(std::span<const double> query, double epsilon,
                              std::vector<PointIndex>* out) const {
  out->clear();
  uint64_t distances = 0;
  // Ascending shard order + per-shard ascending sort = globally sorted by
  // id (shards cover contiguous ascending global ranges).
  for (const Shard& shard : shards_) {
    distances += QueryShard(shard, query, epsilon, out);
  }
  CountDistanceComputations(distances);
  CountRangeQuery();
}

void ShardedIndex::RangeQueryWithDistances(std::span<const double> query,
                                           double epsilon,
                                           std::vector<PointIndex>* out,
                                           std::vector<double>* dist_sq) const {
  out->clear();
  dist_sq->clear();
  uint64_t distances = 0;
  std::vector<PointIndex> hits;
  std::vector<double> hit_dists;
  std::vector<size_t> order;
  for (const Shard& shard : shards_) {
    QueryCounters local;
    {
      ScopedCounterCapture capture(&local);
      shard.index->RangeQueryWithDistances(query, epsilon, &hits, &hit_dists);
    }
    distances += local.distance_computations;
    order.resize(hits.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return hits[a] < hits[b]; });
    out->reserve(out->size() + hits.size());
    dist_sq->reserve(dist_sq->size() + hits.size());
    for (const size_t k : order) {
      out->push_back(shard.begin + hits[k]);
      dist_sq->push_back(hit_dists[k]);
    }
  }
  CountDistanceComputations(distances);
  CountRangeQuery();
}

PointIndex ShardedIndex::RangeCount(std::span<const double> query,
                                    double epsilon) const {
  PointIndex count = 0;
  uint64_t distances = 0;
  for (const Shard& shard : shards_) {
    QueryCounters local;
    {
      ScopedCounterCapture capture(&local);
      count += shard.index->RangeCount(query, epsilon);
    }
    distances += local.distance_computations;
  }
  CountDistanceComputations(distances);
  CountRangeQuery();
  return count;
}

Status ShardedIndex::RangeQueryBatch(
    std::span<const PointIndex> queries, double epsilon,
    std::vector<std::vector<PointIndex>>* results) const {
  const size_t num_queries = queries.size();
  const int num_shards = this->num_shards();
  results->clear();
  results->resize(num_queries);
  if (num_queries == 0) {
    return FailpointCheck("exec.shard_merge");
  }

  // Fan out the (shard × query) grid. Each sub-query owns one partial
  // slot, so the fan-out is pure; partial[s][q] holds shard s's sorted
  // global hits for query q.
  std::vector<std::vector<std::vector<PointIndex>>> partial(
      static_cast<size_t>(num_shards));
  std::vector<std::vector<uint64_t>> distances(
      static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    partial[static_cast<size_t>(s)].resize(num_queries);
    distances[static_cast<size_t>(s)].assign(num_queries, 0);
  }
  const auto sub_query = [&](int s, int q) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    distances[static_cast<size_t>(s)][static_cast<size_t>(q)] =
        QueryShard(shard, dataset_.point(queries[static_cast<size_t>(q)]),
                   epsilon, &partial[static_cast<size_t>(s)][static_cast<
                       size_t>(q)]);
  };
  ThreadPool* pool = GlobalThreadPool();
  if (pool == nullptr) {
    for (int s = 0; s < num_shards; ++s) {
      for (size_t q = 0; q < num_queries; ++q) {
        sub_query(s, static_cast<int>(q));
      }
    }
  } else {
    // One group per shard: pinned workers drain their home shard's
    // sub-queries first, keeping each shard's contiguous block hot on its
    // home node, while finished workers still steal from other shards.
    const std::vector<int> group_sizes(static_cast<size_t>(num_shards),
                                       static_cast<int>(num_queries));
    pool->ExecuteGrouped(group_sizes, sub_query);
  }

  // Deterministic merge, absorbed sequentially in (query, shard) order.
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("exec.shard_merge"));
  uint64_t total_distances = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<PointIndex>& merged = (*results)[q];
    size_t total = 0;
    for (int s = 0; s < num_shards; ++s) {
      total += partial[static_cast<size_t>(s)][q].size();
    }
    merged.reserve(total);
    for (int s = 0; s < num_shards; ++s) {
      std::vector<PointIndex>& part = partial[static_cast<size_t>(s)][q];
      merged.insert(merged.end(), part.begin(), part.end());
      total_distances += distances[static_cast<size_t>(s)][q];
    }
    CountRangeQuery();
  }
  CountDistanceComputations(total_distances);
  return Status::Ok();
}

int ShardedIndex::shard_home_node(int s) const {
  return ShardHomeNode(topology_, s);
}

}  // namespace dbsvec::exec
