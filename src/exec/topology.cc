#include "exec/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace dbsvec::exec {

namespace {

/// Parses a non-negative integer prefix; returns -1 on garbage.
int ParseInt(const std::string& token) {
  if (token.empty()) {
    return -1;
  }
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || value < 0) {
    return -1;
  }
  return static_cast<int>(value);
}

int HardwareCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

std::vector<int> ParseCpuList(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream stream(list);
  std::string token;
  while (std::getline(stream, token, ',')) {
    // Trim whitespace (the sysfs file ends in '\n').
    while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                 token.back())) != 0) {
      token.pop_back();
    }
    while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                 token.front())) != 0) {
      token.erase(token.begin());
    }
    if (token.empty()) {
      continue;
    }
    const size_t dash = token.find('-');
    if (dash == std::string::npos) {
      const int cpu = ParseInt(token);
      if (cpu >= 0) {
        cpus.push_back(cpu);
      }
      continue;
    }
    const int lo = ParseInt(token.substr(0, dash));
    const int hi = ParseInt(token.substr(dash + 1));
    if (lo < 0 || hi < lo) {
      continue;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(cpu);
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology DetectTopology() {
  Topology topology;
#if defined(__linux__)
  // Node ids are dense in practice but probe a generous range anyway;
  // missing ids simply have no cpulist file.
  for (int id = 0; id < 1024; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    std::ifstream file(path);
    if (!file.is_open()) {
      if (id > 0) {
        break;  // Past the last populated node.
      }
      continue;
    }
    std::string list;
    std::getline(file, list);
    NumaNode node;
    node.id = id;
    node.cpus = ParseCpuList(list);
    if (!node.cpus.empty()) {
      topology.nodes.push_back(std::move(node));
    }
  }
  topology.from_sysfs = !topology.nodes.empty();
#endif
  if (topology.nodes.empty()) {
    NumaNode node;
    node.id = 0;
    const int hw = HardwareCpus();
    node.cpus.reserve(static_cast<size_t>(hw));
    for (int cpu = 0; cpu < hw; ++cpu) {
      node.cpus.push_back(cpu);
    }
    topology.nodes.push_back(std::move(node));
  }
  return topology;
}

int ShardHomeNode(const Topology& topology, int shard) {
  if (topology.nodes.empty()) {
    return 0;
  }
  return topology.nodes[static_cast<size_t>(std::max(0, shard)) %
                        topology.nodes.size()]
      .id;
}

std::vector<int> PinningPlan(const Topology& topology, int threads) {
  std::vector<int> plan;
  if (threads <= 0 || topology.nodes.empty()) {
    return plan;
  }
  plan.reserve(static_cast<size_t>(threads));
  // Per-node cursor so consecutive workers on the same node take distinct
  // CPUs before wrapping.
  std::vector<size_t> cursor(topology.nodes.size(), 0);
  for (int w = 0; w < threads; ++w) {
    const size_t n = static_cast<size_t>(w) % topology.nodes.size();
    const NumaNode& node = topology.nodes[n];
    plan.push_back(node.cpus[cursor[n] % node.cpus.size()]);
    ++cursor[n];
  }
  return plan;
}

}  // namespace dbsvec::exec
