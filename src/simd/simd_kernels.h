#ifndef DBSVEC_SIMD_SIMD_KERNELS_H_
#define DBSVEC_SIMD_SIMD_KERNELS_H_

// Internal declarations shared between the per-backend kernel translation
// units and the dispatch table in dispatch.cc. Consumers use simd/simd.h.

#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

namespace dbsvec::simd {

void SquaredDistanceBlockScalar(const double* query, const double* block,
                                int dim, double* out);
uint32_t CountWithinBlockScalar(const double* query, const double* block,
                                int dim, uint32_t lane_mask, double eps_sq);
void AxpyFloatScalar(double a, const float* x, double* y, size_t n);
void GradientUpdateScalar(double a, const float* xi, const float* xj,
                          double* y, size_t n);

#if defined(DBSVEC_HAVE_AVX2)
void SquaredDistanceBlockAvx2(const double* query, const double* block,
                              int dim, double* out);
uint32_t CountWithinBlockAvx2(const double* query, const double* block,
                              int dim, uint32_t lane_mask, double eps_sq);
void AxpyFloatAvx2(double a, const float* x, double* y, size_t n);
void GradientUpdateAvx2(double a, const float* xi, const float* xj,
                        double* y, size_t n);
#endif  // DBSVEC_HAVE_AVX2

#if defined(DBSVEC_HAVE_AVX512)
void SquaredDistanceBlockAvx512(const double* query, const double* block,
                                int dim, double* out);
uint32_t CountWithinBlockAvx512(const double* query, const double* block,
                                int dim, uint32_t lane_mask, double eps_sq);
void AxpyFloatAvx512(double a, const float* x, double* y, size_t n);
void GradientUpdateAvx512(double a, const float* xi, const float* xj,
                          double* y, size_t n);
#endif  // DBSVEC_HAVE_AVX512

}  // namespace dbsvec::simd

#endif  // DBSVEC_SIMD_SIMD_KERNELS_H_
