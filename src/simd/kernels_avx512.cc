// AVX-512F implementations of the batched micro-kernels. Compiled with
// -mavx512f (this translation unit only) and dispatched into only after a
// runtime cpuid check, so the rest of the library stays runnable on any
// x86-64.
//
// One SoA block row is kBlockWidth = 8 doubles = exactly one 512-bit
// register, so the whole block travels in a single aligned load per
// dimension and no cross-register shuffles are ever needed.
//
// Determinism: every kernel performs, per point/element, the exact
// operation sequence of its scalar counterpart in kernels_scalar.cc —
// subtract, multiply, add in ascending dimension order, one point per SIMD
// lane. Vectorization happens *across points* (8 per block) or *across
// independent elements*, never across the dimensions of one accumulation,
// so no floating-point reduction is reordered. Explicit mul+add intrinsics
// are used instead of FMA, and the file is compiled with -ffp-contract=off
// so the compiler cannot re-fuse them; all backends therefore round
// identically and DBSVEC_SIMD=off|avx2|avx512 produce bit-identical
// output.

#include "simd/simd_kernels.h"

#if defined(DBSVEC_HAVE_AVX512)

#include <immintrin.h>

#include <bit>

namespace dbsvec::simd {

namespace {

/// Squared distances of all 8 block lanes into one 8-wide accumulator.
inline __m512d BlockDistances(const double* query, const double* block,
                              int dim) {
  __m512d acc = _mm512_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m512d q = _mm512_set1_pd(query[j]);
    const __m512d d = _mm512_sub_pd(_mm512_load_pd(block + kBlockWidth * j), q);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
  }
  return acc;
}

}  // namespace

void SquaredDistanceBlockAvx512(const double* query, const double* block,
                                int dim, double* out) {
  _mm512_storeu_pd(out, BlockDistances(query, block, dim));
}

uint32_t CountWithinBlockAvx512(const double* query, const double* block,
                                int dim, uint32_t lane_mask, double eps_sq) {
  const __m512d acc = BlockDistances(query, block, dim);
  const __mmask8 within =
      _mm512_cmp_pd_mask(acc, _mm512_set1_pd(eps_sq), _CMP_LE_OQ);
  return static_cast<uint32_t>(
      std::popcount(static_cast<uint32_t>(within) & lane_mask));
}

void AxpyFloatAvx512(double a, const float* x, double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d xd = _mm512_cvtps_pd(_mm256_loadu_ps(x + k));
    const __m512d yd = _mm512_loadu_pd(y + k);
    _mm512_storeu_pd(y + k, _mm512_add_pd(yd, _mm512_mul_pd(va, xd)));
  }
  for (; k < n; ++k) {
    y[k] += a * x[k];
  }
}

void GradientUpdateAvx512(double a, const float* xi, const float* xj,
                          double* y, size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    // Subtract in float first — identical to the scalar expression
    // `a * (xi[k] - xj[k])`, where the operands are floats.
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(xi + k), _mm256_loadu_ps(xj + k));
    const __m512d yd = _mm512_loadu_pd(y + k);
    _mm512_storeu_pd(
        y + k, _mm512_add_pd(yd, _mm512_mul_pd(va, _mm512_cvtps_pd(diff))));
  }
  for (; k < n; ++k) {
    y[k] += a * (xi[k] - xj[k]);
  }
}

}  // namespace dbsvec::simd

#endif  // DBSVEC_HAVE_AVX512
