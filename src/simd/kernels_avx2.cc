// AVX2 implementations of the batched micro-kernels. Compiled with -mavx2
// (this translation unit only) and dispatched into only after a runtime
// cpuid check, so the rest of the library stays runnable on any x86-64.
//
// Determinism: every kernel performs, per point/element, the exact
// operation sequence of its scalar counterpart in kernels_scalar.cc —
// subtract, multiply, add in ascending dimension order, one point per SIMD
// lane. Vectorization happens *across points* (8 per block) or *across
// independent elements*, never across the dimensions of one accumulation,
// so no floating-point reduction is reordered. Explicit mul+add intrinsics
// are used instead of FMA, and the file is compiled with -ffp-contract=off
// so the compiler cannot re-fuse them; both backends therefore round
// identically and DBSVEC_SIMD=off|on produce bit-identical output.

#include "simd/simd_kernels.h"

#if defined(DBSVEC_HAVE_AVX2)

#include <immintrin.h>

#include <bit>

namespace dbsvec::simd {

namespace {

/// Squared distances of the 8 block lanes into two 4-wide accumulators.
inline void BlockDistances(const double* query, const double* block, int dim,
                           __m256d* acc_lo, __m256d* acc_hi) {
  __m256d lo = _mm256_setzero_pd();
  __m256d hi = _mm256_setzero_pd();
  for (int j = 0; j < dim; ++j) {
    const __m256d q = _mm256_set1_pd(query[j]);
    const double* row = block + kBlockWidth * j;
    const __m256d d0 = _mm256_sub_pd(_mm256_load_pd(row), q);
    const __m256d d1 = _mm256_sub_pd(_mm256_load_pd(row + 4), q);
    lo = _mm256_add_pd(lo, _mm256_mul_pd(d0, d0));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(d1, d1));
  }
  *acc_lo = lo;
  *acc_hi = hi;
}

}  // namespace

void SquaredDistanceBlockAvx2(const double* query, const double* block,
                              int dim, double* out) {
  __m256d lo;
  __m256d hi;
  BlockDistances(query, block, dim, &lo, &hi);
  _mm256_storeu_pd(out, lo);
  _mm256_storeu_pd(out + 4, hi);
}

uint32_t CountWithinBlockAvx2(const double* query, const double* block,
                              int dim, uint32_t lane_mask, double eps_sq) {
  __m256d lo;
  __m256d hi;
  BlockDistances(query, block, dim, &lo, &hi);
  const __m256d eps = _mm256_set1_pd(eps_sq);
  const uint32_t m_lo = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_cmp_pd(lo, eps, _CMP_LE_OQ)));
  const uint32_t m_hi = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_cmp_pd(hi, eps, _CMP_LE_OQ)));
  return static_cast<uint32_t>(
      std::popcount(((m_hi << 4) | m_lo) & lane_mask));
}

void AxpyFloatAvx2(double a, const float* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(x + k));
    const __m256d yd = _mm256_loadu_pd(y + k);
    _mm256_storeu_pd(y + k, _mm256_add_pd(yd, _mm256_mul_pd(va, xd)));
  }
  for (; k < n; ++k) {
    y[k] += a * x[k];
  }
}

void GradientUpdateAvx2(double a, const float* xi, const float* xj,
                        double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Subtract in float first — identical to the scalar expression
    // `a * (xi[k] - xj[k])`, where the operands are floats.
    const __m128 diff = _mm_sub_ps(_mm_loadu_ps(xi + k), _mm_loadu_ps(xj + k));
    const __m256d yd = _mm256_loadu_pd(y + k);
    _mm256_storeu_pd(
        y + k, _mm256_add_pd(yd, _mm256_mul_pd(va, _mm256_cvtps_pd(diff))));
  }
  for (; k < n; ++k) {
    y[k] += a * (xi[k] - xj[k]);
  }
}

}  // namespace dbsvec::simd

#endif  // DBSVEC_HAVE_AVX2
