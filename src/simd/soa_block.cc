#include "simd/soa_block.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace dbsvec::simd {

namespace {

/// Blocks per parallel fill chunk (disjoint writes, so any split is
/// deterministic).
constexpr size_t kFillGrain = 64;

}  // namespace

SoaBlockView::SoaBlockView(const Dataset& dataset,
                           std::span<const PointIndex> order) {
  Fill(dataset, order);
}

SoaBlockView::SoaBlockView(const Dataset& dataset) {
  std::vector<PointIndex> identity(static_cast<size_t>(dataset.size()));
  std::iota(identity.begin(), identity.end(), PointIndex{0});
  Fill(dataset, identity);
}

void SoaBlockView::Fill(const Dataset& dataset,
                        std::span<const PointIndex> order) {
  size_ = order.size();
  dim_ = dataset.dim();
  if (size_ == 0 || dim_ == 0) {
    data_.reset();
    return;
  }
  const size_t num_blocks = (size_ + kBlockWidth - 1) / kBlockWidth;
  const size_t total = num_blocks * kBlockWidth * static_cast<size_t>(dim_);
  data_.reset(new (std::align_val_t{64}) double[total]);
  double* data = data_.get();
  ParallelFor(num_blocks, kFillGrain, [&](size_t b_begin, size_t b_end) {
    for (size_t b = b_begin; b < b_end; ++b) {
      double* out = data + b * kBlockWidth * static_cast<size_t>(dim_);
      const size_t lanes =
          std::min(kBlockWidth, size_ - b * kBlockWidth);
      if (lanes < kBlockWidth) {
        std::memset(out, 0,
                    kBlockWidth * static_cast<size_t>(dim_) * sizeof(double));
      }
      for (size_t lane = 0; lane < lanes; ++lane) {
        const auto p = dataset.point(order[b * kBlockWidth + lane]);
        for (int j = 0; j < dim_; ++j) {
          out[kBlockWidth * static_cast<size_t>(j) + lane] = p[j];
        }
      }
    }
  });
}

void SoaBlockView::SquaredDistances(std::span<const double> query,
                                    size_t begin, size_t end,
                                    double* out) const {
  const auto& ops = ActiveOps();
  const double* q = query.data();
  size_t p = begin;
  while (p < end) {
    const size_t b = p / kBlockWidth;
    const size_t block_begin = b * kBlockWidth;
    const size_t hi = std::min(end, block_begin + kBlockWidth);
    if (p == block_begin && hi == block_begin + kBlockWidth) {
      // Fully covered block: write the 8 distances straight into out.
      ops.squared_distance_block(q, block(b), dim_, out + (p - begin));
    } else {
      alignas(64) double tmp[kBlockWidth];
      ops.squared_distance_block(q, block(b), dim_, tmp);
      for (size_t k = p; k < hi; ++k) {
        out[k - begin] = tmp[k - block_begin];
      }
    }
    p = hi;
  }
}

size_t SoaBlockView::CountWithin(std::span<const double> query, size_t begin,
                                 size_t end, double eps_sq) const {
  const auto& ops = ActiveOps();
  const double* q = query.data();
  size_t count = 0;
  size_t p = begin;
  while (p < end) {
    const size_t b = p / kBlockWidth;
    const size_t block_begin = b * kBlockWidth;
    const size_t hi = std::min(end, block_begin + kBlockWidth);
    uint32_t mask = 0;
    for (size_t k = p; k < hi; ++k) {
      mask |= 1u << (k - block_begin);
    }
    count += ops.count_within_block(q, block(b), dim_, mask, eps_sq);
    p = hi;
  }
  return count;
}

void SoaBlockView::RbfRow(std::span<const double> query,
                          double inv_two_sigma_sq, size_t begin, size_t end,
                          float* out) const {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  ScratchLease scratch(n);
  double* d2 = scratch.data();
  SquaredDistances(query, begin, end, d2);
  for (size_t k = 0; k < n; ++k) {
    out[k] = static_cast<float>(std::exp(-d2[k] * inv_two_sigma_sq));
  }
}

}  // namespace dbsvec::simd
