// Portable scalar implementations of the batched micro-kernels. These are
// the *reference* semantics: each lane accumulates its point's squared
// distance in ascending dimension order with a separate multiply and add.
// The AVX2 kernels perform the identical per-lane operation sequence, so
// both backends produce bit-identical results.
//
// This file is compiled with -ffp-contract=off so the compiler cannot fuse
// the multiply-add into an FMA (which rounds once instead of twice) on
// builds where FMA is available (-march=native); contraction would break
// the DBSVEC_SIMD=off|on determinism contract.

#include <cstddef>
#include <cstdint>

#include "simd/simd_kernels.h"

namespace dbsvec::simd {

void SquaredDistanceBlockScalar(const double* query, const double* block,
                                int dim, double* out) {
  for (size_t lane = 0; lane < kBlockWidth; ++lane) {
    double sum = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = block[kBlockWidth * j + lane] - query[j];
      sum += diff * diff;
    }
    out[lane] = sum;
  }
}

uint32_t CountWithinBlockScalar(const double* query, const double* block,
                                int dim, uint32_t lane_mask, double eps_sq) {
  uint32_t count = 0;
  for (size_t lane = 0; lane < kBlockWidth; ++lane) {
    if ((lane_mask & (1u << lane)) == 0) {
      continue;
    }
    double sum = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = block[kBlockWidth * j + lane] - query[j];
      sum += diff * diff;
    }
    if (sum <= eps_sq) {
      ++count;
    }
  }
  return count;
}

void AxpyFloatScalar(double a, const float* x, double* y, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    y[k] += a * x[k];
  }
}

void GradientUpdateScalar(double a, const float* xi, const float* xj,
                          double* y, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    y[k] += a * (xi[k] - xj[k]);
  }
}

}  // namespace dbsvec::simd
