#ifndef DBSVEC_SIMD_SIMD_H_
#define DBSVEC_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dbsvec::simd {

/// Width of one structure-of-arrays block: the batched micro-kernels always
/// process `kBlockWidth` points at a time (one cache line of doubles per
/// dimension).
inline constexpr size_t kBlockWidth = 8;

/// Available micro-kernel implementations.
enum class Backend {
  kScalar,  ///< Portable fallback; the reference operation order.
  kAvx2,    ///< AVX2 256-bit lanes (x86-64, runtime-detected).
  kAvx512,  ///< AVX-512F 512-bit lanes: one whole block per register.
};

/// Human-readable backend name ("scalar", "avx2", "avx512").
const char* BackendName(Backend backend);

/// True when this build contains the AVX2 kernels and the running CPU
/// (and OS) support them.
bool Avx2Available();

/// True when this build contains the AVX-512 kernels and the running CPU
/// (and OS) support AVX-512F.
bool Avx512Available();

/// The backend the dispatch table currently points at. Resolved once on
/// first use: the best available backend, unless the `DBSVEC_SIMD`
/// environment variable says otherwise (`off`/`0`/`scalar`/`false` force
/// the scalar fallback; `avx2`/`avx512` force that backend and fall back
/// with a warning if unavailable; `on`/`auto`/`1`/`true` select the best;
/// any other value warns once and selects automatically).
Backend ActiveBackend();

/// Test/bench hook: repoints the dispatch table at `backend` (must be
/// available). Not thread-safe against concurrent kernel calls — switch
/// between runs, never during one.
void ForceBackend(Backend backend);

/// The batched micro-kernel dispatch table. One entry per primitive; all
/// entries of a table come from the same backend so mixed-backend
/// accumulation cannot occur.
///
/// Block layout contract (see SoaBlockView): a block is `kBlockWidth * dim`
/// doubles, 64-byte aligned, holding dimension j of its 8 points at
/// `block[8 * j + lane]`.
struct Ops {
  const char* name;

  /// out[lane] = squared Euclidean distance from `query` (length `dim`)
  /// to block lane `lane`, for all 8 lanes. `out` need not be aligned.
  void (*squared_distance_block)(const double* query, const double* block,
                                 int dim, double* out);

  /// Number of lanes selected by `lane_mask` (bit l = lane l) whose squared
  /// distance to `query` is <= `eps_sq`.
  uint32_t (*count_within_block)(const double* query, const double* block,
                                 int dim, uint32_t lane_mask, double eps_sq);

  /// y[k] += a * x[k] for k in [0, n) — float row into double accumulator
  /// (the SMO gradient initialization product).
  void (*axpy_float)(double a, const float* x, double* y, size_t n);

  /// y[k] += a * (xi[k] - xj[k]) for k in [0, n), with the subtraction in
  /// float exactly as written (the SMO gradient update row product).
  void (*gradient_update)(double a, const float* xi, const float* xj,
                          double* y, size_t n);
};

/// The active dispatch table (env-resolved on first call, see
/// ActiveBackend).
const Ops& ActiveOps();

/// RAII lease of a thread-local double buffer of at least `n` elements,
/// used by index leaf scans for per-leaf distance batches. Leases nest
/// (each lease gets a distinct buffer), so a range query issued from inside
/// a visitor callback cannot clobber the caller's distances; buffers are
/// returned to a per-thread freelist on destruction, so steady-state leaf
/// scans allocate nothing.
class ScratchLease {
 public:
  explicit ScratchLease(size_t n);
  ~ScratchLease();

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  double* data() { return buffer_->data(); }
  std::span<double> span(size_t n) { return {buffer_->data(), n}; }

 private:
  std::vector<double>* buffer_;
};

}  // namespace dbsvec::simd

#endif  // DBSVEC_SIMD_SIMD_H_
