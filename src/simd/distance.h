#ifndef DBSVEC_SIMD_DISTANCE_H_
#define DBSVEC_SIMD_DISTANCE_H_

#include <cstddef>
#include <span>

namespace dbsvec::simd {

/// The one scalar squared-Euclidean-distance definition in the library.
///
/// Every distance in dbsvec — Dataset methods, index leaf scans, kernel
/// evaluations, metrics — reduces to this exact operation sequence:
/// accumulate (a[k] - b[k])² in ascending dimension order with a separate
/// multiply and add (no FMA contraction). The vector micro-kernels in
/// kernels_avx2.cc replicate the same per-point operation order lane-wise,
/// which is what makes `DBSVEC_SIMD=off` and `on` bit-identical (see
/// docs/PERFORMANCE.md, "Determinism policy").
inline double SquaredDistance(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  return sum;
}

inline double SquaredDistance(std::span<const double> a,
                              std::span<const double> b) {
  return SquaredDistance(a.data(), b.data(), a.size());
}

/// Min squared distance from `q` to the axis-aligned box [lo, hi] — the
/// pruning test shared by the kd-tree, the static R*-tree, and the dynamic
/// R*-tree (zero when the query is inside the box).
inline double BoxSquaredDistance(const double* q, const double* lo,
                                 const double* hi, size_t dim) {
  double sum = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double diff = 0.0;
    if (q[j] < lo[j]) {
      diff = lo[j] - q[j];
    } else if (q[j] > hi[j]) {
      diff = q[j] - hi[j];
    }
    sum += diff * diff;
  }
  return sum;
}

}  // namespace dbsvec::simd

#endif  // DBSVEC_SIMD_DISTANCE_H_
