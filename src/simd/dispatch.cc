// Runtime backend selection for the batched micro-kernels: a function
// pointer table chosen once at first use from (a) what this build compiled
// in, (b) what the running CPU supports (cpuid), and (c) the DBSVEC_SIMD
// environment variable. Tests and benchmarks can repoint the table with
// ForceBackend to compare backends inside one process.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "simd/simd_kernels.h"

namespace dbsvec::simd {
namespace {

constexpr Ops kScalarOps = {
    .name = "scalar",
    .squared_distance_block = &SquaredDistanceBlockScalar,
    .count_within_block = &CountWithinBlockScalar,
    .axpy_float = &AxpyFloatScalar,
    .gradient_update = &GradientUpdateScalar,
};

#if defined(DBSVEC_HAVE_AVX2)
constexpr Ops kAvx2Ops = {
    .name = "avx2",
    .squared_distance_block = &SquaredDistanceBlockAvx2,
    .count_within_block = &CountWithinBlockAvx2,
    .axpy_float = &AxpyFloatAvx2,
    .gradient_update = &GradientUpdateAvx2,
};
#endif

#if defined(DBSVEC_HAVE_AVX512)
constexpr Ops kAvx512Ops = {
    .name = "avx512",
    .squared_distance_block = &SquaredDistanceBlockAvx512,
    .count_within_block = &CountWithinBlockAvx512,
    .axpy_float = &AxpyFloatAvx512,
    .gradient_update = &GradientUpdateAvx512,
};
#endif

const Ops* TableFor(Backend backend) {
#if defined(DBSVEC_HAVE_AVX512)
  if (backend == Backend::kAvx512) {
    return &kAvx512Ops;
  }
#endif
#if defined(DBSVEC_HAVE_AVX2)
  if (backend == Backend::kAvx2) {
    return &kAvx2Ops;
  }
#endif
  (void)backend;
  return &kScalarOps;
}

Backend BestAvailable() {
  if (Avx512Available()) {
    return Backend::kAvx512;
  }
  return Avx2Available() ? Backend::kAvx2 : Backend::kScalar;
}

/// Backend requested by the DBSVEC_SIMD environment variable (auto when
/// unset; an unrecognized value warns and falls back to auto-detect).
Backend ResolveDefault() {
  const Backend best = BestAvailable();
  const char* env = std::getenv("DBSVEC_SIMD");
  if (env == nullptr || *env == '\0') {
    return best;
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "scalar") == 0 || std::strcmp(env, "false") == 0) {
    return Backend::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (!Avx2Available()) {
      std::fprintf(stderr,
                   "dbsvec: DBSVEC_SIMD=avx2 but AVX2 is unavailable on "
                   "this CPU/build; falling back to scalar\n");
      return Backend::kScalar;
    }
    return Backend::kAvx2;
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (!Avx512Available()) {
      std::fprintf(stderr,
                   "dbsvec: DBSVEC_SIMD=avx512 but AVX-512F is unavailable "
                   "on this CPU/build; falling back to %s\n",
                   BackendName(best));
      return best;
    }
    return Backend::kAvx512;
  }
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0) {
    return best;
  }
  std::fprintf(stderr,
               "dbsvec: unrecognized DBSVEC_SIMD value \"%s\" (accepted: "
               "off|0|scalar|false, avx2, avx512, on|auto|1|true); "
               "auto-detecting %s\n",
               env, BackendName(best));
  return best;
}

std::atomic<const Ops*>& ActiveTable() {
  static std::atomic<const Ops*> table{TableFor(ResolveDefault())};
  return table;
}

}  // namespace

bool Avx2Available() {
#if defined(DBSVEC_HAVE_AVX2)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool Avx512Available() {
#if defined(DBSVEC_HAVE_AVX512)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Backend ActiveBackend() {
  const Ops* ops = ActiveTable().load(std::memory_order_acquire);
  if (std::strcmp(ops->name, "avx512") == 0) {
    return Backend::kAvx512;
  }
  return std::strcmp(ops->name, "avx2") == 0 ? Backend::kAvx2
                                             : Backend::kScalar;
}

void ForceBackend(Backend backend) {
  if (backend == Backend::kAvx2 && !Avx2Available()) {
    std::fprintf(stderr,
                 "dbsvec: ForceBackend(avx2) ignored — AVX2 unavailable\n");
    return;
  }
  if (backend == Backend::kAvx512 && !Avx512Available()) {
    std::fprintf(
        stderr, "dbsvec: ForceBackend(avx512) ignored — AVX-512 unavailable\n");
    return;
  }
  ActiveTable().store(TableFor(backend), std::memory_order_release);
}

const Ops& ActiveOps() {
  return *ActiveTable().load(std::memory_order_acquire);
}

namespace {

/// Per-thread freelist of scratch buffers. Leases pop from the tail and
/// push back on release; nested leases simply take distinct buffers.
thread_local std::vector<std::unique_ptr<std::vector<double>>> g_scratch_pool;

}  // namespace

ScratchLease::ScratchLease(size_t n) {
  if (g_scratch_pool.empty()) {
    g_scratch_pool.push_back(std::make_unique<std::vector<double>>());
  }
  std::unique_ptr<std::vector<double>> buffer =
      std::move(g_scratch_pool.back());
  g_scratch_pool.pop_back();
  if (buffer->size() < n) {
    buffer->resize(n);
  }
  // Ownership parks on the heap for the lease's lifetime; the raw pointer
  // stays valid even if the pool vector reallocates under a nested lease.
  buffer_ = buffer.release();
}

ScratchLease::~ScratchLease() {
  g_scratch_pool.emplace_back(buffer_);
}

}  // namespace dbsvec::simd
