#ifndef DBSVEC_SIMD_SOA_BLOCK_H_
#define DBSVEC_SIMD_SOA_BLOCK_H_

#include <cstddef>
#include <memory>
#include <span>

#include "common/dataset.h"
#include "simd/simd.h"

namespace dbsvec::simd {

/// A structure-of-arrays copy of (a permutation of) a Dataset, laid out for
/// the batched micro-kernels: points are grouped into blocks of
/// `kBlockWidth` (8), and within a block dimension j of the 8 points is
/// stored contiguously at `block[8*j + lane]`. Blocks are 64-byte aligned
/// (one cache line per dimension row); the trailing partial block is
/// zero-padded and its padding lanes are never read back.
///
/// Indexes build a view permuted by their leaf/cell order so every leaf
/// scan covers a *contiguous* position range; the kernel cache builds one
/// over the SVDD target set. Positions are view-relative — callers map them
/// back to dataset PointIndexes through their own order array.
///
/// The view costs one extra copy of the covered points (n*d doubles); it is
/// the same aligned layout the ROADMAP's NUMA sharding item will hand out
/// per shard.
class SoaBlockView {
 public:
  SoaBlockView() = default;

  /// View over `order.size()` points of `dataset`, position p holding point
  /// `order[p]`. `order` may be any permutation or subset (with repeats) of
  /// the dataset's rows.
  SoaBlockView(const Dataset& dataset, std::span<const PointIndex> order);

  /// Identity view: position p holds dataset point p.
  explicit SoaBlockView(const Dataset& dataset);

  SoaBlockView(SoaBlockView&&) = default;
  SoaBlockView& operator=(SoaBlockView&&) = default;

  /// Number of points covered.
  size_t size() const { return size_; }
  int dim() const { return dim_; }
  bool empty() const { return size_ == 0; }

  /// out[k] = squared Euclidean distance from `query` to position
  /// `begin + k`, for positions [begin, end). Bit-identical to
  /// Dataset::SquaredDistanceTo on the corresponding points, on every
  /// backend.
  void SquaredDistances(std::span<const double> query, size_t begin,
                        size_t end, double* out) const;

  /// Number of positions in [begin, end) within squared distance `eps_sq`
  /// of `query` (inclusive).
  size_t CountWithin(std::span<const double> query, size_t begin, size_t end,
                     double eps_sq) const;

  /// out[k] = float(exp(-d2(begin + k) * inv_two_sigma_sq)) — one Gaussian
  /// kernel row segment (Eq. 6), matching GaussianKernel::FromSquaredDistance
  /// exactly. The distances are batched; the exp stays scalar libm so both
  /// backends emit identical bits.
  void RbfRow(std::span<const double> query, double inv_two_sigma_sq,
              size_t begin, size_t end, float* out) const;

 private:
  struct AlignedDelete {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  void Fill(const Dataset& dataset, std::span<const PointIndex> order);
  const double* block(size_t b) const {
    return data_.get() + b * kBlockWidth * static_cast<size_t>(dim_);
  }

  size_t size_ = 0;
  int dim_ = 0;
  std::unique_ptr<double[], AlignedDelete> data_;
};

}  // namespace dbsvec::simd

#endif  // DBSVEC_SIMD_SOA_BLOCK_H_
