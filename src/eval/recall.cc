#include "eval/recall.h"

#include <cstddef>
#include <unordered_map>

namespace dbsvec {
namespace {

/// Number of unordered pairs among `c` items.
double PairCount(int64_t c) {
  return 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
}

/// Σ over (reference cluster × label cluster) cells of C(cell, 2), and Σ
/// over reference clusters of C(cluster, 2). Noise (-1) is excluded on
/// both sides.
void ContingencyPairSums(const std::vector<int32_t>& reference,
                         const std::vector<int32_t>& labels,
                         double* shared_pairs, double* reference_pairs) {
  std::unordered_map<int64_t, int64_t> cell_counts;
  std::unordered_map<int32_t, int64_t> reference_counts;
  const size_t n = reference.size();
  for (size_t i = 0; i < n; ++i) {
    const int32_t r = reference[i];
    if (r < 0) {
      continue;
    }
    ++reference_counts[r];
    const int32_t l = labels[i];
    if (l < 0) {
      continue;
    }
    const int64_t key = (static_cast<int64_t>(r) << 32) |
                        static_cast<uint32_t>(l);
    ++cell_counts[key];
  }
  *shared_pairs = 0.0;
  for (const auto& [key, count] : cell_counts) {
    *shared_pairs += PairCount(count);
  }
  *reference_pairs = 0.0;
  for (const auto& [label, count] : reference_counts) {
    *reference_pairs += PairCount(count);
  }
}

}  // namespace

double PairRecall(const std::vector<int32_t>& reference,
                  const std::vector<int32_t>& labels) {
  double shared = 0.0;
  double total = 0.0;
  ContingencyPairSums(reference, labels, &shared, &total);
  return total > 0.0 ? shared / total : 1.0;
}

double PairPrecision(const std::vector<int32_t>& reference,
                     const std::vector<int32_t>& labels) {
  // Precision against the reference is recall with the arguments swapped.
  return PairRecall(labels, reference);
}

}  // namespace dbsvec
