#ifndef DBSVEC_EVAL_INTERNAL_METRICS_H_
#define DBSVEC_EVAL_INTERNAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"

namespace dbsvec {

/// Internal clustering-validation metrics (no ground truth needed) used by
/// Table IV of the paper.

/// Compactness via the mean silhouette coefficient [Rousseeuw 1987, the
/// paper's ref. 37]: in [-1, 1], higher is better. Noise points (label -1)
/// are excluded. The exact silhouette is O(n²); datasets larger than
/// `sample_cap` are evaluated on a deterministic subsample of that size
/// against the full dataset. Returns 0 when fewer than 2 clusters exist.
double Compactness(const Dataset& dataset,
                   const std::vector<int32_t>& labels,
                   int sample_cap = 2000);

/// Separation via the Davies-Bouldin index [Davies & Bouldin 1979, the
/// paper's ref. 38]: >= 0, lower is better. Noise points are excluded.
/// Returns 0 when fewer than 2 clusters exist.
double Separation(const Dataset& dataset, const std::vector<int32_t>& labels);

}  // namespace dbsvec

#endif  // DBSVEC_EVAL_INTERNAL_METRICS_H_
