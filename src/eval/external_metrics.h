#ifndef DBSVEC_EVAL_EXTERNAL_METRICS_H_
#define DBSVEC_EVAL_EXTERNAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace dbsvec {

/// Supplementary external validation metrics (ground truth required),
/// beyond the paper's pair recall. Noise (-1) is treated as its own
/// class on both sides so that noise/cluster disagreements are penalized.

/// Adjusted Rand Index [Hubert & Arabie 1985]: 1 for identical partitions,
/// ~0 for independent ones (can be negative).
double AdjustedRandIndex(const std::vector<int32_t>& reference,
                         const std::vector<int32_t>& labels);

/// Normalized Mutual Information with arithmetic normalization: in [0, 1],
/// 1 for identical partitions.
double NormalizedMutualInformation(const std::vector<int32_t>& reference,
                                   const std::vector<int32_t>& labels);

}  // namespace dbsvec

#endif  // DBSVEC_EVAL_EXTERNAL_METRICS_H_
