#ifndef DBSVEC_EVAL_RECALL_H_
#define DBSVEC_EVAL_RECALL_H_

#include <cstdint>
#include <vector>

namespace dbsvec {

/// Pair-counting recall of an approximate clustering against a reference
/// clustering — the accuracy metric the paper adopts from Lulli et al.
/// [22] (Sec. III-C): the fraction of point pairs that share a cluster in
/// the reference (DBSCAN) and also share a cluster in `labels`.
///
/// Noise (label -1) forms no pairs. A reference with no co-clustered pair
/// at all scores 1.0 by convention. Computed from the contingency counts
/// in O(n) rather than over all O(n²) pairs.
double PairRecall(const std::vector<int32_t>& reference,
                  const std::vector<int32_t>& labels);

/// Pair-counting precision: fraction of pairs co-clustered by `labels`
/// that are also co-clustered by the reference. Together with PairRecall
/// this characterizes both split errors (recall < 1) and merge errors
/// (precision < 1); DBSVEC's Theorem 1 predicts precision 1 whenever its
/// core points match DBSCAN's.
double PairPrecision(const std::vector<int32_t>& reference,
                     const std::vector<int32_t>& labels);

}  // namespace dbsvec

#endif  // DBSVEC_EVAL_RECALL_H_
