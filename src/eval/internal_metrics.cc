#include "eval/internal_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/rng.h"
#include "simd/simd.h"
#include "simd/soa_block.h"

namespace dbsvec {
namespace {

/// Dense relabeling of non-noise labels; returns cluster count.
int32_t DenseClusters(const std::vector<int32_t>& labels,
                      std::vector<int32_t>* dense) {
  std::unordered_map<int32_t, int32_t> remap;
  dense->assign(labels.size(), -1);
  int32_t next = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      continue;
    }
    const auto [it, inserted] = remap.emplace(labels[i], next);
    if (inserted) {
      ++next;
    }
    (*dense)[i] = it->second;
  }
  return next;
}

}  // namespace

double Compactness(const Dataset& dataset,
                   const std::vector<int32_t>& labels, int sample_cap) {
  std::vector<int32_t> dense;
  const int32_t k = DenseClusters(labels, &dense);
  if (k < 2) {
    return 0.0;
  }
  const PointIndex n = dataset.size();

  // Points that participate (non-noise), subsampled deterministically when
  // the exact O(n²) silhouette would be too slow.
  std::vector<PointIndex> members;
  for (PointIndex i = 0; i < n; ++i) {
    if (dense[i] >= 0) {
      members.push_back(i);
    }
  }
  std::vector<PointIndex> evaluated = members;
  if (sample_cap > 0 && static_cast<int>(evaluated.size()) > sample_cap) {
    Rng rng(12345);
    for (int i = 0; i < sample_cap; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng.NextBounded(evaluated.size() - i));
      std::swap(evaluated[i], evaluated[j]);
    }
    evaluated.resize(sample_cap);
  }

  // Cluster sizes over the full membership (denominators of the means).
  std::vector<int64_t> cluster_size(k, 0);
  for (const PointIndex i : members) {
    ++cluster_size[dense[i]];
  }

  // SoA view over the members so the O(|evaluated|·|members|) distance
  // pass runs through the batched micro-kernels; accumulation stays in
  // member order (chunked only in the buffer), so the sums are
  // bit-identical to the pointwise loop.
  const simd::SoaBlockView member_view(dataset, members);
  constexpr size_t kChunk = 2048;
  simd::ScratchLease scratch(std::min(members.size(), kChunk));
  double* d2 = scratch.data();

  double total = 0.0;
  int64_t counted = 0;
  std::vector<double> dist_sum(k);
  for (const PointIndex i : evaluated) {
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    const auto query = dataset.point(i);
    for (size_t begin = 0; begin < members.size(); begin += kChunk) {
      const size_t end = std::min(members.size(), begin + kChunk);
      member_view.SquaredDistances(query, begin, end, d2);
      for (size_t p = begin; p < end; ++p) {
        const PointIndex j = members[p];
        if (j == i) {
          continue;
        }
        dist_sum[dense[j]] += std::sqrt(d2[p - begin]);
      }
    }
    const int32_t own = dense[i];
    if (cluster_size[own] < 2) {
      continue;  // Silhouette undefined for singleton clusters.
    }
    const double a = dist_sum[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int32_t c = 0; c < k; ++c) {
      if (c != own && cluster_size[c] > 0) {
        b = std::min(b, dist_sum[c] / static_cast<double>(cluster_size[c]));
      }
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double Separation(const Dataset& dataset,
                  const std::vector<int32_t>& labels) {
  std::vector<int32_t> dense;
  const int32_t k = DenseClusters(labels, &dense);
  if (k < 2) {
    return 0.0;
  }
  const PointIndex n = dataset.size();
  const int dim = dataset.dim();

  // Centroids and mean intra-cluster scatter S_c.
  std::vector<double> centroids(static_cast<size_t>(k) * dim, 0.0);
  std::vector<int64_t> counts(k, 0);
  for (PointIndex i = 0; i < n; ++i) {
    const int32_t c = dense[i];
    if (c < 0) {
      continue;
    }
    ++counts[c];
    const auto p = dataset.point(i);
    for (int j = 0; j < dim; ++j) {
      centroids[static_cast<size_t>(c) * dim + j] += p[j];
    }
  }
  for (int32_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (int j = 0; j < dim; ++j) {
        centroids[static_cast<size_t>(c) * dim + j] /=
            static_cast<double>(counts[c]);
      }
    }
  }
  std::vector<double> scatter(k, 0.0);
  for (PointIndex i = 0; i < n; ++i) {
    const int32_t c = dense[i];
    if (c < 0) {
      continue;
    }
    const std::span<const double> center{
        centroids.data() + static_cast<size_t>(c) * dim,
        static_cast<size_t>(dim)};
    scatter[c] += std::sqrt(dataset.SquaredDistanceTo(i, center));
  }
  for (int32_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      scatter[c] /= static_cast<double>(counts[c]);
    }
  }

  // Davies-Bouldin: mean over clusters of max_{c'≠c} (S_c + S_c')/M_cc'.
  double total = 0.0;
  int32_t used = 0;
  for (int32_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      continue;
    }
    double worst = 0.0;
    for (int32_t o = 0; o < k; ++o) {
      if (o == c || counts[o] == 0) {
        continue;
      }
      const std::span<const double> a{
          centroids.data() + static_cast<size_t>(c) * dim,
          static_cast<size_t>(dim)};
      const std::span<const double> b{
          centroids.data() + static_cast<size_t>(o) * dim,
          static_cast<size_t>(dim)};
      const double m = Distance(a, b);
      if (m > 0.0) {
        worst = std::max(worst, (scatter[c] + scatter[o]) / m);
      }
    }
    total += worst;
    ++used;
  }
  return used > 0 ? total / static_cast<double>(used) : 0.0;
}

}  // namespace dbsvec
