#include "eval/external_metrics.h"

#include <cmath>
#include <unordered_map>

namespace dbsvec {
namespace {

struct Contingency {
  std::unordered_map<int64_t, int64_t> cells;
  std::unordered_map<int32_t, int64_t> row_sums;
  std::unordered_map<int32_t, int64_t> col_sums;
  int64_t n = 0;
};

Contingency BuildContingency(const std::vector<int32_t>& reference,
                             const std::vector<int32_t>& labels) {
  Contingency table;
  table.n = static_cast<int64_t>(reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const int32_t r = reference[i];
    const int32_t l = labels[i];
    const int64_t key =
        (static_cast<int64_t>(r) << 32) | static_cast<uint32_t>(l);
    ++table.cells[key];
    ++table.row_sums[r];
    ++table.col_sums[l];
  }
  return table;
}

double Choose2(int64_t c) {
  return 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
}

}  // namespace

double AdjustedRandIndex(const std::vector<int32_t>& reference,
                         const std::vector<int32_t>& labels) {
  if (reference.empty()) {
    return 1.0;
  }
  const Contingency table = BuildContingency(reference, labels);
  double sum_cells = 0.0;
  for (const auto& [key, count] : table.cells) {
    sum_cells += Choose2(count);
  }
  double sum_rows = 0.0;
  for (const auto& [label, count] : table.row_sums) {
    sum_rows += Choose2(count);
  }
  double sum_cols = 0.0;
  for (const auto& [label, count] : table.col_sums) {
    sum_cols += Choose2(count);
  }
  const double total_pairs = Choose2(table.n);
  if (total_pairs == 0.0) {
    return 1.0;
  }
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (std::abs(denom) < 1e-12) {
    return 1.0;  // Both partitions are trivial (all-singletons or all-one).
  }
  return (sum_cells - expected) / denom;
}

double NormalizedMutualInformation(const std::vector<int32_t>& reference,
                                   const std::vector<int32_t>& labels) {
  if (reference.empty()) {
    return 1.0;
  }
  const Contingency table = BuildContingency(reference, labels);
  const double n = static_cast<double>(table.n);
  double mutual_information = 0.0;
  for (const auto& [key, count] : table.cells) {
    const int32_t r = static_cast<int32_t>(key >> 32);
    const int32_t l = static_cast<int32_t>(key & 0xffffffff);
    const double p_rl = static_cast<double>(count) / n;
    const double p_r = static_cast<double>(table.row_sums.at(r)) / n;
    const double p_l = static_cast<double>(table.col_sums.at(l)) / n;
    mutual_information += p_rl * std::log(p_rl / (p_r * p_l));
  }
  double h_r = 0.0;
  for (const auto& [label, count] : table.row_sums) {
    const double p = static_cast<double>(count) / n;
    h_r -= p * std::log(p);
  }
  double h_l = 0.0;
  for (const auto& [label, count] : table.col_sums) {
    const double p = static_cast<double>(count) / n;
    h_l -= p * std::log(p);
  }
  const double denom = 0.5 * (h_r + h_l);
  if (denom < 1e-12) {
    return 1.0;  // Both partitions are single-cluster: identical.
  }
  return std::max(0.0, mutual_information) / denom;
}

}  // namespace dbsvec
