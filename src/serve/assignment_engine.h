#ifndef DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_
#define DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "cache/query_cell_cache.h"
#include "common/dataset.h"
#include "common/deadline.h"
#include "common/status.h"
#include "index/dynamic_r_star_tree.h"
#include "index/neighbor_index.h"
#include "model/dbsvec_model.h"
#include "model/overlay_journal.h"

namespace dbsvec {

/// Serving-side options of the assignment engine.
struct AssignmentOptions {
  /// Range-query engine built over the model's core summary. The kd-tree
  /// is the default, matching the training-side default.
  IndexType index = IndexType::kKdTree;
  /// Minimum points per thread-pool chunk of a batched Assign.
  int batch_grain = 64;
  /// >= 1: build the serving index as a sharded execution engine
  /// (exec::ShardedIndex) over the core summary — `shards` per-shard
  /// indexes of type `index` over contiguous core-id ranges. 0 (default)
  /// keeps the single unsharded index. Assignments are bit-identical at
  /// every shard count (the merged range-query result depends only on the
  /// point set).
  int shards = 0;
  /// Skip queries outside every sub-cluster sphere (inflated by ε) without
  /// touching the index. Off is only useful for benchmarking the filter.
  bool sphere_prefilter = true;
  /// Time budget for building the serving index inside Create/Load.
  /// Default: unlimited. Per-call budgets are passed to Assign/AssignBatch
  /// directly.
  Deadline build_deadline;
  /// Online model refresh (docs/SERVING.md): maintain a dynamic R*-tree
  /// overlay of absorbed core points next to the static core summary, fed
  /// by AbsorbCoreAdjacent. Off (the default) keeps the engine strictly
  /// immutable and its output bit-identical for a fixed model snapshot.
  bool online_refresh = false;
  /// Cap on absorbed overlay cores; absorption stops silently at the cap
  /// (the overlay is a drift tracker, not a second training set).
  int32_t max_absorbed = 100'000;
};

/// Online point-assignment over a trained DbsvecModel.
///
/// Semantics (DBSCAN Definition 2, restricted to the model's known-core
/// summary): a query x joins the cluster of the nearest core point within
/// ε, and is noise if no core point lies within ε. Ties are broken toward
/// the smaller cluster id, so the answer does not depend on range-query
/// result order. Agreement guarantees against the training labels are
/// spelled out in docs/SERVING.md.
///
/// Thread safety: Assign/AssignBatch are const and may be called
/// concurrently (the serving counters are atomic). AssignBatch fans its
/// chunks out on the global thread pool; per-point results are
/// independent, so output is bit-identical at every thread count. With
/// online_refresh enabled, AbsorbCoreAdjacent may run concurrently with
/// assignments (overlay reads take a shared lock, absorption an exclusive
/// one); assignments then additionally depend on the absorption history,
/// so the bit-identical guarantee holds per overlay state, not globally.
class AssignmentEngine {
 public:
  /// Validates `model` and builds the serving index over its core summary.
  static Status Create(DbsvecModel model, const AssignmentOptions& options,
                       std::unique_ptr<AssignmentEngine>* out);

  /// LoadModel + Create.
  static Status Load(const std::string& path,
                     const AssignmentOptions& options,
                     std::unique_ptr<AssignmentEngine>* out);

  /// Assigns one raw point (length dim; the model's transform is applied
  /// internally). On success `*label` is a cluster id in
  /// [0, model.num_clusters) or Clustering::kNoise. `deadline` is checked
  /// once at entry (a single assignment is not interruptible mid-query).
  Status Assign(std::span<const double> point, int32_t* label,
                const Deadline& deadline = Deadline()) const;

  /// Assigns every point of `points` into `*labels` (resized), fanning
  /// chunks out on the global thread pool. `deadline` is checked once per
  /// chunk; on a non-OK return (deadline, injected fault) the contents of
  /// `*labels` are unspecified.
  Status AssignBatch(const Dataset& points, std::vector<int32_t>* labels,
                     const Deadline& deadline = Deadline()) const;

  /// Online refresh hook (requires options.online_refresh): absorbs every
  /// point of `points` whose assigned label is non-noise and whose
  /// transformed coordinates lie inside a sub-cluster member sphere (the
  /// sphere-prefilter distance marks it core-adjacent) into the dynamic
  /// overlay, so subsequent assignments treat it as a known core of that
  /// cluster. Points within ε of an already-absorbed core are skipped
  /// (the overlay summarizes drift, it does not mirror traffic), as is
  /// everything beyond max_absorbed. `labels` must be parallel to
  /// `points` (typically the AssignBatch output). `*absorbed` (optional)
  /// receives the number of cores actually added. Guarded by the
  /// `serve.refresh` failpoint.
  Status AbsorbCoreAdjacent(const Dataset& points,
                            const std::vector<int32_t>& labels,
                            uint64_t* absorbed = nullptr);

  /// Durability hook (docs/ROBUSTNESS.md): once a journal is attached,
  /// every point AbsorbCoreAdjacent accepts is appended to it — raw
  /// coordinates, before the in-memory apply — and a point whose append
  /// fails is skipped entirely, so the in-memory overlay and the journal
  /// describe exactly the same state at all times. Pass nullptr to detach
  /// (e.g. before discarding this engine on a reload). Must not be
  /// attached until any journal replay into this engine has finished, or
  /// replayed records would be re-journaled.
  void AttachJournal(std::shared_ptr<OverlayJournal> journal);
  std::shared_ptr<OverlayJournal> journal() const;

  /// Copies the model plus the current overlay into `*out` — the artifact
  /// a checkpoint writes. Concurrent-safe (shared overlay lock).
  Status SnapshotModel(DbsvecModel* out) const;

  /// Atomically persists SnapshotModel() to `snapshot_path` and, when a
  /// journal is attached, truncates it (every journaled record is now
  /// folded into the snapshot) and rebinds it to the snapshot's payload
  /// CRC. Absorbs are paused for the duration; assignments are not.
  /// `*snapshot_crc` / `*folded_records` (optional) receive the written
  /// snapshot's identity and overlay size.
  Status Checkpoint(const std::string& snapshot_path,
                    uint32_t* snapshot_crc = nullptr,
                    uint64_t* folded_records = nullptr);

  const DbsvecModel& model() const { return model_; }
  int dim() const { return model_.dim; }
  /// Model identity without re-reading the file: the format version this
  /// library writes and the payload CRC-32 (equal to the file header's
  /// checksum field for a model loaded from disk).
  uint32_t model_version() const { return DbsvecModel::kFormatVersion; }
  uint32_t model_crc() const { return model_crc_; }
  /// Number of shards of the serving index (after clamping to the core
  /// summary size); 0 when the engine is unsharded.
  int shard_count() const { return shard_count_; }

  /// Cumulative serving counters (relaxed atomics; cheap, approximate
  /// under concurrency, exact when queries are serial).
  struct ServeStats {
    uint64_t points_assigned = 0;
    uint64_t sphere_rejections = 0;  ///< Answered kNoise by the prefilter.
    uint64_t range_queries = 0;      ///< Queries that reached the index.
    uint64_t cores_absorbed = 0;     ///< Overlay cores added by refresh.
  };
  ServeStats stats() const;

 private:
  AssignmentEngine(DbsvecModel model, const AssignmentOptions& options);

  /// Builds the serving index over the core summary; split out of the
  /// constructor so Create can surface build failures (deadline, injected
  /// fault) as a Status instead of constructing a half-initialized engine.
  Status BuildIndex(const Deadline& deadline);

  /// Reused per-thread buffers of one assignment: the range-query result
  /// ids and their squared distances (filled by the index's batched leaf
  /// scans, so the nearest-core argmin needs no second distance pass).
  struct QueryScratch {
    std::vector<PointIndex> ids;
    std::vector<double> dist_sq;
    std::vector<PointIndex> candidates;  ///< Query-cache superset buffer.
  };

  /// Assignment of one already-transformed query point.
  int32_t AssignTransformed(std::span<const double> query,
                            QueryScratch* scratch) const;

  /// Overlay lookup of one transformed query; merges the nearest absorbed
  /// core within ε into (best_dist, best_cluster) under the same
  /// tie-break. No-op while the overlay is empty.
  void MergeOverlayNearest(std::span<const double> query, double* best_dist,
                           int32_t* best_cluster) const;

  /// True iff the transformed point sits inside some sub-cluster member
  /// sphere (un-inflated radius — the core-adjacency criterion).
  bool InsideMemberSphere(std::span<const double> query) const;

  const DbsvecModel model_;
  const AssignmentOptions options_;
  uint32_t model_crc_ = 0;
  int shard_count_ = 0;  // Actual shard count of index_ (0 = unsharded).
  std::unique_ptr<NeighborIndex> index_;  // Over model_.core_points.
  // Hot assign-path range-query cache over index_, present only when the
  // process-wide CacheManager is enabled. Per-engine, so a /v1/reload
  // invalidates it wholesale through the RCU EngineHandle swap; a
  // successful online-refresh absorption clears it explicitly. Candidate
  // supersets are re-filtered with exact distances, so cached answers are
  // bit-identical to the uncached path.
  std::unique_ptr<cache::QueryCellCache> query_cache_;
  // Sub-cluster sphere radii inflated by ε, squared, parallel to
  // model_.spheres (precomputed for the prefilter).
  std::vector<double> sphere_reach_sq_;
  // Un-inflated member-sphere radii, squared (core-adjacency test).
  std::vector<double> sphere_radius_sq_;
  // Bounding box of all core points inflated by ε: the O(d) reject that
  // runs before the per-sphere loop.
  std::vector<double> bbox_min_;
  std::vector<double> bbox_max_;

  // -- Online-refresh overlay --------------------------------------------
  // Absorbed cores live in their own append-only dataset indexed by a
  // dynamic R*-tree; readers take the shared side of the lock, absorption
  // the exclusive side. The count of usable overlay points is published
  // through overlay_size_ so the common no-overlay read path stays a
  // single relaxed load (no lock). Present when online_refresh is on OR
  // the model carries a folded overlay (a v3 snapshot), so a recovered
  // snapshot serves identically everywhere.
  //
  // absorb_mutex_ serializes overlay *mutators* (absorb, checkpoint,
  // attach) against each other without touching the read path, and is
  // always taken before overlay_mutex_.
  mutable std::mutex absorb_mutex_;
  std::shared_ptr<OverlayJournal> journal_;  // Guarded by absorb_mutex_.
  mutable std::shared_mutex overlay_mutex_;
  Dataset absorbed_points_;
  std::vector<int32_t> absorbed_labels_;
  std::unique_ptr<DynamicRStarTree> absorbed_tree_;
  std::atomic<int32_t> overlay_size_{0};

  mutable std::atomic<uint64_t> points_assigned_{0};
  mutable std::atomic<uint64_t> sphere_rejections_{0};
  mutable std::atomic<uint64_t> range_queries_{0};
  std::atomic<uint64_t> cores_absorbed_{0};
};

}  // namespace dbsvec

#endif  // DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_
