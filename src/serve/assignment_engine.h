#ifndef DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_
#define DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/deadline.h"
#include "common/status.h"
#include "index/neighbor_index.h"
#include "model/dbsvec_model.h"

namespace dbsvec {

/// Serving-side options of the assignment engine.
struct AssignmentOptions {
  /// Range-query engine built over the model's core summary. The kd-tree
  /// is the default, matching the training-side default.
  IndexType index = IndexType::kKdTree;
  /// Minimum points per thread-pool chunk of a batched Assign.
  int batch_grain = 64;
  /// Skip queries outside every sub-cluster sphere (inflated by ε) without
  /// touching the index. Off is only useful for benchmarking the filter.
  bool sphere_prefilter = true;
  /// Time budget for building the serving index inside Create/Load.
  /// Default: unlimited. Per-call budgets are passed to Assign/AssignBatch
  /// directly.
  Deadline build_deadline;
};

/// Online point-assignment over a trained DbsvecModel.
///
/// Semantics (DBSCAN Definition 2, restricted to the model's known-core
/// summary): a query x joins the cluster of the nearest core point within
/// ε, and is noise if no core point lies within ε. Ties are broken toward
/// the smaller cluster id, so the answer does not depend on range-query
/// result order. Agreement guarantees against the training labels are
/// spelled out in docs/SERVING.md.
///
/// Thread safety: Assign/AssignBatch are const and may be called
/// concurrently (the serving counters are atomic). AssignBatch fans its
/// chunks out on the global thread pool; per-point results are
/// independent, so output is bit-identical at every thread count.
class AssignmentEngine {
 public:
  /// Validates `model` and builds the serving index over its core summary.
  static Status Create(DbsvecModel model, const AssignmentOptions& options,
                       std::unique_ptr<AssignmentEngine>* out);

  /// LoadModel + Create.
  static Status Load(const std::string& path,
                     const AssignmentOptions& options,
                     std::unique_ptr<AssignmentEngine>* out);

  /// Assigns one raw point (length dim; the model's transform is applied
  /// internally). On success `*label` is a cluster id in
  /// [0, model.num_clusters) or Clustering::kNoise. `deadline` is checked
  /// once at entry (a single assignment is not interruptible mid-query).
  Status Assign(std::span<const double> point, int32_t* label,
                const Deadline& deadline = Deadline()) const;

  /// Assigns every point of `points` into `*labels` (resized), fanning
  /// chunks out on the global thread pool. `deadline` is checked once per
  /// chunk; on a non-OK return (deadline, injected fault) the contents of
  /// `*labels` are unspecified.
  Status AssignBatch(const Dataset& points, std::vector<int32_t>* labels,
                     const Deadline& deadline = Deadline()) const;

  const DbsvecModel& model() const { return model_; }
  int dim() const { return model_.dim; }

  /// Cumulative serving counters (relaxed atomics; cheap, approximate
  /// under concurrency, exact when queries are serial).
  struct ServeStats {
    uint64_t points_assigned = 0;
    uint64_t sphere_rejections = 0;  ///< Answered kNoise by the prefilter.
    uint64_t range_queries = 0;      ///< Queries that reached the index.
  };
  ServeStats stats() const;

 private:
  AssignmentEngine(DbsvecModel model, const AssignmentOptions& options);

  /// Builds the serving index over the core summary; split out of the
  /// constructor so Create can surface build failures (deadline, injected
  /// fault) as a Status instead of constructing a half-initialized engine.
  Status BuildIndex(const Deadline& deadline);

  /// Reused per-thread buffers of one assignment: the range-query result
  /// ids and their squared distances (filled by the index's batched leaf
  /// scans, so the nearest-core argmin needs no second distance pass).
  struct QueryScratch {
    std::vector<PointIndex> ids;
    std::vector<double> dist_sq;
  };

  /// Assignment of one already-transformed query point.
  int32_t AssignTransformed(std::span<const double> query,
                            QueryScratch* scratch) const;

  const DbsvecModel model_;
  const AssignmentOptions options_;
  std::unique_ptr<NeighborIndex> index_;  // Over model_.core_points.
  // Sub-cluster sphere radii inflated by ε, squared, parallel to
  // model_.spheres (precomputed for the prefilter).
  std::vector<double> sphere_reach_sq_;
  // Bounding box of all core points inflated by ε: the O(d) reject that
  // runs before the per-sphere loop.
  std::vector<double> bbox_min_;
  std::vector<double> bbox_max_;

  mutable std::atomic<uint64_t> points_assigned_{0};
  mutable std::atomic<uint64_t> sphere_rejections_{0};
  mutable std::atomic<uint64_t> range_queries_{0};
};

}  // namespace dbsvec

#endif  // DBSVEC_SERVE_ASSIGNMENT_ENGINE_H_
