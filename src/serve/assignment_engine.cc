#include "serve/assignment_engine.h"

#include <cmath>
#include <limits>

#include "cluster/clustering.h"
#include "common/thread_pool.h"
#include "fault/failpoint.h"

namespace dbsvec {

AssignmentEngine::AssignmentEngine(DbsvecModel model,
                                   const AssignmentOptions& options)
    : model_(std::move(model)), options_(options) {
  const int dim = model_.dim;
  sphere_reach_sq_.reserve(model_.spheres.size());
  for (const SubClusterSphere& sphere : model_.spheres) {
    const double reach = sphere.radius + model_.epsilon;
    sphere_reach_sq_.push_back(reach * reach);
  }
  if (model_.core_points.size() > 0) {
    bbox_min_.assign(dim, std::numeric_limits<double>::infinity());
    bbox_max_.assign(dim, -std::numeric_limits<double>::infinity());
    for (PointIndex i = 0; i < model_.core_points.size(); ++i) {
      for (int d = 0; d < dim; ++d) {
        const double v = model_.core_points.at(i, d);
        if (v < bbox_min_[d]) bbox_min_[d] = v;
        if (v > bbox_max_[d]) bbox_max_[d] = v;
      }
    }
    for (int d = 0; d < dim; ++d) {
      bbox_min_[d] -= model_.epsilon;
      bbox_max_[d] += model_.epsilon;
    }
  }
}

Status AssignmentEngine::BuildIndex(const Deadline& deadline) {
  if (model_.core_points.size() == 0) {
    return Status::Ok();  // Empty core summary: everything is noise.
  }
  return CreateIndexChecked(options_.index, model_.core_points,
                            model_.epsilon, deadline, &index_);
}

Status AssignmentEngine::Create(DbsvecModel model,
                                const AssignmentOptions& options,
                                std::unique_ptr<AssignmentEngine>* out) {
  DBSVEC_RETURN_IF_ERROR(ValidateModel(model));
  if (options.batch_grain < 1) {
    return Status::InvalidArgument("serve: batch_grain must be >= 1");
  }
  out->reset(new AssignmentEngine(std::move(model), options));
  const Status built = (*out)->BuildIndex(options.build_deadline);
  if (!built.ok()) {
    out->reset();  // Never hand back a half-initialized engine.
    return built;
  }
  return Status::Ok();
}

Status AssignmentEngine::Load(const std::string& path,
                              const AssignmentOptions& options,
                              std::unique_ptr<AssignmentEngine>* out) {
  DbsvecModel model;
  DBSVEC_RETURN_IF_ERROR(LoadModel(path, &model));
  return Create(std::move(model), options, out);
}

int32_t AssignmentEngine::AssignTransformed(std::span<const double> query,
                                            QueryScratch* scratch) const {
  points_assigned_.fetch_add(1, std::memory_order_relaxed);
  if (index_ == nullptr) {
    return Clustering::kNoise;  // Model with an empty core summary.
  }
  if (options_.sphere_prefilter) {
    for (size_t d = 0; d < query.size(); ++d) {
      if (query[d] < bbox_min_[d] || query[d] > bbox_max_[d]) {
        sphere_rejections_.fetch_add(1, std::memory_order_relaxed);
        return Clustering::kNoise;
      }
    }
    bool inside_some_sphere = model_.spheres.empty();
    for (size_t s = 0; s < model_.spheres.size() && !inside_some_sphere;
         ++s) {
      const double d2 =
          SquaredDistance(query, model_.spheres[s].center);
      inside_some_sphere = d2 <= sphere_reach_sq_[s];
    }
    if (!inside_some_sphere) {
      // Outside every sub-cluster's member sphere inflated by ε: no core
      // point (a member by construction) can be within ε.
      sphere_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Clustering::kNoise;
    }
  }
  range_queries_.fetch_add(1, std::memory_order_relaxed);
  index_->RangeQueryWithDistances(query, model_.epsilon, &scratch->ids,
                                  &scratch->dist_sq);
  // Nearest core point wins; ties break toward the smaller cluster id so
  // the answer is independent of the index's result order. The distances
  // come straight from the index's batched leaf scans (bit-identical to
  // SquaredDistanceTo), so no second distance pass runs here.
  int32_t best_cluster = Clustering::kNoise;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < scratch->ids.size(); ++k) {
    const double d2 = scratch->dist_sq[k];
    const int32_t cluster = model_.core_labels[scratch->ids[k]];
    if (d2 < best_dist ||
        (d2 == best_dist && cluster < best_cluster)) {
      best_dist = d2;
      best_cluster = cluster;
    }
  }
  return best_cluster;
}

Status AssignmentEngine::Assign(std::span<const double> point,
                                int32_t* label,
                                const Deadline& deadline) const {
  DBSVEC_RETURN_IF_ERROR(deadline.Check("assign"));
  if (static_cast<int>(point.size()) != model_.dim) {
    return Status::InvalidArgument(
        "assign: point has dimension " + std::to_string(point.size()) +
        ", model expects " + std::to_string(model_.dim));
  }
  QueryScratch scratch;
  if (model_.transform.empty()) {
    *label = AssignTransformed(point, &scratch);
  } else {
    std::vector<double> transformed(point.size());
    model_.transform.Apply(point, transformed);
    *label = AssignTransformed(transformed, &scratch);
  }
  return Status::Ok();
}

Status AssignmentEngine::AssignBatch(const Dataset& points,
                                     std::vector<int32_t>* labels,
                                     const Deadline& deadline) const {
  if (points.dim() != model_.dim) {
    return Status::InvalidArgument(
        "assign: batch has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(model_.dim));
  }
  const PointIndex n = points.size();
  labels->assign(n, Clustering::kNoise);
  // Per-chunk check points: an expired deadline or armed failpoint stops
  // new chunks; chunks already running finish their points. The first
  // failing chunk (lowest index) determines the returned Status.
  return ParallelForWithStatus(
      static_cast<size_t>(n), static_cast<size_t>(options_.batch_grain),
      [&](size_t begin, size_t end) -> Status {
        DBSVEC_RETURN_IF_ERROR(FailpointCheck("assign.batch"));
        DBSVEC_RETURN_IF_ERROR(deadline.Check("assign batch"));
        QueryScratch scratch;
        std::vector<double> transformed(model_.dim);
        for (size_t i = begin; i < end; ++i) {
          const PointIndex p = static_cast<PointIndex>(i);
          std::span<const double> query = points.point(p);
          if (!model_.transform.empty()) {
            model_.transform.Apply(query, transformed);
            query = transformed;
          }
          (*labels)[i] = AssignTransformed(query, &scratch);
        }
        return Status::Ok();
      });
}

AssignmentEngine::ServeStats AssignmentEngine::stats() const {
  ServeStats stats;
  stats.points_assigned = points_assigned_.load(std::memory_order_relaxed);
  stats.sphere_rejections =
      sphere_rejections_.load(std::memory_order_relaxed);
  stats.range_queries = range_queries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dbsvec
