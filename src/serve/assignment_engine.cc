#include "serve/assignment_engine.h"

#include <cmath>
#include <limits>
#include <mutex>

#include "cache/cache_manager.h"
#include "cluster/clustering.h"
#include "common/thread_pool.h"
#include "exec/sharded_index.h"
#include "fault/failpoint.h"

namespace dbsvec {

AssignmentEngine::AssignmentEngine(DbsvecModel model,
                                   const AssignmentOptions& options)
    : model_(std::move(model)),
      options_(options),
      absorbed_points_(model_.dim) {
  const int dim = model_.dim;
  sphere_reach_sq_.reserve(model_.spheres.size());
  sphere_radius_sq_.reserve(model_.spheres.size());
  for (const SubClusterSphere& sphere : model_.spheres) {
    const double reach = sphere.radius + model_.epsilon;
    sphere_reach_sq_.push_back(reach * reach);
    sphere_radius_sq_.push_back(sphere.radius * sphere.radius);
  }
  if (model_.core_points.size() > 0) {
    bbox_min_.assign(dim, std::numeric_limits<double>::infinity());
    bbox_max_.assign(dim, -std::numeric_limits<double>::infinity());
    for (PointIndex i = 0; i < model_.core_points.size(); ++i) {
      for (int d = 0; d < dim; ++d) {
        const double v = model_.core_points.at(i, d);
        if (v < bbox_min_[d]) bbox_min_[d] = v;
        if (v > bbox_max_[d]) bbox_max_[d] = v;
      }
    }
    for (int d = 0; d < dim; ++d) {
      bbox_min_[d] -= model_.epsilon;
      bbox_max_[d] += model_.epsilon;
    }
  }
  // Seed the overlay from a v3 snapshot's folded absorbed cores (already
  // transformed — the overlay lives post-transform).
  if (model_.absorbed_points.size() > 0) {
    absorbed_points_ = model_.absorbed_points;
    absorbed_labels_ = model_.absorbed_labels;
  }
  if (options_.online_refresh || absorbed_points_.size() > 0) {
    absorbed_tree_ = std::make_unique<DynamicRStarTree>(absorbed_points_);
    for (PointIndex i = 0; i < absorbed_points_.size(); ++i) {
      absorbed_tree_->Insert(i);
    }
  }
  overlay_size_.store(absorbed_points_.size(), std::memory_order_release);
}

Status AssignmentEngine::BuildIndex(const Deadline& deadline) {
  if (model_.core_points.size() == 0) {
    return Status::Ok();  // Empty core summary: everything is noise.
  }
  if (options_.shards >= 1) {
    std::unique_ptr<exec::ShardedIndex> sharded;
    DBSVEC_RETURN_IF_ERROR(exec::ShardedIndex::Create(
        options_.index, model_.core_points, model_.epsilon, options_.shards,
        deadline, &sharded));
    shard_count_ = sharded->num_shards();
    index_ = std::move(sharded);
  } else {
    DBSVEC_RETURN_IF_ERROR(CreateIndexChecked(
        options_.index, model_.core_points, model_.epsilon, deadline,
        &index_));
  }
  if (cache::CacheManager::Global().enabled()) {
    query_cache_ = std::make_unique<cache::QueryCellCache>(
        index_.get(), model_.epsilon, model_.dim,
        cache::CacheManager::Global().Register("assign_query"));
  }
  return Status::Ok();
}

Status AssignmentEngine::Create(DbsvecModel model,
                                const AssignmentOptions& options,
                                std::unique_ptr<AssignmentEngine>* out) {
  DBSVEC_RETURN_IF_ERROR(ValidateModel(model));
  if (options.batch_grain < 1) {
    return Status::InvalidArgument("serve: batch_grain must be >= 1");
  }
  if (options.max_absorbed < 0) {
    return Status::InvalidArgument("serve: max_absorbed must be >= 0");
  }
  uint32_t crc = 0;
  DBSVEC_RETURN_IF_ERROR(ModelPayloadCrc(model, &crc));
  out->reset(new AssignmentEngine(std::move(model), options));
  (*out)->model_crc_ = crc;
  const Status built = (*out)->BuildIndex(options.build_deadline);
  if (!built.ok()) {
    out->reset();  // Never hand back a half-initialized engine.
    return built;
  }
  return Status::Ok();
}

Status AssignmentEngine::Load(const std::string& path,
                              const AssignmentOptions& options,
                              std::unique_ptr<AssignmentEngine>* out) {
  DbsvecModel model;
  DBSVEC_RETURN_IF_ERROR(LoadModel(path, &model));
  return Create(std::move(model), options, out);
}

void AssignmentEngine::MergeOverlayNearest(std::span<const double> query,
                                           double* best_dist,
                                           int32_t* best_cluster) const {
  if (overlay_size_.load(std::memory_order_acquire) == 0) {
    return;
  }
  std::shared_lock<std::shared_mutex> lock(overlay_mutex_);
  std::vector<PointIndex> ids;
  absorbed_tree_->RangeQuery(query, model_.epsilon, &ids);
  for (const PointIndex id : ids) {
    const double d2 = absorbed_points_.SquaredDistanceTo(id, query);
    const int32_t cluster = absorbed_labels_[static_cast<size_t>(id)];
    if (d2 < *best_dist || (d2 == *best_dist && cluster < *best_cluster)) {
      *best_dist = d2;
      *best_cluster = cluster;
    }
  }
}

bool AssignmentEngine::InsideMemberSphere(
    std::span<const double> query) const {
  for (size_t s = 0; s < model_.spheres.size(); ++s) {
    if (SquaredDistance(query, model_.spheres[s].center) <=
        sphere_radius_sq_[s]) {
      return true;
    }
  }
  return false;
}

int32_t AssignmentEngine::AssignTransformed(std::span<const double> query,
                                            QueryScratch* scratch) const {
  points_assigned_.fetch_add(1, std::memory_order_relaxed);
  // Live whenever cores exist — absorbed online or seeded from a v3
  // snapshot — so a recovered engine answers like the one that absorbed.
  const bool overlay_live =
      overlay_size_.load(std::memory_order_acquire) > 0;
  if (index_ == nullptr && !overlay_live) {
    return Clustering::kNoise;  // Model with an empty core summary.
  }
  int32_t best_cluster = Clustering::kNoise;
  double best_dist = std::numeric_limits<double>::infinity();
  bool prefilter_rejected = false;
  if (index_ != nullptr) {
    if (options_.sphere_prefilter) {
      for (size_t d = 0; d < query.size(); ++d) {
        if (query[d] < bbox_min_[d] || query[d] > bbox_max_[d]) {
          prefilter_rejected = true;
          break;
        }
      }
      if (!prefilter_rejected) {
        bool inside_some_sphere = model_.spheres.empty();
        for (size_t s = 0; s < model_.spheres.size() && !inside_some_sphere;
             ++s) {
          const double d2 =
              SquaredDistance(query, model_.spheres[s].center);
          inside_some_sphere = d2 <= sphere_reach_sq_[s];
        }
        // Outside every sub-cluster's member sphere inflated by ε: no core
        // point (a member by construction) can be within ε.
        prefilter_rejected = !inside_some_sphere;
      }
      if (prefilter_rejected) {
        sphere_rejections_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!prefilter_rejected) {
      range_queries_.fetch_add(1, std::memory_order_relaxed);
      if (query_cache_ != nullptr) {
        // Cached candidate superset of this query's cell, re-filtered
        // with exact squared distances against the same inclusive ε
        // comparison the index's leaf scans use — the surviving
        // (id, dist) pairs are exactly what RangeQueryWithDistances
        // returns, so the label below is bit-identical to the uncached
        // path.
        query_cache_->Candidates(query, &scratch->candidates);
        scratch->ids.clear();
        scratch->dist_sq.clear();
        const double eps_sq = model_.epsilon * model_.epsilon;
        for (const PointIndex id : scratch->candidates) {
          const double d2 =
              model_.core_points.SquaredDistanceTo(id, query);
          if (d2 <= eps_sq) {
            scratch->ids.push_back(id);
            scratch->dist_sq.push_back(d2);
          }
        }
      } else {
        index_->RangeQueryWithDistances(query, model_.epsilon,
                                        &scratch->ids, &scratch->dist_sq);
      }
      // Nearest core point wins; ties break toward the smaller cluster id
      // so the answer is independent of the index's result order. The
      // distances come straight from the index's batched leaf scans
      // (bit-identical to SquaredDistanceTo), so no second distance pass
      // runs here.
      for (size_t k = 0; k < scratch->ids.size(); ++k) {
        const double d2 = scratch->dist_sq[k];
        const int32_t cluster = model_.core_labels[scratch->ids[k]];
        if (d2 < best_dist ||
            (d2 == best_dist && cluster < best_cluster)) {
          best_dist = d2;
          best_cluster = cluster;
        }
      }
    }
  }
  // Absorbed overlay cores extend the summary past the trained spheres, so
  // they are consulted even for prefilter-rejected queries (a drifted
  // cluster lives outside every training-time sphere by definition).
  if (overlay_live) {
    MergeOverlayNearest(query, &best_dist, &best_cluster);
  }
  return best_cluster;
}

Status AssignmentEngine::Assign(std::span<const double> point,
                                int32_t* label,
                                const Deadline& deadline) const {
  DBSVEC_RETURN_IF_ERROR(deadline.Check("assign"));
  if (static_cast<int>(point.size()) != model_.dim) {
    return Status::InvalidArgument(
        "assign: point has dimension " + std::to_string(point.size()) +
        ", model expects " + std::to_string(model_.dim));
  }
  QueryScratch scratch;
  if (model_.transform.empty()) {
    *label = AssignTransformed(point, &scratch);
  } else {
    std::vector<double> transformed(point.size());
    model_.transform.Apply(point, transformed);
    *label = AssignTransformed(transformed, &scratch);
  }
  return Status::Ok();
}

Status AssignmentEngine::AssignBatch(const Dataset& points,
                                     std::vector<int32_t>* labels,
                                     const Deadline& deadline) const {
  if (points.dim() != model_.dim) {
    return Status::InvalidArgument(
        "assign: batch has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(model_.dim));
  }
  const PointIndex n = points.size();
  labels->assign(n, Clustering::kNoise);
  // Per-chunk check points: an expired deadline or armed failpoint stops
  // new chunks; chunks already running finish their points. The first
  // failing chunk (lowest index) determines the returned Status.
  return ParallelForWithStatus(
      static_cast<size_t>(n), static_cast<size_t>(options_.batch_grain),
      [&](size_t begin, size_t end) -> Status {
        DBSVEC_RETURN_IF_ERROR(FailpointCheck("assign.batch"));
        DBSVEC_RETURN_IF_ERROR(deadline.Check("assign batch"));
        QueryScratch scratch;
        std::vector<double> transformed(model_.dim);
        for (size_t i = begin; i < end; ++i) {
          const PointIndex p = static_cast<PointIndex>(i);
          std::span<const double> query = points.point(p);
          if (!model_.transform.empty()) {
            model_.transform.Apply(query, transformed);
            query = transformed;
          }
          (*labels)[i] = AssignTransformed(query, &scratch);
        }
        return Status::Ok();
      });
}

Status AssignmentEngine::AbsorbCoreAdjacent(const Dataset& points,
                                            const std::vector<int32_t>& labels,
                                            uint64_t* absorbed) {
  if (absorbed != nullptr) {
    *absorbed = 0;
  }
  if (!options_.online_refresh) {
    return Status::FailedPrecondition(
        "serve: AbsorbCoreAdjacent requires online_refresh");
  }
  if (points.dim() != model_.dim) {
    return Status::InvalidArgument(
        "absorb: batch has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(model_.dim));
  }
  if (static_cast<PointIndex>(labels.size()) != points.size()) {
    return Status::InvalidArgument(
        "absorb: labels are not parallel to points");
  }
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("serve.refresh"));
  uint64_t added = 0;
  std::vector<double> transformed(model_.dim);
  std::vector<PointIndex> near;
  std::lock_guard<std::mutex> serial(absorb_mutex_);
  std::unique_lock<std::shared_mutex> lock(overlay_mutex_);
  for (PointIndex i = 0; i < points.size(); ++i) {
    if (labels[static_cast<size_t>(i)] < 0) {
      continue;  // Noise is never core-adjacent.
    }
    if (absorbed_points_.size() >= options_.max_absorbed) {
      break;
    }
    std::span<const double> query = points.point(i);
    if (!model_.transform.empty()) {
      model_.transform.Apply(query, transformed);
      query = transformed;
    }
    if (!InsideMemberSphere(query)) {
      continue;  // Prefilter distance says it is not core-adjacent.
    }
    // Dedupe against cores already absorbed: a point within ε of one adds
    // no reach to the summary.
    absorbed_tree_->RangeQuery(query, model_.epsilon, &near);
    if (!near.empty()) {
      continue;
    }
    // Write-ahead: the raw point must be durable (per the fsync policy)
    // before it can influence any answer. A failed append skips the point
    // — both sides stay in exact agreement — and the journal counts the
    // drop for /v1/statz.
    if (journal_ != nullptr &&
        !journal_->Append(labels[static_cast<size_t>(i)], points.point(i))
             .ok()) {
      continue;
    }
    absorbed_points_.Append(query);
    absorbed_labels_.push_back(labels[static_cast<size_t>(i)]);
    absorbed_tree_->Insert(absorbed_points_.size() - 1);
    ++added;
  }
  overlay_size_.store(absorbed_points_.size(), std::memory_order_release);
  lock.unlock();
  if (added > 0 && query_cache_ != nullptr) {
    // The cached candidate sets cover only the static index (the overlay
    // is merged separately after them), so this clear is belt-and-
    // suspenders: refresh must never leave a stale cache behind.
    query_cache_->Clear();
  }
  cores_absorbed_.fetch_add(added, std::memory_order_relaxed);
  if (absorbed != nullptr) {
    *absorbed = added;
  }
  return Status::Ok();
}

void AssignmentEngine::AttachJournal(std::shared_ptr<OverlayJournal> journal) {
  std::lock_guard<std::mutex> serial(absorb_mutex_);
  journal_ = std::move(journal);
}

std::shared_ptr<OverlayJournal> AssignmentEngine::journal() const {
  std::lock_guard<std::mutex> serial(absorb_mutex_);
  return journal_;
}

Status AssignmentEngine::SnapshotModel(DbsvecModel* out) const {
  *out = model_;
  std::shared_lock<std::shared_mutex> lock(overlay_mutex_);
  out->absorbed_points = absorbed_points_;
  out->absorbed_labels = absorbed_labels_;
  return Status::Ok();
}

Status AssignmentEngine::Checkpoint(const std::string& snapshot_path,
                                    uint32_t* snapshot_crc,
                                    uint64_t* folded_records) {
  // Pausing absorbs (not reads) makes the fold exact: no record can land
  // in the journal between the overlay copy below and the journal reset,
  // so the snapshot + empty journal describe the same state the engine
  // serves. A crash between SaveModel and Reset is also safe: the stale
  // journal's base CRC no longer matches the new snapshot, so recovery
  // discards it — and all of its records are inside the snapshot.
  std::lock_guard<std::mutex> serial(absorb_mutex_);
  DbsvecModel snapshot;
  DBSVEC_RETURN_IF_ERROR(SnapshotModel(&snapshot));
  if (folded_records != nullptr) {
    *folded_records = static_cast<uint64_t>(snapshot.absorbed_points.size());
  }
  DBSVEC_RETURN_IF_ERROR(SaveModel(snapshot, snapshot_path));
  uint32_t crc = 0;
  DBSVEC_RETURN_IF_ERROR(ModelPayloadCrc(snapshot, &crc));
  if (snapshot_crc != nullptr) {
    *snapshot_crc = crc;
  }
  if (journal_ != nullptr) {
    DBSVEC_RETURN_IF_ERROR(journal_->Reset(crc));
  }
  return Status::Ok();
}

AssignmentEngine::ServeStats AssignmentEngine::stats() const {
  ServeStats stats;
  stats.points_assigned = points_assigned_.load(std::memory_order_relaxed);
  stats.sphere_rejections =
      sphere_rejections_.load(std::memory_order_relaxed);
  stats.range_queries = range_queries_.load(std::memory_order_relaxed);
  stats.cores_absorbed = cores_absorbed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dbsvec
