#include "serve/engine_swap.h"

#include <utility>

namespace dbsvec {

Status EngineHandle::LoadAndSwap(const std::string& path,
                                 AssignmentOptions options,
                                 const Deadline& deadline) {
  options.build_deadline = deadline;
  std::unique_ptr<AssignmentEngine> next;
  DBSVEC_RETURN_IF_ERROR(AssignmentEngine::Load(path, options, &next));
  Swap(std::shared_ptr<AssignmentEngine>(std::move(next)));
  return Status::Ok();
}

}  // namespace dbsvec
