#ifndef DBSVEC_SERVE_ENGINE_SWAP_H_
#define DBSVEC_SERVE_ENGINE_SWAP_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "serve/assignment_engine.h"

namespace dbsvec {

/// RCU-style holder of the live AssignmentEngine: request threads Get() a
/// shared_ptr snapshot (shared lock + refcount bump) and keep serving from
/// it for the whole request, while a reload builds the replacement engine
/// off to the side and flips the pointer in one exclusive-lock swap. An
/// old snapshot drains naturally — the last in-flight request holding its
/// shared_ptr destroys it — so a swap never tears or stalls a response.
///
/// Rollback is inherent: LoadAndSwap constructs and fully validates the
/// new engine (file read, checksum, structural validation, index build)
/// before touching the pointer, so any failure leaves the previous engine
/// serving untouched.
class EngineHandle {
 public:
  explicit EngineHandle(std::shared_ptr<AssignmentEngine> engine)
      : engine_(std::move(engine)) {}

  /// The current engine snapshot; never null.
  std::shared_ptr<AssignmentEngine> Get() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return engine_;
  }

  /// Atomically replaces the live engine. `next` must be non-null.
  void Swap(std::shared_ptr<AssignmentEngine> next) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    engine_ = std::move(next);
  }

  /// Loads `path` (CRC-verified by LoadModel), builds the serving index,
  /// and swaps the result in. On any failure the current engine keeps
  /// serving and the error is returned. `options` configures the new
  /// engine (`options.build_deadline` is overridden by `deadline`).
  Status LoadAndSwap(const std::string& path, AssignmentOptions options,
                     const Deadline& deadline = Deadline());

 private:
  mutable std::shared_mutex mutex_;
  std::shared_ptr<AssignmentEngine> engine_;
};

}  // namespace dbsvec

#endif  // DBSVEC_SERVE_ENGINE_SWAP_H_
