#ifndef DBSVEC_DATA_SHAPES_H_
#define DBSVEC_DATA_SHAPES_H_

#include <cstdint>

#include "common/dataset.h"

namespace dbsvec {

/// Which chameleon-benchmark-like 2D scene to generate.
enum class ShapeScene {
  kT4,  ///< t4.8k-like: sine bands, a ring, a bar and blobs + noise.
  kT7,  ///< t7.10k-like: more, partially interlocking shapes + noise.
};

/// Generates a 2D scene of arbitrary-shaped clusters in the style of the
/// chameleon benchmark datasets t4.8k / t7.10k [13] that the paper uses
/// for its clustering-quality demonstration (Fig. 1) and Table III. The
/// scene lives in [0, 700] × [0, 320] (the chameleon datasets' coordinate
/// scale); about 10% of the points are uniform background noise, the
/// signature property of these benchmarks.
Dataset GenerateShapeScene(ShapeScene scene, PointIndex n, uint64_t seed);

/// Low-level 2D shape builders, exposed for custom scenes and tests. Each
/// appends `count` jittered points to `dataset` (which must be 2-D).
void AddBlob(Dataset* dataset, PointIndex count, double cx, double cy,
             double stddev, uint64_t seed);
void AddRing(Dataset* dataset, PointIndex count, double cx, double cy,
             double radius, double thickness, uint64_t seed);
void AddSineBand(Dataset* dataset, PointIndex count, double x0, double x1,
                 double y_base, double amplitude, double period,
                 double thickness, uint64_t seed);
void AddBar(Dataset* dataset, PointIndex count, double x0, double y0,
            double x1, double y1, double thickness, uint64_t seed);
void AddUniformNoise(Dataset* dataset, PointIndex count, double x0,
                     double y0, double x1, double y1, uint64_t seed);

}  // namespace dbsvec

#endif  // DBSVEC_DATA_SHAPES_H_
