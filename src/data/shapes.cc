#include "data/shapes.h"

#include <cmath>

#include "common/rng.h"

namespace dbsvec {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;

}  // namespace

void AddBlob(Dataset* dataset, PointIndex count, double cx, double cy,
             double stddev, uint64_t seed) {
  Rng rng(seed);
  for (PointIndex i = 0; i < count; ++i) {
    const double p[2] = {cx + rng.Gaussian(0.0, stddev),
                         cy + rng.Gaussian(0.0, stddev)};
    dataset->Append(p);
  }
}

void AddRing(Dataset* dataset, PointIndex count, double cx, double cy,
             double radius, double thickness, uint64_t seed) {
  Rng rng(seed);
  for (PointIndex i = 0; i < count; ++i) {
    const double angle = rng.Uniform(0.0, kTwoPi);
    const double r = radius + rng.Gaussian(0.0, thickness);
    const double p[2] = {cx + r * std::cos(angle), cy + r * std::sin(angle)};
    dataset->Append(p);
  }
}

void AddSineBand(Dataset* dataset, PointIndex count, double x0, double x1,
                 double y_base, double amplitude, double period,
                 double thickness, uint64_t seed) {
  Rng rng(seed);
  for (PointIndex i = 0; i < count; ++i) {
    const double x = rng.Uniform(x0, x1);
    const double y = y_base + amplitude * std::sin(kTwoPi * (x - x0) / period);
    const double p[2] = {x, y + rng.Gaussian(0.0, thickness)};
    dataset->Append(p);
  }
}

void AddBar(Dataset* dataset, PointIndex count, double x0, double y0,
            double x1, double y1, double thickness, uint64_t seed) {
  Rng rng(seed);
  for (PointIndex i = 0; i < count; ++i) {
    const double t = rng.NextDouble();
    const double x = x0 + t * (x1 - x0);
    const double y = y0 + t * (y1 - y0);
    // Jitter perpendicular to the bar direction.
    const double len = std::max(1e-9, std::hypot(x1 - x0, y1 - y0));
    const double nx = -(y1 - y0) / len;
    const double ny = (x1 - x0) / len;
    const double off = rng.Gaussian(0.0, thickness);
    const double p[2] = {x + off * nx, y + off * ny};
    dataset->Append(p);
  }
}

void AddUniformNoise(Dataset* dataset, PointIndex count, double x0,
                     double y0, double x1, double y1, uint64_t seed) {
  Rng rng(seed);
  for (PointIndex i = 0; i < count; ++i) {
    const double p[2] = {rng.Uniform(x0, x1), rng.Uniform(y0, y1)};
    dataset->Append(p);
  }
}

Dataset GenerateShapeScene(ShapeScene scene, PointIndex n, uint64_t seed) {
  Dataset dataset(2);
  dataset.Reserve(n);
  const PointIndex noise = n / 10;  // Chameleon scenes are ~10% noise.
  const PointIndex signal = n - noise;

  if (scene == ShapeScene::kT4) {
    // Six shapes inspired by t4.8k: two sine bands, a ring, a diagonal bar
    // and two dense blobs.
    const PointIndex share = signal / 6;
    const PointIndex rest = signal - 5 * share;
    AddSineBand(&dataset, share, 40, 420, 240, 30, 260, 6, seed + 1);
    AddSineBand(&dataset, share, 120, 560, 120, 30, 260, 6, seed + 2);
    AddRing(&dataset, share, 560, 230, 50, 5, seed + 3);
    AddBar(&dataset, share, 420, 40, 660, 110, 7, seed + 4);
    AddBlob(&dataset, share, 90, 70, 16, seed + 5);
    AddBlob(&dataset, rest, 230, 60, 16, seed + 6);
  } else {
    // Nine shapes inspired by t7.10k, several interlocking.
    const PointIndex share = signal / 9;
    const PointIndex rest = signal - 8 * share;
    AddSineBand(&dataset, share, 30, 330, 250, 25, 200, 6, seed + 1);
    AddSineBand(&dataset, share, 60, 360, 180, 25, 200, 6, seed + 2);
    AddSineBand(&dataset, share, 330, 670, 90, 25, 220, 6, seed + 3);
    AddRing(&dataset, share, 520, 230, 55, 5, seed + 4);
    AddRing(&dataset, share, 520, 230, 25, 4, seed + 5);
    AddBar(&dataset, share, 60, 60, 300, 60, 7, seed + 6);
    AddBar(&dataset, share, 60, 100, 300, 100, 7, seed + 7);
    AddBlob(&dataset, share, 650, 280, 14, seed + 8);
    AddBlob(&dataset, rest, 380, 40, 14, seed + 9);
  }
  AddUniformNoise(&dataset, noise, 0, 0, 700, 320, seed + 100);
  return dataset;
}

}  // namespace dbsvec
