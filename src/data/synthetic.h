#ifndef DBSVEC_DATA_SYNTHETIC_H_
#define DBSVEC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"

namespace dbsvec {

/// Parameters of the random-walk cluster generator, modelled on the
/// generator of Gan & Tao [5] that the paper uses for all efficiency
/// experiments (Sec. V-C): clusters are traced by jittered random walks so
/// they have arbitrary elongated shapes, plus a fraction of uniform noise.
struct RandomWalkParams {
  /// Total number of points (clusters + noise).
  PointIndex n = 100'000;
  /// Dimensionality d.
  int dim = 8;
  /// Number of cluster walks.
  int num_clusters = 10;
  /// Side length of the data domain [0, domain]^d. The paper normalizes to
  /// [0, 1e5] per dimension.
  double domain = 1e5;
  /// Walk step is uniform in [-step_scale·domain, +step_scale·domain] per
  /// dimension.
  double step_scale = 0.003;
  /// Probability of teleporting back to the cluster seed at each step
  /// (keeps walks compact).
  double restart_probability = 0.02;
  /// Gaussian jitter around each walk position, as a fraction of domain.
  double jitter_scale = 0.002;
  /// Fraction of points drawn uniformly from the domain as noise.
  double noise_fraction = 0.0005;
  /// RNG seed; equal seeds give identical datasets.
  uint64_t seed = 1;
};

/// Generates a random-walk clustered dataset. Point order is shuffled so
/// clusterers cannot exploit generation order.
Dataset GenerateRandomWalk(const RandomWalkParams& params);

/// Parameters of the isotropic Gaussian-blob generator (used by the
/// open-dataset surrogates and the quickstart example).
struct GaussianBlobsParams {
  PointIndex n = 10'000;
  int dim = 2;
  int num_clusters = 5;
  /// Domain side length; cluster centers are drawn uniformly but kept at
  /// least `min_center_separation` apart (in units of stddev).
  double domain = 100.0;
  /// Per-dimension standard deviation of each blob.
  double stddev = 1.0;
  /// Minimum pairwise center distance in multiples of stddev.
  double min_center_separation = 10.0;
  /// Fraction of uniform noise points.
  double noise_fraction = 0.0;
  uint64_t seed = 1;
};

/// Generates Gaussian blobs with well-separated centers. If
/// `ground_truth` is non-null it receives the generating component of each
/// point (noise points get Clustering-style label -1).
Dataset GenerateGaussianBlobs(const GaussianBlobsParams& params,
                              std::vector<int32_t>* ground_truth = nullptr);

/// Distance to the `min_pts`-th nearest neighbor, medianed over a random
/// sample of `sample_size` points and inflated by `inflation` — the
/// standard heuristic for picking a DBSCAN ε that yields non-degenerate
/// clusterings on an unknown dataset. Exposed as a library utility and
/// used by the surrogate datasets to self-calibrate their suggested
/// parameters.
double SuggestEpsilon(const Dataset& dataset, int min_pts,
                      int sample_size = 200, double inflation = 1.2,
                      uint64_t seed = 99);

}  // namespace dbsvec

#endif  // DBSVEC_DATA_SYNTHETIC_H_
