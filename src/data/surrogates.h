#ifndef DBSVEC_DATA_SURROGATES_H_
#define DBSVEC_DATA_SURROGATES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// A named stand-in for one of the paper's evaluation datasets, together
/// with self-calibrated DBSCAN parameters that yield a non-degenerate
/// clustering on it.
struct SurrogateDataset {
  std::string name;   ///< Paper's dataset name (e.g. "t4.8k").
  Dataset data{2};    ///< The generated points.
  double epsilon = 1.0;  ///< Suggested ε (kth-NN self-calibration).
  int min_pts = 8;       ///< Suggested MinPts.
};

/// Builds the surrogate for the paper dataset `name`. Every dataset in the
/// paper's evaluation is available:
///   Table III / Fig. 9a:  Seeds, Map-Joensuu, Map-Finland, Breast, House,
///                         Miss, Dim32, Dim64, D31, t4.8k, t7.10k
///   Sec. V-C real data:   PAMAP2, Sensors, Corel
/// The real originals are not redistributable offline; each surrogate
/// matches the original's cardinality and dimensionality and mimics its
/// cluster-structure family (see DESIGN.md §4). `max_points` truncates the
/// cardinality for laptop-scale runs (0 keeps the paper's size).
/// Generation is deterministic for a given name.
Status MakeSurrogate(std::string_view name, SurrogateDataset* out,
                     PointIndex max_points = 0);

/// The 11 dataset names of the paper's accuracy study (Table III), in the
/// paper's column order.
std::vector<std::string> AccuracySurrogateNames();

/// The 3 real-world dataset names of the paper's efficiency study.
std::vector<std::string> EfficiencySurrogateNames();

}  // namespace dbsvec

#endif  // DBSVEC_DATA_SURROGATES_H_
