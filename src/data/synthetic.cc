#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "index/kd_tree.h"

namespace dbsvec {
namespace {

/// Shuffles points (and the optional parallel label array) so that dataset
/// order carries no information about cluster membership.
void ShufflePoints(Dataset* dataset, std::vector<int32_t>* labels,
                   Rng* rng) {
  const PointIndex n = dataset->size();
  const int dim = dataset->dim();
  for (PointIndex i = n - 1; i > 0; --i) {
    const PointIndex j = static_cast<PointIndex>(rng->NextBounded(i + 1));
    for (int k = 0; k < dim; ++k) {
      std::swap(dataset->at(i, k), dataset->at(j, k));
    }
    if (labels != nullptr) {
      std::swap((*labels)[i], (*labels)[j]);
    }
  }
}

}  // namespace

Dataset GenerateRandomWalk(const RandomWalkParams& params) {
  Rng rng(params.seed);
  Dataset dataset(params.dim);
  dataset.Reserve(params.n);

  const PointIndex noise_points = static_cast<PointIndex>(
      params.noise_fraction * static_cast<double>(params.n));
  const PointIndex cluster_points = params.n - noise_points;
  const double step = params.step_scale * params.domain;
  const double jitter = params.jitter_scale * params.domain;

  std::vector<double> seed_pos(params.dim);
  std::vector<double> pos(params.dim);
  std::vector<double> point(params.dim);
  for (int c = 0; c < params.num_clusters; ++c) {
    // Keep seeds away from the domain boundary so walks stay inside.
    for (int j = 0; j < params.dim; ++j) {
      seed_pos[j] = rng.Uniform(0.15 * params.domain, 0.85 * params.domain);
    }
    pos = seed_pos;
    const PointIndex share =
        cluster_points / params.num_clusters +
        (c < cluster_points % params.num_clusters ? 1 : 0);
    for (PointIndex k = 0; k < share; ++k) {
      if (rng.NextDouble() < params.restart_probability) {
        pos = seed_pos;
      }
      for (int j = 0; j < params.dim; ++j) {
        pos[j] += rng.Uniform(-step, step);
        pos[j] = std::clamp(pos[j], 0.0, params.domain);
        point[j] = std::clamp(pos[j] + rng.Gaussian(0.0, jitter), 0.0,
                              params.domain);
      }
      dataset.Append(point);
    }
  }
  for (PointIndex k = 0; k < noise_points; ++k) {
    for (int j = 0; j < params.dim; ++j) {
      point[j] = rng.Uniform(0.0, params.domain);
    }
    dataset.Append(point);
  }
  ShufflePoints(&dataset, nullptr, &rng);
  return dataset;
}

Dataset GenerateGaussianBlobs(const GaussianBlobsParams& params,
                              std::vector<int32_t>* ground_truth) {
  Rng rng(params.seed);
  Dataset dataset(params.dim);
  dataset.Reserve(params.n);
  std::vector<int32_t> labels;
  labels.reserve(params.n);

  // Rejection-sample well-separated centers (give up after a bounded number
  // of tries per center so pathological configurations still terminate).
  const double min_sep = params.min_center_separation * params.stddev;
  const double min_sep_sq = min_sep * min_sep;
  std::vector<std::vector<double>> centers;
  for (int c = 0; c < params.num_clusters; ++c) {
    std::vector<double> center(params.dim);
    for (int attempt = 0; attempt < 200; ++attempt) {
      for (int j = 0; j < params.dim; ++j) {
        center[j] = rng.Uniform(0.1 * params.domain, 0.9 * params.domain);
      }
      bool ok = true;
      for (const auto& other : centers) {
        if (SquaredDistance(center, other) < min_sep_sq) {
          ok = false;
          break;
        }
      }
      if (ok) {
        break;
      }
    }
    centers.push_back(center);
  }

  const PointIndex noise_points = static_cast<PointIndex>(
      params.noise_fraction * static_cast<double>(params.n));
  const PointIndex cluster_points = params.n - noise_points;
  std::vector<double> point(params.dim);
  for (int c = 0; c < params.num_clusters; ++c) {
    const PointIndex share =
        cluster_points / params.num_clusters +
        (c < cluster_points % params.num_clusters ? 1 : 0);
    for (PointIndex k = 0; k < share; ++k) {
      for (int j = 0; j < params.dim; ++j) {
        point[j] = centers[c][j] + rng.Gaussian(0.0, params.stddev);
      }
      dataset.Append(point);
      labels.push_back(c);
    }
  }
  for (PointIndex k = 0; k < noise_points; ++k) {
    for (int j = 0; j < params.dim; ++j) {
      point[j] = rng.Uniform(0.0, params.domain);
    }
    dataset.Append(point);
    labels.push_back(-1);
  }
  ShufflePoints(&dataset, &labels, &rng);
  if (ground_truth != nullptr) {
    *ground_truth = std::move(labels);
  }
  return dataset;
}

double SuggestEpsilon(const Dataset& dataset, int min_pts, int sample_size,
                      double inflation, uint64_t seed) {
  const PointIndex n = dataset.size();
  if (n < 2) {
    return 1.0;
  }
  Rng rng(seed);
  const int samples = std::min<int>(sample_size, n);
  // k+1 neighbors because the query point matches itself at distance 0.
  const int k = std::min<int>(std::max(1, min_pts) + 1, n);
  const KdTree index(dataset);
  std::vector<double> kth_distances;
  kth_distances.reserve(samples);
  std::vector<std::pair<double, PointIndex>> neighbors;
  for (int s = 0; s < samples; ++s) {
    const PointIndex q = static_cast<PointIndex>(rng.NextBounded(n));
    index.KnnQuery(dataset.point(q), k, &neighbors);
    kth_distances.push_back(neighbors.back().first);
  }
  std::nth_element(kth_distances.begin(),
                   kth_distances.begin() + kth_distances.size() / 2,
                   kth_distances.end());
  return inflation * kth_distances[kth_distances.size() / 2];
}

}  // namespace dbsvec
